"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper, but quantifications of the knobs behind them:

* **channels** — how many rings/NICs a communicator drives (the paper's
  "number of rings equal to the number of network multi-path choices");
* **control-ring latency** — the only fast-path-adjacent cost of the
  Figure 4 reconfiguration barrier;
* **interference penalty** — the burst-interference extension behind the
  Figure 9/10 QoS magnitudes (0 = the paper's pure fluid §6.5 model);
* **ring vs tree** — the classic latency/bandwidth crossover that static
  library selection (§2.1) exploits.
"""

import pytest

from repro.cluster.specs import testbed_cluster
from repro.collectives.ring import RingSchedule
from repro.core.controller import CentralManager
from repro.core.deployment import MccsDeployment
from repro.core.strategy import CollectiveStrategy
from repro.experiments.report import format_table
from repro.experiments.setups import single_app_gpus
from repro.netsim.units import KB, MB, format_size


def _mccs_allreduce_time(out_bytes, *, channels=2, algorithm="ring", seed=0):
    cluster = testbed_cluster()
    deployment = MccsDeployment(cluster, ecmp_seed=seed)
    manager = CentralManager(deployment)
    gpus = single_app_gpus(cluster, "8gpu")
    order = tuple(range(8))
    state = deployment.create_communicator(
        "A",
        gpus,
        channels=channels,
        strategy=CollectiveStrategy(
            ring=RingSchedule(order), channels=channels, algorithm=algorithm
        ),
    )
    manager.apply_flow_policy("ffa")
    deployment.run()
    client = deployment.connect("A")
    comm = client.adopt_communicator(state.comm_id)
    durations = []
    client.all_reduce(comm, out_bytes, on_complete=lambda i, t: durations.append(i.duration()))
    deployment.run()
    return durations[0]


def test_ablation_channels(benchmark, once, capsys):
    """One ring cannot use both vNICs; two rings double the bandwidth."""

    def sweep():
        return {
            channels: 512 * MB / _mccs_allreduce_time(512 * MB, channels=channels) / 1e9
            for channels in (1, 2, 4)
        }

    result = once(benchmark, sweep)
    with capsys.disabled():
        print()
        print(
            format_table(
                ["Channels (rings)", "512MB AllReduce algbw (GB/s)"],
                [(c, f"{bw:.2f}") for c, bw in result.items()],
                title="Ablation — rings per communicator (8-GPU testbed)",
            )
        )
    assert result[2] > result[1] * 1.8  # second NIC unlocked
    assert result[4] == pytest.approx(result[2], rel=0.05)  # no third NIC


def test_ablation_control_ring_latency(benchmark, once, capsys):
    """Reconfiguration stall grows with the control AllGather latency,
    and the fast path (no reconfig) is unaffected."""

    def measure(control_latency):
        cluster = testbed_cluster()
        deployment = MccsDeployment(cluster, control_latency=control_latency)
        gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
        comm = deployment.create_communicator("A", gpus)
        client = deployment.connect("A")
        handle = client.adopt_communicator(comm.comm_id)
        baseline_op = client.all_reduce(handle, 8 * MB)
        deployment.run()
        deployment.reconfigure(comm.comm_id, ring=[3, 2, 1, 0])
        # let the request reach the proxies, then issue while they hold
        deployment.run(until=cluster.sim.now)
        op = client.all_reduce(handle, 8 * MB)
        deployment.run()
        return baseline_op.duration(), op.duration()

    def sweep():
        return {lat: measure(lat) for lat in (50e-6, 200e-6, 1e-3, 5e-3)}

    result = once(benchmark, sweep)
    rows = [
        (f"{lat * 1e6:.0f}us", f"{base * 1e3:.3f}ms", f"{dur * 1e3:.3f}ms")
        for lat, (base, dur) in result.items()
    ]
    with capsys.disabled():
        print()
        print(
            format_table(
                ["Control latency", "No reconfig", "Across a reconfig"],
                rows,
                title="Ablation — Figure 4 barrier cost (8MB AllReduce)",
            )
        )
    for lat, (base, dur) in result.items():
        assert dur <= base + lat + 1e-4
        assert dur >= base  # the stall is real but bounded
    bases = {round(b, 9) for b, _ in result.values()}
    assert len(bases) == 1  # fast path independent of control latency


def test_ablation_interference_penalty(benchmark, once, capsys):
    """PFA-vs-FFA for tenant A flips sign as interference grows: in a
    pure fluid world (penalty 0) isolation cannot beat sharing."""
    from repro.experiments.fig09_qos import _run_once

    iters = {"A": 8, "B": 6, "C": 6}

    def sweep():
        out = {}
        for penalty in (0.0, 0.15, 0.30):
            ffa = _run_once("ffa", 0, iterations=iters, penalty=penalty)
            pfa = _run_once("pfa", 0, iterations=iters, penalty=penalty)
            out[penalty] = pfa["A"] / ffa["A"]
        return out

    result = once(benchmark, sweep)
    with capsys.disabled():
        print()
        print(
            format_table(
                ["Interference penalty", "PFA/FFA JCT ratio for A"],
                [(p, f"{r:.3f}") for p, r in result.items()],
                title="Ablation — burst interference behind the Figure 9 PFA gain",
            )
        )
    assert result[0.0] >= 1.0  # fluid-only: PFA cannot win
    assert result[0.30] < result[0.0]  # interference is what PFA removes
    assert result[0.30] < 1.0


def test_ablation_ring_vs_tree(benchmark, once, capsys):
    """Trees win small latency-bound sizes; rings win bandwidth."""

    def sweep():
        out = {}
        for size in (32 * KB, 512 * KB, 32 * MB, 512 * MB):
            ring = _mccs_allreduce_time(size, algorithm="ring")
            tree = _mccs_allreduce_time(size, algorithm="tree")
            out[size] = (size / ring / 1e9, size / tree / 1e9)
        return out

    result = once(benchmark, sweep)
    with capsys.disabled():
        print()
        print(
            format_table(
                ["Size", "Ring (GB/s)", "Tree (GB/s)"],
                [
                    (format_size(s), f"{r:.2f}", f"{t:.2f}")
                    for s, (r, t) in result.items()
                ],
                title="Ablation — ring vs double binary tree (8-GPU MCCS)",
            )
        )
    small_ring, small_tree = result[32 * KB]
    big_ring, big_tree = result[512 * MB]
    assert small_tree > small_ring  # fewer latency hops
    assert big_ring > big_tree  # 2(n-1)/n*S vs ~4S per interior NIC
