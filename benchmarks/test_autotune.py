"""Autotune benchmarks: planner throughput and tuned-vs-static speedup.

Results are written to ``BENCH_autotune.json`` at the repo root so CI can
archive the trend alongside ``BENCH_netsim.json``:

* ``planner``: candidate evaluations/sec of the offline cost-model sweep
  (per collective kind), and full table-build wall time over the Figure 6
  size axis;
* ``tuned_vs_static``: per size regime, the online tuner's converged tail
  mean vs the best and worst static strategies — ``speedup_vs_worst`` is
  what tuning saves a tenant that guessed wrong, ``vs_best`` how close it
  lands to the oracle (1.0 = converged).
"""

import json
import time
from pathlib import Path

import pytest

from repro.autotune import StrategyPlanner
from repro.cluster.specs import testbed_cluster
from repro.collectives.types import Collective
from repro.experiments.fig_autotune import run_autotune
from repro.experiments.setups import single_app_gpus
from repro.netsim.units import KB, MB

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_autotune.json"
_RESULTS = {"planner": {}, "tuned_vs_static": {}}

PLAN_SIZES = tuple(32 * KB * 4**i for i in range(8))  # the Figure 6 axis


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    yield
    OUT_PATH.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {OUT_PATH}")


def test_planner_throughput():
    cluster = testbed_cluster()
    gpus = single_app_gpus(cluster, "8gpu")
    planner = StrategyPlanner(cluster)
    started = time.perf_counter()
    repeats = 20
    for _ in range(repeats):
        for size in PLAN_SIZES:
            planner.plan(Collective.ALL_REDUCE, size, gpus)
    elapsed = time.perf_counter() - started
    evals_per_sec = planner.plans_evaluated / elapsed
    _RESULTS["planner"]["evaluations_per_sec"] = round(evals_per_sec)
    _RESULTS["planner"]["evaluations"] = planner.plans_evaluated
    assert evals_per_sec > 100  # sanity floor, not a perf target


def test_table_build_wall_time():
    cluster = testbed_cluster()
    gpus = single_app_gpus(cluster, "8gpu")
    planner = StrategyPlanner(cluster)
    started = time.perf_counter()
    table = planner.build_table(
        gpus,
        kinds=(Collective.ALL_REDUCE, Collective.ALL_GATHER),
        sizes=PLAN_SIZES,
    )
    elapsed = time.perf_counter() - started
    _RESULTS["planner"]["table_build_seconds"] = round(elapsed, 4)
    _RESULTS["planner"]["table_entries"] = len(table)
    assert len(table) > 0


def test_tuned_vs_static_speedup():
    result = run_autotune(
        sizes=(64 * KB, 64 * MB), static_iters=2, tune_rounds=24, tail=4
    )
    for regime in result.regimes:
        label, best = regime.best_static
        worst = max(regime.static_means.values())
        _RESULTS["tuned_vs_static"][str(regime.size)] = {
            "best_static_label": label,
            "best_static_us": round(best * 1e6, 2),
            "worst_static_us": round(worst * 1e6, 2),
            "tuned_tail_us": round(regime.tuned_tail_mean * 1e6, 2),
            "tuned_first_us": round(regime.tuned_first * 1e6, 2),
            "retunes": regime.retunes,
            "speedup_vs_worst": round(worst / regime.tuned_tail_mean, 3),
            "vs_best": round(regime.tuned_tail_mean / best, 3),
            "converged": regime.converged,
        }
        assert regime.converged
        assert regime.barrier_only and regime.inconsistent == 0
