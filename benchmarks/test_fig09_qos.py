"""Benchmark: regenerate Figure 9 (training-workload JCT under QoS)."""

from repro.experiments.fig09_qos import SOLUTIONS, run_fig09
from repro.experiments.report import format_table


def test_fig09_qos(benchmark, once, capsys):
    results, ffa_means = once(benchmark, run_fig09, trials=3)
    by_solution = {}
    for r in results:
        by_solution.setdefault(r.solution, {})[r.app_id] = r.stat
    rows = []
    for solution in SOLUTIONS:
        stats = by_solution[solution]
        rows.append(
            [solution.upper()]
            + [f"{stats[a].mean / ffa_means[a]:.2f}" for a in ("A", "B", "C")]
        )
    with capsys.disabled():
        print()
        print(
            format_table(
                ["Solution", "VGG (A)", "GPT (B)", "GPT (C)"],
                rows,
                title="Figure 9 — JCT normalized to FFA (lower is better)",
            )
        )

    def norm(solution, app):
        return by_solution[solution][app].mean / ffa_means[app]

    # ECMP degrades every workload (paper: 18/22/14% slower)
    for app in ("A", "B", "C"):
        assert norm("ecmp", app) > 1.05
    # PFA prioritizes A (paper: 13% over FFA, 34% over ECMP)
    assert norm("pfa", "A") <= 1.02
    assert by_solution["pfa"]["A"].mean < by_solution["ecmp"]["A"].mean
    # PFA+TS prioritizes B over C without affecting A (paper: B +16%)
    assert norm("pfa+ts", "B") < norm("pfa", "B")
    assert abs(norm("pfa+ts", "A") - norm("pfa", "A")) < 0.02
    assert norm("pfa+ts", "C") > norm("pfa", "C")
