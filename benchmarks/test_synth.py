"""Synthesis benchmarks: search throughput and measured schedule wins.

Results are written to ``BENCH_synth.json`` at the repo root so CI can
archive the trend and ``benchmarks/compare_bench.py`` can guard it:

* ``synthesizer``: validated-and-scored programs/sec of the bounded
  search (per fabric), plus candidate/front counts — the synthesizer
  must stay cheap enough to run at communicator-creation time;
* ``validator``: full validations/sec of the biggest generated program;
* ``speedup``: per size, the *measured* (flow data plane, not
  predicted) speedup of the best synthesized schedule over the best
  built-in on the two-region WAN fabric.  The guard failing means a
  change lost the paper-level win.
"""

import json
import time
from pathlib import Path

import pytest

from repro.cluster.specs import multi_region_cluster, testbed_cluster
from repro.collectives.types import Collective
from repro.experiments.fig_synth import run_synth
from repro.experiments.setups import single_app_gpus
from repro.netsim.fabric import RegionSpec
from repro.netsim.units import KB, MB, format_size
from repro.synth import Synthesizer, hierarchical_allreduce_program, validate_program

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_synth.json"
_RESULTS = {"synthesizer": {}, "validator": {}, "speedup": {}}


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    yield
    OUT_PATH.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {OUT_PATH}")


def _placement(fabric):
    if fabric == "testbed":
        cluster = testbed_cluster()
        return cluster, list(single_app_gpus(cluster, "8gpu"))
    cluster = multi_region_cluster(RegionSpec())
    return cluster, [h.gpus[0] for h in cluster.hosts]


@pytest.mark.parametrize("fabric", ["testbed", "two_region"])
def test_synthesizer_search_throughput(fabric):
    cluster, gpus = _placement(fabric)
    repeats = 10
    started = time.perf_counter()
    for _ in range(repeats):
        synthesizer = Synthesizer(cluster, gpus)
        front = synthesizer.search(Collective.ALL_REDUCE)
    elapsed = time.perf_counter() - started
    per_sec = synthesizer.candidates_generated * repeats / elapsed
    _RESULTS["synthesizer"][fabric] = {
        "programs_per_sec": round(per_sec),
        "candidates": synthesizer.candidates_generated,
        "front": len(front),
        "search_seconds": round(elapsed / repeats, 4),
    }
    assert front
    assert elapsed / repeats < 5.0  # cheap enough for communicator setup


def test_validator_throughput():
    program = hierarchical_allreduce_program([[i * 4 + j for j in range(4)]
                                              for i in range(4)])
    repeats = 50
    started = time.perf_counter()
    for _ in range(repeats):
        validate_program(program)
    elapsed = time.perf_counter() - started
    _RESULTS["validator"]["hier_16rank"] = {
        "validations_per_sec": round(repeats / elapsed),
        "instructions": sum(len(rp) for rp in program.rank_programs),
    }


def test_measured_speedup_on_wan_fabric():
    results = run_synth(
        fabrics=("two_region",),
        sizes=(64 * KB, 16 * MB, 64 * MB),
        static_iters=2,
        tune_rounds=20,
        tail=4,
    )
    (result,) = results
    for point in result.points:
        _RESULTS["speedup"][f"two_region/{format_size(point.size)}"] = {
            "speedup": round(point.speedup, 3),
            "builtin_label": point.builtin_label,
            "synth_label": point.synth_label,
            "builtin_us": round(point.builtin_seconds * 1e6, 2),
            "synth_us": round(point.synth_seconds * 1e6, 2),
        }
        assert point.synth_wins
    tuned = result.tuned
    _RESULTS["speedup"]["two_region/tuned"] = {
        # the guard compares higher-is-better: first/tail > 1 means the
        # tuner's converged strategy beat its starting point
        "speedup": round(tuned.first / tuned.tail_mean, 3),
        "algorithm": tuned.algorithm,
        "retunes": tuned.retunes,
    }
    assert tuned.adopted_synth
    assert tuned.barrier_only and tuned.inconsistent == 0


def test_no_metric_regression_vs_committed_baseline():
    """The in-process twin of the CI compare step (compare_bench.py)."""
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    try:
        from compare_bench import committed_baseline, compare_throughput
    finally:
        sys.path.pop(0)

    baseline = committed_baseline(OUT_PATH)
    failures = compare_throughput(
        baseline, _RESULTS, sections=("synthesizer",), metric="programs_per_sec"
    ) + compare_throughput(
        baseline, _RESULTS, sections=("speedup",), metric="speedup"
    )
    assert not failures, "\n".join(failures)
