"""Guard BENCH_netsim.json throughput against regressions.

Compares a freshly generated ``BENCH_netsim.json`` against the committed
baseline (``git show HEAD:BENCH_netsim.json`` by default) and fails if
any ``events_per_sec`` shared by both files regressed more than the
tolerance.  Used two ways:

* as the CI compare step, after the bench job rewrites the file::

      python benchmarks/compare_bench.py

* imported by ``benchmarks/test_netsim_core.py``, which runs the same
  check in-process against the results it just measured.

Only keys present in *both* files are compared, so adding or renaming
benchmark points never trips the guard; a point that got slower does.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_netsim.json"

#: Sections holding throughput points keyed by scenario name.
THROUGHPUT_SECTIONS = ("event_loop", "scale_curve")

#: Allowed fractional slowdown before the compare step fails.  The bench
#: runners are noisy shared machines; 30% is the contract from the scale
#: work (genuine regressions from algorithmic changes are much larger).
TOLERANCE = 0.30


def compare_throughput(
    baseline: Dict, fresh: Dict, tolerance: float = TOLERANCE
) -> List[str]:
    """Return a list of human-readable regression descriptions (empty = ok)."""
    failures = []
    for section in THROUGHPUT_SECTIONS:
        base_section = baseline.get(section) or {}
        fresh_section = fresh.get(section) or {}
        for key in sorted(set(base_section) & set(fresh_section)):
            old = (base_section[key] or {}).get("events_per_sec")
            new = (fresh_section[key] or {}).get("events_per_sec")
            if not old or not new:
                continue
            if new < old * (1.0 - tolerance):
                failures.append(
                    f"{section}[{key}]: {new:,.0f} events/s vs committed "
                    f"{old:,.0f} ({100.0 * (new / old - 1.0):+.0f}%, "
                    f"tolerance -{100.0 * tolerance:.0f}%)"
                )
    return failures


def committed_baseline(path: Path = BENCH_PATH) -> Dict:
    """The committed version of the bench file (empty dict if unborn)."""
    rel = path.relative_to(REPO_ROOT)
    proc = subprocess.run(
        ["git", "show", f"HEAD:{rel.as_posix()}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return {}
    return json.loads(proc.stdout)


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh", type=Path, default=BENCH_PATH,
        help="freshly generated bench file (default: repo BENCH_netsim.json)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=TOLERANCE,
        help="allowed fractional events_per_sec slowdown",
    )
    args = parser.parse_args(argv)
    baseline = committed_baseline()
    fresh = json.loads(args.fresh.read_text())
    failures = compare_throughput(baseline, fresh, args.tolerance)
    if failures:
        print("throughput regressions vs committed BENCH_netsim.json:")
        for line in failures:
            print(f"  {line}")
        return 1
    compared = sum(
        len(set(baseline.get(s) or {}) & set(fresh.get(s) or {}))
        for s in THROUGHPUT_SECTIONS
    )
    print(f"no events_per_sec regressions ({compared} points compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
