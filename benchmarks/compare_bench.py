"""Guard committed BENCH_*.json metrics against regressions.

Compares freshly generated bench files against their committed baselines
(``git show HEAD:<file>`` by default) and fails if any higher-is-better
metric shared by both files regressed more than the tolerance.  Used two
ways:

* as the CI compare step, after a bench job rewrites the files::

      python benchmarks/compare_bench.py

* imported by ``benchmarks/test_netsim_core.py`` and
  ``benchmarks/test_synth.py``, which run the same check in-process
  against the results they just measured.

Guarded files:

* ``BENCH_netsim.json`` — engine throughput (``events_per_sec``) in the
  ``event_loop`` and ``scale_curve`` sections;
* ``BENCH_synth.json`` — synthesizer search throughput
  (``programs_per_sec``) and the measured synthesized-vs-builtin
  ``speedup`` on the WAN fabric;
* ``BENCH_gateway.json`` — service-gateway request throughput and the
  fleet-scenario wall-clock rate (``requests_per_sec`` in both the
  ``gateway`` and ``fleet`` sections).

Only keys present in *both* files are compared, so adding or renaming
benchmark points never trips the guard; a point that got slower does.
Fresh files that do not exist yet are skipped (each CI bench job only
regenerates its own file).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_netsim.json"
SYNTH_PATH = REPO_ROOT / "BENCH_synth.json"
GATEWAY_PATH = REPO_ROOT / "BENCH_gateway.json"

#: Sections of BENCH_netsim.json holding throughput points.
THROUGHPUT_SECTIONS = ("event_loop", "scale_curve")

#: Allowed fractional slowdown before the compare step fails.  The bench
#: runners are noisy shared machines; 30% is the contract from the scale
#: work (genuine regressions from algorithmic changes are much larger).
TOLERANCE = 0.30


@dataclass(frozen=True)
class Guard:
    """One (file, sections, metric) triple to hold the line on."""

    path: Path
    sections: Tuple[str, ...]
    metric: str


GUARDS = (
    Guard(BENCH_PATH, THROUGHPUT_SECTIONS, "events_per_sec"),
    Guard(SYNTH_PATH, ("synthesizer",), "programs_per_sec"),
    Guard(SYNTH_PATH, ("speedup",), "speedup"),
    Guard(GATEWAY_PATH, ("gateway", "fleet"), "requests_per_sec"),
)


def compare_throughput(
    baseline: Dict,
    fresh: Dict,
    tolerance: float = TOLERANCE,
    *,
    sections: Sequence[str] = THROUGHPUT_SECTIONS,
    metric: str = "events_per_sec",
) -> List[str]:
    """Return a list of human-readable regression descriptions (empty = ok)."""
    failures = []
    for section in sections:
        base_section = baseline.get(section) or {}
        fresh_section = fresh.get(section) or {}
        for key in sorted(set(base_section) & set(fresh_section)):
            old = (base_section[key] or {}).get(metric)
            new = (fresh_section[key] or {}).get(metric)
            if not old or not new:
                continue
            if new < old * (1.0 - tolerance):
                failures.append(
                    f"{section}[{key}]: {metric} {new:,.2f} vs committed "
                    f"{old:,.2f} ({100.0 * (new / old - 1.0):+.0f}%, "
                    f"tolerance -{100.0 * tolerance:.0f}%)"
                )
    return failures


def committed_baseline(path: Path = BENCH_PATH) -> Dict:
    """The committed version of a bench file (empty dict if unborn)."""
    rel = path.relative_to(REPO_ROOT)
    proc = subprocess.run(
        ["git", "show", f"HEAD:{rel.as_posix()}"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return {}
    return json.loads(proc.stdout)


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance", type=float, default=TOLERANCE,
        help="allowed fractional metric slowdown",
    )
    args = parser.parse_args(argv)
    failures: List[str] = []
    compared = 0
    for guard in GUARDS:
        if not guard.path.exists():
            continue  # this bench job did not regenerate the file
        baseline = committed_baseline(guard.path)
        fresh = json.loads(guard.path.read_text())
        failures.extend(
            compare_throughput(
                baseline,
                fresh,
                args.tolerance,
                sections=guard.sections,
                metric=guard.metric,
            )
        )
        compared += sum(
            len(set(baseline.get(s) or {}) & set(fresh.get(s) or {}))
            for s in guard.sections
        )
    if failures:
        print("metric regressions vs committed bench baselines:")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"no metric regressions ({compared} points compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
