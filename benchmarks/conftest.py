"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's figures and prints the
rows/series the paper plots.  Simulations are deterministic, so each
benchmark runs a single round (``benchmark.pedantic(rounds=1)``) — the
timing measures the cost of regenerating the figure, and the printed
tables are the scientific output.

Scale knobs: the benchmarks default to configurations that finish in
seconds to a couple of minutes.  Full paper-scale sweeps are available
through each experiment module's ``main()``
(e.g. ``python -m repro.experiments.fig11_simulation``).
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run a deterministic experiment exactly once under the benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
