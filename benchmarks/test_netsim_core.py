"""Engine-core micro-benchmarks: solver churn and event-loop throughput.

Unlike the figure benchmarks, this file measures the *simulator core*
itself — the incremental max-min solver under flow churn, and the event
loop completing large flow populations — at the fleet scales the Figure 11
sweep produces (§6.5 fabric, thousands of concurrent flows).

Results are written to ``BENCH_netsim.json`` at the repo root so CI can
archive the trend:

* ``solver_churn``: solves/sec under add/remove churn at 1k and 10k flows,
  plus the solver's rebuild/Δ counters;
* ``event_loop``: completion events/sec and recompute counts at 1k and 10k
  total flows;
* ``scale_curve``: the datacenter-scale points — channelized NCCL-shaped
  waves (``repro.netsim.profile``) at 1k/10k/100k flows on 1/4/16-pod
  Clos fabrics (512–8192 GPUs), run with macro aggregation + the sharded
  solver; only ``sim.run()`` is timed, workload generation is not;
* ``fig11``: the recorded pre-optimization wall clock of the Figure 11
  random-placement run and the wall clock measured now.

The final test replays :mod:`benchmarks.compare_bench` in-process and
fails if any ``events_per_sec`` shared with the committed baseline
regressed by more than its tolerance (CI runs the same script as a
separate step after archiving the file).
"""

import json
import random
import time
from pathlib import Path

import pytest

from repro.netsim.engine import FlowSimulator
from repro.netsim.fabric import large_cluster_fabric, nic_node
from repro.netsim.fairness import IncrementalFairnessSolver
from repro.netsim.flows import Flow

#: Wall clock of ``run_fig11(placement="random", num_jobs=25,
#: iterations=150, channels=4, seed=0)`` on the reference machine before
#: the incremental engine landed (full solver rebuild + full scans).
BASELINE_FIG11_WALL_S = 49.25

#: Event-loop throughput of the 10k-flow point before the flat-array /
#: macro / sharded work landed (committed BENCH_netsim.json history) —
#: the denominator of the scale-curve speedup gate.
PRE_OPT_EVENTS_PER_SEC_10K = 4261.16

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_netsim.json"
_RESULTS = {
    "solver_churn": {},
    "event_loop": {},
    "scale_curve": {},
    "telemetry_overhead": {},
}


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    yield
    OUT_PATH.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {OUT_PATH}")


def _random_paths(topology, rng, count):
    """Random inter-host NIC-to-NIC shortest paths on the §6.5 fabric."""
    num_hosts, nics = 96, 8
    paths = []
    for _ in range(count):
        src_host = rng.randrange(num_hosts)
        dst_host = rng.randrange(num_hosts - 1)
        if dst_host >= src_host:
            dst_host += 1
        src = nic_node(src_host, rng.randrange(nics))
        dst = nic_node(dst_host, rng.randrange(nics))
        choices = topology.shortest_paths(src, dst)
        paths.append(choices[rng.randrange(len(choices))])
    return paths


@pytest.mark.parametrize("num_flows", [1_000, 10_000])
def test_solver_churn(num_flows):
    """Add/remove churn against a live population of ``num_flows``."""
    fabric = large_cluster_fabric()
    topology = fabric.topology
    caps = {lid: link.capacity for lid, link in topology.links.items()}
    rng = random.Random(20240805 + num_flows)
    paths = _random_paths(topology, rng, num_flows)

    solver = IncrementalFairnessSolver(caps)
    flows = []
    for path in paths:
        flow = Flow(size=1e9, path=path)
        solver.add_flow(flow)
        flows.append(flow)
    solver.solve()  # warm build

    churn_ops = 200 if num_flows <= 1_000 else 50
    spare = _random_paths(topology, rng, churn_ops)
    t0 = time.perf_counter()
    for i in range(churn_ops):
        victim = flows[rng.randrange(len(flows))]
        solver.remove_flow(victim)
        fresh = Flow(size=1e9, path=spare[i])
        solver.add_flow(fresh)
        flows[flows.index(victim)] = fresh
        solver.solve()
    wall = time.perf_counter() - t0

    solves_per_sec = churn_ops / wall
    _RESULTS["solver_churn"][str(num_flows)] = {
        "churn_ops": churn_ops,
        "wall_s": wall,
        "solves_per_sec": solves_per_sec,
        "full_rebuilds": solver.full_rebuilds,
        "delta_updates": solver.delta_updates,
        "last_delta": solver.last_delta,
    }
    print(
        f"\nsolver churn @ {num_flows} flows: "
        f"{solves_per_sec:.1f} solves/s ({wall:.3f}s for {churn_ops} ops), "
        f"{solver.full_rebuilds} rebuilds / {solver.delta_updates} Δ-updates"
    )
    # Churn must ride the Δ path: at most the initial build plus the
    # occasional tombstone compaction, never one rebuild per op.
    assert solver.full_rebuilds <= 1 + churn_ops // 8


@pytest.mark.parametrize("num_flows", [1_000, 10_000])
def test_event_loop(num_flows):
    """Drain ``num_flows`` staggered flows through the completion loop."""
    fabric = large_cluster_fabric()
    sim = FlowSimulator(fabric.topology)
    rng = random.Random(77 + num_flows)
    paths = _random_paths(fabric.topology, rng, num_flows)
    # Stagger arrivals into waves so the live population stays in the
    # hundreds (the Figure 11 regime) while the loop still processes
    # ``num_flows`` completions.  Sizes shrink with the population so the
    # offered load (bytes/sec) stays constant and waves drain instead of
    # piling up.
    wave = 250
    scale = 1e9 * (1_000 / num_flows)
    for i, path in enumerate(paths):
        size = (0.5 + rng.random()) * scale
        when = (i // wave) * 0.05
        sim.schedule(when, lambda s=size, p=path: sim.add_flow(s, p))

    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0

    assert sim.flows_completed == num_flows
    events_per_sec = sim.flows_completed / wall
    counters = sim.perf_counters()
    _RESULTS["event_loop"][str(num_flows)] = {
        "wall_s": wall,
        "events_per_sec": events_per_sec,
        **counters,
    }
    print(
        f"\nevent loop @ {num_flows} flows: {events_per_sec:.1f} events/s "
        f"({wall:.3f}s), {counters['rate_recomputations']} recomputes, "
        f"{counters['solver_rebuilds_avoided']} rebuilds avoided"
    )
    assert counters["solver_rebuilds_avoided"] > 0


#: Channel fan-out of the scale-curve workload: flows per connection
#: sharing one exact (path, weight, tenant).  16 is a realistic NCCL
#: channel count and the shape macro aggregation is built for; the value
#: is recorded with each point so the curve is self-describing.
SCALE_CHANNELS = 16

#: (flows, pods, timing reps).  The 10k x 16-pod point is the headline
#: the ≥20x gate applies to, so it takes best-of-N against machine noise
#: (with an early stop once the gate is comfortably cleared); the 100k
#: point demonstrates the fleet band at 8192 GPUs.
SCALE_POINTS = [
    pytest.param(1_000, 1, 1, id="1kx1pod"),
    pytest.param(10_000, 4, 1, id="10kx4pod"),
    pytest.param(10_000, 16, 4, id="10kx16pod"),
    pytest.param(100_000, 16, 1, id="100kx16pod"),
]


@pytest.mark.parametrize("num_flows,pods,reps", SCALE_POINTS)
def test_scale_curve(num_flows, pods, reps):
    """Channelized waves on multi-pod Clos, macro + sharded, timed run only."""
    from repro.netsim.fabric import multi_pod_clos
    from repro.netsim.profile import (
        DEFAULT_INTER_POD,
        prepare_scale_workload,
        scale_spec,
    )

    spec = scale_spec(pods)
    target = 20.0 * PRE_OPT_EVENTS_PER_SEC_10K
    best = 0.0
    best_run = None
    for _ in range(reps):
        fabric = multi_pod_clos(spec)
        sim = FlowSimulator(fabric.topology, macro=True, sharded=True)
        injected = prepare_scale_workload(
            sim, spec, num_flows, channels=SCALE_CHANNELS
        )
        t0 = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - t0
        assert sim.flows_completed == injected
        events_per_sec = injected / wall
        if events_per_sec > best:
            best = events_per_sec
            best_run = (wall, injected, sim.perf_counters())
        if best >= target:
            break  # gate cleared; don't burn bench time on more reps
    wall, injected, counters = best_run
    _RESULTS["scale_curve"][f"{num_flows}x{pods}pod"] = {
        "flows": injected,
        "pods": pods,
        "gpus": spec.gpus,
        "channels": SCALE_CHANNELS,
        "inter_pod_fraction": DEFAULT_INTER_POD,
        "macro": True,
        "sharded": True,
        "wall_s": wall,
        "events_per_sec": best,
        **counters,
    }
    print(
        f"\nscale curve @ {injected} flows / {pods} pod(s) ({spec.gpus} GPUs): "
        f"{best:,.0f} events/s ({wall:.3f}s timed run), "
        f"{counters['solver_domains']} domains, "
        f"{counters['macro_groups']} macro groups live at drain"
    )
    if num_flows == 10_000 and pods == 16:
        # The scale tentpole's acceptance gate: ≥20x the committed
        # pre-optimization 10k-flow throughput (~4.3k -> ≥85k events/s).
        assert best >= target, (
            f"{best:,.0f} events/s < 20x pre-optimization baseline "
            f"({target:,.0f})"
        )


#: Flows per causal trace in the traced benchmark variant — the fan-out
#: of one 8-rank 2-channel collective, which is what a trace really
#: amortizes over in a deployment.
_FLOWS_PER_TRACE = 16


def _traced_event_loop(num_flows: int, traced: bool) -> float:
    """Wall clock of the event-loop workload, with/without causal tracing.

    The traced variant is the full always-on configuration: a
    :class:`CausalTracer` observing *every* flow (per-link tenant
    occupancy), with every flow belonging to a trace — grouped
    ``_FLOWS_PER_TRACE`` to a trace like a real collective's rank/channel
    fan-out, each trace closed when its last flow completes.
    """
    from repro.telemetry.causal import CausalTracer

    fabric = large_cluster_fabric()
    sim = FlowSimulator(fabric.topology)
    tracer = CausalTracer(sim, max_closed=8) if traced else None
    rng = random.Random(99)  # same seed either way: identical workloads
    paths = _random_paths(fabric.topology, rng, num_flows)
    wave = 250
    scale = 1e9 * (1_000 / num_flows)
    open_counts: dict = {}

    def launch(size: float, path, i: int) -> None:
        job = f"t{i % 8}"
        if tracer is None:
            sim.add_flow(size, path, job_id=job)
            return
        group = i // _FLOWS_PER_TRACE
        ctx = open_counts.get(group)
        if ctx is None:
            trace_ctx = tracer.mint_context(
                tenant=job, comm_id=f"comm{group}", seq=group,
                kind="bench", nbytes=int(size),
            )
            tracer.begin(trace_ctx, sim.now)
            remaining = min(_FLOWS_PER_TRACE, num_flows - group * _FLOWS_PER_TRACE)
            ctx = open_counts[group] = [trace_ctx.trace_id, remaining]

        def done(f, now, group=group) -> None:
            entry = open_counts[group]
            entry[1] -= 1
            if entry[1] == 0:
                tracer.close(entry[0], now, "completed")

        sim.add_flow(
            size, path, job_id=job, tags={"trace": ctx[0]}, on_complete=done
        )

    for i, path in enumerate(paths):
        size = (0.5 + rng.random()) * scale
        when = (i // wave) * 0.05
        sim.schedule(when, lambda s=size, p=path, i=i: launch(s, p, i))
    import gc

    gc.collect()
    gc.disable()  # GC pauses would land unevenly across the two variants
    try:
        t0 = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - t0
    finally:
        gc.enable()
    assert sim.flows_completed == num_flows
    if tracer is not None:
        assert tracer.traces_closed == len(open_counts)
        assert not tracer.live_traces()
    return wall


def test_telemetry_overhead():
    """Always-on causal tracing must cost < 10% event-loop throughput.

    Runs the identical workload with and without the tracer in adjacent
    off/on pairs and takes the median of the per-pair wall ratios:
    adjacent runs see the same machine speed, so container-level drift
    and throttling cancel out of each ratio — single-run jitter on this
    workload is of the same order as the overhead being measured.
    """
    import statistics

    num_flows = 2_000
    reps = 7
    _traced_event_loop(500, traced=True)  # warm caches on both code paths
    pairs = [
        (
            _traced_event_loop(num_flows, traced=False),
            _traced_event_loop(num_flows, traced=True),
        )
        for _ in range(reps)
    ]
    off = statistics.median(w for w, _ in pairs)
    on = statistics.median(w for _, w in pairs)
    overhead = statistics.median(on_w / off_w for off_w, on_w in pairs) - 1.0
    _RESULTS["telemetry_overhead"][str(num_flows)] = {
        "tracing_off_wall_s": off,
        "tracing_on_wall_s": on,
        "overhead_fraction": overhead,
    }
    print(
        f"\ntelemetry overhead @ {num_flows} flows: off {off:.3f}s, "
        f"on {on:.3f}s ({100 * overhead:+.1f}%)"
    )
    assert overhead < 0.10


def test_fig11_wall_clock(once, benchmark):
    """The Figure 11 fleet run that motivated the incremental engine."""
    from repro.experiments.fig11_simulation import run_fig11

    t0 = time.perf_counter()
    outcome = once(
        benchmark,
        run_fig11,
        placement="random",
        num_jobs=25,
        iterations=150,
        channels=4,
        seed=0,
    )
    wall = time.perf_counter() - t0
    import statistics

    speedups = {
        system: statistics.mean(outcome.speedups(system))
        for system in ("or", "or+ffa")
    }
    _RESULTS["fig11"] = {
        "config": {
            "placement": "random",
            "num_jobs": 25,
            "iterations": 150,
            "channels": 4,
            "seed": 0,
        },
        "before_wall_s": BASELINE_FIG11_WALL_S,
        "after_wall_s": wall,
        "speedup_vs_baseline": BASELINE_FIG11_WALL_S / wall,
        "mean_speedups": speedups,
    }
    print(
        f"\nfig11 wall: {wall:.2f}s (pre-optimization {BASELINE_FIG11_WALL_S}s, "
        f"{BASELINE_FIG11_WALL_S / wall:.2f}x)"
    )
    # Regression tripwire, loose enough for slow CI runners.
    assert wall < BASELINE_FIG11_WALL_S / 1.5


def test_no_throughput_regression_vs_committed_baseline():
    """The in-process twin of the CI compare step (compare_bench.py).

    Runs after every measurement above (pytest executes this file in
    definition order), so it sees the fresh numbers before they overwrite
    ``BENCH_netsim.json`` and compares them with the committed baseline.
    """
    import sys

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    try:
        from compare_bench import committed_baseline, compare_throughput
    finally:
        sys.path.pop(0)

    baseline = committed_baseline()
    failures = compare_throughput(baseline, _RESULTS)
    assert not failures, "\n".join(failures)
