"""Engine-core micro-benchmarks: solver churn and event-loop throughput.

Unlike the figure benchmarks, this file measures the *simulator core*
itself — the incremental max-min solver under flow churn, and the event
loop completing large flow populations — at the fleet scales the Figure 11
sweep produces (§6.5 fabric, thousands of concurrent flows).

Results are written to ``BENCH_netsim.json`` at the repo root so CI can
archive the trend:

* ``solver_churn``: solves/sec under add/remove churn at 1k and 10k flows,
  plus the solver's rebuild/Δ counters;
* ``event_loop``: completion events/sec and recompute counts at 1k and 10k
  total flows;
* ``fig11``: the recorded pre-optimization wall clock of the Figure 11
  random-placement run and the wall clock measured now.
"""

import json
import random
import time
from pathlib import Path

import pytest

from repro.netsim.engine import FlowSimulator
from repro.netsim.fabric import large_cluster_fabric, nic_node
from repro.netsim.fairness import IncrementalFairnessSolver
from repro.netsim.flows import Flow

#: Wall clock of ``run_fig11(placement="random", num_jobs=25,
#: iterations=150, channels=4, seed=0)`` on the reference machine before
#: the incremental engine landed (full solver rebuild + full scans).
BASELINE_FIG11_WALL_S = 49.25

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_netsim.json"
_RESULTS = {"solver_churn": {}, "event_loop": {}, "telemetry_overhead": {}}


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    yield
    OUT_PATH.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {OUT_PATH}")


def _random_paths(topology, rng, count):
    """Random inter-host NIC-to-NIC shortest paths on the §6.5 fabric."""
    num_hosts, nics = 96, 8
    paths = []
    for _ in range(count):
        src_host = rng.randrange(num_hosts)
        dst_host = rng.randrange(num_hosts - 1)
        if dst_host >= src_host:
            dst_host += 1
        src = nic_node(src_host, rng.randrange(nics))
        dst = nic_node(dst_host, rng.randrange(nics))
        choices = topology.shortest_paths(src, dst)
        paths.append(choices[rng.randrange(len(choices))])
    return paths


@pytest.mark.parametrize("num_flows", [1_000, 10_000])
def test_solver_churn(num_flows):
    """Add/remove churn against a live population of ``num_flows``."""
    fabric = large_cluster_fabric()
    topology = fabric.topology
    caps = {lid: link.capacity for lid, link in topology.links.items()}
    rng = random.Random(20240805 + num_flows)
    paths = _random_paths(topology, rng, num_flows)

    solver = IncrementalFairnessSolver(caps)
    flows = []
    for path in paths:
        flow = Flow(size=1e9, path=path)
        solver.add_flow(flow)
        flows.append(flow)
    solver.solve()  # warm build

    churn_ops = 200 if num_flows <= 1_000 else 50
    spare = _random_paths(topology, rng, churn_ops)
    t0 = time.perf_counter()
    for i in range(churn_ops):
        victim = flows[rng.randrange(len(flows))]
        solver.remove_flow(victim)
        fresh = Flow(size=1e9, path=spare[i])
        solver.add_flow(fresh)
        flows[flows.index(victim)] = fresh
        solver.solve()
    wall = time.perf_counter() - t0

    solves_per_sec = churn_ops / wall
    _RESULTS["solver_churn"][str(num_flows)] = {
        "churn_ops": churn_ops,
        "wall_s": wall,
        "solves_per_sec": solves_per_sec,
        "full_rebuilds": solver.full_rebuilds,
        "delta_updates": solver.delta_updates,
        "last_delta": solver.last_delta,
    }
    print(
        f"\nsolver churn @ {num_flows} flows: "
        f"{solves_per_sec:.1f} solves/s ({wall:.3f}s for {churn_ops} ops), "
        f"{solver.full_rebuilds} rebuilds / {solver.delta_updates} Δ-updates"
    )
    # Churn must ride the Δ path: at most the initial build plus the
    # occasional tombstone compaction, never one rebuild per op.
    assert solver.full_rebuilds <= 1 + churn_ops // 8


@pytest.mark.parametrize("num_flows", [1_000, 10_000])
def test_event_loop(num_flows):
    """Drain ``num_flows`` staggered flows through the completion loop."""
    fabric = large_cluster_fabric()
    sim = FlowSimulator(fabric.topology)
    rng = random.Random(77 + num_flows)
    paths = _random_paths(fabric.topology, rng, num_flows)
    # Stagger arrivals into waves so the live population stays in the
    # hundreds (the Figure 11 regime) while the loop still processes
    # ``num_flows`` completions.  Sizes shrink with the population so the
    # offered load (bytes/sec) stays constant and waves drain instead of
    # piling up.
    wave = 250
    scale = 1e9 * (1_000 / num_flows)
    for i, path in enumerate(paths):
        size = (0.5 + rng.random()) * scale
        when = (i // wave) * 0.05
        sim.schedule(when, lambda s=size, p=path: sim.add_flow(s, p))

    t0 = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - t0

    assert sim.flows_completed == num_flows
    events_per_sec = sim.flows_completed / wall
    counters = sim.perf_counters()
    _RESULTS["event_loop"][str(num_flows)] = {
        "wall_s": wall,
        "events_per_sec": events_per_sec,
        **counters,
    }
    print(
        f"\nevent loop @ {num_flows} flows: {events_per_sec:.1f} events/s "
        f"({wall:.3f}s), {counters['rate_recomputations']} recomputes, "
        f"{counters['solver_rebuilds_avoided']} rebuilds avoided"
    )
    assert counters["solver_rebuilds_avoided"] > 0


#: Flows per causal trace in the traced benchmark variant — the fan-out
#: of one 8-rank 2-channel collective, which is what a trace really
#: amortizes over in a deployment.
_FLOWS_PER_TRACE = 16


def _traced_event_loop(num_flows: int, traced: bool) -> float:
    """Wall clock of the event-loop workload, with/without causal tracing.

    The traced variant is the full always-on configuration: a
    :class:`CausalTracer` observing *every* flow (per-link tenant
    occupancy), with every flow belonging to a trace — grouped
    ``_FLOWS_PER_TRACE`` to a trace like a real collective's rank/channel
    fan-out, each trace closed when its last flow completes.
    """
    from repro.telemetry.causal import CausalTracer

    fabric = large_cluster_fabric()
    sim = FlowSimulator(fabric.topology)
    tracer = CausalTracer(sim, max_closed=8) if traced else None
    rng = random.Random(99)  # same seed either way: identical workloads
    paths = _random_paths(fabric.topology, rng, num_flows)
    wave = 250
    scale = 1e9 * (1_000 / num_flows)
    open_counts: dict = {}

    def launch(size: float, path, i: int) -> None:
        job = f"t{i % 8}"
        if tracer is None:
            sim.add_flow(size, path, job_id=job)
            return
        group = i // _FLOWS_PER_TRACE
        ctx = open_counts.get(group)
        if ctx is None:
            trace_ctx = tracer.mint_context(
                tenant=job, comm_id=f"comm{group}", seq=group,
                kind="bench", nbytes=int(size),
            )
            tracer.begin(trace_ctx, sim.now)
            remaining = min(_FLOWS_PER_TRACE, num_flows - group * _FLOWS_PER_TRACE)
            ctx = open_counts[group] = [trace_ctx.trace_id, remaining]

        def done(f, now, group=group) -> None:
            entry = open_counts[group]
            entry[1] -= 1
            if entry[1] == 0:
                tracer.close(entry[0], now, "completed")

        sim.add_flow(
            size, path, job_id=job, tags={"trace": ctx[0]}, on_complete=done
        )

    for i, path in enumerate(paths):
        size = (0.5 + rng.random()) * scale
        when = (i // wave) * 0.05
        sim.schedule(when, lambda s=size, p=path, i=i: launch(s, p, i))
    import gc

    gc.collect()
    gc.disable()  # GC pauses would land unevenly across the two variants
    try:
        t0 = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - t0
    finally:
        gc.enable()
    assert sim.flows_completed == num_flows
    if tracer is not None:
        assert tracer.traces_closed == len(open_counts)
        assert not tracer.live_traces()
    return wall


def test_telemetry_overhead():
    """Always-on causal tracing must cost < 10% event-loop throughput.

    Runs the identical workload with and without the tracer in adjacent
    off/on pairs and takes the median of the per-pair wall ratios:
    adjacent runs see the same machine speed, so container-level drift
    and throttling cancel out of each ratio — single-run jitter on this
    workload is of the same order as the overhead being measured.
    """
    import statistics

    num_flows = 2_000
    reps = 7
    _traced_event_loop(500, traced=True)  # warm caches on both code paths
    pairs = [
        (
            _traced_event_loop(num_flows, traced=False),
            _traced_event_loop(num_flows, traced=True),
        )
        for _ in range(reps)
    ]
    off = statistics.median(w for w, _ in pairs)
    on = statistics.median(w for _, w in pairs)
    overhead = statistics.median(on_w / off_w for off_w, on_w in pairs) - 1.0
    _RESULTS["telemetry_overhead"][str(num_flows)] = {
        "tracing_off_wall_s": off,
        "tracing_on_wall_s": on,
        "overhead_fraction": overhead,
    }
    print(
        f"\ntelemetry overhead @ {num_flows} flows: off {off:.3f}s, "
        f"on {on:.3f}s ({100 * overhead:+.1f}%)"
    )
    assert overhead < 0.10


def test_fig11_wall_clock(once, benchmark):
    """The Figure 11 fleet run that motivated the incremental engine."""
    from repro.experiments.fig11_simulation import run_fig11

    t0 = time.perf_counter()
    outcome = once(
        benchmark,
        run_fig11,
        placement="random",
        num_jobs=25,
        iterations=150,
        channels=4,
        seed=0,
    )
    wall = time.perf_counter() - t0
    import statistics

    speedups = {
        system: statistics.mean(outcome.speedups(system))
        for system in ("or", "or+ffa")
    }
    _RESULTS["fig11"] = {
        "config": {
            "placement": "random",
            "num_jobs": 25,
            "iterations": 150,
            "channels": 4,
            "seed": 0,
        },
        "before_wall_s": BASELINE_FIG11_WALL_S,
        "after_wall_s": wall,
        "speedup_vs_baseline": BASELINE_FIG11_WALL_S / wall,
        "mean_speedups": speedups,
    }
    print(
        f"\nfig11 wall: {wall:.2f}s (pre-optimization {BASELINE_FIG11_WALL_S}s, "
        f"{BASELINE_FIG11_WALL_S / wall:.2f}x)"
    )
    # Regression tripwire, loose enough for slow CI runners.
    assert wall < BASELINE_FIG11_WALL_S / 1.5
