"""Benchmark: regenerate Figure 6 (single-app algorithm bandwidth).

Reproduces all four panels: AllGather/AllReduce x 4-GPU/8-GPU, four
systems, the full 32KB..512MB size axis.
"""

from repro.experiments.fig06_single_app import as_tables, run_fig06
from repro.experiments.report import format_table


def test_fig06_single_app(benchmark, once, capsys):
    results = once(benchmark, run_fig06, trials=8, iters=1)
    tables = as_tables(results)
    with capsys.disabled():
        print()
        for (setup, kind), table in sorted(
            tables.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
        ):
            print(
                format_table(
                    table[0],
                    table[1:],
                    title=f"Figure 6 — {kind} algorithm bandwidth (GB/s), {setup}",
                )
            )
            print()

    def mean(setup, kind, system, size):
        for r in results:
            if (r.setup, r.kind, r.system, r.size) == (setup, kind, system, size):
                return r.stat.mean
        raise KeyError

    from repro.collectives.types import Collective
    from repro.netsim.units import KB, MB

    # paper-shape assertions on the 8-GPU AllReduce panel
    big = 512 * MB
    ar = Collective.ALL_REDUCE
    assert mean("8gpu", ar, "mccs", big) > mean("8gpu", ar, "nccl_or", big)
    assert mean("8gpu", ar, "nccl_or", big) > mean("8gpu", ar, "nccl", big)
    assert mean("8gpu", ar, "mccs", big) / mean("8gpu", ar, "nccl", big) > 2.0
    # small-message penalty of the service datapath
    small = 512 * KB
    assert mean("4gpu", ar, "mccs_nofa", small) < mean("4gpu", ar, "nccl_or", small)
    # ...which vanishes by 8 MB-512 MB (within a few percent)
    assert mean("4gpu", ar, "mccs_nofa", big) >= 0.95 * mean("4gpu", ar, "nccl_or", big)
