"""Benchmark: regenerate Figure 2 (training-time breakdown)."""

from repro.experiments.fig02_breakdown import measure_vgg_breakdown, run_breakdowns
from repro.experiments.report import format_table


def test_fig02_breakdown(benchmark, once, capsys):
    breakdowns = once(benchmark, run_breakdowns)
    measured = measure_vgg_breakdown(iterations=3)
    with capsys.disabled():
        print()
        print(
            format_table(
                ["Group", "Idle", "Memcpy", "Compute", "Comm"],
                [
                    (b.group, f"{b.idle:.0%}", f"{b.memcpy:.0%}", f"{b.compute:.0%}", f"{b.comm:.0%}")
                    for b in breakdowns
                ],
                title="Figure 2 — training-time breakdown (synthetic groups)",
            )
        )
        print(
            "validated on simulator: vgg19-dp "
            f"idle {measured.idle_fraction:.0%} / "
            f"memcpy {measured.memcpy_fraction:.0%} / "
            f"compute {measured.compute_fraction:.0%} / "
            f"comm {measured.comm_fraction:.0%}"
        )
    assert all(b.comm >= 0.10 for b in breakdowns)
