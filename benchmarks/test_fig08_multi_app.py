"""Benchmark: regenerate Figure 8 (multi-application bus bandwidth)."""

from repro.experiments.fig08_multi_app import SYSTEMS, SYSTEM_LABELS, run_fig08
from repro.experiments.report import format_table


def test_fig08_multi_app(benchmark, once, capsys):
    results = once(benchmark, run_fig08, trials=5)
    by_setup = {}
    for r in results:
        by_setup.setdefault(r.setup, {}).setdefault(r.system, {})[r.app_id] = r.stat
    with capsys.disabled():
        print()
        for setup in sorted(by_setup):
            apps = sorted({a for row in by_setup[setup].values() for a in row})
            rows = []
            for system in SYSTEMS:
                stats = by_setup[setup][system]
                aggregate = sum(s.mean for s in stats.values())
                rows.append(
                    [SYSTEM_LABELS[system]]
                    + [f"{stats[a].mean:.2f}" if a in stats else "-" for a in apps]
                    + [f"{aggregate:.2f}"]
                )
            print(
                format_table(
                    ["System"] + [f"App {a}" for a in apps] + ["Aggregate"],
                    rows,
                    title=f"Figure 8 — 128MB AllReduce bus bandwidth (GB/s), {setup}",
                )
            )
            print()

    def shares(setup, system):
        return {a: s.mean for a, s in by_setup[setup][system].items()}

    for setup in by_setup:
        # MCCS achieves the highest aggregate bus bandwidth in every setup
        # (within 1%: in NIC-bound setups NCCL(OR) ties, minus MCCS's
        # microsecond-scale datapath latency).
        aggregates = {
            system: sum(shares(setup, system).values()) for system in SYSTEMS
        }
        assert aggregates["mccs"] >= max(aggregates.values()) * 0.99
    # setup 1: equal split; setup 3: 2:1:1 (§6.3)
    s1 = shares("setup1", "mccs")
    assert abs(s1["A"] - s1["B"]) / s1["A"] < 0.05
    s3 = shares("setup3", "mccs")
    assert 1.8 <= s3["A"] / s3["B"] <= 2.2
    assert abs(s3["B"] - s3["C"]) / s3["B"] < 0.05
