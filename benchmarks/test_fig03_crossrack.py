"""Benchmark: regenerate Figure 3 (cross-rack ratio vs job size)."""

from repro.experiments.fig03_crossrack import DEFAULT_JOB_SIZES, run_curves
from repro.experiments.report import format_table


def test_fig03_crossrack(benchmark, once, capsys):
    points = once(benchmark, run_curves, DEFAULT_JOB_SIZES, trials=1500, seed=7)
    with capsys.disabled():
        print()
        print(
            format_table(
                ["Job size (GPUs)", "(a) 2 hosts/rack", "(b) 4 hosts/rack"],
                [
                    (p.job_size, f"{p.ratio_2hosts:.2f}x", f"{p.ratio_4hosts:.2f}x")
                    for p in points
                ],
                title="Figure 3 — expected cross-rack ratio of random rings",
            )
        )
    # paper shape: monotone growth toward 2x (panel a) and 4x (panel b)
    ratios_a = [p.ratio_2hosts for p in points]
    ratios_b = [p.ratio_4hosts for p in points]
    assert ratios_a == sorted(ratios_a)
    assert ratios_b == sorted(ratios_b)
    assert 1.8 <= ratios_a[-1] <= 2.0
    assert 3.5 <= ratios_b[-1] <= 4.0
