"""Service-gateway benchmarks: request throughput and fleet wall-clock.

Results are written to ``BENCH_gateway.json`` at the repo root so CI can
archive the trend and ``benchmarks/compare_bench.py`` can guard it:

* ``gateway``: wall-clock requests/sec of the full robustness stack
  (auth -> bucket -> queue -> dispatch -> settle) draining a deep
  backlog of real data-carrying collectives;
* ``fleet``: wall-clock requests/sec of the multi-tenant fleet
  scenario — registry, load generator, chaos schedule, and journal
  included — i.e. the cost of simulating one gateway-fronted fleet.

The gateway sits on every simulated request, so a Python-level slowdown
here multiplies across every fleet experiment.
"""

import json
import time
from pathlib import Path

import pytest

from repro.cluster.specs import testbed_cluster
from repro.core.deployment import MccsDeployment
from repro.experiments.fig_fleet import run_fleet
from repro.service import (
    GatewayClient,
    GatewayPolicy,
    InProcessTransport,
    ServiceGateway,
    TenantQuota,
)

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_gateway.json"
_RESULTS = {"gateway": {}, "fleet": {}}

BACKLOG = 2000


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    yield
    OUT_PATH.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {OUT_PATH}")


def test_gateway_request_throughput():
    deployment = MccsDeployment(testbed_cluster())
    gateway = ServiceGateway(
        deployment, GatewayPolicy(queue_capacity=2 * BACKLOG, max_inflight=64)
    )
    account = gateway.register_tenant(
        "bench",
        TenantQuota(qos_class="high", rate=1e9, burst=float(2 * BACKLOG),
                    max_queued=2 * BACKLOG, max_inflight=64),
    )
    client = GatewayClient(InProcessTransport(gateway), api_key=account.key.raw)
    gpus = [deployment.cluster.hosts[0].gpus[i].global_id for i in (0, 1)]
    comm_call = client.create_comm(gpus)
    deployment.run()
    comm_id = comm_call.response.body["comm_id"]

    started = time.perf_counter()
    calls = [
        client.collective(comm_id, 64 << 10, ttl=30.0) for _ in range(BACKLOG)
    ]
    deployment.run()
    elapsed = time.perf_counter() - started
    assert all(c.ok for c in calls)
    _RESULTS["gateway"]["backlog_drain"] = {
        "requests_per_sec": round(BACKLOG / elapsed),
        "requests": BACKLOG,
        "wall_seconds": round(elapsed, 3),
    }


def test_fleet_scenario_throughput():
    started = time.perf_counter()
    report = run_fleet(num_tenants=96, seed=0, base_rate=42.0,
                       poison=2, storms=4)
    elapsed = time.perf_counter() - started
    issued = sum(row.issued for row in report.classes)
    assert report.responses_accounted
    assert report.journal_diff == []
    _RESULTS["fleet"]["fleet_96"] = {
        "requests_per_sec": round(issued / elapsed),
        "tenants": report.num_tenants,
        "requests": issued,
        "wall_seconds": round(elapsed, 3),
    }
