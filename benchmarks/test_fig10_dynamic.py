"""Benchmark: regenerate Figure 10 (throughput under dynamic policies)."""

from repro.experiments.fig10_dynamic import run_fig10
from repro.experiments.report import format_table


def test_fig10_dynamic(benchmark, once, capsys):
    timeline = once(benchmark, run_fig10)
    normalized = timeline.normalized()
    apps = sorted({p.app_id for p in timeline.throughput})
    rows = []
    for phase, start, stop in timeline.phases:
        rows.append(
            [f"{phase} [{start:.0f}-{stop:.0f}s]"]
            + [
                f"{normalized[(a, phase)]:.2f}" if (a, phase) in normalized else "-"
                for a in apps
            ]
        )
    with capsys.disabled():
        print()
        print(
            format_table(
                ["Phase"] + apps,
                rows,
                title="Figure 10 — training throughput normalized to FFA",
            )
        )
    # the paper's timeline story:
    assert normalized[("A", "A alone")] > normalized[("A", "A+B (FFA)")]
    assert normalized[("A", "A+B (FFA)")] >= normalized[("A", "A+B+C (FFA)")] * 0.98
    assert normalized[("A", "PFA(A)")] > normalized[("A", "A+B+C (FFA)")]  # +13%
    assert normalized[("B", "PFA+TS(B)")] > normalized[("B", "PFA(A)")]  # +18%
    c_ts = normalized.get(("C", "PFA+TS(B)"))
    assert c_ts is None or c_ts < normalized[("C", "PFA(A)")]
