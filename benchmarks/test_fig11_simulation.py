"""Benchmark: regenerate Figure 11 (768-GPU simulation, speedup CDFs).

Scaled for benchmark runtime: 25 jobs, 4 channels, one repetition per
placement.  Paper scale (50 jobs, 8 channels, 5 repetitions) runs via
``python -m repro.experiments.fig11_simulation``.
"""

import statistics

from repro.experiments.fig11_simulation import run_fig11
from repro.experiments.report import cdf_points, format_table


def _summarize(outcome):
    rows = []
    stats = {}
    for solution in ("or", "or+ffa"):
        speedups = outcome.speedups(solution)
        cdf = cdf_points(speedups)
        stats[solution] = statistics.mean(speedups)
        rows.append(
            [
                solution.upper(),
                f"{statistics.mean(speedups):.2f}x",
                f"{statistics.median(speedups):.2f}x",
                f"{cdf[int(len(cdf) * 0.9) - 1][0]:.2f}x",
            ]
        )
    return rows, stats


def test_fig11_random_placement(benchmark, once, capsys):
    outcome = once(
        benchmark,
        run_fig11,
        placement="random",
        num_jobs=25,
        iterations=150,
        channels=4,
        seed=0,
    )
    rows, stats = _summarize(outcome)
    with capsys.disabled():
        print()
        print(
            format_table(
                ["Solution", "Mean", "Median", "P90"],
                rows,
                title="Figure 11a — speedup vs random ring, random placement",
            )
        )
    # paper: OR 2.63x, OR+FFA 3.27x — FFA adds a lot under random placement
    assert stats["or"] > 1.1
    assert stats["or+ffa"] > stats["or"] * 1.15


def test_fig11_compact_placement(benchmark, once, capsys):
    outcome = once(
        benchmark,
        run_fig11,
        placement="compact",
        num_jobs=25,
        iterations=150,
        channels=4,
        seed=0,
    )
    rows, stats = _summarize(outcome)
    with capsys.disabled():
        print()
        print(
            format_table(
                ["Solution", "Mean", "Median", "P90"],
                rows,
                title="Figure 11b — speedup vs random ring, compact placement",
            )
        )
    # paper: OR 3.28x, OR+FFA 3.43x — FFA adds little under compact placement
    assert stats["or"] > 2.0
    assert abs(stats["or+ffa"] - stats["or"]) / stats["or"] < 0.15
