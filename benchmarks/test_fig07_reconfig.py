"""Benchmark: regenerate Figure 7 (dynamic ring reconfiguration)."""

from repro.experiments.fig07_reconfig import run_fig07
from repro.experiments.report import format_table


def test_fig07_reconfig(benchmark, once, capsys):
    timeline = once(benchmark, run_fig07)
    rows = []
    for t in range(20):
        try:
            rows.append((f"{t}-{t+1}s", f"{timeline.bandwidth_in(t, t + 1):.2f}"))
        except ValueError:
            rows.append((f"{t}-{t+1}s", "-"))
    with capsys.disabled():
        print()
        print(
            format_table(
                ["Window", "Algo BW (GB/s)"],
                rows,
                title="Figure 7b — AllReduce bandwidth timeline",
            )
        )
        print(
            f"bg flow at t={timeline.bg_start}s; reconfig issued "
            f"t={timeline.reconfig_issued}s, applied t={timeline.reconfig_done:.4f}s"
        )
    before = timeline.bandwidth_in(2.0, 7.0)
    during = timeline.bandwidth_in(8.5, 11.5)
    after = timeline.bandwidth_in(13.0, 19.0)
    # paper: 5.9 -> 1.7 GB/s and back; our fabric peaks at ~7.1 GB/s
    assert during < 0.35 * before
    assert abs(after - before) / before < 0.05
    assert timeline.ring_after == tuple(reversed(timeline.ring_before))
