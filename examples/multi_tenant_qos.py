#!/usr/bin/env python
"""Multi-tenant QoS: FFA fairness, PFA priority, TS time windows.

Recreates the §6.4 scenario at small scale: three tenants share the
testbed (setup 3 of Figure 5b) — A trains VGG-19 on 4 GPUs, B and C
fine-tune GPT models on 2 GPUs each.  The provider walks through its QoS
toolbox and prints each tenant's job completion time:

* ECMP    — no flow control (the legacy datapath);
* FFA     — fair flow assignment;
* PFA     — a route dedicated to A;
* PFA+TS  — C's traffic confined to B's idle windows.

Run:  python examples/multi_tenant_qos.py
"""

from repro import CentralManager, MccsDeployment, MccsIssuer, TrafficGenerator
from repro import testbed_cluster
from repro.experiments.fig09_qos import profile_ts_schedule
from repro.experiments.setups import qos_setup
from repro.workloads import gpt_tp_trace, vgg19_dp_trace

ITERATIONS = {"A": 6, "B": 5, "C": 5}
PENALTY = 0.30  # burst-interference model (see DESIGN.md)

def run(policy: str, ts_schedule=None) -> dict:
    cluster = testbed_cluster(interference_penalty=PENALTY)
    deployment = MccsDeployment(cluster)
    manager = CentralManager(deployment)
    generators = {}
    for placement in qos_setup():
        state = manager.admit(placement.app_id, placement.resolve(cluster))
        client = deployment.connect(placement.app_id)
        comm = client.adopt_communicator(state.comm_id)
        trace = (
            vgg19_dp_trace(ITERATIONS["A"])
            if placement.app_id == "A"
            else gpt_tp_trace(ITERATIONS[placement.app_id])
        )
        stream = client.create_stream(placement.resolve(cluster)[0])
        generators[placement.app_id] = TrafficGenerator(
            cluster.sim, MccsIssuer(client, comm), trace, stream,
            name=placement.app_id,
        )
    if policy == "pfa" or policy == "pfa+ts":
        manager.apply_flow_policy("pfa", high_priority_apps=["A"], reserved_routes={0})
    else:
        manager.apply_flow_policy(policy)
    deployment.run()
    if policy == "pfa+ts":
        deployment.set_traffic_schedule("C", ts_schedule)
    for generator in generators.values():
        generator.start(at=cluster.sim.now)
    deployment.run()
    return {app: gen.stats.jct() for app, gen in generators.items()}

def main() -> None:
    schedule = profile_ts_schedule(0, iterations=ITERATIONS, penalty=PENALTY)
    print(f"{'policy':>8}  {'VGG (A)':>9}  {'GPT (B)':>9}  {'GPT (C)':>9}")
    for policy in ("ecmp", "ffa", "pfa", "pfa+ts"):
        jct = run(policy, ts_schedule=schedule if policy == "pfa+ts" else None)
        print(f"{policy:>8}  {jct['A']:>8.2f}s  {jct['B']:>8.2f}s  {jct['C']:>8.2f}s")
    print("\nExpected shape: ECMP slowest for everyone; PFA speeds up A;")
    print("TS speeds up B without touching A; C pays for B's priority.")

if __name__ == "__main__":
    main()
