#!/usr/bin/env python
"""Large-scale simulation: 768 GPUs, Poisson job arrivals, ring policies.

A scaled-down run of the §6.5 experiment (Figure 11): ResNet-50 jobs of
16/32 GPUs arrive on a 24-rack, 768-GPU cluster and all-reduce their
gradients continuously.  Compares random rings against provider-optimized
rings (OR) and OR + fair flow assignment (MCCS), under both random and
compact placement.

Run:  python examples/large_scale_simulation.py
(Full paper scale: see benchmarks/test_fig11_simulation.py and
repro.experiments.fig11_simulation.main.)
"""

import statistics

from repro.experiments.fig11_simulation import run_fig11

def main() -> None:
    for placement in ("compact", "random"):
        outcome = run_fig11(
            placement=placement,
            num_jobs=15,
            iterations=120,
            channels=4,
            seed=0,
        )
        print(f"placement = {placement} ({len(outcome.jobs)} jobs)")
        for solution in ("or", "or+ffa"):
            speedups = outcome.speedups(solution)
            print(
                f"  {solution:>7}: mean {statistics.mean(speedups):.2f}x, "
                f"median {statistics.median(speedups):.2f}x, "
                f"max {max(speedups):.2f}x vs random rings"
            )
        print()

if __name__ == "__main__":
    main()
