#!/usr/bin/env python
"""Head-to-head: a tenant-side NCCL ring vs the managed MCCS service.

Sweeps AllReduce sizes on the 8-GPU testbed setup and prints algorithm
bandwidth for:

* NCCL with the rank order a topology-blind tenant would use;
* NCCL(OR) — NCCL fed the optimal ring by an oracle;
* MCCS — locality ring + fair flow assignment, no tenant involvement.

This is a miniature of Figure 6; the full sweep lives in
benchmarks/test_fig06_single_app.py.

Run:  python examples/nccl_vs_mccs.py
"""

from repro import CentralManager, MccsDeployment, NcclCommunicator, testbed_cluster
from repro.core.policies import locality_ring_order
from repro.experiments.setups import naive_tenant_order, single_app_gpus
from repro.netsim.units import KB, MB, format_size

SIZES = [512 * KB, 8 * MB, 128 * MB, 512 * MB]

def measure_nccl(optimal: bool, size: int, seed: int) -> float:
    cluster = testbed_cluster()
    gpus = single_app_gpus(cluster, "8gpu")
    order = (
        locality_ring_order(cluster, gpus)
        if optimal
        else naive_tenant_order(cluster, gpus)
    )
    comm = NcclCommunicator(cluster, gpus, ring_order=order, ecmp_seed=seed)
    done = []
    comm.all_reduce(size, on_complete=lambda op, now: done.append(op.duration()))
    cluster.sim.run()
    return size / done[0] / 1e9

def measure_mccs(size: int, seed: int) -> float:
    cluster = testbed_cluster()
    deployment = MccsDeployment(cluster, ecmp_seed=seed)
    manager = CentralManager(deployment)
    gpus = single_app_gpus(cluster, "8gpu")
    state = manager.admit("tenant", gpus)
    manager.apply_flow_policy("ffa")
    deployment.run()
    client = deployment.connect("tenant")
    comm = client.adopt_communicator(state.comm_id)
    done = []
    client.all_reduce(comm, size, on_complete=lambda inst, now: done.append(inst.duration()))
    deployment.run()
    return size / done[0] / 1e9

def main() -> None:
    trials = 5
    print(f"{'size':>7}  {'NCCL':>7}  {'NCCL(OR)':>9}  {'MCCS':>7}   (GB/s)")
    for size in SIZES:
        nccl = sum(measure_nccl(False, size, s) for s in range(trials)) / trials
        nccl_or = sum(measure_nccl(True, size, s) for s in range(trials)) / trials
        mccs = sum(measure_mccs(size, s) for s in range(trials)) / trials
        print(
            f"{format_size(size):>7}  {nccl:>7.2f}  {nccl_or:>9.2f}  {mccs:>7.2f}"
            f"   MCCS/NCCL = {mccs / nccl:.2f}x"
        )

if __name__ == "__main__":
    main()
