#!/usr/bin/env python
"""Dynamic reconfiguration: re-ring a live job around a background flow.

The Figure 7 showcase: an 8-GPU AllReduce job runs clockwise around a
4-switch ring fabric.  A 75 Gbps background flow (outside MCCS's control)
appears on one clockwise link; a switch agent reports it; the centralized
manager reverses the job's ring *while it keeps running* — the tenant
only sees its bandwidth recover.

Run:  python examples/dynamic_reconfiguration.py
"""

from repro import BackgroundTrafficManager, CentralManager, MccsDeployment
from repro import ring_cluster
from repro.netsim.units import MB

def main() -> None:
    cluster = ring_cluster()
    deployment = MccsDeployment(cluster)
    background = BackgroundTrafficManager(cluster.sim)
    manager = CentralManager(deployment, background=background)

    gpus = [g for host in cluster.hosts for g in host.gpus]
    state = manager.admit("tenant", gpus)
    client = deployment.connect("tenant")
    comm = client.adopt_communicator(state.comm_id)

    samples = []

    def loop(instance=None, now=None):
        if instance is not None:
            samples.append((now, 256 * MB / instance.duration() / 1e9))
        if cluster.sim.now < 15.0:
            client.all_reduce(comm, 256 * MB, on_complete=loop)

    loop()

    # t=5s: a background flow eats 75 of the 100 Gbps on link sw1->sw2.
    cluster.sim.schedule(5.0, lambda: background.occupy("sw1->sw2", 75.0))

    # t=10s: the manager reacts to the switch agent's report.
    def react():
        session = manager.adapt_to_background(state.comm_id)
        print(f"t=10.0s  manager reconfigures: ring -> reversed "
              f"(session max_seq={session is not None})")

    cluster.sim.schedule(10.0, react)
    deployment.run(until=15.5)

    print("time     algbw")
    for t in range(15):
        window = [bw for ts, bw in samples if t <= ts < t + 1]
        if window:
            bar = "#" * int(sum(window) / len(window) * 4)
            print(f"{t:>3}-{t+1:<3}s {sum(window)/len(window):5.2f} GB/s {bar}")
    final_ring = deployment.communicator(state.comm_id).strategy.ring.order
    print(f"\nfinal ring order: {final_ring}")

if __name__ == "__main__":
    main()
