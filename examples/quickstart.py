#!/usr/bin/env python
"""Quickstart: run a managed AllReduce on the simulated testbed.

Walks through the whole MCCS story in one page:

1. build the paper's 4-host testbed (Figure 5a);
2. start the MCCS deployment (one service per host) and the provider's
   centralized manager;
3. as the *tenant*: connect the shim, allocate GPU buffers through the
   service, create a communicator, and issue an AllReduce tied to a
   compute stream;
4. as the *provider*: observe that the ring was locality-optimized and
   flow-assigned without the tenant learning anything about the fabric.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CentralManager, MccsDeployment, testbed_cluster
from repro.netsim.units import MB, to_gBps

def main() -> None:
    # --- provider side ---------------------------------------------------
    cluster = testbed_cluster()
    deployment = MccsDeployment(cluster)
    manager = CentralManager(deployment)
    manager.manage_admissions()  # locality rings for every new tenant

    # --- tenant side -----------------------------------------------------
    client = deployment.connect("tenantA")
    gpus = [cluster.hosts[h].gpus[0] for h in range(4)]  # one GPU per host
    comm = client.create_communicator(gpus)

    # Allocate device buffers through the service (cudaMalloc redirect).
    nbytes = 4 * MB
    sends = [client.alloc(gpu, nbytes) for gpu in gpus]
    recvs = [client.alloc(gpu, nbytes) for gpu in gpus]
    for rank, buf in enumerate(sends):
        buf.view(np.float32)[:] = rank + 1.0

    # Produce data on a compute stream, then all-reduce in stream order.
    stream = client.create_stream(gpus[0], "tenantA.compute")
    stream.compute(2e-3, name="forward")
    op = client.all_reduce(comm, nbytes, send=sends, recv=recvs, stream=stream)

    # The provider assigns routes across all tenants (only one here).
    manager.apply_flow_policy("ffa")

    deployment.run()

    expected = sum(range(1, len(gpus) + 1))
    assert all(np.allclose(r.view(np.float32), expected) for r in recvs)
    print(f"AllReduce of {nbytes // MB} MiB over {len(gpus)} GPUs")
    print(f"  completed in {op.duration() * 1e3:.2f} ms "
          f"({to_gBps(nbytes / op.duration()):.2f} GB/s algorithm bandwidth)")
    print(f"  results verified: every rank holds {expected:.0f}")

    # Peek at the provider's management view (hidden from the tenant).
    info = deployment.describe()[0]
    print(f"  provider-chosen ring: {info['ring']} "
          f"(channels={info['channels']}, routes={info['routes']})")

    # Every layer reported into the deployment's telemetry hub along the
    # way: counters, span-traced collectives, link-utilization samples.
    print()
    print("telemetry summary")
    for line in deployment.telemetry().summary_lines():
        print(f"  {line}")

if __name__ == "__main__":
    main()
