#!/usr/bin/env python
"""Provider-proprietary collective algorithms (the §4.2 extension point).

"MCCS enables the incorporation of various collective strategies
optimized for specific topologies ... or even proprietary strategies
developed in-house by the provider" — without changing tenant code.

This example registers a toy proprietary algorithm — a two-phase
hierarchical AllReduce (reduce to one leader per host over NVLink, ring
the leaders across the fabric, fan back out) — assigns it to a tenant's
communicator at admission time, and later reconfigures the live
communicator between algorithm families.  The tenant's code never
changes and never learns which algorithm ran.

Run:  python examples/custom_algorithm.py
"""

from repro import CentralManager, MccsDeployment, RingSchedule, testbed_cluster
from repro.collectives.types import Collective, ReduceOp, reduce_many
from repro.core.algorithms import (
    CollectiveAlgorithm,
    RankTransfer,
    RingAlgorithm,
    register_algorithm,
)
from repro.core.strategy import CollectiveStrategy
from repro.netsim.units import MB

class HierarchicalAllReduce(CollectiveAlgorithm):
    """Reduce intra-host first, ring host leaders, broadcast back."""

    name = "hierarchical"

    def _leader(self, ctx, rank):
        # the lowest rank on each host leads; hosts are pairs (0,1), (2,3)...
        return rank - (rank % 2)

    def rank_transfers(self, ctx):
        if ctx.kind is not Collective.ALL_REDUCE:
            return RingAlgorithm().rank_transfers(ctx)
        transfers = []
        leader = self._leader(ctx, ctx.rank)
        leaders = sorted({self._leader(ctx, r) for r in range(ctx.world)})
        if ctx.rank != leader:
            # phase 1 up + phase 3 down ride the intra-host channel
            transfers.append(RankTransfer(leader, ctx.out_bytes, 0))
        else:
            idx = leaders.index(leader)
            nxt = leaders[(idx + 1) % len(leaders)]
            per_edge = 2 * (len(leaders) - 1) / len(leaders) * ctx.out_bytes
            for channel in range(ctx.channels):
                transfers.append(RankTransfer(nxt, per_edge / ctx.channels, channel))
            for r in range(ctx.world):
                if r != leader and self._leader(ctx, r) == leader:
                    transfers.append(RankTransfer(r, ctx.out_bytes, 0))
        return transfers

    def steps(self, kind, world):
        return 2 + world // 2  # up, leader ring, down

    def run_data(self, ctx, inputs, op):
        total = reduce_many(op, list(inputs))
        return [total.copy() for _ in range(ctx.world)]

def main() -> None:
    register_algorithm(HierarchicalAllReduce(), replace=True)

    cluster = testbed_cluster()
    deployment = MccsDeployment(cluster)
    manager = CentralManager(deployment)

    gpus = [g for h in range(4) for g in cluster.hosts[h].gpus]
    strategy = CollectiveStrategy(
        ring=RingSchedule(tuple(range(8))), channels=2, algorithm="hierarchical"
    )
    state = deployment.create_communicator("tenant", gpus, strategy=strategy)
    client = deployment.connect("tenant")
    comm = client.adopt_communicator(state.comm_id)

    def measure(label):
        done = []
        client.all_reduce(comm, 128 * MB, on_complete=lambda i, t: done.append(i.duration()))
        deployment.run()
        print(f"{label:>14}: 128MB AllReduce in {done[0] * 1e3:6.2f} ms "
              f"({128 * MB / done[0] / 1e9:5.2f} GB/s)")

    measure("hierarchical")
    # The provider reconfigures the live communicator to plain rings...
    deployment.reconfigure(state.comm_id, algorithm="ring")
    measure("ring")
    # ...and to double binary trees.
    deployment.reconfigure(state.comm_id, algorithm="tree")
    measure("tree")
    print(f"\nstrategy history: versions {sorted(state.strategy_history)} — "
          "the tenant never noticed.")

if __name__ == "__main__":
    main()
