"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro import (
    CentralManager,
    MccsDeployment,
    NcclCommunicator,
    testbed_cluster,
)
from repro.collectives.types import ReduceOp
from repro.netsim.units import MB


def test_mccs_and_nccl_agree_on_uncongested_timing():
    """With identical rings and no contention, MCCS differs from NCCL only
    by the fixed datapath latency — negligible at 512 MB."""
    # NCCL
    cl1 = testbed_cluster()
    gpus1 = [cl1.hosts[h].gpus[0] for h in range(4)]
    nccl = NcclCommunicator(cl1, gpus1)
    op1 = nccl.all_reduce(512 * MB)
    cl1.sim.run()
    # MCCS
    cl2 = testbed_cluster()
    dep = MccsDeployment(cl2)
    mgr = CentralManager(dep)
    gpus2 = [cl2.hosts[h].gpus[0] for h in range(4)]
    state = mgr.admit("A", gpus2)
    client = dep.connect("A")
    comm = client.adopt_communicator(state.comm_id)
    op2 = client.all_reduce(comm, 512 * MB)
    dep.run()
    assert op2.duration() == pytest.approx(op1.duration(), rel=0.01)


def test_data_correct_across_reconfiguration():
    """Collectives keep producing correct results while the ring changes
    underneath the application."""
    cl = testbed_cluster()
    dep = MccsDeployment(cl)
    mgr = CentralManager(dep)
    gpus = [cl.hosts[h].gpus[0] for h in range(4)]
    state = mgr.admit("A", gpus)
    client = dep.connect("A")
    comm = client.adopt_communicator(state.comm_id)
    sends = [client.alloc(g, 256) for g in gpus]
    recvs = [client.alloc(g, 256) for g in gpus]
    results = []

    def do_round(value):
        for buf in sends:
            buf.view(np.float32)[:] = value
        op = client.all_reduce(comm, 256, send=sends, recv=recvs)
        results.append((op, value * 4))

    do_round(1.0)
    dep.reconfigure(comm.comm_id, ring=[3, 2, 1, 0], delays=[0.002, 0.0, 0.001, 0.0])
    do_round(2.0)
    dep.run()
    do_round(3.0)
    dep.run()
    for op, expected in results:
        assert op.completed
    # final round ran under the new ring and still sums correctly
    assert all(np.allclose(r.view(np.float32), 12.0) for r in recvs)
    assert state.inconsistent_collectives == 0
    assert state.strategy.ring.order == (3, 2, 1, 0)


def test_multi_tenant_isolation_and_fairness_end_to_end():
    """Two tenants, FFA routes, equal bandwidth, no buffer crossover."""
    cl = testbed_cluster()
    dep = MccsDeployment(cl)
    mgr = CentralManager(dep)
    a_state = mgr.admit("A", [cl.hosts[0].gpus[0], cl.hosts[2].gpus[0]])
    b_state = mgr.admit("B", [cl.hosts[1].gpus[0], cl.hosts[3].gpus[0]])
    mgr.apply_flow_policy("ffa")
    dep.run()
    clients = {app: dep.connect(app) for app in ("A", "B")}
    comms = {
        "A": clients["A"].adopt_communicator(a_state.comm_id),
        "B": clients["B"].adopt_communicator(b_state.comm_id),
    }
    ops = {
        app: clients[app].all_reduce(comms[app], 128 * MB)
        for app in ("A", "B")
    }
    dep.run()
    # Disjoint spine routes: identical completion times at full NIC rate.
    assert ops["A"].duration() == pytest.approx(ops["B"].duration(), rel=0.01)
    # Tenant B cannot touch tenant A's buffers.
    buf = clients["A"].alloc(cl.hosts[0].gpus[0], 64)
    from repro.netsim.errors import InvalidBufferError

    with pytest.raises(InvalidBufferError):
        dep.service_of(0).memory.view("B", buf.ref())


def test_concurrent_communicators_one_tenant():
    """One app with two communicators over different GPU subsets."""
    cl = testbed_cluster()
    dep = MccsDeployment(cl)
    client = dep.connect("A")
    c1 = client.create_communicator([cl.hosts[0].gpus[0], cl.hosts[1].gpus[0]])
    c2 = client.create_communicator([cl.hosts[2].gpus[0], cl.hosts[3].gpus[0]])
    op1 = client.all_reduce(c1, 32 * MB)
    op2 = client.all_reduce(c2, 32 * MB)
    dep.run()
    # Intra-rack rings, no shared links: identical durations.
    assert op1.duration() == pytest.approx(op2.duration(), rel=0.01)


def test_reduce_op_matrix_through_service():
    cl = testbed_cluster()
    dep = MccsDeployment(cl)
    client = dep.connect("A")
    gpus = [cl.hosts[h].gpus[0] for h in range(4)]
    comm = client.create_communicator(gpus)
    sends = [client.alloc(g, 64) for g in gpus]
    recvs = [client.alloc(g, 64) for g in gpus]
    expectations = {
        ReduceOp.SUM: 1.0 + 2.0 + 3.0 + 4.0,
        ReduceOp.PROD: 24.0,
        ReduceOp.MAX: 4.0,
        ReduceOp.MIN: 1.0,
    }
    for op_kind, expected in expectations.items():
        for i, buf in enumerate(sends):
            buf.view(np.float32)[:] = float(i + 1)
        client.all_reduce(comm, 64, send=sends, recv=recvs, op=op_kind)
        dep.run()
        assert all(np.allclose(r.view(np.float32), expected) for r in recvs), op_kind


def test_many_small_collectives_drain():
    """Stress: hundreds of serialized ops complete and stay ordered."""
    cl = testbed_cluster()
    dep = MccsDeployment(cl)
    client = dep.connect("A")
    gpus = [cl.hosts[h].gpus[0] for h in range(4)]
    comm = client.create_communicator(gpus)
    ops = [client.all_reduce(comm, 256 * 1024) for _ in range(200)]
    dep.run()
    assert all(op.completed for op in ops)
    ends = [op.end_time for op in ops]
    assert ends == sorted(ends)
    trace = dep.trace(comm.comm_id)
    assert len(trace.records) == 200


def test_public_api_surface():
    import repro

    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_partial_adoption_coexists_with_unmanaged_tenants():
    """§5: "Even if only a subset of tenants use MCCS, MCCS can still
    collaboratively schedule the collectives of that subset, while
    treating other flows as background flows."  An unmanaged NCCL tenant
    and a managed MCCS tenant share the fabric; both make progress, and
    the managed tenant still benefits from its own flow assignment."""
    from repro.core.controller import CentralManager

    def run(managed_uses_ffa: bool, seed: int) -> float:
        cl = testbed_cluster()
        # unmanaged tenant: plain NCCL on one GPU row
        nccl_gpus = [cl.hosts[h].gpus[1] for h in range(4)]
        nccl = NcclCommunicator(cl, nccl_gpus, ecmp_seed=seed, job_id="legacy")

        def nccl_loop(op=None, now=None):
            if cl.sim.now < 0.5:
                nccl.all_reduce(64 * MB, on_complete=nccl_loop)

        nccl_loop()
        # managed tenant on the other row, 2 GPUs per rack
        dep = MccsDeployment(cl, ecmp_seed=seed)
        mgr = CentralManager(dep)
        # routing-sensitive assertion: pin the ECMP namespace so the
        # draws don't depend on the process-global comm counter (i.e. on
        # how many communicators earlier tests created)
        state = mgr.admit(
            "managed",
            [cl.hosts[0].gpus[0], cl.hosts[2].gpus[0]],
            datapath_tag="partial-adoption",
        )
        if managed_uses_ffa:
            mgr.apply_flow_policy("ffa")
        client = dep.connect("managed")
        comm = client.adopt_communicator(state.comm_id)
        durations = []

        def managed_loop(inst=None, now=None):
            if inst is not None:
                durations.append(inst.duration())
            if cl.sim.now < 0.5:
                client.all_reduce(comm, 64 * MB, on_complete=managed_loop)

        managed_loop()
        cl.sim.run(until=1.5)
        assert durations, "managed tenant made no progress"
        return sum(durations) / len(durations)

    # Averaged over seeds, route pinning is never worse than ECMP for the
    # managed tenant even with legacy traffic in the fabric.
    seeds = range(6)
    with_ffa = sum(run(True, s) for s in seeds) / 6
    without = sum(run(False, s) for s in seeds) / 6
    assert with_ffa <= without * 1.01
