"""Shared fixtures for the test suite."""

import pytest

from repro.cluster.specs import ring_cluster, testbed_cluster
from repro.core.controller import CentralManager
from repro.core.deployment import MccsDeployment


@pytest.fixture
def cluster():
    """A fresh Figure 5a testbed cluster."""
    return testbed_cluster()


@pytest.fixture
def deployment(cluster):
    """An MCCS deployment over the testbed."""
    return MccsDeployment(cluster)


@pytest.fixture
def manager(deployment):
    """A centralized manager attached to the deployment."""
    return CentralManager(deployment)


@pytest.fixture
def four_gpus(cluster):
    """One GPU per host (the 4-GPU single-app setup)."""
    return [cluster.hosts[h].gpus[0] for h in range(4)]


@pytest.fixture
def eight_gpus(cluster):
    """All GPUs (the 8-GPU single-app setup)."""
    return [g for h in range(4) for g in cluster.hosts[h].gpus]
