"""Unit coverage for :mod:`repro.faults` and the engine's fault surface.

Plan construction/validation, seeded determinism, injector semantics
(link/NIC/host), and the engine-level guarantees fault storms lean on:
``cancel_flow`` idempotence and typed flow failure.
"""

import pytest

from repro.cluster.specs import testbed_cluster
from repro.errors import (
    HostCrashedError,
    LinkDownError,
    NicFailedError,
    UnknownLinkError,
)
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.netsim.engine import FlowSimulator
from repro.netsim.topology import Topology


# ----------------------------------------------------------------------
# plans
# ----------------------------------------------------------------------
def test_fault_event_validation():
    with pytest.raises(ValueError, match="non-negative"):
        FaultEvent(-1.0, FaultKind.LINK_DOWN, link_id="a->b")
    with pytest.raises(ValueError, match="link_id"):
        FaultEvent(0.0, FaultKind.LINK_DOWN)
    with pytest.raises(ValueError, match="host_id and nic_index"):
        FaultEvent(0.0, FaultKind.NIC_FAIL, host_id=1)
    with pytest.raises(ValueError, match="host_id"):
        FaultEvent(0.0, FaultKind.HOST_CRASH)
    with pytest.raises(ValueError, match="factor"):
        FaultEvent(0.0, FaultKind.LINK_DEGRADE, link_id="a->b", factor=1.5)


def test_plan_builders_sort_and_pair_recoveries():
    plan = (
        FaultPlan()
        .host_crash(0.5, 2)
        .link_down(0.1, "a->b", duration=0.3)
        .nic_fail(0.2, 1, 0, duration=0.1)
        .link_degrade(0.15, "c->d", 0.25)
    )
    kinds = [e.kind for e in plan.events]
    assert kinds == [
        FaultKind.LINK_DOWN,
        FaultKind.LINK_DEGRADE,
        FaultKind.NIC_FAIL,
        FaultKind.NIC_RECOVER,
        FaultKind.LINK_UP,
        FaultKind.HOST_CRASH,
    ]
    times = [e.time for e in plan.events]
    assert times == sorted(times)
    assert len(plan) == 6
    assert all(isinstance(line, str) for line in plan.describe())


def test_random_plan_is_deterministic_and_bounded():
    cluster = testbed_cluster()
    a = FaultPlan.random(cluster, seed=5, num_faults=6, horizon=1.0)
    b = FaultPlan.random(cluster, seed=5, num_faults=6, horizon=1.0)
    assert a.events == b.events
    assert a.events != FaultPlan.random(cluster, seed=6, num_faults=6).events
    for event in a.events:
        assert 0.0 <= event.time
    # Host crashes never repeat a host within one plan.
    crashed = [e.host_id for e in a.events if e.kind is FaultKind.HOST_CRASH]
    assert len(crashed) == len(set(crashed))


def test_random_plan_respects_candidates():
    cluster = testbed_cluster()
    plan = FaultPlan.random(
        cluster,
        seed=3,
        num_faults=12,
        kinds=(FaultKind.NIC_FAIL, FaultKind.HOST_CRASH),
        host_candidates=[2, 3],
    )
    assert len(plan) > 0
    for event in plan.events:
        assert event.host_id in (2, 3)


# ----------------------------------------------------------------------
# injector
# ----------------------------------------------------------------------
def test_fail_link_kills_crossing_flows_with_typed_error():
    cluster = testbed_cluster()
    sim = cluster.sim
    failures = []
    flow = sim.add_flow(
        1e9,
        ["h0.nic0->leaf0", "leaf0->spine0", "spine0->leaf1", "leaf1->h2.nic0"],
        on_fail=lambda f, t, err: failures.append(err),
    )
    injector = FaultInjector(cluster)
    injector.fail_link("leaf0->spine0")
    assert flow.failed and not flow.completed
    assert isinstance(failures[0], LinkDownError)
    with pytest.raises(LinkDownError):
        sim.add_flow(1.0, ["leaf0->spine0"])
    injector.restore_link("leaf0->spine0")
    assert sim.add_flow(1.0, ["leaf0->spine0"]) is not None


def test_degrade_and_restore_capacity_roundtrip():
    cluster = testbed_cluster()
    injector = FaultInjector(cluster)
    original = cluster.sim.link_capacity("leaf0->spine0")
    injector.degrade_link("leaf0->spine0", 0.25)
    assert cluster.sim.link_capacity("leaf0->spine0") == pytest.approx(original / 4)
    # Degrading twice still restores to the *original*, not the degraded cap.
    injector.degrade_link("leaf0->spine0", 0.5)
    injector.restore_capacity("leaf0->spine0")
    assert cluster.sim.link_capacity("leaf0->spine0") == pytest.approx(original)
    injector.restore_capacity("leaf0->spine0")  # idempotent


def test_nic_fail_and_recover():
    cluster = testbed_cluster()
    injector = FaultInjector(cluster)
    injector.fail_nic(1, 0)
    host = cluster.hosts[1]
    assert not host.nics[0].alive
    assert host.alive_nics() == [host.nics[1]]
    for link_id in cluster.links_of_nic(1, 0):
        assert not cluster.sim.link_is_up(link_id)
    # Channel->NIC rotation skips the dead NIC.
    gpu = host.gpus[0]
    assert cluster.nic_of_channel(gpu, 0) == host.nics[1].node_id
    injector.fail_nic(1, 0)  # idempotent
    injector.recover_nic(1, 0)
    assert host.nics[0].alive
    for link_id in cluster.links_of_nic(1, 0):
        assert cluster.sim.link_is_up(link_id)


def test_all_nics_dead_raises_typed_error():
    cluster = testbed_cluster()
    injector = FaultInjector(cluster)
    injector.fail_nic(1, 0)
    injector.fail_nic(1, 1)
    with pytest.raises(NicFailedError):
        cluster.nic_of_channel(cluster.hosts[1].gpus[0], 0)


def test_crash_host_is_idempotent_and_total():
    cluster = testbed_cluster()
    injector = FaultInjector(cluster)
    injector.crash_host(2)
    host = cluster.hosts[2]
    assert not host.alive
    assert all(not nic.alive for nic in host.nics)
    for link_id in cluster.links_of_host(2):
        assert not cluster.sim.link_is_up(link_id)
    with pytest.raises(HostCrashedError):
        cluster.nic_of_channel(cluster.hosts[2].gpus[0], 0)
    injector.crash_host(2)  # idempotent
    # A crashed host's NICs do not come back.
    injector.recover_nic(2, 0)
    assert not host.nics[0].alive


def test_injector_schedule_applies_in_order_and_counts():
    cluster = testbed_cluster()
    from repro.telemetry.hub import TelemetryHub

    hub = TelemetryHub()
    injector = FaultInjector(cluster, telemetry=hub)
    plan = FaultPlan().link_down(0.1, "leaf0->spine0", duration=0.2).host_crash(0.4, 3)
    injector.schedule(plan)
    cluster.sim.run()
    assert [e.kind for _, e in injector.injected] == [
        FaultKind.LINK_DOWN,
        FaultKind.LINK_UP,
        FaultKind.HOST_CRASH,
    ]
    counter = hub.metrics.counter("mccs_faults_injected_total")
    assert counter.value(kind="link_down") == 1
    assert counter.value(kind="host_crash") == 1
    assert cluster.sim.link_is_up("leaf0->spine0")


def test_unknown_link_raises():
    cluster = testbed_cluster()
    injector = FaultInjector(cluster)
    with pytest.raises(UnknownLinkError):
        injector.fail_link("no->where")


# ----------------------------------------------------------------------
# satellite 2: cancel_flow under fault storms
# ----------------------------------------------------------------------
def _storm_topo():
    topo = Topology()
    for node in ("a", "b"):
        topo.add_node(node)
    topo.add_link("a", "b", 8.0)
    return topo


def test_cancel_flow_idempotent_during_storm():
    sim = FlowSimulator(_storm_topo())
    flows = [sim.add_flow(1e6, ["a->b"]) for _ in range(8)]
    killed = sim.fail_link("a->b")
    assert sorted(f.flow_id for f in killed) == sorted(f.flow_id for f in flows)
    # Every post-mortem operation on the dead flows is a safe no-op.
    for flow in flows:
        sim.cancel_flow(flow)
        sim.cancel_flow(flow)
        assert flow.failed and not flow.completed
        assert isinstance(flow.error, LinkDownError)
    counters = sim.perf_counters()
    assert counters["flows_failed"] == 8
    assert counters["flows_cancelled"] == 0  # failed, not cancelled
    sim.restore_link("a->b")
    assert sim.run() == 0.0  # empty network: nothing stalls


def test_cancel_then_fail_link_storm_interleaved():
    sim = FlowSimulator(_storm_topo())
    done, failed = [], []
    for i in range(6):
        sim.add_flow(
            8.0,
            ["a->b"],
            on_complete=lambda f, t: done.append(f.flow_id),
            on_fail=lambda f, t, e: failed.append(f.flow_id),
        )
    victims = []
    sim.schedule(0.1, lambda: victims.extend(sim.fail_link("a->b")))
    sim.schedule(0.2, lambda: sim.restore_link("a->b"))
    sim.schedule(0.2, lambda: [sim.cancel_flow(f) for f in victims])  # no-op
    sim.schedule(0.3, lambda: sim.add_flow(8.0, ["a->b"], on_complete=lambda f, t: done.append(f.flow_id)))
    sim.run()
    assert len(failed) == 6 and len(done) == 1
    assert sim.perf_counters()["flows_failed"] == 6
    # Survivor saw the full link alone: 8 bytes at 8 B/s from t=0.3.
    assert sim.now == pytest.approx(1.3)


def test_fail_link_idempotent():
    sim = FlowSimulator(_storm_topo())
    sim.add_flow(1e6, ["a->b"])
    first = sim.fail_link("a->b")
    assert len(first) == 1
    assert sim.fail_link("a->b") == []  # already down: nothing new to kill
    assert not sim.link_is_up("a->b")
    sim.restore_link("a->b")
    sim.restore_link("a->b")  # idempotent
    assert sim.link_is_up("a->b")


# ----------------------------------------------------------------------
# bandwidth drift + membership kinds + plan versioning
# ----------------------------------------------------------------------
def test_bandwidth_drift_builder_validates_and_pairs_restore():
    with pytest.raises(ValueError, match="positive"):
        FaultEvent(0.0, FaultKind.BANDWIDTH_DRIFT, link_id="a->b", factor=0.0)
    plan = FaultPlan().bandwidth_drift(0.1, "a->b", 0.5, duration=0.2)
    assert [e.kind for e in plan.events] == [
        FaultKind.BANDWIDTH_DRIFT,
        FaultKind.LINK_RESTORE,
    ]


def test_membership_builders_describe_targets():
    plan = FaultPlan().rank_leave(0.1).rank_join(0.2, comm_id=7)
    assert [e.kind for e in plan.events] == [
        FaultKind.RANK_LEAVE,
        FaultKind.RANK_JOIN,
    ]
    described = " ".join(plan.describe())
    assert "comm*" in described and "comm7" in described


def test_drift_plan_walk_is_seeded_bounded_and_restoring():
    from repro.faults import BandwidthDriftPlan

    drift = BandwidthDriftPlan(
        links=["a->b", "c->d"], start=0.1, interval=0.1, steps=3, seed=9
    )
    plan = drift.to_fault_plan()
    again = drift.to_fault_plan()
    assert [
        (e.time, e.kind, e.link_id, e.factor) for e in plan.events
    ] == [(e.time, e.kind, e.link_id, e.factor) for e in again.events]
    drifts = [e for e in plan.events if e.kind is FaultKind.BANDWIDTH_DRIFT]
    restores = [e for e in plan.events if e.kind is FaultKind.LINK_RESTORE]
    assert len(drifts) == 6  # 3 steps x 2 links
    lo, hi = drift.factor_range
    assert all(lo <= e.factor <= hi for e in drifts)
    # Every link is restored one interval after its last step.
    assert sorted(e.link_id for e in restores) == ["a->b", "c->d"]
    assert all(e.time == pytest.approx(0.4) for e in restores)


def test_drift_injection_restores_original_capacity():
    cl = testbed_cluster()
    from repro.faults import BandwidthDriftPlan

    link = "leaf0->spine0"
    original = cl.sim.link_capacity(link)
    injector = FaultInjector(cl)
    injector.schedule(
        BandwidthDriftPlan(
            links=[link],
            start=0.01,
            interval=0.01,
            steps=4,
            # hi < 1.0 guarantees the very first step moves the capacity.
            factor_range=(0.25, 0.9),
            seed=3,
        ).to_fault_plan()
    )
    cl.sim.run(until=0.03)
    assert cl.sim.link_capacity(link) != original  # mid-walk
    cl.sim.run(until=0.1)
    assert cl.sim.link_capacity(link) == original  # exactly restored


def test_random_plan_version_guard():
    cluster = testbed_cluster()
    with pytest.raises(ValueError, match="version"):
        FaultPlan.random(cluster, seed=1, version=4)
    # version=1 reproduces the historical uniform draw: byte-stable
    # across calls and unaffected by the weighted default scheme.
    v1a = FaultPlan.random(cluster, seed=11, num_faults=5, version=1)
    v1b = FaultPlan.random(cluster, seed=11, num_faults=5, version=1)
    assert [
        (e.time, e.kind, e.link_id, e.host_id) for e in v1a.events
    ] == [(e.time, e.kind, e.link_id, e.host_id) for e in v1b.events]
    v2 = FaultPlan.random(cluster, seed=11, num_faults=5, version=2)
    assert [e.kind for e in v2.events] != [] and v2.events != v1a.events


def test_random_plan_draws_new_kinds_under_weights():
    cluster = testbed_cluster()
    kinds = set()
    for seed in range(40):
        plan = FaultPlan.random(
            cluster,
            seed=seed,
            num_faults=4,
            kinds=(
                FaultKind.BANDWIDTH_DRIFT,
                FaultKind.RANK_LEAVE,
                FaultKind.RANK_JOIN,
            ),
        )
        kinds.update(e.kind for e in plan.events)
    assert FaultKind.BANDWIDTH_DRIFT in kinds
    assert FaultKind.RANK_LEAVE in kinds
    assert FaultKind.RANK_JOIN in kinds


# ----------------------------------------------------------------------
# tenant storms (version=3)
# ----------------------------------------------------------------------
def test_tenant_storm_event_validation():
    with pytest.raises(ValueError, match="app_id"):
        FaultEvent(0.0, FaultKind.TENANT_STORM, factor=50.0)
    with pytest.raises(ValueError, match="exceed 1"):
        FaultEvent(0.0, FaultKind.TENANT_STORM, app_id="t0", factor=1.0)
    event = FaultEvent(0.0, FaultKind.TENANT_STORM, app_id="t0", factor=50.0)
    assert "t0" in event.describe() and "x50" in event.describe()


def test_tenant_storm_builder_always_pairs_calm():
    plan = FaultPlan().tenant_storm(0.5, "tenant-3", factor=10.0, duration=0.25)
    kinds = [e.kind for e in plan.events]
    assert kinds == [FaultKind.TENANT_STORM, FaultKind.TENANT_CALM]
    storm, calm = plan.events
    assert storm.app_id == calm.app_id == "tenant-3"
    assert calm.time == pytest.approx(storm.time + 0.25)


def test_random_plan_v3_draws_tenant_storms():
    cluster = testbed_cluster()
    tenants = [f"tenant-{i}" for i in range(8)]
    seen = set()
    for seed in range(30):
        plan = FaultPlan.random(
            cluster,
            seed=seed,
            num_faults=4,
            tenant_candidates=tenants,
            version=3,
        )
        seen.update(e.kind for e in plan.events)
        for event in plan.events:
            if event.kind is FaultKind.TENANT_STORM:
                # storms are always transient: a calm for the same tenant
                # follows within the plan
                assert any(
                    e.kind is FaultKind.TENANT_CALM
                    and e.app_id == event.app_id
                    and e.time > event.time
                    for e in plan.events
                )
    assert FaultKind.TENANT_STORM in seen


def test_random_plan_v1_v2_replays_unchanged_by_v3():
    """Adding version=3 must not disturb seeds recorded against v1/v2."""
    cluster = testbed_cluster()
    for version in (1, 2):
        a = FaultPlan.random(cluster, seed=23, num_faults=6, version=version)
        b = FaultPlan.random(cluster, seed=23, num_faults=6, version=version)
        assert a.describe() == b.describe()
        assert all(e.kind is not FaultKind.TENANT_STORM for e in a.events)
    # v3 without tenant candidates is draw-for-draw identical to v2
    v2 = FaultPlan.random(cluster, seed=23, num_faults=6, version=2)
    v3 = FaultPlan.random(cluster, seed=23, num_faults=6, version=3)
    assert v2.describe() == v3.describe()


def test_injector_routes_tenant_storm_to_callbacks():
    cluster = testbed_cluster()
    injector = FaultInjector(cluster)
    calls = []
    injector.on_tenant_storm = lambda app, factor: calls.append(("storm", app, factor))
    injector.on_tenant_calm = lambda app: calls.append(("calm", app))
    plan = FaultPlan().tenant_storm(0.1, "tenant-0", factor=50.0, duration=0.2)
    injector.schedule(plan)
    cluster.sim.run()
    assert calls == [("storm", "tenant-0", 50.0), ("calm", "tenant-0")]
    assert [e.kind for _, e in injector.injected] == [
        FaultKind.TENANT_STORM,
        FaultKind.TENANT_CALM,
    ]


def test_injector_tenant_storm_without_hooks_is_noop():
    cluster = testbed_cluster()
    injector = FaultInjector(cluster)
    injector.apply(
        FaultEvent(0.0, FaultKind.TENANT_STORM, app_id="tenant-0", factor=2.0)
    )
    injector.apply(FaultEvent(0.0, FaultKind.TENANT_CALM, app_id="tenant-0"))
    assert len(injector.injected) == 2
