"""Public error surface and lifecycle edge cases."""

import numpy as np
import pytest

import repro.errors as errors
from repro.cluster.gpu import MemcpyOp
from repro.cluster.specs import testbed_cluster
from repro.core.deployment import MccsDeployment
from repro.netsim.units import MB


def test_every_error_derives_from_repro_error():
    for name in errors.__all__:
        exc = getattr(errors, name)
        assert issubclass(exc, errors.ReproError), name


def test_errors_module_is_complete():
    # every module-level exception defined in netsim.errors is re-exported
    import repro.netsim.errors as impl

    defined = {
        n
        for n, obj in vars(impl).items()
        if isinstance(obj, type) and issubclass(obj, impl.ReproError)
    }
    assert defined <= set(errors.__all__)


# -- memcpy op ---------------------------------------------------------------
def test_memcpy_op_duration():
    op = MemcpyOp(24_000_000, 12e9, "h2d")
    assert op.duration == pytest.approx(0.002)
    assert op.name == "memcpy:h2d"


def test_memcpy_op_validation():
    with pytest.raises(ValueError):
        MemcpyOp(-1, 12e9)
    with pytest.raises(ValueError):
        MemcpyOp(1, 0.0)
    with pytest.raises(ValueError):
        MemcpyOp(1, 12e9, direction="sideways")


def test_gpu_memcpy_occupies_stream():
    cl = testbed_cluster()
    gpu = cl.gpus[0]
    stream = gpu.create_stream()
    gpu.memcpy(stream, 120_000_000, "h2d")
    marks = []
    stream.add_callback(lambda: marks.append(cl.sim.now))
    cl.sim.run()
    assert marks == [pytest.approx(0.01)]


# -- communicator lifecycle ----------------------------------------------------
def test_destroy_with_inflight_collective_rejected():
    cl = testbed_cluster()
    dep = MccsDeployment(cl)
    client = dep.connect("A")
    gpus = [cl.hosts[h].gpus[0] for h in range(4)]
    comm = client.create_communicator(gpus)
    client.all_reduce(comm, 64 * MB)
    with pytest.raises(errors.CommunicatorError):
        client.destroy_communicator(comm)
    dep.run()
    client.adopt_communicator(comm.comm_id)  # still alive
    client.destroy_communicator(comm)  # fine once drained


def test_destroy_from_completion_callback_is_safe():
    """The Figure 11 driver destroys communicators the moment their last
    collective completes; the active set must already be clear."""
    cl = testbed_cluster()
    dep = MccsDeployment(cl)
    client = dep.connect("A")
    gpus = [cl.hosts[h].gpus[0] for h in range(4)]
    comm = client.create_communicator(gpus)
    destroyed = []

    def finish(inst, now):
        client.destroy_communicator(comm)
        destroyed.append(now)

    client.all_reduce(comm, 8 * MB, on_complete=finish)
    dep.run()
    assert destroyed
    with pytest.raises(errors.CommunicatorError):
        dep.communicator(comm.comm_id)


def test_collective_after_destroy_rejected():
    cl = testbed_cluster()
    dep = MccsDeployment(cl)
    client = dep.connect("A")
    gpus = [cl.hosts[h].gpus[0] for h in range(4)]
    comm = client.create_communicator(gpus)
    client.destroy_communicator(comm)
    with pytest.raises(errors.CommunicatorError):
        client.all_reduce(comm, 1 * MB)


def test_reconfigure_unknown_communicator():
    cl = testbed_cluster()
    dep = MccsDeployment(cl)
    with pytest.raises(errors.CommunicatorError):
        dep.reconfigure(424242, ring=[1, 0])
