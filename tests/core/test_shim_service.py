"""Shim library and per-host service tests (the §4.1 interface)."""

import numpy as np
import pytest

from repro.cluster.specs import testbed_cluster
from repro.core.deployment import MccsDeployment
from repro.core.messages import AllocateRequest, Request
from repro.netsim.errors import CommunicatorError, InvalidBufferError, MccsError
from repro.netsim.units import MB


@pytest.fixture
def env():
    cluster = testbed_cluster()
    deployment = MccsDeployment(cluster)
    client = deployment.connect("app")
    return cluster, deployment, client


def test_alloc_opens_ipc_handle(env):
    cluster, deployment, client = env
    gpu = cluster.hosts[0].gpus[0]
    buf = client.alloc(gpu, 1024)
    assert buf.size == 1024
    assert cluster.hosts[0].ipc.is_open(buf.handle)
    # The device memory is the service's allocation, shared by handle.
    service_alloc = deployment.service_of(0).memory.allocations_of("app")
    assert buf.buffer_id in service_alloc


def test_free_closes_handle_then_forwards(env):
    cluster, deployment, client = env
    gpu = cluster.hosts[0].gpus[0]
    buf = client.alloc(gpu, 1024)
    client.free(buf)
    assert not cluster.hosts[0].ipc.is_open(buf.handle)
    assert deployment.service_of(0).memory.live_bytes() == 0
    with pytest.raises(MccsError):
        client.free(buf)


def test_alloc_routes_to_owning_host(env):
    cluster, deployment, client = env
    gpu = cluster.hosts[2].gpus[1]
    client.alloc(gpu, 512)
    assert deployment.service_of(2).memory.live_bytes() == 512
    assert deployment.service_of(0).memory.live_bytes() == 0


def test_misrouted_allocation_rejected(env):
    cluster, deployment, client = env
    service = deployment.service_of(0)
    with pytest.raises(MccsError):
        service.allocate("app", cluster.hosts[1].gpus[0].global_id, 64)


def test_buffer_view_and_ref(env):
    cluster, deployment, client = env
    buf = client.alloc(cluster.hosts[0].gpus[0], 256)
    buf.view(np.float32)[:] = 3.0
    ref = buf.ref(offset=16, nbytes=64)
    assert ref.buffer_id == buf.buffer_id
    assert (ref.offset, ref.nbytes) == (16, 64)
    assert buf.ref().nbytes == 256


def test_create_and_destroy_communicator(env):
    cluster, deployment, client = env
    gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    comm = client.create_communicator(gpus)
    assert comm.world == 4
    assert deployment.communicator(comm.comm_id).app_id == "app"
    client.destroy_communicator(comm)
    with pytest.raises(CommunicatorError):
        deployment.communicator(comm.comm_id)


def test_adopt_enforces_ownership(env):
    cluster, deployment, client = env
    gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    comm = deployment.create_communicator("someone-else", gpus)
    with pytest.raises(MccsError):
        client.adopt_communicator(comm.comm_id)


def test_collective_on_foreign_communicator_rejected(env):
    cluster, deployment, client = env
    gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    other = deployment.create_communicator("other", gpus)
    from repro.core.messages import CollectiveRequest
    from repro.collectives.types import Collective

    with pytest.raises(CommunicatorError):
        deployment.handle_collective(
            "app",
            CollectiveRequest(comm_id=other.comm_id, kind=Collective.ALL_REDUCE, out_bytes=64),
        )


def test_collective_validates_send_buffer_sizes(env):
    cluster, deployment, client = env
    gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    comm = client.create_communicator(gpus)
    sends = [client.alloc(g, 64) for g in gpus]
    with pytest.raises(InvalidBufferError):
        # AllGather of 512 output bytes needs 128-byte inputs, not 64.
        client.all_gather(comm, 512, send=sends)


def test_collective_needs_one_buffer_per_rank(env):
    cluster, deployment, client = env
    gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    comm = client.create_communicator(gpus)
    sends = [client.alloc(gpus[0], 64)]
    with pytest.raises(InvalidBufferError):
        client.all_reduce(comm, 64, send=sends)


def test_zero_byte_collective_rejected(env):
    cluster, deployment, client = env
    gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    comm = client.create_communicator(gpus)
    with pytest.raises(CommunicatorError):
        client.all_reduce(comm, 0)


def test_stream_synchronization_full_dance(env):
    """Record-before / wait-after semantics across app and comm streams."""
    cluster, deployment, client = env
    gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    comm = client.create_communicator(gpus)
    stream = client.create_stream(gpus[0])
    stream.compute(7e-3, name="producer")
    op = client.all_reduce(comm, 4 * MB, stream=stream)
    consumed = []
    stream.add_callback(lambda: consumed.append(cluster.sim.now), name="consumer")
    deployment.run()
    assert op.instance.start_time >= 7e-3  # waited for the producer
    assert consumed[0] >= op.end_time - 1e-12  # consumer waited for the op


def test_collectives_serialize_on_comm_stream(env):
    cluster, deployment, client = env
    gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    comm = client.create_communicator(gpus)
    a = client.all_reduce(comm, 16 * MB)
    b = client.all_reduce(comm, 16 * MB)
    deployment.run()
    assert b.instance.start_time >= a.end_time - 1e-9


def test_frontend_counts_requests(env):
    cluster, deployment, client = env
    gpu = cluster.hosts[0].gpus[0]
    frontend = deployment.service_of(0).frontend_for("app", deployment)
    before = frontend.requests_handled
    client.alloc(gpu, 64)
    assert frontend.requests_handled == before + 1


def test_unknown_request_type_rejected(env):
    cluster, deployment, client = env

    class Strange(Request):
        pass

    frontend = deployment.service_of(0).frontend_for("app", deployment)
    with pytest.raises(MccsError):
        frontend.handle(Strange())


def test_on_complete_callback(env):
    cluster, deployment, client = env
    gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    comm = client.create_communicator(gpus)
    seen = []
    client.all_reduce(comm, 1 * MB, on_complete=lambda inst, t: seen.append(t))
    deployment.run()
    assert len(seen) == 1
