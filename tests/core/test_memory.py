"""Service-side memory management and buffer validation (§4.1)."""

import numpy as np
import pytest

from repro.cluster.specs import testbed_cluster
from repro.core.memory import MemoryManager
from repro.core.messages import BufferRef
from repro.netsim.errors import InvalidBufferError


@pytest.fixture
def env():
    cl = testbed_cluster()
    host = cl.hosts[0]
    return cl, host, host.gpus[0], MemoryManager()


def test_allocate_exports_handle(env):
    cl, host, gpu, mm = env
    alloc = mm.allocate("app", gpu, 256, host.ipc)
    assert alloc.buffer.size == 256
    assert host.ipc.open_memory(alloc.handle) is alloc.buffer
    assert mm.live_bytes() == 256


def test_validate_accepts_in_range(env):
    cl, host, gpu, mm = env
    alloc = mm.allocate("app", gpu, 256, host.ipc)
    ref = BufferRef(alloc.buffer_id, offset=64, nbytes=128)
    assert mm.validate("app", ref) is alloc


def test_validate_rejects_out_of_range(env):
    """'The service will check whether the data buffer user passes is
    within a valid allocation before performing the operation.'"""
    cl, host, gpu, mm = env
    alloc = mm.allocate("app", gpu, 256, host.ipc)
    with pytest.raises(InvalidBufferError):
        mm.validate("app", BufferRef(alloc.buffer_id, offset=200, nbytes=100))
    with pytest.raises(InvalidBufferError):
        mm.validate("app", BufferRef(alloc.buffer_id, offset=-8, nbytes=8))


def test_validate_rejects_unknown_buffer(env):
    cl, host, gpu, mm = env
    with pytest.raises(InvalidBufferError):
        mm.validate("app", BufferRef(424242, 0, 8))


def test_validate_enforces_tenant_isolation(env):
    """A tenant cannot name another tenant's allocation."""
    cl, host, gpu, mm = env
    alloc = mm.allocate("appA", gpu, 256, host.ipc)
    with pytest.raises(InvalidBufferError):
        mm.validate("appB", BufferRef(alloc.buffer_id, 0, 8))


def test_view_returns_typed_window(env):
    cl, host, gpu, mm = env
    alloc = mm.allocate("app", gpu, 256, host.ipc)
    view = mm.view("app", BufferRef(alloc.buffer_id, 16, 64), np.float32)
    assert view.size == 16
    view[:] = 7.0
    assert np.allclose(alloc.buffer.view(np.float32, 16, 16), 7.0)


def test_free_requires_closed_handle(env):
    cl, host, gpu, mm = env
    alloc = mm.allocate("app", gpu, 256, host.ipc)
    host.ipc.open_memory(alloc.handle)
    with pytest.raises(InvalidBufferError):
        mm.free("app", alloc.buffer_id, host.ipc)
    host.ipc.close_memory(alloc.handle)
    mm.free("app", alloc.buffer_id, host.ipc)
    assert mm.live_bytes() == 0


def test_free_checks_ownership(env):
    cl, host, gpu, mm = env
    alloc = mm.allocate("appA", gpu, 256, host.ipc)
    with pytest.raises(InvalidBufferError):
        mm.free("appB", alloc.buffer_id, host.ipc)


def test_free_unknown_buffer(env):
    cl, host, gpu, mm = env
    with pytest.raises(InvalidBufferError):
        mm.free("app", 999999, host.ipc)


def test_allocations_of_app(env):
    cl, host, gpu, mm = env
    a = mm.allocate("appA", gpu, 64, host.ipc)
    mm.allocate("appB", gpu, 64, host.ipc)
    mine = mm.allocations_of("appA")
    assert list(mine) == [a.buffer_id]
