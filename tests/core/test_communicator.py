"""Service communicator and collective-instance lifecycle tests."""

import numpy as np
import pytest

from repro.cluster.specs import testbed_cluster
from repro.collectives.types import Collective, ReduceOp
from repro.core.deployment import MccsDeployment
from repro.core.strategy import default_strategy
from repro.netsim.units import MB


@pytest.fixture
def env():
    cluster = testbed_cluster()
    deployment = MccsDeployment(cluster)
    gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    comm = deployment.create_communicator("app", gpus)
    client = deployment.connect("app")
    return cluster, deployment, comm, client, client.adopt_communicator(comm.comm_id)


def test_communicator_has_service_stream(env):
    cluster, deployment, comm, client, handle = env
    assert comm.stream.name.startswith(f"comm{comm.comm_id}")
    assert comm.stream.idle


def test_sequence_numbers_increase(env):
    cluster, deployment, comm, client, handle = env
    a = client.all_reduce(handle, 1 * MB)
    b = client.all_gather(handle, 1 * MB)
    assert (a.seq, b.seq) == (0, 1)
    deployment.run()


def test_instance_duration_and_consistency(env):
    cluster, deployment, comm, client, handle = env
    op = client.all_reduce(handle, 8 * MB)
    with pytest.raises(ValueError):
        op.instance.duration()
    deployment.run()
    assert op.instance.duration() > 0
    assert op.instance.consistent


def test_latency_precedes_flow_injection(env):
    cluster, deployment, comm, client, handle = env
    op = client.all_reduce(handle, 1 * MB)
    deployment.run()
    fixed = comm.latency.collective_latency(6)  # 2*(4-1) steps
    assert op.instance.start_time == pytest.approx(fixed)


def test_all_collective_kinds_complete(env):
    cluster, deployment, comm, client, handle = env
    ops = [
        client.all_reduce(handle, 4 * MB),
        client.all_gather(handle, 4 * MB),
        client.reduce_scatter(handle, 1 * MB),
        client.broadcast(handle, 4 * MB, root=2),
        client.reduce(handle, 4 * MB, root=1),
    ]
    deployment.run()
    assert all(op.completed for op in ops)


def test_describe_snapshot(env):
    cluster, deployment, comm, client, handle = env
    info = comm.describe()
    assert info["app_id"] == "app"
    assert info["ring"] == [0, 1, 2, 3]
    assert info["hosts"] == [0, 1, 2, 3]
    assert info["version"] == 0


def test_strategy_world_must_match():
    cluster = testbed_cluster()
    deployment = MccsDeployment(cluster)
    gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    with pytest.raises(ValueError):
        deployment.create_communicator("app", gpus, strategy=default_strategy(3))


def test_ranks_by_host(env):
    cluster, deployment, comm, client, handle = env
    by_host = comm.ranks_by_host()
    assert by_host == {0: [0], 1: [1], 2: [2], 3: [3]}


def test_data_plane_respects_reduce_op(env):
    cluster, deployment, comm, client, handle = env
    gpus = comm.gpus
    sends = [client.alloc(g, 64) for g in gpus]
    recvs = [client.alloc(g, 64) for g in gpus]
    for i, b in enumerate(sends):
        b.view(np.float32)[:] = float(i + 1)
    op = client.all_reduce(handle, 64, send=sends, recv=recvs, op=ReduceOp.MAX)
    deployment.run()
    assert all(np.allclose(r.view(np.float32), 4.0) for r in recvs)


def test_intra_host_communicator(env):
    """A communicator entirely within one host uses the local channel."""
    cluster, deployment, comm, client, handle = env
    gpus = cluster.hosts[0].gpus
    comm2 = deployment.create_communicator("app", gpus)
    handle2 = client.adopt_communicator(comm2.comm_id)
    op = client.all_reduce(handle2, 8 * MB)
    deployment.run()
    assert op.completed
    for flow in op.instance.__dict__.get("flows", []):  # no flows attr; check via sim
        pass
    # local-only: duration bounded by local bandwidth (25 GB/s), far less
    # than what the 6.25 GB/s NIC path would need.
    assert op.duration() < 8 * MB / 6.25e9 * 1.5 + 1e-3
