"""Service process crash and journal-replay restart.

Covers the per-host :meth:`MccsService.crash`/:meth:`restart` pair, the
:class:`ServiceSupervisor`, the shim's reconnect/reissue machinery, and
the new ``service_crash``/``engine_restart`` fault-plan kinds.
"""

import numpy as np
import pytest

from repro.core.recovery import RecoveryPolicy, fault_kind
from repro.core.shim import MccsClient, ShimRetryPolicy
from repro.errors import (
    HostCrashedError,
    InvalidBufferError,
    ServiceCrashedError,
    ServiceUnavailableError,
)
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.netsim.units import MB


def _admit(manager, deployment, gpus, app="A"):
    state = manager.admit(app, gpus)
    client = deployment.connect(app)
    return client, client.adopt_communicator(state.comm_id)


# ----------------------------------------------------------------------
# crash semantics
# ----------------------------------------------------------------------
def test_crash_makes_shim_calls_fail_typed(deployment, manager, four_gpus):
    client, _comm = _admit(manager, deployment, four_gpus)
    service = deployment.service_of(0)
    deployment.crash_service(0)
    assert not service.alive
    assert service.crashes == 1
    with pytest.raises(ServiceUnavailableError, match="host 0 is down"):
        client.alloc(four_gpus[0], 256)
    # Crashing twice is a no-op, not a double count.
    deployment.crash_service(0)
    assert service.crashes == 1


def test_crash_is_journaled_but_replays_to_nothing(deployment, four_gpus):
    deployment.crash_service(1)
    ops = [record.op for record in deployment.journal.records()]
    assert ops == ["service_crash"]
    deployment.restart_service(1)
    assert deployment.verify_journal() == []


def test_restart_rebuilds_memory_from_journal(deployment, manager, four_gpus):
    client, _comm = _admit(manager, deployment, four_gpus)
    keep = client.alloc(four_gpus[0], 512)
    gone = client.alloc(four_gpus[0], 256)
    client.free(gone)
    deployment.crash_service(0)
    replayed = deployment.restart_service(0)
    assert replayed > 0
    service = deployment.service_of(0)
    assert service.generation == 1 and service.restarts == 1
    allocations = service.memory.allocations()
    assert keep.buffer_id in allocations
    assert gone.buffer_id not in allocations
    assert deployment.verify_journal() == []
    # The surviving buffer is still freeable through the fresh engines.
    client.free(keep)
    assert keep.buffer_id not in service.memory.allocations()


def test_free_is_idempotent_and_double_free_is_typed(
    deployment, manager, four_gpus
):
    client, _comm = _admit(manager, deployment, four_gpus)
    buf = client.alloc(four_gpus[0], 256)
    client.free(buf)
    # Shim-level double free: typed, immediate.
    with pytest.raises(InvalidBufferError, match="double free"):
        client.free(buf)
    # Service-level retried free (e.g. a duplicate FreeRequest after an
    # outage): idempotent no-op that appends nothing to the journal.
    service = deployment.service_of(0)
    before = len(deployment.journal)
    service.free("A", buf.buffer_id)
    assert len(deployment.journal) == before
    # A free of a never-allocated id stays a typed error.
    with pytest.raises(InvalidBufferError):
        service.free("A", 10_000)


# ----------------------------------------------------------------------
# supervised restart completes in-flight work
# ----------------------------------------------------------------------
def test_supervised_restart_completes_inflight_collective(
    cluster, deployment, manager, four_gpus
):
    deployment.enable_recovery(RecoveryPolicy(collective_deadline=0.25))
    deployment.enable_service_supervision(restart_delay=0.02)
    client, comm = _admit(manager, deployment, four_gpus)
    sends = [client.alloc(g, 256) for g in four_gpus]
    recvs = [client.alloc(g, 256) for g in four_gpus]
    for buf in sends:
        buf.view(np.float32)[:] = 2.0
    cluster.sim.call_in(0.0005, lambda: deployment.crash_service(2))
    big = client.all_reduce(comm, 64 * MB)
    small = client.all_reduce(comm, 256, send=sends, recv=recvs)
    deployment.run()

    assert big.completed and small.completed
    assert all(np.allclose(r.view(np.float32), 8.0) for r in recvs)
    service = deployment.service_of(2)
    assert service.alive and service.restarts == 1
    assert not deployment.communicator(comm.comm_id).aborted
    assert deployment.verify_journal() == []
    metrics = deployment.telemetry().metrics
    assert metrics.counter("mccs_supervised_restarts_total").total() == 1
    assert (
        metrics.histogram("mccs_recovery_seconds").count(kind="service_crash")
        >= 1
    )


def test_root_host_crash_reissues_in_fifo_order(
    cluster, deployment, manager, four_gpus
):
    deployment.enable_recovery(RecoveryPolicy(collective_deadline=0.25))
    deployment.enable_service_supervision(restart_delay=0.02)
    client, comm = _admit(manager, deployment, four_gpus)
    # Kill the root host's service before anything is issued: both
    # collectives sit in the shim's reissue queue until the restart.
    deployment.crash_service(0)
    first = client.all_reduce(comm, 1 * MB)
    second = client.all_reduce(comm, 1 * MB)
    assert first.pending and second.pending
    deployment.run()

    assert first.completed and second.completed
    assert first.retries >= 1
    assert first.seq < second.seq  # program order preserved
    assert client.retries_total >= 1 and client.giveups_total == 0
    assert deployment.verify_journal() == []


def test_shim_gives_up_typed_when_service_never_returns(
    deployment, manager, four_gpus
):
    # No supervisor: the outage is permanent and the shim must not hang.
    manager.admit("A", four_gpus)
    client = MccsClient(
        deployment,
        "A",
        retry=ShimRetryPolicy(max_retries=2, backoff_base=0.001),
    )
    comm = client.adopt_communicator(
        deployment.communicators()[0].comm_id
    )
    deployment.crash_service(0)
    op = client.all_reduce(comm, 1 * MB)
    assert op.pending
    deployment.run()
    assert not op.pending and op.failed
    assert isinstance(op.error, ServiceUnavailableError)
    assert client.giveups_total == 1


def test_free_is_retried_across_the_outage(
    cluster, deployment, manager, four_gpus
):
    deployment.enable_service_supervision(restart_delay=0.01)
    client, _comm = _admit(manager, deployment, four_gpus)
    buf = client.alloc(four_gpus[0], 256)
    deployment.crash_service(0)
    client.free(buf)  # lands in the background retry path
    assert buf.freed
    deployment.run()
    service = deployment.service_of(0)
    assert service.alive
    assert buf.buffer_id not in service.memory.allocations()
    assert client.retries_total >= 1
    assert deployment.verify_journal() == []


# ----------------------------------------------------------------------
# fault-plan integration
# ----------------------------------------------------------------------
def test_service_crash_plan_kills_and_restarts(cluster, deployment):
    plan = FaultPlan().service_crash(0.001, host_id=2, duration=0.004)
    kinds = [event.kind for event in plan.events]
    assert kinds == [FaultKind.SERVICE_CRASH, FaultKind.ENGINE_RESTART]
    assert plan.events[1].time == pytest.approx(0.005)
    injector = FaultInjector(
        cluster, deployment=deployment, telemetry=deployment.telemetry()
    )
    injector.schedule(plan)
    cluster.sim.run(until=0.003)
    assert not deployment.service_of(2).alive
    cluster.sim.run()
    service = deployment.service_of(2)
    assert service.alive and service.restarts == 1


def test_random_plans_draw_service_crashes(cluster):
    kinds = set()
    for seed in range(30):
        plan = FaultPlan.random(cluster, seed=seed, num_faults=4)
        kinds.update(event.kind for event in plan.events)
    assert FaultKind.SERVICE_CRASH in kinds


def test_fault_kind_classifies_service_errors():
    assert fault_kind(ServiceCrashedError("x")) == "service_crash"
    assert fault_kind(ServiceUnavailableError("x")) == "service_crash"
    assert fault_kind(HostCrashedError("x")) == "host_crash"
