"""Live service upgrade: Figure-4 drain, engine swap, zero downtime."""

import numpy as np
import pytest

from repro.errors import ServiceUnavailableError, UpgradeError
from repro.netsim.units import MB


def _admit(manager, deployment, gpus, app="A"):
    state = manager.admit(app, gpus)
    client = deployment.connect(app)
    return client, client.adopt_communicator(state.comm_id)


def test_upgrade_swaps_engines_and_stays_byte_exact(
    deployment, manager, four_gpus
):
    client, comm = _admit(manager, deployment, four_gpus)
    client.all_reduce(comm, 1 * MB)
    deployment.run()
    service = deployment.service_of(2)
    old_proxies = {id(proxy) for proxy in service.proxies.values()}
    old_frontend = service.frontend_for("A", deployment)

    session = service.upgrade(component="service")
    with pytest.raises(UpgradeError, match="still draining"):
        session.drain_seconds()
    deployment.run()

    assert session.done and not session.failed
    assert session.drained_comms == [comm.comm_id]
    assert session.generation_before == 0 and session.generation_after == 1
    assert session.drain_seconds() >= 0.0
    new_proxies = {id(proxy) for proxy in service.proxies.values()}
    assert old_proxies.isdisjoint(new_proxies)  # real objects swapped
    # The drained communicator gained exactly one strategy epoch.
    comm_obj = deployment.communicator(comm.comm_id)
    assert len(comm_obj.strategy_history) == 2
    assert not comm_obj.aborted

    # Tenant-visible behaviour after the cut: identical, byte-exact.
    sends = [client.alloc(g, 256) for g in four_gpus]
    recvs = [client.alloc(g, 256) for g in four_gpus]
    for buf in sends:
        buf.view(np.float32)[:] = 1.5
    post = client.all_reduce(comm, 256, send=sends, recv=recvs)
    deployment.run()
    assert post.completed
    assert all(np.allclose(r.view(np.float32), 6.0) for r in recvs)
    # The shim reconnected to a fresh frontend of the new generation.
    fresh_frontend = service.frontend_for("A", deployment)
    assert fresh_frontend is not old_frontend
    assert fresh_frontend.generation == 1
    assert deployment.verify_journal() == []


def test_upgrade_under_live_traffic_is_only_a_blip(
    cluster, deployment, manager, four_gpus
):
    client, comm = _admit(manager, deployment, four_gpus)
    ops = []

    def chain(_instance, _now):
        if cluster.sim.now < 0.05:
            ops.append(client.all_reduce(comm, 4 * MB, on_complete=chain))

    ops.append(client.all_reduce(comm, 4 * MB, on_complete=chain))
    sessions = []
    cluster.sim.call_in(
        0.002,
        lambda: sessions.append(
            deployment.service_of(1).upgrade(component="service")
        ),
    )
    deployment.run()

    assert sessions and sessions[0].done and not sessions[0].failed
    assert len(ops) > 1
    assert all(op.completed for op in ops)  # nothing failed, nothing hung
    assert deployment.service_of(1).generation == 1


def test_upgrade_can_switch_algorithm_at_the_cut(
    deployment, manager, four_gpus
):
    client, comm = _admit(manager, deployment, four_gpus)
    assert deployment.communicator(comm.comm_id).strategy.algorithm == "ring"
    session = deployment.service_of(2).upgrade(
        component="service", algorithm="tree"
    )
    deployment.run()
    assert session.done
    comm_obj = deployment.communicator(comm.comm_id)
    assert comm_obj.strategy.algorithm == "tree"
    op = client.all_reduce(comm, 1 * MB)
    deployment.run()
    assert op.completed
    assert deployment.verify_journal() == []


def test_frontend_only_upgrade_skips_the_drain(
    deployment, manager, four_gpus
):
    _client, comm = _admit(manager, deployment, four_gpus)
    service = deployment.service_of(0)
    old_proxies = {id(proxy) for proxy in service.proxies.values()}
    session = service.upgrade(component="frontend")
    deployment.run()
    assert session.done
    assert session.drained_comms == []  # no barrier needed
    assert {id(proxy) for proxy in service.proxies.values()} == old_proxies
    assert len(deployment.communicator(comm.comm_id).strategy_history) == 1
    assert service.frontend_for("A", deployment).generation == 1


def test_upgrade_validates_component_and_liveness(deployment, manager, four_gpus):
    _admit(manager, deployment, four_gpus)
    service = deployment.service_of(0)
    with pytest.raises(UpgradeError, match="unknown component"):
        service.upgrade(component="kernel")
    deployment.crash_service(0)
    with pytest.raises(ServiceUnavailableError):
        service.upgrade(component="service")


def test_upgrade_is_journaled_and_counted(deployment, manager, four_gpus):
    _admit(manager, deployment, four_gpus)
    deployment.service_of(3).upgrade(component="proxy")
    deployment.run()
    records = [
        record
        for record in deployment.journal.records()
        if record.op == "service_upgrade"
    ]
    assert len(records) == 1
    assert records[0].payload["component"] == "proxy"
    assert records[0].payload["host"] == 3
    metrics = deployment.telemetry().metrics
    assert metrics.counter("mccs_upgrades_total").total() == 1
    assert (
        metrics.histogram("mccs_upgrade_drain_seconds").count(
            component="proxy"
        )
        == 1
    )
