"""Tracing, strategy versioning, messages, and sync-bridge tests."""

import pytest

from repro.cluster.gpu import Event, GpuDevice
from repro.cluster.ipc import IpcRegistry
from repro.collectives.ring import RingSchedule
from repro.collectives.types import Collective
from repro.core.messages import CommandQueue, AllocateRequest
from repro.core.strategy import CollectiveStrategy, default_strategy
from repro.core.sync import bridge_wait, export_snapshot, snapshot_event
from repro.core.tracing import CommTrace, TraceStore
from repro.netsim.engine import FlowSimulator
from repro.netsim.topology import Topology


# -- tracing ------------------------------------------------------------------
def make_trace(spans):
    """spans: list of (issue, start, end)."""
    trace = CommTrace(comm_id=1, app_id="a")
    for i, (issue, start, end) in enumerate(spans):
        rec = trace.record_issue(i, Collective.ALL_REDUCE, 100, issue)
        rec.start_time = start
        rec.end_time = end
    return trace


def test_busy_intervals_merge_overlaps():
    trace = make_trace([(0.0, 0.0, 1.0), (0.5, 0.5, 2.0), (3.0, 3.0, 4.0)])
    assert trace.busy_intervals() == [(0.0, 2.0), (3.0, 4.0)]


def test_idle_intervals_are_gaps():
    trace = make_trace([(0.0, 0.0, 1.0), (2.0, 2.0, 3.0), (5.0, 5.0, 6.0)])
    assert trace.idle_intervals() == [(1.0, 2.0), (3.0, 5.0)]


def test_communication_period_medians():
    spans = []
    t = 0.0
    for _ in range(6):
        spans.append((t, t, t + 1.0))
        t += 3.0  # busy 1, idle 2
    trace = make_trace(spans)
    busy, idle = trace.communication_period()
    assert busy == pytest.approx(1.0)
    assert idle == pytest.approx(2.0)


def test_communication_period_needs_signal():
    trace = make_trace([(0.0, 0.0, 1.0)])
    assert trace.communication_period() is None


def test_duration_requires_completion():
    trace = CommTrace(comm_id=1, app_id="a")
    rec = trace.record_issue(0, Collective.ALL_REDUCE, 10, 0.0)
    with pytest.raises(ValueError):
        rec.duration()


def test_trace_store_per_app():
    store = TraceStore()
    store.trace_for(1, "a")
    store.trace_for(2, "a")
    store.trace_for(3, "b")
    assert len(store.traces_of_app("a")) == 2
    assert store.get(3).app_id == "b"
    assert store.get(99) is None
    assert len(store.all()) == 3


# -- strategy -------------------------------------------------------------------
def test_default_strategy():
    s = default_strategy(4, channels=2)
    assert s.ring.order == (0, 1, 2, 3)
    assert s.channels == 2
    assert s.version == 0


def test_strategy_validation():
    with pytest.raises(ValueError):
        CollectiveStrategy(ring=RingSchedule((0, 1)), channels=0)
    with pytest.raises(ValueError):
        CollectiveStrategy(ring=RingSchedule((0, 1)), algorithm="mesh")


def test_route_ids_validation():
    ring = RingSchedule((0, 1, 2))
    ok = CollectiveStrategy(
        ring=ring, channels=2, route_ids=(((0, 1, 1), 3),)
    )
    assert ok.route_map() == {(0, 1, 1): 3}
    with pytest.raises(ValueError, match="malformed"):
        CollectiveStrategy(ring=ring, route_ids=((0, 1),))
    with pytest.raises(ValueError, match="outside"):
        CollectiveStrategy(ring=ring, route_ids=(((0, 3, 0), 1),))
    with pytest.raises(ValueError, match="itself"):
        CollectiveStrategy(ring=ring, route_ids=(((1, 1, 0), 1),))
    with pytest.raises(ValueError, match="channel"):
        CollectiveStrategy(ring=ring, route_ids=(((0, 1, 1), 1),))
    with pytest.raises(ValueError, match="negative"):
        CollectiveStrategy(ring=ring, route_ids=(((0, 1, 0), -1),))


def test_evolve_bumps_version():
    s = default_strategy(3)
    s2 = s.evolve(ring=RingSchedule((2, 1, 0)))
    assert s2.version == 1
    assert s2.ring.order == (2, 1, 0)
    s3 = s2.evolve(routes={(0, 1, 0): 1})
    assert s3.version == 2
    assert s3.route_map() == {(0, 1, 0): 1}
    assert s3.ring.order == (2, 1, 0)  # carried forward


def test_with_helpers():
    s = default_strategy(3)
    assert s.with_ring(RingSchedule((1, 0, 2))).version == 1
    assert s.with_routes({(1, 2, 0): 0}).route_map() == {(1, 2, 0): 0}


# -- command queue -----------------------------------------------------------------
def test_queue_requires_binding():
    q = CommandQueue()
    with pytest.raises(RuntimeError):
        q.call(AllocateRequest(gpu_global_id=0, size=4))


def test_queue_single_binding():
    q = CommandQueue()
    q.bind(lambda req: "ok")
    with pytest.raises(RuntimeError):
        q.bind(lambda req: "again")
    assert q.call(AllocateRequest(gpu_global_id=0, size=4)) == "ok"
    assert q.sent == 1


# -- sync bridge ---------------------------------------------------------------------
@pytest.fixture
def sim_gpu():
    topo = Topology()
    topo.add_node("x")
    sim = FlowSimulator(topo)
    return sim, GpuDevice(sim, 0, 0, 0)


def test_snapshot_event_fires_after_queued_work(sim_gpu):
    sim, gpu = sim_gpu
    stream = gpu.create_stream()
    stream.compute(2.0)
    event = snapshot_event(stream)
    assert not event.fired
    sim.run()
    assert event.fired


def test_export_and_bridge(sim_gpu):
    sim, gpu = sim_gpu
    ipc = IpcRegistry(host_id=0)
    producer = gpu.create_stream()
    consumer = gpu.create_stream()
    producer.compute(1.0)
    _, handle = export_snapshot(producer, ipc)
    bridge_wait(consumer, ipc, handle)
    marks = []
    consumer.add_callback(lambda: marks.append(sim.now))
    sim.run()
    assert marks == [pytest.approx(1.0)]


def test_snapshot_events_are_fresh_objects(sim_gpu):
    sim, gpu = sim_gpu
    stream = gpu.create_stream()
    e1 = snapshot_event(stream)
    e2 = snapshot_event(stream)
    assert e1 is not e2
