"""The Figure 4 reconfiguration protocol.

These tests reproduce the paper's synchronization story exactly:

* with the barrier, reconfiguration requests arriving at different ranks
  at different times can never produce a collective whose ranks disagree
  on the strategy version;
* with the barrier disabled (left half of Figure 4), exactly that
  inconsistency occurs;
* the fast path (no reconfiguration in flight) pays zero overhead;
* ``max_seq`` lets late ranks launch already-launched collectives under
  the *old* configuration before applying the update.
"""

import pytest

from repro.cluster.specs import testbed_cluster
from repro.core.controller import CentralManager
from repro.core.deployment import MccsDeployment
from repro.netsim.errors import ReconfigurationError
from repro.netsim.units import MB


def make_env(world=3, strict=False):
    cluster = testbed_cluster()
    deployment = MccsDeployment(cluster, strict_consistency=strict)
    gpus = [cluster.hosts[h % 4].gpus[h // 4] for h in range(world)]
    comm = deployment.create_communicator("app", gpus)
    client = deployment.connect("app")
    handle = client.adopt_communicator(comm.comm_id)
    return cluster, deployment, comm, client, handle


def test_barrier_keeps_collectives_consistent_under_delays():
    """The right half of Figure 4: staggered Req delivery, no mixing."""
    cluster, deployment, comm, client, handle = make_env()
    ops = [client.all_reduce(handle, 8 * MB) for _ in range(3)]
    session = deployment.reconfigure(
        comm.comm_id,
        ring=[2, 1, 0],
        delays=[0.05, 0.0, 0.001],  # rank 0 hears about it *last*
    )
    more = [client.all_reduce(handle, 8 * MB) for _ in range(2)]
    deployment.run()
    assert session.done
    assert comm.inconsistent_collectives == 0
    assert all(op.completed for op in ops + more)
    assert all(inst.consistent for inst in comm.instances)
    assert comm.strategy.ring.order == (2, 1, 0)


def test_paper_scenario_max_seq():
    """AR0 launched everywhere; rank 0 launches AR1 before its Req.

    Ranks 1 and 2 contribute seq 0, rank 0 contributes seq 1; everyone
    agrees max_seq = 1 and ranks 1/2 launch AR1 with the old ring first.
    """
    cluster, deployment, comm, client, handle = make_env()
    client.all_reduce(handle, 8 * MB)  # AR0
    deployment.run()
    # AR1 is issued; the fan-out happens immediately, so all ranks launch
    # it... to stage the hazard we deliver the request first to ranks 1,2
    # *before* AR1 is issued, then issue AR1 (rank 0 still un-notified).
    session = deployment.reconfigure(
        comm.comm_id, ring=[2, 1, 0], delays=[0.010, 0.0, 0.0]
    )
    deployment.run(until=cluster.sim.now + 0.001)  # ranks 1,2 now holding
    proxies = deployment.proxies_of(comm)
    assert proxies[1].state(comm.comm_id, 1).holding
    assert proxies[2].state(comm.comm_id, 2).holding
    ar1 = client.all_reduce(handle, 8 * MB)  # rank 0 launches; 1,2 queue
    deployment.run()
    assert session.done
    assert session.max_seq == 1
    assert session.barrier.contributions == {0: 1, 1: 0, 2: 0}
    assert ar1.completed
    assert comm.inconsistent_collectives == 0
    # AR1 ran under the OLD ring on every rank.
    assert set(comm.instances[1].rank_versions.values()) == {0}


def test_broken_protocol_mixes_versions():
    """The left half of Figure 4: without the barrier, ranks disagree."""
    cluster, deployment, comm, client, handle = make_env()
    client.all_reduce(handle, 8 * MB)
    deployment.run()
    deployment.reconfigure(
        comm.comm_id,
        ring=[2, 1, 0],
        delays=[0.010, 0.0, 0.0],
        barrier_enabled=False,
    )
    deployment.run(until=cluster.sim.now + 0.001)  # ranks 1,2 updated; rank 0 not
    ar1 = client.all_reduce(handle, 8 * MB)
    deployment.run()
    assert ar1.completed
    assert not comm.instances[1].consistent
    assert comm.inconsistent_collectives == 1
    assert set(comm.instances[1].rank_versions.values()) == {0, 1}


def test_strict_mode_raises_on_inconsistency():
    cluster, deployment, comm, client, handle = make_env(strict=True)
    client.all_reduce(handle, 8 * MB)
    deployment.run()
    deployment.reconfigure(
        comm.comm_id, ring=[2, 1, 0], delays=[0.010, 0.0, 0.0],
        barrier_enabled=False,
    )
    deployment.run(until=cluster.sim.now + 0.001)
    client.all_reduce(handle, 8 * MB)
    with pytest.raises(ReconfigurationError):
        deployment.run()


def test_no_reconfig_means_no_barrier_work():
    """Fast path: without a request there is no synchronization at all."""
    cluster, deployment, comm, client, handle = make_env()
    for _ in range(4):
        client.all_reduce(handle, 8 * MB)
    deployment.run()
    assert deployment.reconfig.sessions == []
    assert all(p.reconfigurations == 0 for p in deployment.proxies_of(comm))


def test_collectives_resume_under_new_ring():
    cluster, deployment, comm, client, handle = make_env()
    session = deployment.reconfigure(comm.comm_id, ring=[1, 0, 2])
    deployment.run()
    op = client.all_reduce(handle, 8 * MB)
    deployment.run()
    assert set(op.instance.rank_versions.values()) == {1}


def test_double_reconfigure_rejected_while_in_flight():
    cluster, deployment, comm, client, handle = make_env()
    deployment.reconfigure(comm.comm_id, ring=[2, 1, 0], delays=[0.5, 0.5, 0.5])
    with pytest.raises(ReconfigurationError):
        deployment.reconfigure(comm.comm_id, ring=[1, 0, 2])


def test_sequential_reconfigurations_allowed():
    cluster, deployment, comm, client, handle = make_env()
    deployment.reconfigure(comm.comm_id, ring=[2, 1, 0])
    deployment.run()
    session = deployment.reconfigure(comm.comm_id, ring=[1, 2, 0])
    deployment.run()
    assert session.done
    assert comm.strategy.version == 2


def test_reconfig_overhead_is_bounded():
    """Collectives stall only until the AllGather resolves (§4.2)."""
    cluster, deployment, comm, client, handle = make_env()
    ops = [client.all_reduce(handle, 8 * MB) for _ in range(2)]
    deployment.run()
    baseline = ops[1].duration()
    session = deployment.reconfigure(comm.comm_id, ring=[2, 1, 0])
    op = client.all_reduce(handle, 8 * MB)
    deployment.run()
    # Overhead: the control-ring round plus re-established connections.
    assert op.duration() <= baseline + deployment.control_latency + 1e-3
    assert session.resolve_time is not None
    assert session.resolve_time - session.issue_time >= deployment.control_latency - 1e-12


def test_route_only_reconfiguration():
    cluster, deployment, comm, client, handle = make_env()
    session = deployment.reconfigure(
        comm.comm_id, routes={(0, 1, 0): 1}
    )
    deployment.run()
    assert session.done
    assert comm.strategy.route_map() == {(0, 1, 0): 1}


def test_old_connections_torn_down_after_drain():
    cluster, deployment, comm, client, handle = make_env()
    client.all_reduce(handle, 8 * MB)
    deployment.run()
    assert comm.datapath.live_versions() == [0]
    deployment.reconfigure(comm.comm_id, ring=[2, 1, 0])
    deployment.run()
    client.all_reduce(handle, 8 * MB)
    deployment.run()
    assert 0 not in comm.datapath.live_versions()
    assert comm.datapath.teardowns >= 1


def test_contribute_twice_rejected():
    cluster, deployment, comm, client, handle = make_env()
    session = deployment.reconfigure(
        comm.comm_id, ring=[2, 1, 0], delays=[1.0, 1.0, 1.0]
    )
    deployment.run(until=0.0)
    session.contribute(0, -1)
    with pytest.raises(ReconfigurationError):
        session.contribute(0, -1)
