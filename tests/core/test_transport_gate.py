"""Traffic gating mechanism (TS windows) tests."""

import pytest

from repro.core.transport import TrafficGateManager, WindowSchedule
from repro.netsim.engine import FlowSimulator
from repro.netsim.topology import Topology


@pytest.fixture
def sim():
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    topo.add_link("a", "b", 8.0)
    return FlowSimulator(topo)


# -- WindowSchedule -------------------------------------------------------------
def test_schedule_validation():
    with pytest.raises(ValueError):
        WindowSchedule(period=0.0, open_intervals=())
    with pytest.raises(ValueError):
        WindowSchedule(period=1.0, open_intervals=((0.5, 0.2),))
    with pytest.raises(ValueError):
        WindowSchedule(period=1.0, open_intervals=((0.0, 0.6), (0.5, 0.9)))


def test_is_open_within_period():
    s = WindowSchedule(period=1.0, open_intervals=((0.25, 0.75),))
    assert not s.is_open(0.0)
    assert s.is_open(0.5)
    assert not s.is_open(0.9)
    assert s.is_open(1.5)  # wraps


def test_phase_offset():
    s = WindowSchedule(period=1.0, open_intervals=((0.0, 0.5),), t0=0.25)
    assert s.is_open(0.3)
    assert not s.is_open(0.8)


def test_next_toggle():
    s = WindowSchedule(period=1.0, open_intervals=((0.25, 0.75),))
    assert s.next_toggle(0.0) == pytest.approx(0.25)
    assert s.next_toggle(0.3) == pytest.approx(0.75)
    assert s.next_toggle(0.8) == pytest.approx(1.25)


# -- TrafficGateManager ---------------------------------------------------------
def closed_then_open(period=1.0, open_from=0.5):
    return WindowSchedule(period=period, open_intervals=((open_from, period),))


def test_flow_registered_while_closed_is_gated(sim):
    gates = TrafficGateManager(sim)
    gates.set_schedule("app", closed_then_open())
    flow = sim.add_flow(4.0, ["a->b"], job_id="app")
    gates.register(flow)
    assert flow.gated
    sim.run()
    # gated for 0.5 s, then 4 bytes at 8 B/s -> completes at 1.0
    assert flow.end_time == pytest.approx(1.0)


def test_flow_of_unscheduled_app_unaffected(sim):
    gates = TrafficGateManager(sim)
    gates.set_schedule("app", closed_then_open())
    flow = sim.add_flow(8.0, ["a->b"], job_id="other")
    gates.register(flow)
    assert not flow.gated
    sim.run()
    assert flow.end_time == pytest.approx(1.0)


def test_gating_toggles_mid_flight(sim):
    gates = TrafficGateManager(sim)
    # open [0, 0.5), closed [0.5, 1.0)
    gates.set_schedule(
        "app", WindowSchedule(period=1.0, open_intervals=((0.0, 0.5),))
    )
    flow = sim.add_flow(8.0, ["a->b"], job_id="app")
    gates.register(flow)
    sim.run()
    # 4 bytes in [0,0.5), blocked [0.5,1.0), 4 bytes in [1.0,1.5)
    assert flow.end_time == pytest.approx(1.5)
    assert gates.gate_transitions >= 2


def test_clearing_schedule_releases_flows(sim):
    gates = TrafficGateManager(sim)
    gates.set_schedule("app", closed_then_open(period=100.0, open_from=99.0))
    flow = sim.add_flow(8.0, ["a->b"], job_id="app")
    gates.register(flow)
    assert flow.gated
    gates.set_schedule("app", None)
    assert not flow.gated
    sim.run()
    assert flow.end_time == pytest.approx(1.0)


def test_ticker_sleeps_when_no_live_flows(sim):
    """The simulator must drain even with a schedule installed."""
    gates = TrafficGateManager(sim)
    gates.set_schedule("app", closed_then_open())
    flow = sim.add_flow(4.0, ["a->b"], job_id="app")
    gates.register(flow)
    t = sim.run()  # must terminate (ticker stops once the flow is done)
    assert flow.completed
    assert t < 10.0


def test_gate_for_facade(sim):
    gates = TrafficGateManager(sim)
    gates.set_schedule("app", closed_then_open())
    gate = gates.gate_for("app")
    flow = sim.add_flow(4.0, ["a->b"], job_id="app")
    gate.register(flow)
    assert flow.gated


def test_schedule_of(sim):
    gates = TrafficGateManager(sim)
    schedule = closed_then_open()
    gates.set_schedule("app", schedule)
    assert gates.schedule_of("app") is schedule
    assert gates.schedule_of("ghost") is None
