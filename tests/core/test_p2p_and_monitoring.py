"""P2P transfers and provider-side network monitoring (§5 extensions)."""

import numpy as np
import pytest

from repro.cluster.specs import testbed_cluster
from repro.core.deployment import MccsDeployment
from repro.netsim.errors import CommunicatorError, InvalidBufferError
from repro.netsim.units import MB


@pytest.fixture
def env():
    cluster = testbed_cluster()
    deployment = MccsDeployment(cluster)
    client = deployment.connect("app")
    gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    comm = client.create_communicator(gpus)
    return cluster, deployment, client, comm, gpus


def test_p2p_moves_data(env):
    cluster, deployment, client, comm, gpus = env
    src = client.alloc(gpus[1], 256)
    dst = client.alloc(gpus[3], 256)
    src.view(np.float32)[:] = 42.0
    done = client.send_recv(comm, 1, 3, 256, send=src, recv=dst)
    deployment.run()
    assert done.fired
    assert np.allclose(dst.view(np.float32), 42.0)


def test_p2p_timing_uses_network(env):
    cluster, deployment, client, comm, gpus = env
    start = cluster.sim.now
    done = client.send_recv(comm, 0, 2, 64 * MB)  # cross-rack at 6.25 GB/s
    deployment.run()
    elapsed = cluster.sim.now - start
    assert elapsed >= 64 * MB / 6.25e9


def test_p2p_serializes_with_collectives(env):
    cluster, deployment, client, comm, gpus = env
    op = client.all_reduce(comm, 32 * MB)
    marks = []
    done = client.send_recv(comm, 0, 1, 1 * MB)
    done.on_fire(lambda: marks.append(cluster.sim.now))
    deployment.run()
    assert marks[0] >= op.end_time  # stream order: AR first, then P2P


def test_p2p_stream_integration(env):
    cluster, deployment, client, comm, gpus = env
    stream = client.create_stream(gpus[0])
    stream.compute(5e-3)
    client.send_recv(comm, 0, 1, 1 * MB, stream=stream)
    marks = []
    stream.add_callback(lambda: marks.append(cluster.sim.now))
    deployment.run()
    assert marks[0] >= 5e-3 + 1 * MB / 6.25e9


def test_p2p_validates_ranks(env):
    cluster, deployment, client, comm, gpus = env
    with pytest.raises(CommunicatorError):
        client.send_recv(comm, 0, 0, 64)
    with pytest.raises(CommunicatorError):
        client.send_recv(comm, 0, 9, 64)
    with pytest.raises(CommunicatorError):
        client.send_recv(comm, 0, 1, 0)


def test_p2p_validates_buffers(env):
    cluster, deployment, client, comm, gpus = env
    src = client.alloc(gpus[0], 64)
    with pytest.raises(InvalidBufferError):
        client.send_recv(comm, 0, 1, 128, send=src)


def test_p2p_intra_host(env):
    cluster, deployment, client, comm, gpus = env
    gpus0 = cluster.hosts[0].gpus
    comm2 = client.create_communicator(gpus0)
    src = client.alloc(gpus0[0], 128)
    dst = client.alloc(gpus0[1], 128)
    src.view(np.float32)[:] = 7.0
    client.send_recv(comm2, 0, 1, 128, send=src, recv=dst)
    deployment.run()
    assert np.allclose(dst.view(np.float32), 7.0)


# -- monitoring ---------------------------------------------------------------
def test_network_utilization_reports_busy_links(env):
    cluster, deployment, client, comm, gpus = env
    client.all_reduce(comm, 256 * MB)
    deployment.run(until=0.02)  # mid-flight
    utilization = deployment.network_utilization(min_utilization=0.5)
    assert utilization  # the ring is saturating its NIC links
    assert all(0.5 <= u <= 1.0 + 1e-9 for u in utilization.values())
    deployment.run()
    assert deployment.network_utilization() == {}


def test_utilization_respects_threshold(env):
    cluster, deployment, client, comm, gpus = env
    client.all_reduce(comm, 256 * MB)
    deployment.run(until=0.02)
    everything = deployment.network_utilization()
    hot_only = deployment.network_utilization(min_utilization=0.9)
    assert set(hot_only) <= set(everything)
