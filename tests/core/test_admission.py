"""Overload protection: QoS quotas, priority shedding, typed rejects."""

import pytest

from repro.core.admission import AdmissionPolicy
from repro.errors import AdmissionRejectedError, PolicyError
from repro.netsim.units import MB


def _admit(manager, deployment, gpus, app):
    state = manager.admit(app, gpus)
    client = deployment.connect(app)
    return client, client.adopt_communicator(state.comm_id)


def test_policy_validates_class_names():
    policy = AdmissionPolicy()
    assert policy.quota("low") == 4
    with pytest.raises(PolicyError, match="unknown QoS class"):
        policy.quota("bogus")


def test_tenant_quota_sheds_typed_and_counts(
    deployment, manager, four_gpus
):
    admission = deployment.configure_admission(
        AdmissionPolicy(classes=(("high", 64), ("normal", 16), ("low", 1)))
    )
    admission.set_class("A", "low")
    with pytest.raises(PolicyError):
        admission.set_class("A", "platinum")
    client, comm = _admit(manager, deployment, four_gpus, "A")

    first = client.all_reduce(comm, 1 * MB)  # fills the low-class quota
    with pytest.raises(AdmissionRejectedError, match="tenant quota"):
        client.all_reduce(comm, 1 * MB)
    assert admission.shed_total == 1 and admission.admitted_total == 1
    deployment.run()
    assert first.completed
    # In-flight work drained: the tenant is admitted again.
    second = client.all_reduce(comm, 1 * MB)
    deployment.run()
    assert second.completed
    metrics = deployment.telemetry().metrics
    assert metrics.counter("mccs_shed_total").total() == 1
    assert metrics.counter("mccs_admission_total").total() == 3
    shed = [d for d in admission.decisions if not d.admitted]
    assert len(shed) == 1 and shed[0].qos == "low" and shed[0].reason


def test_global_cap_spares_only_the_top_priority_class(
    cluster, deployment, manager
):
    admission = deployment.configure_admission(
        AdmissionPolicy(
            classes=(("high", 64), ("normal", 16), ("low", 4)),
            priority=("high", "normal", "low"),
            total_inflight=1,
        )
    )
    admission.set_class("A", "high")
    assert admission.class_of("B") == "normal"  # default class
    gpus_a = [cluster.hosts[h].gpus[0] for h in range(4)]
    gpus_b = [cluster.hosts[0].gpus[1], cluster.hosts[1].gpus[1]]
    client_a, comm_a = _admit(manager, deployment, gpus_a, "A")
    client_b, comm_b = _admit(manager, deployment, gpus_b, "B")

    client_a.all_reduce(comm_a, 1 * MB)  # cap reached, deployment-wide
    with pytest.raises(AdmissionRejectedError, match="overload"):
        client_b.all_reduce(comm_b, 1 * MB)
    # The high-priority tenant keeps being admitted under overload.
    client_a.all_reduce(comm_a, 1 * MB)
    assert admission.shed_total == 1 and admission.admitted_total == 2
    deployment.run()
    # Overload cleared: the normal-class tenant is admitted again.
    op = client_b.all_reduce(comm_b, 1 * MB)
    deployment.run()
    assert op.completed


def test_shed_surfaces_in_resilience_summary(deployment, manager, four_gpus):
    admission = deployment.configure_admission(
        AdmissionPolicy(classes=(("high", 64), ("normal", 16), ("low", 1)))
    )
    admission.set_class("A", "low")
    client, comm = _admit(manager, deployment, four_gpus, "A")
    client.all_reduce(comm, 1 * MB)
    with pytest.raises(AdmissionRejectedError):
        client.all_reduce(comm, 1 * MB)
    deployment.run()
    lines = deployment.telemetry().summary_lines()
    assert "resilience.shed = 1" in lines
    assert any(line.startswith("resilience.journal_records = ") for line in lines)
    stats = deployment.resilience_stats()
    assert stats["shed"] == 1 and stats["admitted"] >= 1
