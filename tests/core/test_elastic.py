"""Elastic membership: live grow/shrink of communicators.

Unit coverage for :mod:`repro.core.elastic` — the drain/quiesce/cutover
state machine, the joiner handshake (admission + staging buffers), the
deterministic survivor renumbering, the journal record, and the chaos
entry points the fault injector drives.  The experiment-level bars live
in ``tests/experiments/test_elastic.py`` and the WAN interleaving
property in ``tests/chaos``.
"""

import numpy as np
import pytest

from repro.core.admission import AdmissionPolicy
from repro.core.elastic import MIN_WORLD, ElasticPolicy
from repro.core.recovery import RecoveryPolicy
from repro.errors import AdmissionRejectedError, MembershipChangeError
from repro.faults import FaultInjector, FaultPlan
from repro.netsim.units import MB


def _admit(manager, deployment, gpus, app="A"):
    state = manager.admit(app, gpus)
    client = deployment.connect(app)
    return client, client.adopt_communicator(state.comm_id)


def _byte_exact(deployment, client, comm):
    svc = deployment.communicator(comm.comm_id)
    gpus = list(svc.gpus)
    sends = [client.alloc(g, 256) for g in gpus]
    recvs = [client.alloc(g, 256) for g in gpus]
    for buf in sends:
        buf.view(np.float32)[:] = 2.0
    op = client.all_reduce(
        comm, 256, send=[b.ref() for b in sends], recv=[b.ref() for b in recvs]
    )
    deployment.run()
    assert op.completed
    assert all(np.allclose(r.view(np.float32), 2.0 * len(gpus)) for r in recvs)
    for buf in sends + recvs:
        client.free(buf)
    deployment.run()


# ----------------------------------------------------------------------
# grow
# ----------------------------------------------------------------------
def test_grow_commits_and_bumps_epoch(cluster, deployment, manager, four_gpus):
    elastic = deployment.enable_elasticity()
    client, comm = _admit(manager, deployment, four_gpus)
    joiner = cluster.hosts[0].gpus[1]
    done = []
    record = elastic.grow(comm.comm_id, [joiner], on_done=done.append)
    deployment.run()

    assert done == [record]
    assert record.state == "done" and record.kind == "rank_join"
    assert record.world_before == 4 and record.world_after == 5
    assert record.joined == [joiner.global_id]
    svc = deployment.communicator(comm.comm_id)
    assert svc.world == 5
    assert svc.membership_epoch == record.epoch == 1
    # Joiners are appended: survivors keep their relative rank order.
    assert [g.global_id for g in svc.gpus[:4]] == [
        g.global_id for g in four_gpus
    ]
    assert svc.gpus[4] is joiner
    _byte_exact(deployment, client, client.adopt_communicator(comm.comm_id))
    metrics = deployment.telemetry().metrics
    assert (
        metrics.counter("mccs_membership_changes_total").value(
            app="A", kind="rank_join"
        )
        == 1
    )


def test_grow_mid_traffic_drains_then_cuts_over(
    cluster, deployment, manager, four_gpus
):
    """A grow issued while collectives are in flight quiesces first."""
    elastic = deployment.enable_elasticity()
    client, comm = _admit(manager, deployment, four_gpus)
    ops = [client.all_reduce(comm, 16 * MB) for _ in range(3)]
    record = elastic.grow(comm.comm_id, [cluster.hosts[0].gpus[1]])
    assert not record.finished  # barrier + quiesce run on the clock
    deployment.run()
    assert record.state == "done"
    assert all(op.completed for op in ops)  # drained, never aborted
    assert deployment.communicator(comm.comm_id).world == 5


def test_grow_validation_errors(cluster, deployment, manager, four_gpus):
    elastic = deployment.enable_elasticity()
    client, comm = _admit(manager, deployment, four_gpus)
    spare = cluster.hosts[0].gpus[1]
    with pytest.raises(MembershipChangeError, match="at least one"):
        elastic.grow(comm.comm_id, [])
    with pytest.raises(MembershipChangeError, match="already a member"):
        elastic.grow(comm.comm_id, [four_gpus[0]])
    with pytest.raises(MembershipChangeError, match="listed twice"):
        elastic.grow(comm.comm_id, [spare, spare])
    deployment.crash_service(3)
    cluster.hosts[3].alive = False
    with pytest.raises(MembershipChangeError, match="crashed host"):
        elastic.grow(comm.comm_id, [cluster.hosts[3].gpus[1]])


def test_grow_sheds_through_admission(cluster, deployment, manager, four_gpus):
    deployment.configure_admission(
        AdmissionPolicy(classes=(("zero", 0),), priority=("zero",),
                        default_class="zero")
    )
    elastic = deployment.enable_elasticity()
    client, comm = _admit(manager, deployment, four_gpus)
    before = cluster.hosts[0].gpus[1].memory_used
    with pytest.raises(AdmissionRejectedError):
        elastic.grow(comm.comm_id, [cluster.hosts[0].gpus[1]])
    # Rejected before the handshake allocated anything.
    assert cluster.hosts[0].gpus[1].memory_used == before
    assert deployment.communicator(comm.comm_id).world == 4


def test_failed_grow_releases_staging_buffers(
    cluster, deployment, manager, four_gpus
):
    """A drain that exhausts its attempts frees the joiner's staging."""
    elastic = deployment.enable_elasticity(
        ElasticPolicy(max_drain_attempts=0)
    )
    client, comm = _admit(manager, deployment, four_gpus)
    joiner = cluster.hosts[0].gpus[1]
    before = joiner.memory_used
    failed = []
    record = elastic.grow(comm.comm_id, [joiner], on_failed=failed.append)
    deployment.run()
    assert failed == [record] and record.state == "failed"
    assert isinstance(record.error, MembershipChangeError)
    assert joiner.memory_used == before  # staging handed back
    assert deployment.communicator(comm.comm_id).world == 4
    metrics = deployment.telemetry().metrics
    assert (
        metrics.counter("mccs_membership_failures_total").value(
            app="A", kind="rank_join"
        )
        == 1
    )


# ----------------------------------------------------------------------
# shrink
# ----------------------------------------------------------------------
def test_shrink_renumbers_survivors_deterministically(
    cluster, deployment, manager, four_gpus
):
    elastic = deployment.enable_elasticity()
    client, comm = _admit(manager, deployment, four_gpus)
    record = elastic.shrink(comm.comm_id, [1])
    deployment.run()
    assert record.state == "done" and record.kind == "rank_leave"
    assert record.left == [four_gpus[1].global_id]
    svc = deployment.communicator(comm.comm_id)
    assert svc.world == 3 and svc.membership_epoch == 1
    # Ranks compact downward, preserving relative order.
    assert [g.global_id for g in svc.gpus] == [
        four_gpus[0].global_id,
        four_gpus[2].global_id,
        four_gpus[3].global_id,
    ]
    _byte_exact(deployment, client, client.adopt_communicator(comm.comm_id))


def test_shrink_validation_errors(cluster, deployment, manager, four_gpus):
    elastic = deployment.enable_elasticity()
    client, comm = _admit(manager, deployment, four_gpus)
    with pytest.raises(MembershipChangeError, match="at least one"):
        elastic.shrink(comm.comm_id, [])
    with pytest.raises(MembershipChangeError, match="out of range"):
        elastic.shrink(comm.comm_id, [4])
    with pytest.raises(MembershipChangeError, match=f"< {MIN_WORLD}"):
        elastic.shrink(comm.comm_id, [0, 1, 2])


def test_one_operation_in_flight_per_communicator(
    cluster, deployment, manager, four_gpus
):
    elastic = deployment.enable_elasticity()
    client, comm = _admit(manager, deployment, four_gpus)
    elastic.shrink(comm.comm_id, [3])
    assert elastic.inflight(comm.comm_id) is not None
    with pytest.raises(MembershipChangeError, match="in flight"):
        elastic.shrink(comm.comm_id, [2])
    deployment.run()
    assert elastic.inflight(comm.comm_id) is None


# ----------------------------------------------------------------------
# journal + crash/restart
# ----------------------------------------------------------------------
def test_membership_survives_crash_restart(
    cluster, deployment, manager, four_gpus
):
    deployment.enable_recovery(RecoveryPolicy())
    elastic = deployment.enable_elasticity()
    client, comm = _admit(manager, deployment, four_gpus)
    elastic.grow(comm.comm_id, [cluster.hosts[0].gpus[1]])
    deployment.run()
    elastic.shrink(comm.comm_id, [0])
    deployment.run()
    changes = [
        rec for rec in deployment.journal.records()
        if rec.op == "membership_change"
    ]
    assert [rec.payload["kind"] for rec in changes] == [
        "rank_join",
        "rank_leave",
    ]
    assert deployment.verify_journal() == []

    deployment.crash_service(1)
    deployment.service_of(1).restart()
    deployment.run()
    assert deployment.verify_journal() == []
    svc = deployment.communicator(comm.comm_id)
    assert svc.world == 4 and svc.membership_epoch == 2
    _byte_exact(deployment, client, client.adopt_communicator(comm.comm_id))


def test_membership_notifies_recovery(cluster, deployment, manager, four_gpus):
    recovery = deployment.enable_recovery(RecoveryPolicy())
    elastic = deployment.enable_elasticity()
    client, comm = _admit(manager, deployment, four_gpus)
    elastic.shrink(comm.comm_id, [3])
    deployment.run()
    assert any(
        e["event"] == "membership_changed" and "rank_leave" in e["detail"]
        for e in recovery.audit
    )


# ----------------------------------------------------------------------
# chaos entry points
# ----------------------------------------------------------------------
def test_chaos_helpers_pick_deterministically(
    cluster, deployment, manager, four_gpus
):
    elastic = deployment.enable_elasticity()
    client, comm = _admit(manager, deployment, four_gpus)
    assert elastic.chaos_grow()  # lowest spare alive GPU joins
    deployment.run()
    svc = deployment.communicator(comm.comm_id)
    spare = min(
        g.global_id for g in cluster.gpus
        if g.global_id not in {x.global_id for x in four_gpus}
    )
    assert svc.gpus[-1].global_id == spare
    assert elastic.chaos_shrink()  # highest rank leaves
    deployment.run()
    assert deployment.communicator(comm.comm_id).world == 4


def test_chaos_helpers_never_raise_without_targets(cluster, deployment):
    elastic = deployment.enable_elasticity()
    assert not elastic.chaos_shrink()  # no communicators at all
    assert not elastic.chaos_grow()
    assert not elastic.chaos_shrink(comm_id=999)


def test_fault_plan_membership_kinds_drive_elastic(
    cluster, deployment, manager, four_gpus
):
    """rank_join / rank_leave fault events reach the coordinator."""
    deployment.enable_elasticity()
    client, comm = _admit(manager, deployment, four_gpus)
    injector = FaultInjector(
        cluster, deployment=deployment, telemetry=deployment.telemetry()
    )
    plan = FaultPlan().rank_join(0.01).rank_leave(0.05)
    injector.schedule(plan)
    client.all_reduce(comm, 4 * MB)
    deployment.run()
    svc = deployment.communicator(comm.comm_id)
    assert svc.membership_epoch == 2  # one join + one leave committed
    assert svc.world == 4
    assert deployment.verify_journal() == []
