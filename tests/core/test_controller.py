"""Centralized manager tests (the §4.3 external controller)."""

import pytest

from repro.cluster.specs import ring_cluster, testbed_cluster
from repro.core.controller import CentralManager
from repro.core.deployment import MccsDeployment
from repro.netsim.background import BackgroundTrafficManager
from repro.netsim.errors import PolicyError
from repro.netsim.units import MB


@pytest.fixture
def env():
    cluster = testbed_cluster()
    deployment = MccsDeployment(cluster)
    return cluster, deployment, CentralManager(deployment)


def test_admit_installs_locality_ring(env):
    cluster, deployment, manager = env
    gpus = [g for h in (3, 1, 0, 2) for g in cluster.hosts[h].gpus]
    comm = manager.admit("A", gpus)
    hosts = [comm.gpus[r].host_id for r in comm.strategy.ring.order]
    assert hosts == [0, 0, 1, 1, 2, 2, 3, 3]
    assert comm.strategy.channels == 2


def test_manage_admissions_hooks_tenant_path(env):
    cluster, deployment, manager = env
    manager.manage_admissions()
    client = deployment.connect("A")
    gpus = [cluster.hosts[h].gpus[0] for h in (0, 2, 1, 3)]
    comm = client.create_communicator(gpus)
    state = deployment.communicator(comm.comm_id)
    hosts = [state.gpus[r].host_id for r in state.strategy.ring.order]
    assert hosts == [0, 1, 2, 3]


def test_apply_ring_policy_fixes_bad_rings(env):
    cluster, deployment, manager = env
    gpus = [cluster.hosts[h].gpus[0] for h in (0, 2, 1, 3)]
    comm = deployment.create_communicator("A", gpus)
    report = manager.apply_ring_policy()
    deployment.run()
    assert comm.comm_id in report.reconfigured_comms
    hosts = [comm.gpus[r].host_id for r in comm.strategy.ring.order]
    assert hosts == [0, 1, 2, 3]
    # a second pass is a no-op
    report2 = manager.apply_ring_policy()
    assert report2.reconfigured_comms == []


def test_apply_flow_policy_ffa_and_back_to_ecmp(env):
    cluster, deployment, manager = env
    manager.admit("A", [cluster.hosts[0].gpus[0], cluster.hosts[2].gpus[0]])
    manager.admit("B", [cluster.hosts[1].gpus[0], cluster.hosts[3].gpus[0]])
    report = manager.apply_flow_policy("ffa")
    deployment.run()
    assert len(report.reconfigured_comms) == 2
    assert all(c.strategy.route_map() for c in deployment.communicators())
    report = manager.apply_flow_policy("ecmp")
    deployment.run()
    assert all(not c.strategy.route_map() for c in deployment.communicators())


def test_apply_flow_policy_pfa(env):
    cluster, deployment, manager = env
    a = manager.admit("A", [cluster.hosts[0].gpus[0], cluster.hosts[2].gpus[0]])
    manager.admit("B", [cluster.hosts[1].gpus[0], cluster.hosts[3].gpus[0]])
    manager.apply_flow_policy("pfa", high_priority_apps=["A"], reserved_routes={0})
    deployment.run()
    assert all(r == 0 for r in a.strategy.route_map().values())


def test_unknown_flow_policy(env):
    cluster, deployment, manager = env
    with pytest.raises(PolicyError):
        manager.apply_flow_policy("chaos")


def test_policy_reports_accumulate(env):
    cluster, deployment, manager = env
    manager.admit("A", [cluster.hosts[0].gpus[0], cluster.hosts[2].gpus[0]])
    manager.apply_flow_policy("ffa")
    deployment.run()
    assert [r.policy for r in manager.reports] == ["ffa"]
    assert manager.reports[0].compute_seconds >= 0


def test_prioritize_with_ts_gates_selected_apps(env):
    cluster, deployment, manager = env
    a = manager.admit("A", [cluster.hosts[0].gpus[0], cluster.hosts[2].gpus[0]])
    manager.admit("B", [cluster.hosts[1].gpus[0], cluster.hosts[3].gpus[0]])
    manager.admit("C", [cluster.hosts[0].gpus[1], cluster.hosts[2].gpus[1]])
    client = deployment.connect("A")
    handle = client.adopt_communicator(a.comm_id)
    for _ in range(5):
        client.all_reduce(handle, 32 * MB)
    deployment.run()
    manager.prioritize_with_ts("A", affected_apps=["C"])
    assert deployment.gates.schedule_of("C") is not None
    assert deployment.gates.schedule_of("B") is None
    manager.clear_traffic_schedules()
    assert deployment.gates.schedule_of("C") is None


def test_prioritize_without_trace_raises(env):
    cluster, deployment, manager = env
    with pytest.raises(PolicyError):
        manager.prioritize_with_ts("ghost")


def test_adapt_to_background_reverses_ring():
    cluster = ring_cluster()
    deployment = MccsDeployment(cluster)
    background = BackgroundTrafficManager(cluster.sim)
    manager = CentralManager(deployment, background=background)
    gpus = [g for host in cluster.hosts for g in host.gpus]
    comm = manager.admit("T", gpus)
    background.occupy("sw1->sw2", 75.0)
    session = manager.adapt_to_background(comm.comm_id)
    deployment.run()
    assert session is not None and session.done
    assert comm.strategy.ring.order == tuple(reversed(range(8)))


def test_adapt_noop_when_no_better_ring():
    cluster = ring_cluster()
    deployment = MccsDeployment(cluster)
    background = BackgroundTrafficManager(cluster.sim)
    manager = CentralManager(deployment, background=background)
    gpus = [g for host in cluster.hosts for g in host.gpus]
    comm = manager.admit("T", gpus)
    assert manager.adapt_to_background(comm.comm_id) is None


def test_adapt_requires_background_manager(env):
    cluster, deployment, manager = env
    comm = manager.admit("A", [cluster.hosts[0].gpus[0], cluster.hosts[2].gpus[0]])
    with pytest.raises(PolicyError):
        manager.adapt_to_background(comm.comm_id)


def test_watch_background_auto_recovers():
    """The automated Figure 7 loop: no explicit reconfigure call — the
    manager polls the switch agent and re-rings the job on its own."""
    cluster = ring_cluster()
    deployment = MccsDeployment(cluster)
    background = BackgroundTrafficManager(cluster.sim)
    manager = CentralManager(deployment, background=background)
    gpus = [g for host in cluster.hosts for g in host.gpus]
    comm = manager.admit("T", gpus)
    client = deployment.connect("T")
    handle = client.adopt_communicator(comm.comm_id)
    samples = []

    def loop(instance=None, now=None):
        if instance is not None:
            samples.append((now, 128 * MB / instance.duration() / 1e9))
        if cluster.sim.now < 8.0:
            client.all_reduce(handle, 128 * MB, on_complete=loop)

    loop()
    cluster.sim.schedule(2.0, lambda: background.occupy("sw1->sw2", 75.0))
    manager.watch_background(interval=0.5, until=8.0)
    deployment.run(until=9.0)
    # the watcher must have flipped the ring within one poll interval
    assert comm.strategy.ring.order == tuple(reversed(range(8)))
    late = [bw for t, bw in samples if t > 4.0]
    early = [bw for t, bw in samples if t < 2.0]
    assert sum(late) / len(late) == pytest.approx(sum(early) / len(early), rel=0.1)


def test_watch_background_requires_manager():
    cluster = ring_cluster()
    deployment = MccsDeployment(cluster)
    manager = CentralManager(deployment)
    with pytest.raises(PolicyError):
        manager.watch_background(until=1.0)
