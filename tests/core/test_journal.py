"""Write-ahead state journal: schema, round-trip, compaction, replay.

The property test at the bottom is the crash-consistency contract of the
robustness tentpole: executing any prefix of a control-op program, then
crashing and journal-restarting a service, then finishing the program,
must leave the control plane byte-for-byte equal (buffer tables,
communicator epochs, strategy versions, issue frontiers) to a run that
never crashed.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.specs import testbed_cluster
from repro.core.controller import CentralManager
from repro.core.deployment import MccsDeployment
from repro.core.journal import StateJournal, replay_journal
from repro.errors import JournalError
from repro.netsim.units import MB


# ----------------------------------------------------------------------
# record schema and serialization
# ----------------------------------------------------------------------
def test_append_rejects_unknown_op():
    journal = StateJournal()
    with pytest.raises(JournalError, match="unknown journal op"):
        journal.append(0.0, "nonsense", x=1)


def test_append_rejects_non_serializable_payload():
    journal = StateJournal()
    with pytest.raises(JournalError, match="not JSON-serializable"):
        journal.append(0.0, "alloc", buffer_id=object())


def test_json_round_trip_preserves_records_and_seq():
    journal = StateJournal()
    journal.append(0.0, "alloc", app="A", host=0, gpu=0, buffer_id=1,
                   size=256, handle_id=7)
    journal.append(0.001, "free", app="A", host=0, buffer_id=1)
    clone = StateJournal.from_json(journal.to_json())
    assert clone.records() == journal.records()
    # The sequence counter continues past the restored records.
    record = clone.append(0.002, "service_crash", host=0, generation=0)
    assert record.seq == 2


def test_replay_rejects_dangling_references():
    journal = StateJournal()
    journal.append(0.0, "free", app="A", host=0, buffer_id=99)
    with pytest.raises(JournalError, match="unknown buffer"):
        replay_journal(journal.records())
    journal2 = StateJournal()
    journal2.append(0.0, "collective_issued", app="A", comm_id=5, seq=0,
                    kind="all_reduce", bytes=256)
    with pytest.raises(JournalError, match="unknown comm"):
        replay_journal(journal2.records())


# ----------------------------------------------------------------------
# every control op is journaled, and replay matches the live graph
# ----------------------------------------------------------------------
def test_control_ops_are_journaled_and_replay_consistent(
    deployment, manager, four_gpus
):
    state = manager.admit("A", four_gpus)
    client = deployment.connect("A")
    comm = client.adopt_communicator(state.comm_id)
    buf = client.alloc(four_gpus[0], 256)
    keep = client.alloc(four_gpus[1], 512)
    client.all_reduce(comm, 1 * MB)
    deployment.run()
    deployment.reconfigure(
        comm.comm_id,
        routes=deployment.communicator(comm.comm_id).strategy.route_map(),
    )
    deployment.run()
    client.free(buf)

    ops = {record.op for record in deployment.journal.records()}
    assert {
        "create_communicator",
        "install_strategy",
        "alloc",
        "free",
        "collective_issued",
    } <= ops
    assert deployment.verify_journal() == []
    live = deployment.control_state()
    assert keep.buffer_id in live.buffers
    assert buf.buffer_id not in live.buffers


def test_compaction_drops_superseded_history(deployment, manager, four_gpus):
    state = manager.admit("A", four_gpus)
    client = deployment.connect("A")
    comm = client.adopt_communicator(state.comm_id)
    # Garbage: alloc/free pairs and several superseded issue records.
    for _ in range(3):
        client.free(client.alloc(four_gpus[0], 256))
    for _ in range(4):
        client.all_reduce(comm, 256)
        deployment.run()
    survivor = client.alloc(four_gpus[2], 1024)

    before = len(deployment.journal)
    state_before = replay_journal(deployment.journal.records())
    removed = deployment.journal.compact()
    assert removed > 0
    assert len(deployment.journal) == before - removed
    # Compaction is semantics-preserving: replay state is unchanged, and
    # the live graph still matches it.
    assert replay_journal(deployment.journal.records()) == state_before
    assert deployment.verify_journal() == []
    assert survivor.buffer_id in deployment.control_state().buffers


def test_destroyed_communicator_history_is_compacted(
    deployment, manager, four_gpus
):
    state = manager.admit("A", four_gpus)
    client = deployment.connect("A")
    comm = client.adopt_communicator(state.comm_id)
    client.all_reduce(comm, 256)
    deployment.run()
    client.destroy_communicator(comm)
    deployment.journal.compact()
    comm_ops = [
        record.op
        for record in deployment.journal.records()
        if record.payload.get("comm_id") == state.comm_id
    ]
    assert comm_ops == []
    assert deployment.verify_journal() == []


# ----------------------------------------------------------------------
# the crash-consistency property
# ----------------------------------------------------------------------
_OPS = ("alloc", "free", "collective", "reconfig")


def _run_program(ops, crash_at=None, crash_host=None):
    """Execute a control-op program; optionally crash+restart mid-way.

    Returns the final :class:`ControlPlaneState` of the live graph, after
    asserting it matches a pure journal replay.
    """
    cluster = testbed_cluster()
    deployment = MccsDeployment(cluster)
    manager = CentralManager(deployment)
    gpus = [cluster.hosts[h].gpus[0] for h in range(2)]
    state = manager.admit("A", gpus)
    client = deployment.connect("A")
    comm = client.adopt_communicator(state.comm_id)
    live = []
    for step in range(len(ops) + 1):
        if crash_at is not None and step == crash_at:
            deployment.crash_service(crash_host)
            replayed = deployment.restart_service(crash_host)
            assert replayed > 0  # at minimum create_communicator
        if step == len(ops):
            break
        op = ops[step]
        if op == "alloc":
            live.append(client.alloc(gpus[step % 2], 256 * (step + 1)))
        elif op == "free":
            if live:
                client.free(live.pop(0))
        elif op == "collective":
            issued = client.all_reduce(comm, 1 * MB)
            deployment.run()
            assert issued.completed
        elif op == "reconfig":
            deployment.reconfigure(
                comm.comm_id,
                routes=deployment.communicator(
                    comm.comm_id
                ).strategy.route_map(),
            )
            deployment.run()
    deployment.run()
    assert deployment.verify_journal() == []
    return deployment.control_state()


def _canonical(state):
    """Replace process-global ids (buffer, comm, IPC handle) by their
    allocation order, so two independent runs become comparable.  Route
    ids and strategy versions are per-run deterministic already."""
    buffers = {}
    handle_ids = {h: i for i, h in enumerate(
        sorted(info["handle"] for info in state.buffers.values())
    )}
    for index, buffer_id in enumerate(sorted(state.buffers)):
        info = dict(state.buffers[buffer_id])
        info["handle"] = handle_ids[info["handle"]]
        buffers[index] = info
    communicators = {
        index: state.communicators[comm_id]
        for index, comm_id in enumerate(sorted(state.communicators))
    }
    return buffers, communicators


@given(
    ops=st.lists(st.sampled_from(_OPS), min_size=1, max_size=8),
    crash_at=st.integers(min_value=0, max_value=8),
    crash_host=st.sampled_from([0, 1]),
)
@settings(max_examples=15, deadline=None, derandomize=True)
def test_any_prefix_crash_recover_equals_never_crashed(
    ops, crash_at, crash_host
):
    crash_at = min(crash_at, len(ops))
    baseline = _run_program(ops)
    recovered = _run_program(ops, crash_at=crash_at, crash_host=crash_host)
    assert _canonical(baseline) == _canonical(recovered)
