"""Policy module tests: ring ordering, FFA, PFA, TS (§4.3)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.specs import custom_cluster, testbed_cluster
from repro.core.deployment import MccsDeployment
from repro.core.policies.ffa import collect_demands, fair_flow_assignment
from repro.core.policies.pfa import priority_flow_assignment
from repro.core.policies.ring_order import (
    cross_rack_flows,
    cross_rack_ratio,
    expected_random_cross_rack_ratio,
    locality_ring_order,
    optimal_cross_rack_flows,
    random_host_major_order,
)
from repro.core.policies.ts import analyze_trace, compute_traffic_schedule
from repro.core.tracing import CommTrace
from repro.collectives.types import Collective
from repro.netsim.errors import PolicyError


# -- Example #1: locality rings ------------------------------------------------
def test_locality_order_groups_hosts_and_racks():
    cl = testbed_cluster()
    gpus = [g for h in (2, 0, 3, 1) for g in cl.hosts[h].gpus]
    order = locality_ring_order(cl, gpus)
    hosts = [gpus[r].host_id for r in order]
    assert hosts == [0, 0, 1, 1, 2, 2, 3, 3]


def test_locality_order_minimizes_cross_rack():
    cl = testbed_cluster()
    gpus = [g for h in range(4) for g in cl.hosts[h].gpus]
    order = locality_ring_order(cl, gpus)
    assert cross_rack_flows(cl, gpus, order) == optimal_cross_rack_flows(cl, gpus)
    assert cross_rack_ratio(cl, gpus, order) == 1.0


def test_single_rack_job_has_ratio_one():
    cl = testbed_cluster()
    gpus = [g for h in (0, 1) for g in cl.hosts[h].gpus]
    assert optimal_cross_rack_flows(cl, gpus) == 0
    anything = list(range(len(gpus)))
    assert cross_rack_ratio(cl, gpus, anything) == 1.0


def test_worst_case_ring_doubles_cross_rack():
    cl = testbed_cluster()  # 2 hosts/rack
    gpus = [cl.hosts[h].gpus[0] for h in range(4)]
    alternating = [0, 2, 1, 3]  # rack 0,1,0,1
    assert cross_rack_flows(cl, gpus, alternating) == 4
    assert cross_rack_ratio(cl, gpus, alternating) == 2.0


def test_expected_ratio_formula_limits():
    # paper: worst case 2x at 2 hosts/rack, 4x at 4 hosts/rack
    assert expected_random_cross_rack_ratio(2, 512) == pytest.approx(2.0, rel=0.01)
    assert expected_random_cross_rack_ratio(4, 1024) == pytest.approx(4.0, rel=0.01)
    assert expected_random_cross_rack_ratio(2, 2) == 1.0


def test_expected_ratio_formula_matches_monte_carlo():
    hosts_per_rack, num_hosts = 4, 16
    rng = random.Random(0)
    racks = num_hosts // hosts_per_rack
    total = 0.0
    trials = 4000
    for _ in range(trials):
        order = list(range(num_hosts))
        rng.shuffle(order)
        cross = sum(
            1
            for i in range(num_hosts)
            if order[i] // hosts_per_rack != order[(i + 1) % num_hosts] // hosts_per_rack
        )
        total += cross / racks
    assert total / trials == pytest.approx(
        expected_random_cross_rack_ratio(hosts_per_rack, num_hosts), rel=0.03
    )


def test_expected_ratio_rejects_ragged_packing():
    with pytest.raises(ValueError):
        expected_random_cross_rack_ratio(4, 10)


def test_random_host_major_order_keeps_hosts_contiguous():
    cl = testbed_cluster()
    gpus = [g for h in range(4) for g in cl.hosts[h].gpus]
    order = random_host_major_order(gpus, random.Random(3))
    hosts = [gpus[r].host_id for r in order]
    for i in range(0, len(hosts), 2):
        assert hosts[i] == hosts[i + 1]


# -- Examples #2/#3: FFA / PFA ----------------------------------------------------
def make_two_tenants():
    cl = testbed_cluster()
    dep = MccsDeployment(cl)
    a = dep.create_communicator("A", [cl.hosts[0].gpus[0], cl.hosts[2].gpus[0]])
    b = dep.create_communicator("B", [cl.hosts[1].gpus[0], cl.hosts[3].gpus[0]])
    return cl, dep, a, b


def test_collect_demands_skips_intra_host():
    cl = testbed_cluster()
    dep = MccsDeployment(cl)
    comm = dep.create_communicator("A", cl.hosts[0].gpus)
    assert collect_demands(cl, comm) == []


def test_collect_demands_inter_host():
    cl, dep, a, b = make_two_tenants()
    demands = collect_demands(cl, a)
    assert len(demands) == 2  # one flow per ring direction
    assert all(len(d.paths) == 2 for d in demands)


def test_ffa_spreads_competing_flows():
    """Two tenants with one cross-rack flow per direction each: FFA must
    put them on different spines (no collision)."""
    cl, dep, a, b = make_two_tenants()
    assignments = fair_flow_assignment(cl, [a, b])
    # direction rack0->rack1: A's flow and B's flow must differ in route
    route_a = assignments[a.comm_id][(0, 1, 0)]
    route_b = assignments[b.comm_id][(0, 1, 0)]
    assert route_a != route_b


def test_ffa_assigns_every_interhost_connection():
    cl, dep, a, b = make_two_tenants()
    assignments = fair_flow_assignment(cl, [a, b])
    for comm in (a, b):
        assert set(assignments[comm.comm_id]) == {
            d.key for d in collect_demands(cl, comm)
        }


def test_ffa_round_robin_is_fair_under_asymmetry():
    """Three tenants, two routes: each route ends up with at most 2 flows
    per direction (no tenant starves)."""
    cl = testbed_cluster()
    dep = MccsDeployment(cl)
    comms = [
        dep.create_communicator("A", [cl.hosts[0].gpus[0], cl.hosts[2].gpus[0]]),
        dep.create_communicator("B", [cl.hosts[1].gpus[0], cl.hosts[3].gpus[0]]),
        dep.create_communicator("C", [cl.hosts[0].gpus[1], cl.hosts[2].gpus[1]]),
    ]
    assignments = fair_flow_assignment(cl, comms)
    loads = {}
    for comm in comms:
        for (src, dst, ch), route in assignments[comm.comm_id].items():
            direction = comm.gpus[src].host_id < 2
            loads[(direction, route)] = loads.get((direction, route), 0) + 1
    assert max(loads.values()) <= 2


def test_pfa_reserves_route_for_priority_tenant():
    cl, dep, a, b = make_two_tenants()
    assignments = priority_flow_assignment(
        cl, [a, b], high_priority_apps=["A"], reserved_routes={0}
    )
    assert all(r == 0 for r in assignments[a.comm_id].values())
    assert all(r != 0 for r in assignments[b.comm_id].values())


def test_pfa_requires_a_priority_app():
    cl, dep, a, b = make_two_tenants()
    with pytest.raises(PolicyError):
        priority_flow_assignment(cl, [a, b], high_priority_apps=[])


def test_pfa_cannot_reserve_everything():
    cl, dep, a, b = make_two_tenants()
    with pytest.raises(PolicyError):
        priority_flow_assignment(
            cl, [a, b], high_priority_apps=["A"], reserved_routes={0, 1}
        )


# -- Example #4: TS ---------------------------------------------------------------
def periodic_trace(busy=1.0, idle=2.0, cycles=5):
    trace = CommTrace(comm_id=1, app_id="B")
    t = 0.0
    for i in range(cycles):
        rec = trace.record_issue(i, Collective.ALL_REDUCE, 100, t)
        rec.start_time = t
        rec.end_time = t + busy
        t += busy + idle
    return trace


def test_ts_analysis_extracts_period():
    analysis = analyze_trace(periodic_trace())
    assert analysis.busy == pytest.approx(1.0)
    assert analysis.idle == pytest.approx(2.0)
    assert analysis.period == pytest.approx(3.0)


def test_ts_schedule_opens_during_idle():
    analysis, schedule = compute_traffic_schedule(periodic_trace())
    # during the prioritized app's busy window others are closed
    assert not schedule.is_open(analysis.phase + 0.5)
    assert schedule.is_open(analysis.phase + 1.5)


def test_ts_guard_widens_busy_window():
    a0, _ = compute_traffic_schedule(periodic_trace(), guard=0.0)
    a1, _ = compute_traffic_schedule(periodic_trace(), guard=0.1)
    assert a1.busy == pytest.approx(a0.busy + 0.2)


def test_ts_rejects_thin_traces():
    with pytest.raises(PolicyError):
        analyze_trace(periodic_trace(cycles=1))
