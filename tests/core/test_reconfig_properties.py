"""Property-based verification of the Figure 4 barrier protocol.

Hypothesis drives randomized schedules of collectives interleaved with
reconfiguration requests under arbitrary per-rank delivery delays, and
asserts the protocol's safety/liveness properties: with the barrier, no
collective ever runs with mixed strategy versions, everything completes,
and sequence numbers stay in lockstep.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.specs import testbed_cluster
from repro.core.deployment import MccsDeployment
from repro.netsim.units import MB


@st.composite
def schedule(draw):
    """A random program: phases of collectives separated by reconfigs."""
    phases = draw(st.integers(1, 3))
    program = []
    for _ in range(phases):
        program.append(
            {
                "collectives": draw(st.integers(0, 4)),
                "delays": [
                    draw(st.floats(0.0, 0.02)) for _ in range(4)
                ],
                "gap": draw(st.floats(0.0, 0.01)),
            }
        )
    tail = draw(st.integers(1, 3))
    return program, tail


@given(schedule())
@settings(max_examples=25, deadline=None)
def test_barrier_never_allows_mixed_versions(program_and_tail):
    program, tail = program_and_tail
    cluster = testbed_cluster()
    deployment = MccsDeployment(cluster, strict_consistency=True)
    gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    comm = deployment.create_communicator("app", gpus)
    client = deployment.connect("app")
    handle = client.adopt_communicator(comm.comm_id)

    ops = []
    orders = [
        (0, 1, 2, 3),
        (3, 2, 1, 0),
        (1, 0, 3, 2),
        (2, 3, 0, 1),
        (0, 2, 1, 3),
        (3, 1, 2, 0),
    ]
    for i, phase in enumerate(program):
        for _ in range(phase["collectives"]):
            ops.append(client.all_reduce(handle, 4 * MB))
        next_order = orders[(i + 1) % len(orders)]
        deployment.reconfigure(
            comm.comm_id, ring=list(next_order), delays=phase["delays"]
        )
        # issue more collectives while the request is (possibly) in flight
        deployment.run(until=cluster.sim.now + phase["gap"])
        for _ in range(tail):
            ops.append(client.all_reduce(handle, 4 * MB))
        # drain before the next phase (one reconfiguration at a time)
        deployment.run()
    deployment.run()  # strict mode would raise on any inconsistency

    # liveness: everything completed, versions advanced, seqs in lockstep
    assert all(op.completed for op in ops)
    assert comm.strategy.version == len(program)
    assert comm.inconsistent_collectives == 0
    for instance in comm.instances:
        assert instance.consistent
        assert len(instance.rank_versions) == 4
    proxies = deployment.proxies_of(comm)
    seqs = {p.launched_seq(comm.comm_id, r) for r, p in enumerate(proxies)}
    assert len(seqs) == 1  # all ranks launched the same number of ops


@given(st.lists(st.floats(0.0, 0.05), min_size=4, max_size=4), st.integers(0, 3))
@settings(max_examples=25, deadline=None)
def test_versions_are_monotone_per_rank(delays, pre_ops):
    """Each rank's observed strategy version never decreases across its
    collective launches."""
    cluster = testbed_cluster()
    deployment = MccsDeployment(cluster)
    gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    comm = deployment.create_communicator("app", gpus)
    client = deployment.connect("app")
    handle = client.adopt_communicator(comm.comm_id)
    for _ in range(pre_ops):
        client.all_reduce(handle, 2 * MB)
    deployment.reconfigure(comm.comm_id, ring=[3, 2, 1, 0], delays=delays)
    for _ in range(3):
        client.all_reduce(handle, 2 * MB)
    deployment.run()
    for rank in range(4):
        versions = [
            inst.rank_versions[rank]
            for inst in comm.instances
            if rank in inst.rank_versions
        ]
        assert versions == sorted(versions)
