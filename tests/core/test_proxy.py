"""Proxy engine unit tests (launch ordering, holding, registration)."""

import pytest

from repro.cluster.specs import testbed_cluster
from repro.core.deployment import MccsDeployment
from repro.netsim.errors import ReconfigurationError
from repro.netsim.units import MB


@pytest.fixture
def env():
    cluster = testbed_cluster()
    deployment = MccsDeployment(cluster)
    gpus = [cluster.hosts[h].gpus[0] for h in range(3)]
    comm = deployment.create_communicator("app", gpus)
    client = deployment.connect("app")
    return cluster, deployment, comm, client.adopt_communicator(comm.comm_id), client


def test_one_proxy_per_gpu(env):
    cluster, deployment, comm, handle, client = env
    service = deployment.service_of(0)
    assert set(service.proxies) == {g.global_id for g in cluster.hosts[0].gpus}


def test_proxy_tracks_launched_seq(env):
    cluster, deployment, comm, handle, client = env
    proxies = deployment.proxies_of(comm)
    assert proxies[0].launched_seq(comm.comm_id, 0) == -1
    client.all_reduce(handle, 1 * MB)
    deployment.run()
    assert all(
        p.launched_seq(comm.comm_id, r) == 0 for r, p in enumerate(proxies)
    )


def test_proxies_shared_between_communicators(env):
    """A GPU's proxy handles every communicator including that GPU."""
    cluster, deployment, comm, handle, client = env
    gpus2 = [cluster.hosts[h].gpus[0] for h in range(3)]
    comm2 = deployment.create_communicator("app", gpus2)
    proxy = deployment.proxies_of(comm)[0]
    assert proxy.handles(comm.comm_id, 0)
    assert proxy.handles(comm2.comm_id, 0)


def test_register_rejects_wrong_gpu(env):
    cluster, deployment, comm, handle, client = env
    wrong_proxy = deployment.service_of(3).proxy_for(cluster.hosts[3].gpus[0].global_id)
    with pytest.raises(ValueError):
        wrong_proxy.register(comm, 0)


def test_state_lookup_unknown_rank(env):
    cluster, deployment, comm, handle, client = env
    proxy = deployment.proxies_of(comm)[0]
    with pytest.raises(KeyError):
        proxy.state(comm.comm_id, 99)


def test_unregister(env):
    cluster, deployment, comm, handle, client = env
    proxy = deployment.proxies_of(comm)[0]
    proxy.unregister(comm, 0)
    assert not proxy.handles(comm.comm_id, 0)


def test_out_of_order_launch_rejected(env):
    cluster, deployment, comm, handle, client = env
    from repro.core.communicator import CollectiveInstance
    from repro.collectives.types import Collective

    proxy = deployment.proxies_of(comm)[0]
    bogus = CollectiveInstance(
        comm=comm, seq=5, kind=Collective.ALL_REDUCE, out_bytes=100
    )
    with pytest.raises(ReconfigurationError):
        proxy.request_launch(0, bogus)


def test_launch_counter(env):
    cluster, deployment, comm, handle, client = env
    proxy = deployment.proxies_of(comm)[0]
    before = proxy.launches
    client.all_reduce(handle, 1 * MB)
    client.all_reduce(handle, 1 * MB)
    deployment.run()
    assert proxy.launches == before + 2
