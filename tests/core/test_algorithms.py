"""Pluggable algorithm registry tests (the §4.2 extension point)."""

import numpy as np
import pytest

from repro.cluster.specs import testbed_cluster
from repro.collectives.types import Collective, ReduceOp
from repro.core.algorithms import (
    AlgorithmContext,
    CollectiveAlgorithm,
    DoubleTreeAlgorithm,
    RankTransfer,
    RingAlgorithm,
    get_algorithm,
    register_algorithm,
    registered_algorithms,
)
from repro.core.controller import CentralManager
from repro.core.deployment import MccsDeployment
from repro.core.strategy import CollectiveStrategy
from repro.collectives.ring import RingSchedule
from repro.netsim.errors import MccsError
from repro.netsim.units import MB


def ctx(kind=Collective.ALL_REDUCE, world=4, rank=0, channels=1, order=None, out_bytes=1000, root=0):
    return AlgorithmContext(
        kind=kind,
        out_bytes=out_bytes,
        world=world,
        rank=rank,
        root=root,
        ring_order=tuple(order) if order else tuple(range(world)),
        channels=channels,
    )


def test_builtins_registered():
    assert {"ring", "tree"} <= set(registered_algorithms())


def test_unknown_algorithm_raises():
    with pytest.raises(MccsError):
        get_algorithm("quantum")


def test_duplicate_registration_rejected():
    with pytest.raises(MccsError):
        register_algorithm(RingAlgorithm())


def test_ring_rank_transfers_follow_ring_order():
    algo = RingAlgorithm()
    transfers = algo.rank_transfers(ctx(order=[2, 0, 1], rank=0))
    assert len(transfers) == 1
    assert transfers[0].dst_rank == 1  # 0 sits after 2, before 1
    assert transfers[0].nbytes == pytest.approx(1500.0)


def test_ring_broadcast_root_sends_nothing_upstream():
    algo = RingAlgorithm()
    # edge into the root carries nothing -> the rank before root is idle
    transfers = algo.rank_transfers(
        ctx(kind=Collective.BROADCAST, rank=3, root=0)
    )
    assert transfers == []


def test_ring_channels_multiply_transfers():
    algo = RingAlgorithm()
    transfers = algo.rank_transfers(ctx(channels=2))
    assert len(transfers) == 2
    assert {t.channel for t in transfers} == {0, 1}
    assert sum(t.nbytes for t in transfers) == pytest.approx(1500.0)


def test_tree_transfers_touch_parents_and_children():
    algo = DoubleTreeAlgorithm()
    transfers = algo.rank_transfers(ctx(world=4, rank=0))
    # rank 0 is root of tree 1 (2 children) and a node in tree 2
    assert transfers
    total = sum(t.nbytes for t in transfers)
    assert total > 0


def test_tree_total_bytes_match_traffic_model():
    algo = DoubleTreeAlgorithm()
    world, size = 6, 1200
    total = 0.0
    for rank in range(world):
        total += sum(
            t.nbytes for t in algo.rank_transfers(ctx(world=world, rank=rank, out_bytes=size))
        )
    # each of 2 trees has (world-1) edges carrying size/2 up AND down
    assert total == pytest.approx(2 * (world - 1) * size / 2 * 2)


def test_tree_falls_back_to_ring_for_allgather():
    ring = RingAlgorithm()
    tree = DoubleTreeAlgorithm()
    c = ctx(kind=Collective.ALL_GATHER, rank=2)
    assert tree.rank_transfers(c) == ring.rank_transfers(c)


def test_tree_steps_logarithmic():
    tree = DoubleTreeAlgorithm()
    ring = RingAlgorithm()
    assert tree.steps(Collective.ALL_REDUCE, 64) < ring.steps(Collective.ALL_REDUCE, 64)


def test_mccs_collective_under_tree_strategy():
    """End to end: a communicator whose provider picked trees."""
    cluster = testbed_cluster()
    deployment = MccsDeployment(cluster)
    gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    strategy = CollectiveStrategy(
        ring=RingSchedule((0, 1, 2, 3)), channels=1, algorithm="tree"
    )
    comm = deployment.create_communicator("A", gpus, strategy=strategy)
    client = deployment.connect("A")
    handle = client.adopt_communicator(comm.comm_id)
    sends = [client.alloc(g, 128) for g in gpus]
    recvs = [client.alloc(g, 128) for g in gpus]
    for i, b in enumerate(sends):
        b.view(np.float32)[:] = float(i + 1)
    op = client.all_reduce(handle, 128, send=sends, recv=recvs)
    deployment.run()
    assert op.completed
    assert all(np.allclose(r.view(np.float32), 10.0) for r in recvs)


def test_reconfigure_between_algorithm_families():
    """The provider can switch a live communicator from ring to tree."""
    cluster = testbed_cluster()
    deployment = MccsDeployment(cluster)
    gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    comm = deployment.create_communicator("A", gpus)
    client = deployment.connect("A")
    handle = client.adopt_communicator(comm.comm_id)
    client.all_reduce(handle, 8 * MB)
    deployment.reconfigure(comm.comm_id, algorithm="tree")
    op = client.all_reduce(handle, 8 * MB)
    deployment.run()
    assert op.completed
    assert comm.strategy.algorithm == "tree"
    assert comm.inconsistent_collectives == 0


def test_custom_provider_algorithm_end_to_end():
    """A proprietary provider algorithm: direct scatter to the root's
    neighbours (toy), installed without touching service code."""

    class StarReduce(CollectiveAlgorithm):
        name = "star-test"

        def rank_transfers(self, c):
            if c.kind is not Collective.ALL_REDUCE:
                return RingAlgorithm().rank_transfers(c)
            if c.rank == c.root:
                return [
                    RankTransfer(dst_rank=r, nbytes=c.out_bytes / c.channels, channel=ch)
                    for r in range(c.world)
                    if r != c.root
                    for ch in range(c.channels)
                ]
            return [
                RankTransfer(dst_rank=c.root, nbytes=c.out_bytes / c.channels, channel=ch)
                for ch in range(c.channels)
            ]

        def steps(self, kind, world):
            return 2

        def run_data(self, c, inputs, op):
            from repro.collectives.types import reduce_many

            total = reduce_many(op, list(inputs))
            return [total.copy() for _ in range(c.world)]

    register_algorithm(StarReduce(), replace=True)
    cluster = testbed_cluster()
    deployment = MccsDeployment(cluster)
    gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    strategy = CollectiveStrategy(
        ring=RingSchedule((0, 1, 2, 3)), algorithm="star-test"
    )
    comm = deployment.create_communicator("A", gpus, strategy=strategy)
    client = deployment.connect("A")
    handle = client.adopt_communicator(comm.comm_id)
    op = client.all_reduce(handle, 4 * MB)
    deployment.run()
    assert op.completed
    # star: 2*(world-1) flows total (in + out of root)
    assert sum(1 for _ in op.instance.rank_versions) == 4
