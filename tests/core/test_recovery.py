"""Failure detection and recovery: retries, aborts, reform, heartbeats.

Targeted unit coverage for :mod:`repro.core.recovery` and the barrier
timeout of :mod:`repro.core.reconfig`; the chaos suite (``tests/chaos``)
covers the same machinery under randomized fault plans.
"""

import numpy as np
import pytest

from repro.core.recovery import HeartbeatMonitor, RecoveryPolicy, fault_kind
from repro.errors import (
    CollectiveTimeoutError,
    CommunicatorError,
    HeartbeatTimeoutError,
    HostCrashedError,
    LinkDownError,
    NicFailedError,
    NoPathError,
    ReconfigurationError,
)
from repro.faults import FaultInjector, FaultPlan
from repro.netsim.units import MB


@pytest.fixture
def injector(cluster, deployment):
    return FaultInjector(cluster, deployment=deployment, telemetry=deployment.telemetry())


def _admit(manager, deployment, gpus, app="A"):
    state = manager.admit(app, gpus)
    client = deployment.connect(app)
    return client, client.adopt_communicator(state.comm_id)


def _events(recovery):
    return [e["event"] for e in recovery.audit]


# ----------------------------------------------------------------------
# transparent recovery
# ----------------------------------------------------------------------
def test_link_down_recovers_and_bytes_survive(
    cluster, deployment, manager, four_gpus, injector
):
    recovery = deployment.enable_recovery(RecoveryPolicy(), heartbeat_until=1.0)
    client, comm = _admit(manager, deployment, four_gpus)

    def strike():
        links = sorted(
            {l for f in cluster.sim.active_flows() for l in f.links if "spine" in l}
        )
        injector.fail_link(links[0])

    cluster.sim.call_in(0.004, strike)
    sends = [client.alloc(g, 256) for g in four_gpus]
    recvs = [client.alloc(g, 256) for g in four_gpus]
    for buf in sends:
        buf.view(np.float32)[:] = 2.0
    big = client.all_reduce(comm, 64 * MB)
    small = client.all_reduce(comm, 256, send=sends, recv=recvs)
    deployment.run()

    assert big.completed and small.completed
    assert big.instance.attempts >= 2
    assert all(np.allclose(r.view(np.float32), 8.0) for r in recvs)
    assert "recovery_succeeded" in _events(recovery)
    assert not deployment.communicator(comm.comm_id).aborted
    metrics = deployment.telemetry().metrics
    assert metrics.counter("mccs_collectives_retried_total").total() >= 1
    assert metrics.histogram("mccs_recovery_seconds").count(kind="link_down") == 1


def test_recovery_reroutes_around_down_link(
    cluster, deployment, manager, four_gpus, injector
):
    deployment.enable_recovery(RecoveryPolicy(), heartbeat_until=1.0)
    client, comm = _admit(manager, deployment, four_gpus)
    struck = []

    def strike():
        links = sorted(
            {l for f in cluster.sim.active_flows() for l in f.links if "spine" in l}
        )
        struck.append(links[0])
        injector.fail_link(links[0])

    cluster.sim.call_in(0.004, strike)
    op = client.all_reduce(comm, 64 * MB)
    deployment.run()
    assert op.completed
    # The retried launch must not traverse the dead link: its flows all
    # completed, which is impossible across a down link.
    assert struck and not cluster.sim.link_is_up(struck[0])


# ----------------------------------------------------------------------
# give-up paths: exhaustion and dead ranks
# ----------------------------------------------------------------------
def test_attempt_exhaustion_aborts_with_typed_error(
    cluster, deployment, manager, four_gpus, injector
):
    policy = RecoveryPolicy(max_attempts=2, collective_deadline=None)
    recovery = deployment.enable_recovery(policy, heartbeat_until=1.0)
    client, comm = _admit(manager, deployment, four_gpus)
    # Both NICs of host 3 die: rank 3 keeps failing at connection setup,
    # but its proxy stays alive so this is not a dead-rank give-up.
    cluster.sim.call_in(0.004, lambda: injector.fail_nic(3, 0))
    cluster.sim.call_in(0.004, lambda: injector.fail_nic(3, 1))
    op = client.all_reduce(comm, 64 * MB)
    deployment.run()

    comm_obj = deployment.communicator(comm.comm_id)
    assert comm_obj.aborted
    assert isinstance(comm_obj.abort_error, CommunicatorError)
    assert op.instance.aborted and not op.completed
    assert "recovery_gave_up" in _events(recovery)
    # NIC loss is not a crash: the communicator is not reformed.
    assert comm.comm_id not in recovery.reformed
    with pytest.raises(CommunicatorError, match="aborted"):
        client.all_reduce(comm, 1024)


def test_host_crash_aborts_and_reforms_on_survivors(
    cluster, deployment, manager, four_gpus, injector
):
    recovery = deployment.enable_recovery(RecoveryPolicy(), heartbeat_until=1.0)
    client, comm = _admit(manager, deployment, four_gpus)
    injector.schedule(FaultPlan().host_crash(0.004, 3))
    op = client.all_reduce(comm, 64 * MB)
    deployment.run()

    comm_obj = deployment.communicator(comm.comm_id)
    assert comm_obj.aborted and op.instance.aborted
    assert isinstance(comm_obj.abort_error, CommunicatorError)
    assert "lost rank" in str(comm_obj.abort_error)
    successor = recovery.reformed[comm.comm_id]
    assert len(successor.gpus) == 3  # survivors only
    succ_client_comm = client.adopt_communicator(successor.comm_id)
    op2 = client.all_reduce(succ_client_comm, 1 * MB)
    deployment.run()
    assert op2.completed


def test_crash_blast_radius_spares_co_tenant(
    cluster, deployment, manager, injector
):
    deployment.enable_recovery(RecoveryPolicy(), heartbeat_until=1.0)
    victim_gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    vclient, vcomm = _admit(manager, deployment, victim_gpus, app="victim")
    healthy_gpus = [cluster.hosts[0].gpus[1], cluster.hosts[1].gpus[1]]
    hclient, hcomm = _admit(manager, deployment, healthy_gpus, app="healthy")
    injector.schedule(FaultPlan().host_crash(0.004, 3))
    vop = vclient.all_reduce(vcomm, 64 * MB)
    hop = hclient.all_reduce(hcomm, 16 * MB)
    deployment.run()
    assert vop.instance.aborted
    assert hop.completed
    assert not deployment.communicator(hcomm.comm_id).aborted


# ----------------------------------------------------------------------
# detection: deadlines and heartbeats
# ----------------------------------------------------------------------
def test_collective_deadline_detects_stall(
    cluster, deployment, manager, four_gpus, injector
):
    # Deadline must clear a healthy 64MB AllReduce (~21ms) but trip
    # during the brownout.
    recovery = deployment.enable_recovery(
        RecoveryPolicy(collective_deadline=0.03, max_attempts=8), heartbeat_until=1.0
    )
    client, comm = _admit(manager, deployment, four_gpus)

    def brownout():
        links = sorted(
            {l for f in cluster.sim.active_flows() for l in f.links if "spine" in l}
        )
        # Degraded links stay *up*, so only the deadline can notice.
        injector.degrade_link(links[0], 0.01)
        cluster.sim.call_in(0.06, lambda: injector.restore_capacity(links[0]))

    cluster.sim.call_in(0.004, brownout)
    op = client.all_reduce(comm, 64 * MB)
    deployment.run()
    assert op.completed
    detected = [e for e in recovery.audit if e["event"] == "failure_detected"]
    assert detected and "deadline" in detected[0]["detail"]
    assert (
        deployment.telemetry().metrics.counter("mccs_collective_deadlines_total").total()
        >= 1
    )
    assert "recovery_succeeded" in _events(recovery)


def test_heartbeat_monitor_detects_idle_crash(
    cluster, deployment, manager, four_gpus, injector
):
    policy = RecoveryPolicy(heartbeat_interval=0.01)
    recovery = deployment.enable_recovery(policy, heartbeat_until=0.5)
    client, comm = _admit(manager, deployment, four_gpus)
    # No collective in flight: only the heartbeat can notice this crash.
    cluster.sim.call_in(0.1, lambda: injector.crash_host(2))
    deployment.run()
    comm_obj = deployment.communicator(comm.comm_id)
    assert comm_obj.aborted
    assert (
        deployment.telemetry().metrics.counter("mccs_heartbeats_missed_total").total()
        >= 1
    )
    detected = [e for e in recovery.audit if e["event"] == "failure_detected"]
    assert detected and "heartbeat" in detected[0]["detail"]
    with pytest.raises(CommunicatorError):
        client.all_reduce(comm, 1024)


def test_heartbeat_monitor_is_bounded():
    from repro.cluster.specs import testbed_cluster
    from repro.core.deployment import MccsDeployment

    cluster = testbed_cluster()
    deployment = MccsDeployment(cluster)
    deployment.enable_recovery(
        RecoveryPolicy(heartbeat_interval=0.01), heartbeat_until=0.1
    )
    end = deployment.run()
    # The monitor re-arms only inside its bound: the sim terminates.
    assert end <= 0.1 + 0.01 + 1e-9


# ----------------------------------------------------------------------
# satellite 1: reconfiguration barrier timeout
# ----------------------------------------------------------------------
def test_barrier_timeout_names_missing_ranks(
    cluster, deployment, manager, four_gpus, injector
):
    state = manager.admit("A", four_gpus)
    injector.crash_host(2)
    with pytest.raises(ReconfigurationError, match=r"rank\(s\) \[2\]"):
        deployment.reconfigure(state.comm_id, ring=[3, 2, 1, 0], barrier_timeout=0.01)
        deployment.run()
    assert (
        deployment.telemetry().metrics.counter("mccs_reconfig_timeouts_total").total()
        == 1
    )


def test_barrier_timeout_on_failed_handler(
    cluster, deployment, manager, four_gpus, injector
):
    state = manager.admit("A", four_gpus)
    injector.crash_host(1)
    failures = []
    deployment.reconfigure(
        state.comm_id,
        ring=[3, 2, 1, 0],
        barrier_timeout=0.01,
        on_failed=lambda session: failures.append(session.error),
    )
    deployment.run()
    assert len(failures) == 1
    assert isinstance(failures[0], ReconfigurationError)
    assert "[1]" in str(failures[0])


def test_barrier_timeout_requires_positive_value(deployment, manager, four_gpus):
    state = manager.admit("A", four_gpus)
    with pytest.raises(ReconfigurationError, match="positive"):
        deployment.reconfigure(state.comm_id, ring=[3, 2, 1, 0], barrier_timeout=-1.0)


def test_reconfigure_without_timeout_still_waits(deployment, manager, four_gpus):
    state = manager.admit("A", four_gpus)
    done = []
    deployment.reconfigure(
        state.comm_id, ring=[3, 2, 1, 0], on_done=lambda s: done.append(s)
    )
    deployment.run()
    assert len(done) == 1


# ----------------------------------------------------------------------
# fault_kind classification
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "error, kind",
    [
        (HostCrashedError("x"), "host_crash"),
        (HeartbeatTimeoutError("x"), "host_crash"),
        (NicFailedError("x"), "nic_fail"),
        (LinkDownError("x"), "link_down"),
        (NoPathError("x"), "link_down"),
        (CollectiveTimeoutError("x"), "timeout"),
        (ReconfigurationError("x"), "reconfig"),
        (ValueError("x"), "other"),
    ],
)
def test_fault_kind_classification(error, kind):
    assert fault_kind(error) == kind


def test_heartbeat_monitor_rejects_bad_interval(deployment):
    from repro.core.recovery import RecoveryManager

    manager = RecoveryManager(deployment)
    with pytest.raises(ValueError):
        HeartbeatMonitor(deployment, manager, interval=0.0, until=1.0)


def test_reform_skipped_when_fewer_than_two_survivors(
    cluster, deployment, manager, injector
):
    """<2 survivors: no successor, but a typed event and an alertable
    counter instead of a silent return."""
    recovery = deployment.enable_recovery(RecoveryPolicy(), heartbeat_until=1.0)
    gpus = [cluster.hosts[0].gpus[0], cluster.hosts[3].gpus[0]]
    client, comm = _admit(manager, deployment, gpus)
    injector.schedule(FaultPlan().host_crash(0.004, 3))
    op = client.all_reduce(comm, 64 * MB)
    deployment.run()

    comm_obj = deployment.communicator(comm.comm_id)
    assert comm_obj.aborted and op.instance.aborted
    assert comm.comm_id not in recovery.reformed
    assert "reform_skipped_unrecoverable" in _events(recovery)
    metrics = deployment.telemetry().metrics
    assert metrics.counter("mccs_reform_skipped_total").value(app="A") == 1
