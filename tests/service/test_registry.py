"""Tenant registry: accounts, API keys, quotas, and journal durability."""

import pytest

from repro.core.deployment import MccsDeployment
from repro.errors import PolicyError
from repro.service import TenantQuota, TenantRegistry
from repro.service.errors import AuthenticationError


@pytest.fixture
def registry(deployment):
    return TenantRegistry(deployment, secret="test-secret")


def test_register_and_authenticate(registry):
    account = registry.register("acme", TenantQuota(qos_class="high"))
    assert registry.authenticate(account.key.raw) is account
    assert account.quota.qos_class == "high"
    assert len(registry) == 1


def test_authenticate_rejects_unknown_and_missing_keys(registry):
    registry.register("acme")
    with pytest.raises(AuthenticationError):
        registry.authenticate("mk_acme_0000000000000000dead")
    with pytest.raises(AuthenticationError):
        registry.authenticate(None)


def test_duplicate_registration_rejected(registry):
    registry.register("acme")
    with pytest.raises(PolicyError):
        registry.register("acme")


def test_rotate_key_invalidates_old_key(registry):
    account = registry.register("acme")
    old = account.key.raw
    new = registry.rotate_key("acme").raw
    assert new != old
    assert registry.authenticate(new).tenant_id == "acme"
    with pytest.raises(AuthenticationError):
        registry.authenticate(old)


def test_revoke_closes_the_account(registry):
    account = registry.register("acme")
    registry.revoke("acme")
    assert len(registry) == 0
    with pytest.raises(AuthenticationError):
        registry.authenticate(account.key.raw)


def test_set_quota_updates_and_journals(registry, deployment):
    registry.register("acme")
    registry.set_quota("acme", TenantQuota(qos_class="low", rate=5.0, burst=2.0))
    assert registry.account("acme").quota.rate == 5.0
    assert deployment.verify_journal() == []


def test_unknown_tenant_raises(registry):
    with pytest.raises(PolicyError):
        registry.account("nobody")


def test_restore_rebuilds_accounts_and_keys(registry, deployment):
    a = registry.register("acme", TenantQuota(qos_class="high", rate=7.0))
    registry.register("globex")
    registry.rotate_key("globex")
    restored = TenantRegistry.restore(deployment, secret="test-secret")
    assert len(restored) == 2
    assert restored.authenticate(a.key.raw).tenant_id == "acme"
    # The rotated key (generation 1) must be re-derived, not the original.
    rotated = registry.account("globex").key.raw
    assert restored.authenticate(rotated).tenant_id == "globex"
    assert restored.account("acme").quota.rate == 7.0


def test_journal_replays_to_live_state(registry, deployment):
    registry.register("acme")
    registry.register("globex", TenantQuota(qos_class="low"))
    registry.revoke("acme")
    registry.set_quota("globex", TenantQuota(qos_class="low", rate=3.0, burst=1.0))
    assert deployment.verify_journal() == []


def test_compaction_preserves_revoke_then_reregister(registry, deployment):
    registry.register("acme")
    registry.revoke("acme")
    registry.register("acme", TenantQuota(qos_class="high"))
    registry.register("globex")
    registry.revoke("globex")
    deployment.journal.compact()
    assert deployment.verify_journal() == []
    restored = TenantRegistry.restore(deployment, secret="test-secret")
    assert len(restored) == 1
    assert restored.account("acme").quota.qos_class == "high"
    with pytest.raises(PolicyError):
        restored.account("globex")
