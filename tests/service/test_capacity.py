"""Capacity planner: Erlang-C math and fleet-sizing behavior."""

import math

import pytest

from repro.errors import PolicyError
from repro.service import CapacityModel, CapacityPlanner
from repro.service.capacity import erlang_c


def test_erlang_c_single_server_matches_mm1():
    # With c=1 Erlang C reduces to the M/M/1 queueing probability: rho.
    for rho in (0.1, 0.5, 0.9):
        assert erlang_c(1, rho) == pytest.approx(rho)


def test_erlang_c_bounds_and_monotonicity():
    assert erlang_c(8, 0.0) == 0.0
    assert erlang_c(8, 8.0) == 1.0  # saturated: every arrival queues
    loads = [1.0, 3.0, 5.0, 7.0]
    probs = [erlang_c(8, a) for a in loads]
    assert all(0.0 < p <= 1.0 for p in probs)
    assert probs == sorted(probs)  # more load, more queueing
    # More servers at the same load means less queueing.
    assert erlang_c(16, 5.0) < erlang_c(8, 5.0)


def test_erlang_c_rejects_bad_inputs():
    with pytest.raises(PolicyError):
        erlang_c(0, 1.0)
    with pytest.raises(PolicyError):
        erlang_c(4, -1.0)


def test_evaluate_saturated_plan_is_infeasible():
    planner = CapacityPlanner(CapacityModel(slots_per_host=8, service_time_s=0.01))
    plan = planner.evaluate(1, arrival_rate=10_000.0)
    assert not plan.feasible
    assert plan.p99_s == math.inf
    assert plan.queue_probability == 1.0


def test_hosts_for_meets_target_and_is_minimal():
    planner = CapacityPlanner(CapacityModel(slots_per_host=8, service_time_s=0.002))
    plan = planner.hosts_for(1000, 2.0, 0.05, peak_factor=1.8)
    assert plan.feasible
    assert plan.p99_s <= 0.05
    assert plan.utilization <= planner.model.max_utilization
    if plan.hosts > 1:
        smaller = planner.evaluate(plan.hosts - 1, plan.arrival_rate)
        assert not smaller.feasible or smaller.p99_s > 0.05


def test_hosts_for_monotone_in_population_and_target():
    planner = CapacityPlanner(CapacityModel(slots_per_host=8, service_time_s=0.002))
    small = planner.hosts_for(500, 2.0, 0.05).hosts
    large = planner.hosts_for(5000, 2.0, 0.05).hosts
    assert large >= small
    # Note the target must stay above the irreducible service tail
    # ln(100) * service_time ~ 9.2ms; below it no host count helps.
    tight = planner.hosts_for(1000, 2.0, 0.0095).hosts
    loose = planner.hosts_for(1000, 2.0, 0.5).hosts
    assert tight >= loose
    peaky = planner.hosts_for(1000, 2.0, 0.05, peak_factor=3.0).hosts
    flat = planner.hosts_for(1000, 2.0, 0.05, peak_factor=1.0).hosts
    assert peaky >= flat


def test_hosts_for_rejects_bad_inputs():
    planner = CapacityPlanner()
    with pytest.raises(PolicyError):
        planner.hosts_for(0, 2.0, 0.05)
    with pytest.raises(PolicyError):
        planner.hosts_for(100, -1.0, 0.05)
    with pytest.raises(PolicyError):
        planner.hosts_for(100, 2.0, 0.0)
    with pytest.raises(PolicyError):
        planner.hosts_for(10_000, 100.0, 0.001, max_hosts=2)


def test_plan_as_dict_round_trips_fields():
    plan = CapacityPlanner().hosts_for(100, 1.0, 0.1)
    d = plan.as_dict()
    assert d["hosts"] == plan.hosts
    assert d["feasible"] is True
    assert set(d) == {
        "hosts", "servers", "arrival_rate", "offered_load",
        "utilization", "queue_probability", "p99_s", "feasible",
    }
