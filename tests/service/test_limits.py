"""Unit behavior of the gateway's robustness primitives."""

import random

import pytest

from repro.errors import PolicyError
from repro.service import (
    BreakerPolicy,
    BreakerState,
    BrownoutController,
    BrownoutPolicy,
    CircuitBreaker,
    GatewayRetryPolicy,
    TokenBucket,
)


# -- token bucket -------------------------------------------------------------
def test_bucket_burst_then_refill():
    bucket = TokenBucket(rate=10.0, burst=3.0, now=0.0)
    assert all(bucket.try_take(0.0) for _ in range(3))
    assert not bucket.try_take(0.0)
    # 0.1 s refills one token at 10/s.
    assert bucket.try_take(0.1)
    assert not bucket.try_take(0.1)


def test_bucket_retry_after_is_exact():
    bucket = TokenBucket(rate=4.0, burst=1.0, now=0.0)
    assert bucket.try_take(0.0)
    assert bucket.retry_after(0.0) == pytest.approx(0.25)
    assert bucket.try_take(0.25)


def test_bucket_never_exceeds_burst():
    bucket = TokenBucket(rate=100.0, burst=2.0, now=0.0)
    bucket.try_take(0.0)
    bucket._refill(10.0)
    assert bucket.tokens == pytest.approx(2.0)


def test_bucket_rejects_bad_policy():
    with pytest.raises(PolicyError):
        TokenBucket(rate=0.0, burst=1.0)
    with pytest.raises(PolicyError):
        TokenBucket(rate=1.0, burst=-1.0)


# -- retry policy -------------------------------------------------------------
def test_retry_backoff_is_capped():
    policy = GatewayRetryPolicy(
        backoff_base=0.01, backoff_factor=2.0, backoff_cap=0.05, jitter=0.0
    )
    rng = random.Random(0)
    delays = [policy.delay(attempt, rng) for attempt in range(6)]
    assert delays[0] == pytest.approx(0.01)
    assert delays[1] == pytest.approx(0.02)
    assert max(delays) == pytest.approx(0.05)
    assert delays == sorted(delays)


def test_retry_jitter_stays_bounded():
    policy = GatewayRetryPolicy(backoff_base=0.01, jitter=0.5)
    rng = random.Random(7)
    for attempt in range(4):
        base = min(0.01 * 2.0**attempt, policy.backoff_cap)
        d = policy.delay(attempt, rng)
        assert base <= d <= base * 1.5


# -- circuit breaker ----------------------------------------------------------
def _tripped_breaker(now=0.0):
    breaker = CircuitBreaker(
        BreakerPolicy(window=4, min_samples=2, failure_threshold=0.5,
                      cooldown=1.0, half_open_probes=1)
    )
    breaker.record_failure(now)
    breaker.record_failure(now)
    return breaker


def test_breaker_trips_on_failure_fraction():
    breaker = _tripped_breaker()
    assert breaker.state is BreakerState.OPEN
    assert breaker.trips == 1
    assert not breaker.allow(0.5)


def test_breaker_half_open_probe_closes_on_success():
    breaker = _tripped_breaker(now=0.0)
    assert breaker.allow(1.0)  # cooldown elapsed: one probe admitted
    assert breaker.state is BreakerState.HALF_OPEN
    assert not breaker.allow(1.0)  # only one concurrent probe
    breaker.record_success(1.1)
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allow(1.1)


def test_breaker_half_open_probe_reopens_on_failure():
    breaker = _tripped_breaker(now=0.0)
    assert breaker.allow(1.0)
    breaker.record_failure(1.05)
    assert breaker.state is BreakerState.OPEN
    assert breaker.trips == 2
    assert not breaker.allow(1.5)  # new cooldown from the re-trip


def test_breaker_abandon_releases_probe_slot_without_outcome():
    breaker = _tripped_breaker(now=0.0)
    assert breaker.allow(1.0)
    breaker.abandon(1.0)
    # The slot is free again and the breaker did not close or re-trip.
    assert breaker.state is BreakerState.HALF_OPEN
    assert breaker.trips == 1
    assert breaker.allow(1.0)


def test_breaker_successes_keep_it_closed():
    breaker = CircuitBreaker(BreakerPolicy(window=4, min_samples=2))
    for i in range(10):
        breaker.record_success(i * 0.1)
        assert breaker.state is BreakerState.CLOSED


# -- brownout -----------------------------------------------------------------
def test_brownout_policy_validation():
    with pytest.raises(PolicyError):
        BrownoutPolicy(watermarks=(0.9, 0.5))
    with pytest.raises(PolicyError):
        # As many watermarks as classes would allow shedding the top class.
        BrownoutPolicy(watermarks=(0.3, 0.6, 0.9))


def test_brownout_levels_and_shedding_order():
    ctl = BrownoutController(policy=BrownoutPolicy(
        watermarks=(0.5, 0.8), hysteresis=0.1,
        priority=("high", "normal", "low"),
    ))
    assert ctl.update(0.2, now=0.0) == 0
    assert not ctl.sheds("low")
    assert ctl.update(0.55, now=1.0) == 1
    assert ctl.sheds("low") and not ctl.sheds("normal") and not ctl.sheds("high")
    assert ctl.update(0.85, now=2.0) == 2
    assert ctl.sheds("normal") and not ctl.sheds("high")
    # Unknown classes rank below everything listed.
    assert ctl.sheds("mystery")


def test_brownout_hysteresis_blocks_flapping():
    ctl = BrownoutController(policy=BrownoutPolicy(
        watermarks=(0.5, 0.8), hysteresis=0.1,
    ))
    ctl.update(0.55, now=0.0)
    # Dropping just below the watermark is not enough to release.
    assert ctl.update(0.45, now=1.0) == 1
    assert ctl.update(0.39, now=2.0) == 0
    assert [lvl for _, _, lvl in ctl.transitions] == [1, 0]
