"""Property tests: gateway invariants under arbitrary interleavings.

Hypothesis drives random programs of tenant traffic, communicator
aborts (breaker trips), gateway crashes, and restarts against a fresh
deployment, and checks the invariants the fleet experiment relies on:

* every request is answered exactly once (no lost or duplicate settles),
* no request is both rejected and executed,
* collectives that were admitted (HTTP 200) are byte-exact.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cluster.specs import testbed_cluster
from repro.core.deployment import MccsDeployment
from repro.errors import CommunicatorError
from repro.service import (
    BreakerPolicy,
    BrownoutPolicy,
    GatewayClient,
    GatewayPolicy,
    GatewayRetryPolicy,
    InProcessTransport,
    ServiceGateway,
    TenantQuota,
)

TENANTS = ("t-high", "t-low")
NBYTES = 256

_op = st.one_of(
    st.tuples(st.just("collective"), st.integers(0, len(TENANTS) - 1)),
    st.tuples(st.just("collective"), st.integers(0, len(TENANTS) - 1)),
    st.tuples(st.just("collective"), st.integers(0, len(TENANTS) - 1)),
    st.tuples(st.just("step"), st.just(0)),
    st.tuples(st.just("abort"), st.integers(0, len(TENANTS) - 1)),
    st.tuples(st.just("crash"), st.just(0)),
    st.tuples(st.just("restart"), st.just(0)),
)


def _build():
    deployment = MccsDeployment(testbed_cluster())
    gateway = ServiceGateway(
        deployment,
        GatewayPolicy(
            queue_capacity=4,
            max_inflight=2,
            default_deadline=0.08,
            retry=GatewayRetryPolicy(max_retries=2, backoff_base=0.001,
                                     backoff_cap=0.004),
            breaker=BreakerPolicy(window=4, min_samples=2, cooldown=0.05),
            brownout=BrownoutPolicy(watermarks=(0.5, 0.9), hysteresis=0.1),
        ),
    )
    transport = InProcessTransport(gateway)
    tenants = []
    for i, (tid, qos) in enumerate(zip(TENANTS, ("high", "low"))):
        account = gateway.register_tenant(
            tid, TenantQuota(qos_class=qos, rate=400.0, burst=8.0,
                             max_queued=4, max_inflight=2)
        )
        client = GatewayClient(transport, api_key=account.key.raw)
        gpus = [deployment.cluster.hosts[i].gpus[j].global_id for j in (0, 1)]
        comm_call = client.create_comm(gpus)
        fill = float(i + 2)
        send_calls = [client.alloc(g, NBYTES, fill=fill) for g in gpus]
        recv_calls = [client.alloc(g, NBYTES) for g in gpus]
        deployment.run()
        assert comm_call.ok, comm_call.response.error
        tenants.append({
            "id": tid,
            "client": client,
            "comm": comm_call.response.body["comm_id"],
            "sends": [c.response.body["buffer_id"] for c in send_calls],
            "recvs": [c.response.body["buffer_id"] for c in recv_calls],
            "fill": fill,
            "aborted": False,
        })
    return deployment, gateway, tenants


@settings(max_examples=20, deadline=None)
@given(program=st.lists(_op, min_size=1, max_size=24))
def test_no_request_lost_duplicated_or_corrupted(program):
    deployment, gateway, tenants = _build()
    calls = []
    for op, idx in program:
        tenant = tenants[idx]
        if op == "collective":
            calls.append((tenant, tenant["client"].collective(
                tenant["comm"], NBYTES,
                send_buffers=tenant["sends"],
                recv_buffers=tenant["recvs"],
                ttl=0.08,
            )))
        elif op == "step":
            deployment.run(until=deployment.sim.now + 0.002)
        elif op == "abort" and not tenant["aborted"]:
            deployment.communicator(tenant["comm"]).abort(
                CommunicatorError("chaos abort")
            )
            tenant["aborted"] = True
        elif op == "crash":
            gateway.crash()
        elif op == "restart":
            gateway.restart()
    gateway.restart()  # no-op if alive; drains survivors otherwise
    deployment.run()

    # Every request answered exactly once.
    assert all(call.done for _, call in calls)
    # No request both rejected and executed.
    assert not (gateway.rejected_ids & gateway.executed_ids)
    # Admitted (200) collectives are byte-exact: each rank's reduction
    # saw both contributions of the tenant's fill value.
    for tenant in tenants:
        oks = [c for t, c in calls if t is tenant and c.ok]
        if not oks or tenant["aborted"]:
            continue
        client = gateway.session_of(tenant["id"]).client
        for buffer_id in tenant["recvs"]:
            buf = client.buffers.get(buffer_id)
            if buf is None:  # session rebuilt after a crash: re-adopt
                buf = client.adopt_buffer(buffer_id)
            assert np.allclose(buf.view(np.float32), tenant["fill"] * 2)
    # Accounting closes: answered = executed + rejected for this run.
    statuses = [c.response.status for _, c in calls]
    assert all(s in (200, 429, 500, 503, 504) for s in statuses)
