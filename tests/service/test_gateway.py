"""Gateway behaviors: routes, robustness stack, crash/restart, isolation."""

import numpy as np
import pytest

from repro.errors import CommunicatorError, ServiceUnavailableError
from repro.service import (
    BreakerPolicy,
    BrownoutPolicy,
    GatewayClient,
    GatewayPolicy,
    InProcessTransport,
    ServiceGateway,
    TenantQuota,
)
from repro.service.errors import (
    AuthenticationError,
    BackpressureError,
    BrownoutShedError,
    CircuitOpenError,
    GatewayTimeoutError,
    InvalidRequestError,
    RateLimitedError,
    UnknownRouteError,
)


@pytest.fixture
def gateway(deployment):
    return ServiceGateway(deployment)


@pytest.fixture
def transport(gateway):
    return InProcessTransport(gateway)


def _client(gateway, transport, tenant="acme", **quota):
    account = gateway.register_tenant(tenant, TenantQuota(**quota) if quota else None)
    return GatewayClient(transport, api_key=account.key.raw)


def _gpu_ids(deployment, n=2):
    return [deployment.cluster.hosts[0].gpus[i].global_id for i in range(n)]


def _setup_comm(deployment, client):
    call = client.create_comm(_gpu_ids(deployment))
    deployment.run()
    assert call.ok, call.response.error
    return call.response.body["comm_id"]


# -- routes -------------------------------------------------------------------
def test_health_needs_no_auth(gateway, transport, deployment):
    call = GatewayClient(transport).health()
    deployment.run()
    assert call.ok
    assert call.response.body["alive"] is True
    assert call.response.body["tenants"] == 0


def test_unknown_route_404(gateway, transport, deployment):
    call = _client(gateway, transport).request("GET", "/v1/nope")
    deployment.run()
    assert call.response.status == 404
    assert isinstance(call.response.error, UnknownRouteError)


def test_bad_api_key_401(gateway, transport, deployment):
    gateway.register_tenant("acme")
    call = GatewayClient(transport, api_key="mk_bogus").alloc(0, 64)
    deployment.run()
    assert call.response.status == 401
    assert isinstance(call.response.error, AuthenticationError)


def test_alloc_comm_collective_roundtrip(gateway, transport, deployment):
    client = _client(gateway, transport)
    comm_id = _setup_comm(deployment, client)
    gpus = _gpu_ids(deployment)
    sends = [client.alloc(g, 256, fill=2.0) for g in gpus]
    recvs = [client.alloc(g, 256) for g in gpus]
    deployment.run()
    assert all(c.ok for c in sends + recvs)
    call = client.collective(
        comm_id, 256,
        send_buffers=[c.response.body["buffer_id"] for c in sends],
        recv_buffers=[c.response.body["buffer_id"] for c in recvs],
    )
    deployment.run()
    assert call.ok
    assert call.response.body["seq"] == 0
    session = gateway.session_of("acme")
    for c in recvs:
        data = session.client.buffers[c.response.body["buffer_id"]].view(np.float32)
        assert np.allclose(data, 2.0 * len(gpus))
    assert deployment.verify_journal() == []


def test_destroy_comm_route(gateway, transport, deployment):
    client = _client(gateway, transport)
    comm_id = _setup_comm(deployment, client)
    call = client.destroy_comm(comm_id)
    deployment.run()
    assert call.ok
    again = client.collective(comm_id, 256)
    deployment.run()
    assert again.response.status == 400
    assert isinstance(again.response.error, InvalidRequestError)


def test_communicator_quota_enforced(gateway, transport, deployment):
    client = _client(gateway, transport, max_communicators=1)
    _setup_comm(deployment, client)
    second = client.create_comm(_gpu_ids(deployment))
    deployment.run()
    assert second.response.status == 400
    assert "quota" in str(second.response.error)


# -- rate limiting ------------------------------------------------------------
def test_token_bucket_throttles_429(gateway, transport, deployment):
    client = _client(gateway, transport, rate=1.0, burst=1.0)
    first = client.alloc(0, 64)
    second = client.alloc(0, 64)
    deployment.run()
    assert first.ok
    assert second.response.status == 429
    assert isinstance(second.response.error, RateLimitedError)
    assert second.response.error.retry_after > 0


# -- backpressure and deadlines ----------------------------------------------
def test_queue_full_backpressure_503(deployment):
    gateway = ServiceGateway(
        deployment, GatewayPolicy(queue_capacity=1, max_inflight=0)
    )
    transport = InProcessTransport(gateway)
    client = _client(gateway, transport, rate=100.0, burst=50.0)
    comm_id = _setup_comm(deployment, client)
    held = client.collective(comm_id, 256, ttl=10.0)
    overflow = client.collective(comm_id, 256, ttl=10.0)
    deployment.run(until=deployment.sim.now + 0.01)
    assert held.response is None  # queued: no dispatch slots
    assert overflow.response.status == 503
    assert isinstance(overflow.response.error, BackpressureError)


def test_per_tenant_queue_bound(deployment):
    gateway = ServiceGateway(
        deployment, GatewayPolicy(queue_capacity=64, max_inflight=0)
    )
    transport = InProcessTransport(gateway)
    client = _client(gateway, transport, rate=100.0, burst=50.0, max_queued=1)
    comm_id = _setup_comm(deployment, client)
    client.collective(comm_id, 256, ttl=10.0)
    overflow = client.collective(comm_id, 256, ttl=10.0)
    deployment.run(until=deployment.sim.now + 0.01)
    assert overflow.response.status == 503
    assert isinstance(overflow.response.error, BackpressureError)


def test_queued_request_deadline_504(deployment):
    gateway = ServiceGateway(deployment, GatewayPolicy(max_inflight=0))
    transport = InProcessTransport(gateway)
    client = _client(gateway, transport, rate=100.0, burst=50.0)
    comm_id = _setup_comm(deployment, client)
    call = client.collective(comm_id, 256, ttl=0.01)
    deployment.run()
    assert call.response.status == 504
    assert isinstance(call.response.error, GatewayTimeoutError)
    request_id = call.request.request_id
    assert request_id in gateway.rejected_ids
    assert request_id not in gateway.executed_ids


# -- circuit breaker ----------------------------------------------------------
def test_breaker_trips_on_aborted_communicator(deployment):
    gateway = ServiceGateway(
        deployment,
        GatewayPolicy(breaker=BreakerPolicy(window=4, min_samples=2, cooldown=5.0)),
    )
    transport = InProcessTransport(gateway)
    client = _client(gateway, transport, rate=1000.0, burst=100.0)
    comm_id = _setup_comm(deployment, client)
    deployment.communicator(comm_id).abort(CommunicatorError("poisoned"))
    failures = [client.collective(comm_id, 256) for _ in range(2)]
    deployment.run()
    assert all(f.response.status == 500 for f in failures)
    assert gateway.breaker_of("acme").open
    blocked = client.collective(comm_id, 256)
    deployment.run()
    assert blocked.response.status == 503
    assert isinstance(blocked.response.error, CircuitOpenError)
    # Tripped tenants reach no backend: rejected and executed stay disjoint.
    assert blocked.request.request_id in gateway.rejected_ids
    assert not (gateway.rejected_ids & gateway.executed_ids)


def test_breaker_blast_radius_is_one_tenant(deployment):
    gateway = ServiceGateway(
        deployment,
        GatewayPolicy(breaker=BreakerPolicy(window=4, min_samples=2, cooldown=5.0)),
    )
    transport = InProcessTransport(gateway)
    bad = _client(gateway, transport, tenant="bad", rate=1000.0, burst=100.0)
    good = _client(gateway, transport, tenant="good", rate=1000.0, burst=100.0)
    bad_comm = _setup_comm(deployment, bad)
    good_comm = _setup_comm(deployment, good)
    deployment.communicator(bad_comm).abort(CommunicatorError("poisoned"))
    for _ in range(3):
        bad.collective(bad_comm, 256)
    witness = good.collective(good_comm, 256)
    deployment.run()
    assert gateway.breaker_of("bad").open
    assert not gateway.breaker_of("good").open
    assert witness.ok


# -- brownout -----------------------------------------------------------------
def test_brownout_sheds_low_not_high(deployment):
    gateway = ServiceGateway(
        deployment,
        GatewayPolicy(
            queue_capacity=2,
            max_inflight=0,
            brownout=BrownoutPolicy(watermarks=(0.05, 0.9), hysteresis=0.01),
        ),
    )
    transport = InProcessTransport(gateway)
    low = _client(gateway, transport, tenant="low-t", qos_class="low",
                  rate=100.0, burst=50.0)
    high = _client(gateway, transport, tenant="high-t", qos_class="high",
                   rate=100.0, burst=50.0)
    low_comm = _setup_comm(deployment, low)
    high_comm = _setup_comm(deployment, high)
    # First low request is accepted, then its own queue occupancy raises
    # the level and the drain sheds it with a typed decision.
    first = low.collective(low_comm, 256, ttl=10.0)
    deployment.run(until=deployment.sim.now + 0.01)
    # The level rose to shed the queue, then relaxed once it emptied.
    assert any(new >= 1 for _, _, new in gateway.brownout.transitions)
    assert first.response.status == 503
    assert isinstance(first.response.error, BrownoutShedError)
    shed = low.collective(low_comm, 256, ttl=10.0)
    kept = high.collective(high_comm, 256, ttl=10.0)
    deployment.run(until=deployment.sim.now + 0.01)
    assert shed.response.status == 503
    assert isinstance(shed.response.error, BrownoutShedError)
    assert kept.response is None  # queued, not shed (high survives)


# -- bulkhead isolation -------------------------------------------------------
def test_bulkhead_zero_width_tenant_cannot_starve_others(gateway, transport, deployment):
    stuck = _client(gateway, transport, tenant="stuck", rate=100.0, burst=50.0,
                    max_inflight=0)
    flowing = _client(gateway, transport, tenant="flowing", rate=100.0, burst=50.0)
    stuck_comm = _setup_comm(deployment, stuck)
    flow_comm = _setup_comm(deployment, flowing)
    starved = stuck.collective(stuck_comm, 256, ttl=0.05)
    served = flowing.collective(flow_comm, 256, ttl=0.05)
    deployment.run()
    # The zero-width tenant's request can never dispatch and expires; the
    # other tenant's request flows past it.
    assert starved.response.status == 504
    assert served.ok


# -- crash / restart ----------------------------------------------------------
def test_crash_answers_typed_and_restart_restores(gateway, transport, deployment):
    client = _client(gateway, transport, rate=1000.0, burst=100.0)
    comm_id = _setup_comm(deployment, client)
    ok_before = client.collective(comm_id, 256)
    deployment.run()
    assert ok_before.ok
    gateway.crash()
    during = client.collective(comm_id, 256)
    deployment.run()
    assert during.response.status == 503
    assert isinstance(during.response.error, ServiceUnavailableError)
    assert gateway.restart() == 1
    # Post-restart the session shim is fresh; the comm is re-adopted from
    # durable ownership and the old API key still authenticates.
    after = client.collective(comm_id, 256)
    deployment.run()
    assert after.ok
    assert deployment.verify_journal() == []
