"""Causal-trace closure under chaos: one closed tree per collective.

The causal layer's contract (ISSUE observability tentpole): every
collective that reaches the service opens exactly one causal trace, and
that trace is closed exactly once — completed, aborted, or failed — no
matter which fault plan hits the deployment.  No orphan spans (flow
records still ``active`` inside a closed tree), no leaked contexts
(traces still open after the simulation quiesces), across retries,
barrier reroutes, service crashes and journal-replay restarts.

Reuses the chaos harness: the same randomized fault matrix that proves
the recovery contract proves trace closure.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.telemetry.causal import TRACE_ABORTED, TRACE_COMPLETED, TRACE_FAILED

from .test_chaos_recovery import SEEDS, run_chaos

pytestmark = pytest.mark.chaos

_TERMINAL = {TRACE_COMPLETED, TRACE_ABORTED, TRACE_FAILED}


def assert_traces_closed(result: dict) -> None:
    """One closed causal tree per issued collective, nothing dangling."""
    hub = result["deployment"].telemetry()
    tracer = hub.causal
    assert tracer is not None
    plan_text = "; ".join(result["plan"].describe()) or "(no faults)"

    # No leaked contexts: the simulation quiesced, so every trace ever
    # started must have reached a terminal state, exactly once.
    assert tracer.live_traces() == [], (
        f"open traces left after quiescence under plan [{plan_text}]: "
        f"{[t.ctx.trace_id for t in tracer.live_traces()]}"
    )
    assert tracer.traces_closed == tracer.traces_started

    closed = {t.ctx.trace_id: t for t in tracer.closed_traces()}
    assert len(closed) == tracer.traces_closed, "duplicate trace close"

    # Exactly one closed tree per collective that reached the service —
    # retries open new *attempts* under the same trace, never new traces.
    ops = [op for op in result["victim_ops"] if op.instance is not None]
    ops.append(result["healthy_op"])
    for op in ops:
        ctx = op.instance.trace_ctx
        assert ctx is not None, f"collective seq={op.seq} issued untraced"
        trace = closed.get(ctx.trace_id)
        assert trace is not None, (
            f"collective seq={op.seq} has no closed trace "
            f"under plan [{plan_text}]"
        )
        assert trace.status in _TERMINAL
        assert trace.end_time is not None
        # Terminal status agrees with the instance's fate.
        if op.instance.aborted:
            assert trace.status in (TRACE_ABORTED, TRACE_FAILED)
        elif op.completed:
            assert trace.status == TRACE_COMPLETED
        assert len(trace.attempts) == op.instance.attempts

    # No orphan spans: every flow record inside a closed tree is
    # terminal and its segment list is fully closed.
    for trace in closed.values():
        for rec in trace.all_flows():
            assert rec.status != "active", (
                f"orphan flow {rec.flow_id} in closed trace "
                f"{trace.ctx.trace_id} under plan [{plan_text}]"
            )
            for seg in rec.segments:
                assert seg.end is not None

    # The metrics agree with the tracer's own books.
    total = hub.metrics.get("mccs_traces_total")
    open_gauge = hub.metrics.get("mccs_traces_open")
    if total is not None:
        assert total.total() == tracer.traces_started
    if open_gauge is not None:
        assert open_gauge.value() == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_trace_closure_seed_matrix(seed):
    assert_traces_closed(run_chaos(seed))


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(
    max_examples=15,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_trace_closure_hypothesis(seed):
    assert_traces_closed(run_chaos(seed, num_faults=3))
