"""Elastic WAN interleavings: grow/shrink/drift/crash in any order.

The ISSUE acceptance property: on a two-region WAN fabric, *any*
interleaving of rank joins, graceful leaves, WAN bandwidth drift,
service crashes and live collectives must leave the communicator able
to run a byte-exact collective on its final membership, with the
journal replay-consistent — and the outcome must be identical across
every netsim engine configuration (reference, macro, sharded,
macro+sharded).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.specs import multi_region_cluster
from repro.core.deployment import MccsDeployment
from repro.core.recovery import RecoveryPolicy
from repro.errors import ReproError
from repro.faults import FaultInjector
from repro.netsim.fabric import RegionSpec, wan_links
from repro.netsim.units import MB

pytestmark = pytest.mark.chaos

_op = st.one_of(
    st.just(("grow",)),
    st.just(("shrink",)),
    st.tuples(st.just("drift"), st.integers(0, 1), st.sampled_from([0.25, 0.5, 2.0])),
    st.tuples(st.just("crash"), st.integers(0, 7)),
    st.just(("collective",)),
    st.tuples(st.just("advance"), st.sampled_from([0.01, 0.05])),
)


def _run_interleaving(ops, *, macro, sharded):
    """Replay one op script; returns (world, epoch, final recv bytes)."""
    cluster = multi_region_cluster(RegionSpec(), macro=macro, sharded=sharded)
    deployment = MccsDeployment(cluster, ecmp_seed=0)
    deployment.enable_recovery(
        RecoveryPolicy(collective_deadline=1.0), heartbeat_until=3.0
    )
    deployment.enable_service_supervision(restart_delay=0.02)
    elastic = deployment.enable_elasticity()
    injector = FaultInjector(
        cluster, deployment=deployment, telemetry=deployment.telemetry()
    )
    wan = wan_links(cluster.fabric)

    client = deployment.connect("geo")
    comm = client.create_communicator([cluster.gpu(i) for i in range(4)])

    for op in ops:
        kind = op[0]
        if kind == "grow":
            elastic.chaos_grow(comm.comm_id)
        elif kind == "shrink":
            elastic.chaos_shrink(comm.comm_id)
        elif kind == "drift":
            injector.drift_bandwidth(wan[op[1]], op[2])
        elif kind == "crash":
            deployment.crash_service(op[1])
        elif kind == "collective":
            try:
                client.all_reduce(comm, 4 * MB)
            except ReproError:
                pass
        else:  # advance
            deployment.run(until=cluster.sim.now + op[1])
    deployment.run()

    svc = deployment.communicator(comm.comm_id)
    assert not svc.aborted, "graceful churn must never abort the tenant"
    assert deployment.verify_journal() == []

    comm = client.adopt_communicator(comm.comm_id)
    gpus = list(svc.gpus)
    sends = [client.alloc(g, 256) for g in gpus]
    recvs = [client.alloc(g, 256) for g in gpus]
    for buf in sends:
        buf.view(np.float32)[:] = 2.0
    final = client.all_reduce(
        comm, 256, send=[b.ref() for b in sends], recv=[b.ref() for b in recvs]
    )
    deployment.run()
    assert final.completed
    payload = tuple(bytes(r.view(np.uint8)) for r in recvs)
    return svc.world, svc.membership_epoch, payload


@given(ops=st.lists(_op, min_size=1, max_size=6))
@settings(
    max_examples=8,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_any_interleaving_is_byte_exact_across_engine_modes(ops):
    world, epoch, payload = _run_interleaving(ops, macro=False, sharded=False)
    # Undisturbed-run equivalence: the final collective sums exactly.
    expected = np.full(64, 2.0 * world, dtype=np.float32).tobytes()
    assert all(chunk == expected for chunk in payload)
    for macro, sharded in ((True, False), (False, True), (True, True)):
        assert _run_interleaving(ops, macro=macro, sharded=sharded) == (
            world,
            epoch,
            payload,
        )
