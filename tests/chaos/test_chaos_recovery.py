"""Chaos suite: randomized fault plans against a recovering deployment.

The contract under test (ISSUE robustness tentpole): for *any* seeded
:meth:`FaultPlan.random`, every collective a tenant issues either

* completes byte-correct on the surviving ranks, or
* surfaces a typed :class:`ReproError` (communicator abort) within the
  deployment's deadline budget,

the simulation always terminates (no hangs), and a co-located tenant
whose ranks share no failed component is never disturbed.

Seeds come from three places: Hypothesis (shrinkable exploration), a
fixed regression matrix, and the ``MCCS_CHAOS_SEED`` environment
variable (the CI chaos job's seed matrix).  A failing seed replays
exactly — plans, ECMP and arrivals all hang off one ``random.Random``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.specs import testbed_cluster
from repro.core.controller import CentralManager
from repro.core.deployment import MccsDeployment
from repro.core.recovery import RecoveryPolicy
from repro.errors import CommunicatorError, ReproError
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.netsim.units import MB

pytestmark = pytest.mark.chaos


def _env_seeds():
    raw = os.environ.get("MCCS_CHAOS_SEED", "")
    return [int(tok) for tok in raw.replace(",", " ").split() if tok.strip()]


#: Fixed regression seeds, extended by the CI job's MCCS_CHAOS_SEED matrix.
SEEDS = sorted(set([0, 1, 7, 42, 1337] + _env_seeds()))


def run_chaos(seed: int, *, num_faults: int = 2, num_ops: int = 3) -> dict:
    """One chaos episode; returns a verdict dict the invariants inspect."""
    import random

    rng = random.Random(seed)
    cluster = testbed_cluster()
    deployment = MccsDeployment(cluster, ecmp_seed=seed)
    policy = RecoveryPolicy(collective_deadline=0.25)
    recovery = deployment.enable_recovery(policy, heartbeat_until=3.0)
    # Service crashes (now in FaultPlan.random's default kind mix) are
    # repaired by supervised journal-replay restarts.
    deployment.enable_service_supervision()
    # rank_join / rank_leave events below reshape the victim live; every
    # pre-churn collective still drains under its issue-time membership,
    # so the byte-exact check stays pinned to the original world size.
    deployment.enable_elasticity()
    manager = CentralManager(deployment)

    victim_gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    victim_state = manager.admit("victim", victim_gpus)
    # The healthy tenant lives on hosts 0-1 only; plans below never touch
    # those hosts, so it must sail through whatever happens to the victim.
    healthy_gpus = [cluster.hosts[0].gpus[1], cluster.hosts[1].gpus[1]]
    healthy_state = manager.admit("healthy", healthy_gpus)

    victim = deployment.connect("victim")
    healthy = deployment.connect("healthy")
    vcomm = victim.adopt_communicator(victim_state.comm_id)
    hcomm = healthy.adopt_communicator(healthy_state.comm_id)

    plan = FaultPlan.random(
        cluster,
        rng=rng,
        horizon=0.05,
        min_time=0.001,
        num_faults=num_faults,
        kinds=(
            FaultKind.LINK_DOWN,
            FaultKind.LINK_DEGRADE,
            FaultKind.BANDWIDTH_DRIFT,
            FaultKind.NIC_FAIL,
            FaultKind.HOST_CRASH,
            FaultKind.SERVICE_CRASH,
            FaultKind.RANK_LEAVE,
            FaultKind.RANK_JOIN,
        ),
        host_candidates=[2, 3],  # keep hosts 0-1 (healthy tenant) safe
    )
    injector = FaultInjector(
        cluster, deployment=deployment, telemetry=deployment.telemetry()
    )
    injector.schedule(plan)

    sends = [victim.alloc(g, 256) for g in victim_gpus]
    recvs = [victim.alloc(g, 256) for g in victim_gpus]
    for buf in sends:
        buf.view(np.float32)[:] = 3.0
    victim_ops = []
    issue_error = None
    try:
        for _ in range(num_ops - 1):
            victim_ops.append(victim.all_reduce(vcomm, 32 * MB))
        victim_ops.append(victim.all_reduce(vcomm, 256, send=sends, recv=recvs))
    except ReproError as exc:  # comm aborted before the stream finished
        issue_error = exc
    healthy_op = healthy.all_reduce(hcomm, 8 * MB)

    deployment.run()  # bounded: heartbeat monitor stops at heartbeat_until

    comm_obj = deployment.communicator(vcomm.comm_id)
    return {
        "plan": plan,
        "recovery": recovery,
        "comm": comm_obj,
        "victim_ops": victim_ops,
        "recvs": recvs,
        "issue_error": issue_error,
        "healthy_op": healthy_op,
        "num_ranks": len(victim_gpus),
        "deployment": deployment,
        "sim_end": cluster.sim.now,
    }


def assert_invariants(result: dict) -> None:
    """The chaos contract, applied to one finished episode."""
    comm = result["comm"]
    plan_text = "; ".join(result["plan"].describe()) or "(no faults)"
    # 1. No hangs: every issued victim collective reached a terminal state.
    for op in result["victim_ops"]:
        assert not op.pending, (
            f"collective seq={op.seq} stuck in the shim retry queue "
            f"under plan [{plan_text}]"
        )
        if op.instance is None:
            # Never reached the service: must carry a typed give-up error.
            assert isinstance(op.error, ReproError)
            continue
        assert op.instance.end_time is not None, (
            f"collective seq={op.seq} never terminated under plan [{plan_text}]"
        )
        # 2. Terminal means completed OR aborted with a typed error.
        if op.instance.aborted:
            assert isinstance(op.instance.error, ReproError), (
                f"aborted seq={op.seq} carries "
                f"{type(op.instance.error).__name__}, not a ReproError"
            )
        else:
            assert op.completed
    # 3. Aborted communicators reject reuse with a typed error.
    if comm.aborted:
        assert isinstance(comm.abort_error, ReproError)
    elif result["issue_error"] is None and result["victim_ops"]:
        last = result["victim_ops"][-1]
        # 4. Byte-correctness on the survivors: if the stream completed,
        #    the recovered datapath must still sum correctly.
        if last.completed:
            expected = 3.0 * result["num_ranks"]
            for rank, recv in enumerate(result["recvs"]):
                assert np.allclose(recv.view(np.float32), expected), (
                    f"rank {rank} bytes wrong after recovery "
                    f"under plan [{plan_text}]"
                )
    # 5. Blast radius: the co-located tenant is never disturbed.
    assert result["healthy_op"].completed, (
        f"healthy tenant disturbed by plan [{plan_text}]"
    )
    # 6. The journal stays replay-consistent with the live control plane
    #    through every crash/restart the plan inflicted.
    assert result["deployment"].verify_journal() == [], (
        f"journal diverged under plan [{plan_text}]"
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_seed_matrix(seed):
    assert_invariants(run_chaos(seed))


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(
    max_examples=15,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_chaos_hypothesis(seed):
    assert_invariants(run_chaos(seed, num_faults=3))


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_chaos_plan_is_deterministic(seed):
    """The same seed draws the identical plan (replayability)."""
    cluster = testbed_cluster()
    first = FaultPlan.random(cluster, seed=seed, num_faults=4)
    second = FaultPlan.random(cluster, seed=seed, num_faults=4)
    assert first.events == second.events


def test_chaos_shared_rng_covers_arrivals():
    """One Random drives both arrivals and fault plans reproducibly."""
    import random

    from repro.workloads.arrivals import poisson_arrivals

    cluster = testbed_cluster()

    def draw(seed):
        rng = random.Random(seed)
        jobs = poisson_arrivals(5, rng=rng)
        plan = FaultPlan.random(cluster, rng=rng, num_faults=2)
        return jobs, plan.events

    assert draw(99) == draw(99)
    assert draw(99) != draw(100)
