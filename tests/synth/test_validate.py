"""Validator: typed rejection of malformed programs, acceptance of good ones."""

import pytest

from repro.collectives.types import Collective
from repro.errors import (
    DeadlockError,
    MalformedProgramError,
    MissingChunkError,
    PostconditionError,
    ProgramValidationError,
    SynthesisError,
    UnmatchedTransferError,
)
from repro.synth import (
    Instr,
    OpKind,
    hierarchical_allreduce_program,
    is_valid,
    make_program,
    ring_program,
    validate_program,
)


def test_error_hierarchy_is_catchable_at_every_level():
    for err in (
        MalformedProgramError,
        UnmatchedTransferError,
        MissingChunkError,
        DeadlockError,
        PostconditionError,
    ):
        assert issubclass(err, ProgramValidationError)
        assert issubclass(err, SynthesisError)


def test_generated_programs_validate():
    for kind in Collective:
        for world in (2, 3, 5, 8):
            validate_program(ring_program(kind, world, root=world - 1))
    validate_program(hierarchical_allreduce_program([[0, 1, 2], [3, 4, 5]]))


def test_rejects_unmatched_send():
    program = make_program(
        "bad:unmatched", Collective.BROADCAST,
        [[Instr(OpKind.SEND, 0, peer=1)], []],
        num_chunks=1,
    )
    with pytest.raises(UnmatchedTransferError, match="no matching receive"):
        validate_program(program)
    assert not is_valid(program)


def test_rejects_unmatched_receive():
    program = make_program(
        "bad:orphan-recv", Collective.ALL_REDUCE,
        [[], [Instr(OpKind.RECV_REDUCE, 0, peer=0)]],
        num_chunks=1,
    )
    with pytest.raises(UnmatchedTransferError, match="no matching send"):
        validate_program(program)


def test_rejects_deadlock_cycle():
    # both ranks block on a receive before their own send can run
    program = make_program(
        "bad:deadlock", Collective.ALL_REDUCE,
        [
            [Instr(OpKind.RECV_REDUCE, 0, peer=1), Instr(OpKind.SEND, 0, peer=1)],
            [Instr(OpKind.RECV_REDUCE, 0, peer=0), Instr(OpKind.SEND, 0, peer=0)],
        ],
        num_chunks=1,
    )
    with pytest.raises(DeadlockError, match="dependency cycle"):
        validate_program(program)


def test_rejects_chunk_used_before_it_arrives():
    # root=0 broadcast, but rank 1 sends before it ever receives
    program = make_program(
        "bad:missing", Collective.BROADCAST,
        [
            [Instr(OpKind.RECV, 0, peer=1)],
            [Instr(OpKind.SEND, 0, peer=0)],
        ],
        num_chunks=1,
    )
    with pytest.raises(MissingChunkError, match="does not hold"):
        validate_program(program)


def test_rejects_double_counted_contribution():
    program = make_program(
        "bad:double", Collective.ALL_REDUCE,
        [
            [
                Instr(OpKind.SEND, 0, peer=1, step=0),
                Instr(OpKind.SEND, 0, peer=1, step=1),
            ],
            [
                Instr(OpKind.RECV_REDUCE, 0, peer=0, step=0),
                Instr(OpKind.RECV_REDUCE, 0, peer=0, step=1),
            ],
        ],
        num_chunks=1,
    )
    with pytest.raises(MissingChunkError, match="folded in twice"):
        validate_program(program)


def test_rejects_wrong_postcondition():
    # broadcast that never reaches rank 2
    program = make_program(
        "bad:post", Collective.BROADCAST,
        [
            [Instr(OpKind.SEND, 0, peer=1)],
            [Instr(OpKind.RECV, 0, peer=0)],
            [],
        ],
        num_chunks=1,
    )
    with pytest.raises(PostconditionError, match="rank 2 ends without"):
        validate_program(program)


def test_rejects_incomplete_reduction():
    # "all-reduce" that only swaps values: contributor sets stay partial
    program = make_program(
        "bad:partial", Collective.ALL_REDUCE,
        [
            [Instr(OpKind.SEND, 0, peer=1), Instr(OpKind.RECV, 0, peer=1)],
            [Instr(OpKind.SEND, 0, peer=0), Instr(OpKind.RECV, 0, peer=0)],
        ],
        num_chunks=1,
    )
    with pytest.raises(PostconditionError, match="contributors"):
        validate_program(program)


@pytest.mark.parametrize(
    "instr, match",
    [
        (Instr(OpKind.SEND, 9, peer=1), "chunk 9 out of range"),
        (Instr(OpKind.SEND, 0, peer=7), "peer 7 out of range"),
        (Instr(OpKind.SEND, 0, peer=0), "self-transfer"),
        (Instr(OpKind.SEND, 0, peer=1, channel=5), "channel 5 out of range"),
        (Instr(OpKind.COPY, 0, src_chunk=9), "src_chunk 9 out of range"),
        (Instr(OpKind.COPY, 0, peer=1, src_chunk=0), "must not name a peer"),
    ],
)
def test_rejects_structural_violations(instr, match):
    program = make_program(
        "bad:structure", Collective.ALL_REDUCE,
        [[instr], []],
        num_chunks=2,
        channels=1,
    )
    with pytest.raises(MalformedProgramError, match=match):
        validate_program(program)


def test_rejects_decreasing_steps():
    program = make_program(
        "bad:steps", Collective.ALL_REDUCE,
        [
            [
                Instr(OpKind.SEND, 0, peer=1, step=1),
                Instr(OpKind.SEND, 1, peer=1, step=0),
            ],
            [
                Instr(OpKind.RECV_REDUCE, 0, peer=0, step=1),
                Instr(OpKind.RECV_REDUCE, 1, peer=0, step=0),
            ],
        ],
        num_chunks=2,
    )
    with pytest.raises(MalformedProgramError, match="decreases"):
        validate_program(program)


def test_rejects_blocked_kind_with_unaligned_chunks():
    program = make_program(
        "bad:blocks", Collective.ALL_GATHER,
        [[], [], []],
        num_chunks=4,  # not divisible by world=3
    )
    with pytest.raises(MalformedProgramError, match="divisible by world"):
        validate_program(program)


def test_validation_errors_name_the_program():
    program = make_program(
        "bad:named-prog", Collective.BROADCAST,
        [[Instr(OpKind.SEND, 0, peer=1)], []],
        num_chunks=1,
    )
    with pytest.raises(ProgramValidationError, match="bad:named-prog"):
        validate_program(program)
