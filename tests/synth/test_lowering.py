"""Lowering: synthesized programs through the real flow data plane.

Covers the compilation contract end to end: a validated program runs as
a first-class strategy on a live deployment — flows through
``repro.netsim`` on the reference, macro and sharded engines, buffers
moved by the interpreter, consistency gates intact.
"""

import numpy as np
import pytest

from repro.cluster.specs import multi_region_cluster, testbed_cluster
from repro.collectives.types import Collective, ReduceOp
from repro.core.algorithms import AlgorithmContext, get_algorithm
from repro.core.deployment import MccsDeployment
from repro.core.strategy import CollectiveStrategy
from repro.collectives.ring import RingSchedule
from repro.errors import MccsError
from repro.netsim.fabric import RegionSpec
from repro.synth import (
    SynthAlgorithm,
    hierarchical_allreduce_program,
    register_program,
    registered_synth_algorithms,
    temporarily_registered,
    unregister_program,
)

ENGINE_MODES = ((False, False), (True, False), (False, True), (True, True))


@pytest.fixture
def hier_program():
    return hierarchical_allreduce_program(
        [[0, 1, 2, 3], [4, 5, 6, 7]], name="synth:test-lowering/w8"
    )


def test_register_validates_and_unregister_cleans_up(hier_program):
    algo = register_program(hier_program, fingerprint="fp-test")
    try:
        assert algo.name in registered_synth_algorithms()
        assert get_algorithm(algo.name) is algo
        assert algo.fingerprint == "fp-test"
    finally:
        unregister_program(algo.name)
    assert algo.name not in registered_synth_algorithms()
    with pytest.raises(MccsError):
        get_algorithm(algo.name)


def test_register_rejects_invalid_program():
    from repro.errors import PostconditionError
    from repro.synth import Instr, OpKind, make_program

    bad = make_program(
        "synth:test-bad", Collective.BROADCAST,
        [[Instr(OpKind.SEND, 0, peer=1)], [Instr(OpKind.RECV, 0, peer=0)], []],
        num_chunks=1,
    )
    with pytest.raises(PostconditionError):
        register_program(bad)
    assert "synth:test-bad" not in registered_synth_algorithms()


def test_temporarily_registered_restores_registry(hier_program):
    before = registered_synth_algorithms()
    with temporarily_registered(hier_program) as algos:
        assert algos[0].name in registered_synth_algorithms()
    assert registered_synth_algorithms() == before


def test_rank_transfers_aggregate_per_peer_and_channel(hier_program):
    algo = SynthAlgorithm(hier_program)
    ctx = AlgorithmContext(
        kind=Collective.ALL_REDUCE,
        out_bytes=8 << 20,
        world=8,
        rank=0,
        root=0,
        ring_order=tuple(range(8)),
        channels=1,
    )
    transfers = algo.rank_transfers(ctx)
    # one aggregate flow per (peer, channel), like the built-ins
    keys = [(t.dst_rank, t.channel) for t in transfers]
    assert len(keys) == len(set(keys))
    total = sum(t.nbytes for t in transfers)
    expected = sum(
        nbytes
        for (src, _dst), nbytes in hier_program.pair_traffic(8 << 20).items()
        if src == 0
    )
    assert total == pytest.approx(expected)


def test_unsupported_points_fall_back_to_ring(hier_program):
    algo = SynthAlgorithm(hier_program)
    assert algo.supports(Collective.ALL_REDUCE, 8)
    assert not algo.supports(Collective.ALL_REDUCE, 4)
    assert not algo.supports(Collective.ALL_GATHER, 8)
    ring = get_algorithm("ring")
    assert algo.steps(Collective.ALL_GATHER, 8) == ring.steps(
        Collective.ALL_GATHER, 8
    )
    assert algo.steps(Collective.ALL_REDUCE, 8) == hier_program.num_steps


@pytest.mark.parametrize("macro,sharded", ENGINE_MODES)
def test_synthesized_program_moves_real_bytes_on_every_engine(
    hier_program, macro, sharded
):
    """Byte-exact buffer round trip through the flow data plane."""
    cluster = multi_region_cluster(
        RegionSpec(), macro=macro, sharded=sharded
    )
    gpus = [h.gpus[0] for h in cluster.hosts]
    with temporarily_registered(hier_program) as (algo,):
        deployment = MccsDeployment(cluster)
        strategy = CollectiveStrategy(
            ring=RingSchedule(tuple(range(8))),
            channels=1,
            algorithm=algo.name,
        )
        comm = deployment.create_communicator("A", gpus, strategy=strategy)
        client = deployment.connect("A")
        shim_comm = client.adopt_communicator(comm.comm_id)
        sends = [client.alloc(g, 256) for g in gpus]
        recvs = [client.alloc(g, 256) for g in gpus]
        for rank, buf in enumerate(sends):
            buf.view(np.float32)[:] = float(rank + 1)
        op = client.all_reduce(
            shim_comm, 256, send=sends, recv=recvs, op=ReduceOp.SUM
        )
        deployment.run()
        assert op.completed
        expected = sum(range(1, 9))  # 36
        for buf in recvs:
            np.testing.assert_array_equal(
                buf.view(np.float32), np.full(64, float(expected))
            )
        assert comm.inconsistent_collectives == 0


def test_synthesized_completion_time_beats_builtins_on_two_regions(
    hier_program,
):
    """The acceptance-criteria win: strictly faster simulated completion."""

    def measure(algorithm):
        cluster = multi_region_cluster(RegionSpec())
        gpus = [h.gpus[0] for h in cluster.hosts]
        deployment = MccsDeployment(cluster)
        strategy = CollectiveStrategy(
            ring=RingSchedule(tuple(range(8))), channels=1, algorithm=algorithm
        )
        comm = deployment.create_communicator(
            "A", gpus, strategy=strategy, datapath_tag="synth-win"
        )
        client = deployment.connect("A")
        shim_comm = client.adopt_communicator(comm.comm_id)
        done = []
        client.all_reduce(
            shim_comm,
            16 << 20,
            on_complete=lambda inst, now: done.append(inst.duration()),
        )
        deployment.run()
        return done[0]

    with temporarily_registered(hier_program) as (algo,):
        synth_t = measure(algo.name)
        ring_t = measure("ring")
        tree_t = measure("tree")
        hd_t = measure("halving_doubling")
    assert synth_t < min(ring_t, tree_t, hd_t)


def test_fallback_path_still_correct_on_testbed():
    """A program registered for one world serves other worlds via ring."""
    program = hierarchical_allreduce_program(
        [[0, 1], [2, 3]], name="synth:test-fallback/w4"
    )
    cluster = testbed_cluster()
    gpus = [cluster.hosts[h].gpus[0] for h in range(2)]  # world 2 != 4
    with temporarily_registered(program) as (algo,):
        deployment = MccsDeployment(cluster)
        strategy = CollectiveStrategy(
            ring=RingSchedule((0, 1)), channels=1, algorithm=algo.name
        )
        comm = deployment.create_communicator("A", gpus, strategy=strategy)
        client = deployment.connect("A")
        shim_comm = client.adopt_communicator(comm.comm_id)
        sends = [client.alloc(g, 128) for g in gpus]
        recvs = [client.alloc(g, 128) for g in gpus]
        for rank, buf in enumerate(sends):
            buf.view(np.float32)[:] = float(rank + 1)
        op = client.all_reduce(shim_comm, 128, send=sends, recv=recvs)
        deployment.run()
        assert op.completed
        for buf in recvs:
            np.testing.assert_array_equal(
                buf.view(np.float32), np.full(32, 3.0)
            )
