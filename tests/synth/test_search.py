"""Synthesizer search: beam, pareto front, registration, tuner adoption."""

from repro.autotune import StrategyPlanner, topology_fingerprint
from repro.cluster.specs import multi_region_cluster, testbed_cluster
from repro.collectives.types import Collective
from repro.core.algorithms import unregister_algorithm
from repro.netsim.fabric import RegionSpec
from repro.netsim.units import KB, MB
from repro.synth import (
    Protocol,
    ScoredProgram,
    Synthesizer,
    estimate_program_seconds,
    placement_groups,
    ring_program,
    synthesize_and_register,
)


def _two_region_placement():
    cluster = multi_region_cluster(RegionSpec())
    gpus = [h.gpus[0] for h in cluster.hosts]
    return cluster, gpus


def _unregister_all(algos):
    for algo in algos:
        unregister_algorithm(algo.name)


def test_placement_groups_expose_region_partition():
    cluster, gpus = _two_region_placement()
    groups = placement_groups(cluster, gpus)
    assert groups["region"] == [[0, 1, 2, 3], [4, 5, 6, 7]]
    # one gpu per host: the host grouping degenerates and is dropped
    assert "host" not in groups


def test_placement_groups_empty_on_flat_single_host():
    cluster = testbed_cluster()
    gpus = list(cluster.hosts[0].gpus[:4])  # all co-hosted
    groups = placement_groups(cluster, gpus)
    assert "host" not in groups  # single group swallows everyone


def test_search_generates_hierarchical_and_ring_families():
    cluster, gpus = _two_region_placement()
    synthesizer = Synthesizer(cluster, gpus)
    programs = synthesizer._generate(Collective.ALL_REDUCE)
    names = {p.name for p in programs}
    assert any(name.startswith("synth:ring.") for name in names)
    assert any(name.startswith("synth:hier-region.") for name in names)
    # protocols and channel counts are crossed in
    assert any(".ll128" in name for name in names)
    assert any(".c2." in name for name in names)


def test_search_returns_valid_pareto_front():
    cluster, gpus = _two_region_placement()
    synthesizer = Synthesizer(cluster, gpus)
    front = synthesizer.search(Collective.ALL_REDUCE)
    assert front
    assert synthesizer.candidates_generated > len(front)
    assert synthesizer.candidates_rejected == 0  # generators emit valid IR
    # pareto: nothing on the front dominates anything else on it
    for a in front:
        assert not any(b.dominates(a) for b in front if b is not a)
    # sorted by bandwidth-probe cost
    costs = [s.bandwidth_seconds for s in front]
    assert costs == sorted(costs)


def test_front_bandwidth_winner_is_hierarchical_on_two_regions():
    cluster, gpus = _two_region_placement()
    front = Synthesizer(cluster, gpus).search(Collective.ALL_REDUCE)
    assert "hier-region" in front[0].program.name
    # and the model agrees it beats the flat ring at bandwidth sizes
    flat = ring_program(Collective.ALL_REDUCE, len(gpus))
    assert front[0].bandwidth_seconds < estimate_program_seconds(
        cluster, gpus, flat, 64 * MB
    )


def test_beam_width_bounds_candidates_per_step_count():
    cluster, gpus = _two_region_placement()
    wide = Synthesizer(cluster, gpus, beam_width=32)
    narrow = Synthesizer(cluster, gpus, beam_width=1)
    wide_scored = [
        ScoredProgram(p, 0.0, 0.0)
        for p in wide._generate(Collective.ALL_REDUCE)
    ]
    kept = narrow._beam(
        [
            ScoredProgram(
                s.program,
                estimate_program_seconds(cluster, gpus, s.program, 64 * KB),
                estimate_program_seconds(cluster, gpus, s.program, 64 * MB),
            )
            for s in wide_scored
        ]
    )
    step_counts = [s.program.num_steps for s in kept]
    assert len(step_counts) == len(set(step_counts))


def test_invalid_candidates_are_counted_not_raised(monkeypatch):
    cluster, gpus = _two_region_placement()
    synthesizer = Synthesizer(cluster, gpus)
    real = synthesizer._generate(Collective.ALL_REDUCE)
    # corrupt one candidate: drop rank 0's program entirely
    broken = real[0]
    object.__setattr__(
        broken, "rank_programs", ((),) + broken.rank_programs[1:]
    )
    monkeypatch.setattr(synthesizer, "_generate", lambda kind: real)
    front = synthesizer.search(Collective.ALL_REDUCE)
    assert synthesizer.candidates_rejected == 1
    assert all(s.program is not broken for s in front)


def test_synthesize_and_register_carries_topology_fingerprint():
    cluster, gpus = _two_region_placement()
    algos = synthesize_and_register(cluster, gpus, max_programs=3)
    try:
        assert 1 <= len(algos) <= 3
        fingerprint = topology_fingerprint(cluster, gpus)
        assert all(a.fingerprint == fingerprint for a in algos)
        planner = StrategyPlanner(cluster)
        offered = planner.synth_algorithms(Collective.ALL_REDUCE, gpus)
        assert {a.name for a in algos} <= set(offered)
    finally:
        _unregister_all(algos)


def test_fingerprint_mismatch_keeps_programs_out_of_other_plans():
    cluster, gpus = _two_region_placement()
    algos = synthesize_and_register(cluster, gpus, max_programs=2)
    try:
        from repro.experiments.setups import single_app_gpus

        other = testbed_cluster()
        other_gpus = single_app_gpus(other, "8gpu")
        planner = StrategyPlanner(other)
        assert planner.synth_algorithms(Collective.ALL_REDUCE, other_gpus) == []
        names = {
            s.candidate.algorithm
            for s in planner.plan(Collective.ALL_REDUCE, 1 * MB, other_gpus)
        }
        assert not any(n.startswith("synth:") for n in names)
    finally:
        _unregister_all(algos)


def test_planner_ranks_synthesized_schedule_first_across_sizes():
    """Acceptance criterion: a synthesized schedule strictly beats the
    best built-in on the two-region fabric at every probed size."""
    cluster, gpus = _two_region_placement()
    algos = synthesize_and_register(cluster, gpus)
    try:
        planner = StrategyPlanner(cluster)
        for size in (64 * KB, 1 * MB, 16 * MB, 64 * MB):
            ranked = planner.plan(Collective.ALL_REDUCE, size, gpus)
            assert ranked[0].candidate.algorithm.startswith("synth:")
            best_builtin = min(
                s.predicted_seconds
                for s in ranked
                if not s.candidate.algorithm.startswith("synth:")
            )
            assert ranked[0].predicted_seconds < best_builtin
    finally:
        _unregister_all(algos)


def test_autotuner_adopts_synthesized_schedule_through_barrier():
    """The tuner measures the synthesized schedule faster and installs it
    via the §4.2 reconfiguration barrier, with zero inconsistencies."""
    from repro.core.deployment import MccsDeployment

    cluster, gpus = _two_region_placement()
    algos = synthesize_and_register(cluster, gpus)
    try:
        deployment = MccsDeployment(cluster)
        tuner = deployment.enable_autotuning()
        comm = deployment.create_communicator(
            "A", gpus, datapath_tag="synth-tuner"
        )
        client = deployment.connect("A")
        shim = client.adopt_communicator(comm.comm_id)
        durations = []
        for _ in range(30):
            client.all_reduce(
                shim,
                16 * MB,
                on_complete=lambda inst, now: durations.append(
                    inst.duration()
                ),
            )
            deployment.run()
        assert comm.strategy.algorithm.startswith("synth:")
        assert tuner.retunes_applied(comm.comm_id) > 0
        sessions = deployment.reconfig.sessions
        assert sessions and all(s.barrier_enabled for s in sessions)
        assert comm.inconsistent_collectives == 0
        assert min(durations[-4:]) < durations[0]
    finally:
        _unregister_all(algos)


def test_protocol_choice_shifts_probe_costs():
    cluster, gpus = _two_region_placement()
    world = len(gpus)
    simple = ring_program(Collective.ALL_REDUCE, world)
    ll = ring_program(Collective.ALL_REDUCE, world, protocol=Protocol.LL)
    # LL halves effective bandwidth but quarters per-step latency
    assert estimate_program_seconds(
        cluster, gpus, ll, 64 * MB
    ) > estimate_program_seconds(cluster, gpus, simple, 64 * MB)
    assert estimate_program_seconds(
        cluster, gpus, ll, 1 * KB
    ) < estimate_program_seconds(cluster, gpus, simple, 1 * KB)
