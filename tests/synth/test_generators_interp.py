"""Generators + interpreter: byte-exactness against the numpy oracle."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.reference import reference_outputs
from repro.collectives.ring import RingDataPlane, RingSchedule
from repro.collectives.types import Collective, ReduceOp
from repro.errors import MalformedProgramError
from repro.synth import (
    hierarchical_allreduce_program,
    ring_program,
    run_program,
)


@given(
    kind=st.sampled_from(list(Collective)),
    world=st.integers(2, 9),
    elems=st.sampled_from([1, 5, 7, 13, 23]),
    op=st.sampled_from(list(ReduceOp)),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_ring_program_matches_reference(kind, world, elems, op, seed):
    rng = np.random.default_rng(seed)
    root = world - 1
    size = elems * world if kind is Collective.REDUCE_SCATTER else elems
    inputs = [
        rng.integers(1, 4, size=size).astype(np.int64) for _ in range(world)
    ]
    program = ring_program(kind, world, root=root)
    outputs = run_program(program, [a.copy() for a in inputs], op)
    expected = reference_outputs(
        kind, [a.copy() for a in inputs], op=op, root=root
    )
    for rank in range(world):
        np.testing.assert_array_equal(outputs[rank].ravel(),
                                      expected[rank].ravel())


def test_ring_program_matches_ring_data_plane_bytes():
    # identical chunking and schedule => identical float results, not
    # just allclose: the IR path reproduces RingDataPlane exactly
    rng = np.random.default_rng(7)
    world = 5
    inputs = [rng.standard_normal(23).astype(np.float32) for _ in range(world)]
    plane = RingDataPlane(RingSchedule(tuple(range(world))))
    ref = plane.all_reduce([a.copy() for a in inputs])
    got = run_program(
        ring_program(Collective.ALL_REDUCE, world),
        [a.copy() for a in inputs],
        ReduceOp.SUM,
    )
    for a, b in zip(ref, got):
        np.testing.assert_array_equal(a, b)


def test_ring_program_respects_custom_order():
    rng = np.random.default_rng(11)
    world = 4
    order = (2, 0, 3, 1)
    inputs = [rng.standard_normal(16).astype(np.float64) for _ in range(world)]
    plane = RingDataPlane(RingSchedule(order))
    ref = plane.all_reduce([a.copy() for a in inputs])
    got = run_program(
        ring_program(Collective.ALL_REDUCE, world, order=order),
        [a.copy() for a in inputs],
        ReduceOp.SUM,
    )
    for a, b in zip(ref, got):
        np.testing.assert_array_equal(a, b)


@given(
    g=st.integers(1, 4),
    m=st.integers(1, 4),
    elems=st.sampled_from([1, 9, 17, 31]),
    op=st.sampled_from(list(ReduceOp)),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_hierarchical_allreduce_matches_reference(g, m, elems, op, seed):
    world = g * m
    if world < 2:
        return
    rng = np.random.default_rng(seed)
    groups = [list(range(j * m, (j + 1) * m)) for j in range(g)]
    inputs = [
        rng.integers(1, 4, size=elems).astype(np.int64) for _ in range(world)
    ]
    program = hierarchical_allreduce_program(groups)
    outputs = run_program(program, [a.copy() for a in inputs], op)
    expected = reference_outputs(
        Collective.ALL_REDUCE, [a.copy() for a in inputs], op=op
    )
    for rank in range(world):
        np.testing.assert_array_equal(outputs[rank], expected[rank])


def test_hierarchical_step_count_beats_flat_ring():
    g, m = 2, 4
    groups = [list(range(j * m, (j + 1) * m)) for j in range(g)]
    program = hierarchical_allreduce_program(groups)
    assert program.num_steps == 2 * m + 2 * g - 4  # 8
    flat = ring_program(Collective.ALL_REDUCE, g * m)
    assert program.num_steps < flat.num_steps  # 8 < 14


def test_hierarchical_halves_wan_bytes_vs_locality_ring():
    # 2 regions of 4: per directed region pair, the two-level schedule
    # ships ~S while the best flat ring ships ~2S
    out = 1 << 20
    groups = [[0, 1, 2, 3], [4, 5, 6, 7]]
    region = lambda r: r // 4

    def wan_bytes(program):
        return sum(
            nbytes
            for (src, dst), nbytes in program.pair_traffic(out).items()
            if region(src) != region(dst)
        )

    hier = hierarchical_allreduce_program(groups)
    flat = ring_program(Collective.ALL_REDUCE, 8)  # identity = locality
    assert wan_bytes(hier) == pytest.approx(2 * out, rel=0.01)  # S each way
    assert wan_bytes(flat) == pytest.approx(2 * 2 * out * 7 / 8, rel=0.01)
    assert wan_bytes(hier) < 0.6 * wan_bytes(flat)


def test_hierarchical_rejects_unequal_groups():
    with pytest.raises(MalformedProgramError, match="equally sized"):
        hierarchical_allreduce_program([[0, 1, 2], [3, 4]])


def test_hierarchical_rejects_non_partition():
    with pytest.raises(MalformedProgramError, match="partition"):
        hierarchical_allreduce_program([[0, 1], [1, 2]])


def test_interpreter_rejects_wrong_buffer_count():
    program = ring_program(Collective.ALL_REDUCE, 4)
    with pytest.raises(MalformedProgramError, match="4 input buffers"):
        run_program(program, [np.zeros(4)] * 3, ReduceOp.SUM)


def test_interpreter_handles_buffers_smaller_than_chunk_count():
    # 2 elements over 4 ranks: trailing chunks are empty slices
    program = ring_program(Collective.ALL_REDUCE, 4)
    inputs = [np.full(2, float(r + 1)) for r in range(4)]
    outputs = run_program(program, inputs, ReduceOp.SUM)
    for out in outputs:
        np.testing.assert_array_equal(out, np.full(2, 10.0))
