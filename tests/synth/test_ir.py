"""IR data model: shapes, serialization, traffic views, protocols."""

import json

import pytest

from repro.collectives.types import Collective
from repro.errors import MalformedProgramError
from repro.synth import Instr, OpKind, Program, Protocol, make_program, ring_program
from repro.synth.ir import chunk_spans


def test_num_steps_and_channel_inference():
    program = make_program(
        "synth:t", Collective.ALL_REDUCE,
        [
            [Instr(OpKind.SEND, 0, peer=1, channel=2, step=3)],
            [Instr(OpKind.RECV_REDUCE, 0, peer=0, channel=2, step=3)],
        ],
        num_chunks=1,
    )
    assert program.num_steps == 4
    assert program.channels == 3  # max used channel + 1


def test_total_bytes_follows_output_buffer_convention():
    ar = ring_program(Collective.ALL_REDUCE, 4)
    rs = ring_program(Collective.REDUCE_SCATTER, 4)
    assert ar.total_bytes(1000) == 1000
    assert rs.total_bytes(1000) == 4000  # per-rank input is world * out


def test_chunk_spans_align_with_rank_blocks():
    # 10 elements, 4 ranks, 8 chunks: chunk boundaries must not straddle
    # the rank blocks (3, 3, 2, 2)
    spans = chunk_spans(Collective.REDUCE_SCATTER, 10, 8, 4)
    assert len(spans) == 8
    blocks = [(0, 3), (3, 6), (6, 8), (8, 10)]
    for i, (lo, hi) in enumerate(spans):
        block_lo, block_hi = blocks[i // 2]
        assert block_lo <= lo <= hi <= block_hi
    # flat kinds split evenly
    flat = chunk_spans(Collective.ALL_REDUCE, 10, 4, 4)
    assert flat == [(0, 3), (3, 6), (6, 8), (8, 10)]


def test_pair_traffic_matches_ring_model():
    from repro.collectives.ring import edge_traffic

    world, out = 4, 4096
    program = ring_program(Collective.ALL_REDUCE, world)
    traffic = program.pair_traffic(out)
    per_edge = edge_traffic(Collective.ALL_REDUCE, out, world, 0)
    for p in range(world):
        assert traffic[(p, (p + 1) % world)] == pytest.approx(per_edge[p])


def test_rank_transfer_bytes_aggregates_per_peer_and_channel():
    program = ring_program(Collective.ALL_REDUCE, 4, channels=2)
    by_edge = program.rank_transfer_bytes(0, 4096)
    assert all(dst == 1 for (dst, _channel) in by_edge)
    assert sum(by_edge.values()) == pytest.approx(2 * 3 / 4 * 4096)


def test_wan_step_count_is_exact():
    program = ring_program(Collective.ALL_REDUCE, 4)
    # ranks 0,1 in region 0; 2,3 in region 1: the flat ring crosses the
    # boundary somewhere in every one of its 6 steps
    assert program.wan_step_count(lambda r: r // 2) == program.num_steps
    assert program.wan_step_count(lambda r: 0) == 0


def test_protocol_factors_are_the_published_shape():
    assert Protocol.SIMPLE.bandwidth_efficiency == 1.0
    assert Protocol.SIMPLE.latency_factor == 1.0
    assert Protocol.LL.bandwidth_efficiency == 0.5
    assert Protocol.LL128.bandwidth_efficiency == pytest.approx(120 / 128)
    assert Protocol.LL.latency_factor < Protocol.LL128.latency_factor < 1.0


def test_json_round_trip_preserves_program():
    program = ring_program(
        Collective.REDUCE_SCATTER, 5, channels=2, protocol=Protocol.LL128
    )
    text = program.dumps()
    data = json.loads(text)
    assert data["format_version"] == 1
    assert data["kind"] == "reduce_scatter"
    assert data["protocol"] == "ll128"
    assert Program.loads(text) == program


def test_from_json_rejects_unknown_format_version():
    data = ring_program(Collective.ALL_REDUCE, 2).to_json()
    data["format_version"] = 99
    with pytest.raises(MalformedProgramError):
        Program.from_json(data)
