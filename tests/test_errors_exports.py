"""Hygiene: every typed error is re-exported from ``repro.errors``.

Applications are promised that ``except repro.errors.ReproError`` (or a
specific subclass imported from ``repro.errors``) covers everything the
package throws.  This test walks the AST of the defining modules so a
newly added error class that is not re-exported fails CI immediately.
"""

import ast
import pathlib

import repro.errors as errors_module

SRC = pathlib.Path(errors_module.__file__).resolve().parent
DEFINING_MODULES = (
    SRC / "netsim" / "errors.py",
    SRC / "service" / "errors.py",
)


def _defined_error_classes(path):
    tree = ast.parse(path.read_text())
    return {
        node.name
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef)
    }


def _declared_all():
    tree = ast.parse(pathlib.Path(errors_module.__file__).read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
        ):
            return [ast.literal_eval(elt) for elt in node.value.elts]
    raise AssertionError("repro.errors has no literal __all__")


def test_every_defined_error_is_reexported():
    for path in DEFINING_MODULES:
        defined = _defined_error_classes(path)
        assert defined, f"no error classes found in {path}"
        missing = {
            name for name in defined
            if not hasattr(errors_module, name) or name not in errors_module.__all__
        }
        assert not missing, (
            f"error classes in {path.name} missing from repro.errors / "
            f"__all__: {sorted(missing)}"
        )


def test_all_is_sorted_and_resolvable():
    declared = _declared_all()
    assert declared == sorted(declared), "__all__ must stay sorted"
    assert len(declared) == len(set(declared)), "__all__ has duplicates"
    for name in declared:
        assert hasattr(errors_module, name), f"__all__ names unknown {name!r}"


def test_every_export_descends_from_the_root():
    root = errors_module.ReproError
    for name in errors_module.__all__:
        cls = getattr(errors_module, name)
        assert isinstance(cls, type) and issubclass(cls, Exception)
        if name == "ReproError":
            continue  # the root itself
        assert issubclass(cls, root), f"{name} escapes the ReproError root"
