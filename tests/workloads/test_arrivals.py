"""Property tests for the diurnal arrival sampler (Lewis-Shedler thinning)."""

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.arrivals import (
    DiurnalProfile,
    diurnal_arrivals,
    poisson_arrivals,
)

_profiles = st.builds(
    DiurnalProfile,
    period=st.floats(min_value=1.0, max_value=600.0),
    amplitude=st.floats(min_value=0.0, max_value=0.95),
    phase=st.floats(min_value=-100.0, max_value=100.0),
    floor=st.floats(min_value=0.0, max_value=0.5),
)


@settings(max_examples=50, deadline=None)
@given(profile=_profiles, seed=st.integers(0, 2**32 - 1))
def test_same_seed_same_arrivals(profile, seed):
    a = diurnal_arrivals(20, profile=profile, seed=seed)
    b = diurnal_arrivals(20, profile=profile, seed=seed)
    assert a == b


@settings(max_examples=30, deadline=None)
@given(profile=_profiles, seed=st.integers(0, 2**32 - 1))
def test_arrivals_are_strictly_ordered_and_sized(profile, seed):
    jobs = diurnal_arrivals(30, profile=profile, seed=seed, sizes=(16, 32))
    times = [j.arrival_time for j in jobs]
    assert all(t2 > t1 for t1, t2 in zip(times, times[1:]))
    assert all(j.num_gpus in (16, 32) for j in jobs)
    assert [j.job_id for j in jobs] == [f"job{i}" for i in range(30)]


@settings(max_examples=30, deadline=None)
@given(profile=_profiles, seed=st.integers(0, 2**32 - 1))
def test_rate_factor_respects_floor_and_peak(profile, seed):
    rng = random.Random(seed)
    for _ in range(50):
        t = rng.uniform(-2.0 * profile.period, 2.0 * profile.period)
        factor = profile.rate_factor(t)
        assert profile.floor <= factor <= profile.peak_factor + 1e-12


def test_shared_rng_stream_is_deterministic():
    # The documented chaos idiom: one generator shared by workload and
    # fault plan reproduces the whole scenario from a single seed.
    rng1, rng2 = random.Random(7), random.Random(7)
    a = diurnal_arrivals(15, rng=rng1)
    b = diurnal_arrivals(15, rng=rng2)
    assert a == b
    assert rng1.random() == rng2.random()  # streams advanced identically


def test_flat_profile_degenerates_to_poisson_statistics():
    # amplitude=0 and no bursts: thinning accepts everything, so the
    # sampler IS a homogeneous Poisson process with the base rate.
    flat = DiurnalProfile(amplitude=0.0, floor=0.0)
    assert flat.peak_factor == 1.0
    jobs = diurnal_arrivals(4000, mean_interarrival=0.2, profile=flat, seed=3)
    gaps = [
        b.arrival_time - a.arrival_time for a, b in zip(jobs, jobs[1:])
    ]
    mean = sum(gaps) / len(gaps)
    # Exponential(0.2): mean 0.2, CV 1; 4000 samples pin both within ~5%.
    assert mean == pytest.approx(0.2, rel=0.08)
    var = sum((g - mean) ** 2 for g in gaps) / (len(gaps) - 1)
    assert math.sqrt(var) / mean == pytest.approx(1.0, rel=0.10)
    # And it matches the plain sampler's gap distribution seed-for-seed
    # in aggregate (same mean within noise).
    plain = poisson_arrivals(4000, mean_interarrival=0.2, seed=3)
    plain_mean = plain[-1].arrival_time / len(plain)
    assert mean == pytest.approx(plain_mean, rel=0.1)


def test_diurnal_modulation_shapes_the_histogram():
    # Crest at period/4 with phase=0: more arrivals land in the crest
    # half-cycle than in the trough half-cycle.
    profile = DiurnalProfile(period=10.0, amplitude=0.9, phase=0.0, floor=0.0)
    jobs = diurnal_arrivals(3000, mean_interarrival=0.05, profile=profile, seed=11)
    crest = sum(1 for j in jobs if (j.arrival_time % 10.0) < 5.0)
    trough = len(jobs) - crest
    assert crest > 2 * trough


def test_burst_envelope_concentrates_arrivals():
    profile = DiurnalProfile(
        period=100.0, amplitude=0.0, bursts=((5.0, 0.5, 8.0),), floor=0.0
    )
    jobs = diurnal_arrivals(2000, mean_interarrival=0.05, profile=profile, seed=5)
    horizon = jobs[-1].arrival_time
    in_burst = sum(1 for j in jobs if 3.5 <= j.arrival_time <= 6.5)
    # The 3s burst window holds far more than its share of uniform mass.
    assert in_burst / len(jobs) > 3.0 * (3.0 / horizon)


def test_profile_validation():
    with pytest.raises(ValueError):
        DiurnalProfile(period=0.0)
    with pytest.raises(ValueError):
        DiurnalProfile(amplitude=1.0)
    with pytest.raises(ValueError):
        DiurnalProfile(floor=-0.1)
    with pytest.raises(ValueError):
        DiurnalProfile(bursts=((1.0, 0.0, 2.0),))
    with pytest.raises(ValueError):
        diurnal_arrivals(0)
