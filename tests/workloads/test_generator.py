"""Traffic generator tests: trace replay through both libraries."""

import pytest

from repro.baselines.nccl import NcclCommunicator
from repro.cluster.specs import testbed_cluster
from repro.core.controller import CentralManager
from repro.core.deployment import MccsDeployment
from repro.workloads.generator import MccsIssuer, NcclIssuer, TrafficGenerator
from repro.workloads.models import ModelProfile
from repro.workloads.traces import data_parallel_trace


def small_profile(compute=0.01, buckets=2):
    return ModelProfile(
        name="tiny",
        param_bytes=buckets * 4 * 1024 * 1024,
        bucket_bytes=4 * 1024 * 1024,
        compute_per_iteration=compute,
    )


def test_replay_through_nccl():
    cluster = testbed_cluster()
    gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    comm = NcclCommunicator(cluster, gpus)
    trace = data_parallel_trace(small_profile(), 3)
    stream = gpus[0].create_stream()
    gen = TrafficGenerator(cluster.sim, NcclIssuer(comm), trace, stream)
    finished = []
    gen.start(on_finish=lambda g, t: finished.append(t))
    cluster.sim.run()
    assert gen.stats.finished
    assert finished == [gen.stats.finish_time]
    assert len(gen.stats.iteration_times) == 3
    assert gen.stats.collectives_issued == trace.collective_count()


def test_replay_through_mccs():
    cluster = testbed_cluster()
    deployment = MccsDeployment(cluster)
    manager = CentralManager(deployment)
    gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    state = manager.admit("A", gpus)
    client = deployment.connect("A")
    comm = client.adopt_communicator(state.comm_id)
    trace = data_parallel_trace(small_profile(), 2)
    stream = client.create_stream(gpus[0])
    gen = TrafficGenerator(cluster.sim, MccsIssuer(client, comm), trace, stream)
    gen.start()
    deployment.run()
    assert gen.stats.finished
    assert len(deployment.trace(state.comm_id).records) == trace.collective_count()


def test_jct_accounts_compute_and_comm():
    cluster = testbed_cluster()
    gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    comm = NcclCommunicator(cluster, gpus)
    trace = data_parallel_trace(small_profile(compute=0.05), 2)
    stream = gpus[0].create_stream()
    gen = TrafficGenerator(cluster.sim, NcclIssuer(comm), trace, stream)
    gen.start()
    cluster.sim.run()
    assert gen.stats.jct() >= trace.total_compute_seconds()


def test_deferred_start():
    cluster = testbed_cluster()
    gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    comm = NcclCommunicator(cluster, gpus)
    trace = data_parallel_trace(small_profile(), 1)
    stream = gpus[0].create_stream()
    gen = TrafficGenerator(cluster.sim, NcclIssuer(comm), trace, stream)
    gen.start(at=0.5)
    cluster.sim.run()
    assert gen.stats.start_time == pytest.approx(0.5)
    assert gen.stats.finish_time > 0.5


def test_iteration_durations_and_throughput():
    cluster = testbed_cluster()
    gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    comm = NcclCommunicator(cluster, gpus)
    trace = data_parallel_trace(small_profile(), 4)
    stream = gpus[0].create_stream()
    gen = TrafficGenerator(cluster.sim, NcclIssuer(comm), trace, stream)
    gen.start()
    cluster.sim.run()
    durations = gen.stats.iteration_durations()
    assert len(durations) == 4
    assert all(d > 0 for d in durations)
    timeline = gen.stats.throughput_timeline()
    assert len(timeline) == 4
    assert all(tp > 0 for _, tp in timeline)


def test_jct_before_finish_raises():
    cluster = testbed_cluster()
    gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    comm = NcclCommunicator(cluster, gpus)
    trace = data_parallel_trace(small_profile(), 1)
    gen = TrafficGenerator(
        cluster.sim, NcclIssuer(comm), trace, gpus[0].create_stream()
    )
    with pytest.raises(ValueError):
        gen.stats.jct()


def test_two_generators_share_network():
    """Two tenants replaying concurrently both finish; contention slows
    them versus running alone."""
    cluster = testbed_cluster()
    trace = data_parallel_trace(small_profile(compute=0.0), 3)

    def run_pair():
        cl = testbed_cluster()
        comms = [
            NcclCommunicator(cl, [cl.hosts[0].gpus[0], cl.hosts[2].gpus[0]], job_id="A"),
            NcclCommunicator(cl, [cl.hosts[0].gpus[1], cl.hosts[2].gpus[1]], job_id="B"),
        ]
        gens = []
        for comm in comms:
            stream = comm.gpus[0].create_stream()
            gen = TrafficGenerator(cl.sim, NcclIssuer(comm), trace, stream)
            gen.start()
            gens.append(gen)
        cl.sim.run()
        return [g.stats.jct() for g in gens]

    def run_single():
        cl = testbed_cluster()
        comm = NcclCommunicator(cl, [cl.hosts[0].gpus[0], cl.hosts[2].gpus[0]])
        gen = TrafficGenerator(
            cl.sim, NcclIssuer(comm), trace, comm.gpus[0].create_stream()
        )
        gen.start()
        cl.sim.run()
        return gen.stats.jct()

    pair = run_pair()
    solo = run_single()
    assert all(j >= solo * 0.99 for j in pair)


def test_generator_accounts_compute_and_memcpy():
    cluster = testbed_cluster()
    gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    comm = NcclCommunicator(cluster, gpus)
    profile = small_profile(compute=0.02)
    from dataclasses import replace

    profile = replace(profile, input_bytes_per_iteration=24_000_000)
    trace = data_parallel_trace(profile, 2)
    gen = TrafficGenerator(
        cluster.sim, NcclIssuer(comm), trace, gpus[0].create_stream(),
        pcie_gBps=12.0,
    )
    gen.start()
    cluster.sim.run()
    assert gen.stats.compute_seconds == pytest.approx(2 * 0.02)
    assert gen.stats.memcpy_seconds == pytest.approx(2 * 24_000_000 / 12e9)
    assert gen.stats.jct() >= gen.stats.compute_seconds + gen.stats.memcpy_seconds
