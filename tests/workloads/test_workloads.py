"""Workload synthesis tests: models, traces, arrivals, production data."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.types import Collective
from repro.workloads.arrivals import poisson_arrivals
from repro.workloads.models import (
    gpt_2_7b,
    gradient_buckets,
    resnet50,
    vgg19,
)
from repro.workloads.production import (
    empirical_cross_rack_curve,
    product_group_breakdowns,
    simulated_cross_rack_curve,
)
from repro.workloads.traces import (
    data_parallel_trace,
    gpt_tp_trace,
    resnet50_dp_trace,
    tensor_parallel_trace,
    vgg19_dp_trace,
)


# -- models -----------------------------------------------------------------
def test_vgg19_gradient_volume():
    profile = vgg19()
    assert profile.param_bytes == pytest.approx(143_667_240 * 4)
    buckets = gradient_buckets(profile)
    assert sum(buckets) == profile.param_bytes
    assert max(buckets) <= profile.bucket_bytes


def test_resnet50_is_100mb():
    assert resnet50().param_bytes == 100 * 1024 * 1024


def test_gpt_profile_shape():
    profile = gpt_2_7b()
    assert profile.parallelism == "tensor"
    assert profile.tp_syncs_per_iteration == 4 * 32
    assert profile.tp_allreduce_bytes == 2048 * 2560 * 2


def test_gradient_buckets_require_dp():
    with pytest.raises(ValueError):
        gradient_buckets(gpt_2_7b())


# -- traces -----------------------------------------------------------------
def test_dp_trace_structure():
    trace = vgg19_dp_trace(3)
    assert trace.iterations == 3
    buckets = len(gradient_buckets(vgg19()))
    assert trace.steps_per_iteration == 1 + buckets
    assert len(trace.steps) == 3 * (1 + buckets)
    assert trace.collective_count() == 3 * buckets


def test_dp_trace_moves_all_gradients():
    trace = vgg19_dp_trace(2)
    assert trace.total_collective_bytes() == 2 * vgg19().param_bytes
    assert all(
        s.collective in (None, Collective.ALL_REDUCE) for s in trace.steps
    )


def test_dp_trace_compute_budget():
    trace = vgg19_dp_trace(2)
    assert trace.total_compute_seconds() == pytest.approx(
        2 * vgg19().compute_per_iteration
    )


def test_tp_trace_structure():
    trace = gpt_tp_trace(2)
    profile = gpt_2_7b()
    assert len(trace.steps) == 2 * profile.tp_syncs_per_iteration
    assert all(s.collective is Collective.ALL_REDUCE for s in trace.steps)
    assert trace.total_collective_bytes() == (
        2 * profile.tp_syncs_per_iteration * profile.tp_allreduce_bytes
    )


def test_tp_trace_requires_tensor_profile():
    with pytest.raises(ValueError):
        tensor_parallel_trace(vgg19(), 2)


def test_traces_require_positive_iterations():
    with pytest.raises(ValueError):
        vgg19_dp_trace(0)
    with pytest.raises(ValueError):
        gpt_tp_trace(-1)


def test_jitter_is_reproducible():
    t1 = resnet50_dp_trace(2, jitter=0.2, seed=5)
    t2 = resnet50_dp_trace(2, jitter=0.2, seed=5)
    assert [s.compute_seconds for s in t1.steps] == [
        s.compute_seconds for s in t2.steps
    ]
    t3 = resnet50_dp_trace(2, jitter=0.2, seed=6)
    assert [s.compute_seconds for s in t1.steps] != [
        s.compute_seconds for s in t3.steps
    ]


@given(st.floats(0.0, 0.4), st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_jitter_never_negative(jitter, seed):
    trace = resnet50_dp_trace(1, jitter=jitter, seed=seed)
    assert all(s.compute_seconds >= 0 for s in trace.steps)


# -- arrivals ----------------------------------------------------------------
def test_poisson_arrivals_properties():
    jobs = poisson_arrivals(50, seed=0)
    assert len(jobs) == 50
    times = [j.arrival_time for j in jobs]
    assert times == sorted(times)
    assert all(j.num_gpus in (16, 32) for j in jobs)
    mean_gap = times[-1] / len(times)
    assert 0.1 < mean_gap < 0.4  # around the 200 ms lambda


def test_poisson_arrivals_seeded():
    assert poisson_arrivals(10, seed=3) == poisson_arrivals(10, seed=3)
    assert poisson_arrivals(10, seed=3) != poisson_arrivals(10, seed=4)


def test_poisson_arrivals_validation():
    with pytest.raises(ValueError):
        poisson_arrivals(0)


def test_poisson_size_weights():
    jobs = poisson_arrivals(200, sizes=(8,), seed=1)
    assert all(j.num_gpus == 8 for j in jobs)


# -- production substitutes -----------------------------------------------------
def test_breakdowns_sum_to_one_and_comm_significant():
    for b in product_group_breakdowns():
        assert b.idle + b.memcpy + b.compute + b.comm == pytest.approx(1.0)
        assert b.comm >= 0.10  # "communication constitutes a significant portion"


def test_breakdowns_cover_four_groups():
    groups = [b.group for b in product_group_breakdowns()]
    assert groups == ["A", "B", "C", "D"]


def test_empirical_curve_monotone_toward_two():
    curve = empirical_cross_rack_curve([16, 64, 256, 1024], trials=500, seed=1)
    values = [curve[s] for s in (16, 64, 256, 1024)]
    assert values[0] == 1.0
    assert values == sorted(values)
    assert 1.7 <= values[-1] <= 2.0


def test_simulated_curve_approaches_four():
    curve = simulated_cross_rack_curve([32, 128, 1024])
    assert curve[32] == 1.0
    assert 3.5 <= curve[1024] <= 4.0


def test_curves_reject_ragged_jobs():
    with pytest.raises(ValueError):
        empirical_cross_rack_curve([24], trials=10)  # 3 hosts at 2/rack


def test_dp_trace_stages_minibatch():
    trace = vgg19_dp_trace(3)
    assert trace.total_memcpy_bytes() == 3 * vgg19().input_bytes_per_iteration
    first = trace.steps[0]
    assert first.memcpy_bytes > 0 and first.collective is None


def test_tp_trace_has_no_memcpy():
    assert gpt_tp_trace(2).total_memcpy_bytes() == 0
