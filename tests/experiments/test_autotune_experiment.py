"""Autotune experiment mode + the configurable §6.2 datapath latency."""

import json

import pytest

from repro.autotune import AutotuneConfig
from repro.collectives.types import Collective
from repro.experiments import ALL_FIGURES
from repro.experiments.fig_autotune import (
    OUT_ENV,
    as_json,
    as_table,
    run_autotune,
)
from repro.netsim.units import KB, MB


@pytest.fixture(scope="module")
def autotune_result():
    return run_autotune(
        sizes=(64 * KB, 64 * MB),
        static_iters=2,
        tune_rounds=20,
        tail=4,
    )


def test_autotune_registered_as_experiment_mode():
    assert "autotune" in ALL_FIGURES
    assert hasattr(ALL_FIGURES["autotune"], "main")


def test_tuned_matches_best_static_on_both_regimes(autotune_result):
    """The ISSUE acceptance bar: the online tuner converges to a strategy
    at least as good as the best static choice on >= 2 size regimes."""
    assert len(autotune_result.regimes) == 2
    for regime in autotune_result.regimes:
        assert regime.converged, (
            f"{regime.size}: tail {regime.tuned_tail_mean} vs "
            f"best static {regime.best_static}"
        )
        assert regime.retunes > 0


def test_regimes_have_different_static_winners(autotune_result):
    small, large = autotune_result.regimes
    small_label, _ = small.best_static
    large_label, _ = large.best_static
    assert small_label != large_label
    assert large_label.startswith("ring")


def test_all_retunes_went_through_the_barrier(autotune_result):
    for regime in autotune_result.regimes:
        assert regime.barrier_only
        assert regime.inconsistent == 0


def test_autotune_table_and_json_rendering(autotune_result):
    table = as_table(autotune_result)
    assert table[0][0] == "Size"
    assert len(table) == 3
    assert all(row[-1] == "yes" for row in table[1:])
    payload = as_json(autotune_result)
    assert payload["kind"] == Collective.ALL_REDUCE.value
    assert json.dumps(payload)  # JSON-serializable end to end


def test_autotune_main_writes_json(tmp_path, monkeypatch, capsys):
    out = tmp_path / "autotune.json"
    monkeypatch.setenv(OUT_ENV, str(out))
    ALL_FIGURES["autotune"].main(tune_rounds=8, static_iters=1)
    assert "Autotune" in capsys.readouterr().out
    payload = json.loads(out.read_text())
    assert len(payload["regimes"]) == 2


def test_autotune_accepts_custom_config():
    result = run_autotune(
        sizes=(64 * KB,),
        static_iters=1,
        tune_rounds=10,
        tail=3,
        config=AutotuneConfig(policy="epsilon", epsilon=0.4, seed=2),
    )
    regime = result.regimes[0]
    assert regime.barrier_only and regime.inconsistent == 0


def test_pinned_datapath_tag_makes_measurements_history_free():
    """The experiment's measurements must not depend on how many
    communicators the process created before (the ECMP discriminator
    normally embeds a process-global comm id): same tag, same duration."""
    from repro.experiments.fig_autotune import _measure_static
    from repro.experiments.setups import single_app_gpus

    def measure():
        return _measure_static(
            "8gpu",
            Collective.ALL_REDUCE,
            64 * MB,
            algorithm="ring",
            channels=2,
            ring=tuple(range(8)),
            iters=1,
        )

    first = measure()
    # advance the process-global comm counter, as an unrelated test would
    from repro.cluster.specs import testbed_cluster
    from repro.core.deployment import MccsDeployment

    burn = MccsDeployment(testbed_cluster())
    for _ in range(3):
        burn.create_communicator(
            "B", single_app_gpus(burn.cluster, "4gpu")
        )
    assert measure() == first


# -- fig06 datapath threading (§6.2) -------------------------------------------
def mccs_duration(size, datapath_latency):
    """One MCCS (FFA route-pinned, so ECMP-noise-free) collective."""
    from repro.experiments.fig06_single_app import _issue_fn

    issue, run = _issue_fn("mccs", "8gpu", 0, datapath_latency)
    durations = []
    issue(Collective.ALL_REDUCE, size, durations.append)
    run()
    return durations[0]


def test_fig06_datapath_latency_is_configurable():
    # the override lands additively: default (65us) sits exactly between
    # a free hop and a 200us hop
    free = mccs_duration(512 * KB, 0.0)
    default = mccs_duration(512 * KB, None)
    slow = mccs_duration(512 * KB, 200e-6)
    assert default - free == pytest.approx(65e-6, rel=1e-6)
    assert slow - free == pytest.approx(200e-6, rel=1e-6)
    from repro.cluster.specs import testbed_cluster
    from repro.core.deployment import MccsDeployment

    with pytest.raises(ValueError):
        MccsDeployment(testbed_cluster(), datapath_latency=-1e-6)


def test_fig06_datapath_crossover_small_hurts_large_does_not():
    # §6.2: the shim->service hop explains the small-size loss and
    # washes out at large sizes — the Figure 6 crossover shape
    small_penalty = mccs_duration(512 * KB, 65e-6) / mccs_duration(
        512 * KB, 0.0
    )
    large_penalty = mccs_duration(128 * MB, 65e-6) / mccs_duration(
        128 * MB, 0.0
    )
    assert small_penalty > 1.3
    assert large_penalty < 1.01
