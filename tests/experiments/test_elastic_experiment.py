"""Elastic experiment: the ISSUE acceptance bars, kept in tier 1.

One seeded run of ``repro.experiments.fig_elastic`` must show, across at
least three grow -> drift -> shrink -> crash cycles:

* every membership change commits (grow and shrink reach ``done``),
* the final collective of every cycle is byte-exact for both tenants,
* the journal replays to the live control plane after all the churn,
* the witness tenant in the other region is untouched (zero blast
  radius: zero failures, baseline-identical completion count),
* at least one autotuner retune is attributed to a membership epoch.
"""

import json

import pytest

from repro.experiments.fig_elastic import run_elastic


@pytest.fixture(scope="module")
def report():
    return run_elastic(seed=0, cycles=3)


def test_three_cycles_commit(report):
    assert len(report.cycles) == 3
    for cyc in report.cycles:
        assert cyc.grow_state == "done"
        assert cyc.shrink_state == "done"
        assert cyc.drift_events > 0
    # Each cycle commits one grow + one shrink: epochs 2, 4, 6.
    assert [c.membership_epoch for c in report.cycles] == [2, 4, 6]
    assert report.membership_changes == 6


def test_byte_exact_after_every_cycle(report):
    assert report.bytes_exact
    for cyc in report.cycles:
        assert cyc.world_after == 4  # back to the pre-grow world


def test_journal_replays_clean_after_churn(report):
    assert report.journal_diff == []
    assert report.journal_records > 0
    assert report.service_crashes == 3
    assert report.service_restarts == 3


def test_witness_tenant_has_zero_blast_radius(report):
    assert report.witness_failed == 0
    assert report.witness_completed == report.witness_baseline_completed
    assert report.blast_radius_zero


def test_epoch_attributed_retune_happened(report):
    assert report.epoch_retunes >= 1


def test_main_asserts_bars_and_writes_artifact(
    tmp_path, monkeypatch, capsys
):
    out = tmp_path / "elastic.json"
    monkeypatch.setenv("MCCS_ELASTIC_OUT", str(out))
    from repro.experiments import fig_elastic

    fig_elastic.main(seeds=(0,), cycles=3)
    printed = capsys.readouterr().out
    assert "membership_changes=6" in printed
    payload = json.loads(out.read_text())
    assert payload["experiment"] == "elastic"
    assert payload["reports"][0]["blast_radius_zero"] is True
