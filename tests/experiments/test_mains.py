"""Smoke tests of the experiment CLI entry points (cheap figures only)."""

import pytest

from repro.collectives.types import Collective
from repro.experiments import ALL_FIGURES, fig02_breakdown, fig03_crossrack
from repro.experiments.__main__ import main as cli_main
from repro.experiments.fig06_single_app import as_tables, run_fig06
from repro.netsim.units import KB, MB


def test_fig02_main_prints_tables(capsys):
    fig02_breakdown.main()
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "Comm" in out
    assert "vgg19-dp-8gpu" in out


def test_fig03_main_prints_curves(capsys):
    fig03_crossrack.main()
    out = capsys.readouterr().out
    assert "Figure 3" in out
    assert "2 hosts/rack" in out and "4 hosts/rack" in out


def test_cli_rejects_unknown_figure(capsys):
    assert cli_main(["fig99"]) == 2
    assert "unknown figure" in capsys.readouterr().out


def test_cli_runs_selected_figure(capsys):
    assert cli_main(["fig02"]) == 0
    out = capsys.readouterr().out
    assert "fig02" in out and "completed in" in out


def test_all_figures_registry_complete():
    assert set(ALL_FIGURES) == {
        "fig02", "fig03", "fig06", "fig07", "fig08", "fig09", "fig10", "fig11",
        "failover", "autotune", "crashloop", "attribution", "elastic",
        "synth", "fleet",
    }
    for module in ALL_FIGURES.values():
        assert hasattr(module, "main")


def test_fig06_as_tables_layout():
    results = run_fig06(
        setups=("4gpu",),
        kinds=(Collective.ALL_REDUCE,),
        sizes=(512 * KB, 8 * MB),
        systems=("nccl", "mccs"),
        trials=1,
        iters=1,
    )
    tables = as_tables(results)
    assert list(tables) == [("4gpu", Collective.ALL_REDUCE)]
    header, *rows = tables[("4gpu", Collective.ALL_REDUCE)]
    assert header == ["Size", "NCCL", "MCCS"]
    assert [r[0] for r in rows] == ["512KB", "8MB"]
    for row in rows:
        assert all(float(cell) > 0 for cell in row[1:])
