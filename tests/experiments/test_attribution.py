"""Attribution experiment: the ISSUE acceptance bar, kept in tier 1.

The full grid runs in CI (``python -m repro.experiments attribution``);
here one representative cell per system keeps the acceptance criteria —
component sums exact, attribution ≥ 90% against ground truth — from
regressing, and checks the FFA story the ledger must tell.
"""

import itertools

import pytest

import repro.baselines.nccl
import repro.cluster.gpu
import repro.cluster.ipc
import repro.core.communicator
import repro.core.messages
import repro.core.reconfig
import repro.core.sync
import repro.netsim.flows
import repro.transport.launcher
from repro.experiments.fig_attribution import run_attribution

_GLOBAL_COUNTERS = [
    (repro.baselines.nccl, "_comm_counter"),
    (repro.cluster.gpu, "_buffer_counter"),
    (repro.cluster.gpu, "_stream_counter"),
    (repro.cluster.gpu, "_event_counter"),
    (repro.cluster.ipc, "_handle_counter"),
    (repro.core.communicator, "_comm_counter"),
    (repro.core.messages, "_msg_counter"),
    (repro.core.reconfig, "_session_counter"),
    (repro.core.sync, "_sync_counter"),
    (repro.netsim.flows, "_flow_counter"),
    (repro.transport.launcher, "_launch_counter"),
]


@pytest.fixture(scope="module", autouse=True)
def _pinned_id_counters():
    """Object ids feed the ECMP connection hash; pin them so the noffa
    cell draws the same spine collisions regardless of suite position
    (same trick as ``tests/telemetry/conftest.py``)."""
    originals = [(mod, name, getattr(mod, name)) for mod, name in _GLOBAL_COUNTERS]
    for mod, name in _GLOBAL_COUNTERS:
        setattr(mod, name, itertools.count(500_000))
    try:
        yield
    finally:
        for mod, name, counter in originals:
            setattr(mod, name, counter)


@pytest.fixture(scope="module")
def grid(_pinned_id_counters):
    """setup1 (paper Fig. 8 leftmost mix) under MCCS+FFA and ECMP."""
    results = run_attribution(setups=("setup1",), rounds=3)
    return {r.system: r for r in results}


def test_component_sums_are_exact(grid):
    for result in grid.values():
        assert result.collectives > 0
        assert result.sum_ok_fraction == 1.0, (
            f"{result.system}: critical-path components do not sum to the "
            f"measured duration within 1% for "
            f"{result.collectives - result.sum_ok} collectives"
        )


def test_attribution_meets_acceptance_bar(grid):
    for result in grid.values():
        assert result.accuracy >= 0.9, (
            f"{result.system}: named the true bottleneck link and "
            f"interferer for only {result.accuracy:.0%} of collectives"
        )


def test_ffa_empties_the_interference_ledger(grid):
    """Setup 1 contention is ECMP's fault: FFA separates the tenants."""
    ffa_seconds = sum(
        s for row in grid["mccs"].ledger.values() for s in row.values()
    )
    ecmp_seconds = sum(
        s for row in grid["mccs_noffa"].ledger.values() for s in row.values()
    )
    assert ffa_seconds == 0.0
    assert ecmp_seconds > 0.0
