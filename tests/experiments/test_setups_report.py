"""Experiment harness plumbing: setups, report helpers."""

import pytest

from repro.cluster.specs import testbed_cluster
from repro.experiments.report import Stat, cdf_points, format_table, geometric_mean
from repro.experiments.setups import (
    multi_app_setups,
    naive_tenant_order,
    qos_setup,
    single_app_gpus,
)


def test_single_app_setups():
    cl = testbed_cluster()
    four = single_app_gpus(cl, "4gpu")
    assert len(four) == 4
    assert len({g.host_id for g in four}) == 4
    eight = single_app_gpus(cl, "8gpu")
    assert len(eight) == 8
    with pytest.raises(ValueError):
        single_app_gpus(cl, "16gpu")


def test_multi_app_setups_are_disjoint_and_complete():
    cl = testbed_cluster()
    for name, placements in multi_app_setups().items():
        used = []
        for p in placements:
            used.extend(p.gpus)
        assert len(used) == len(set(used)), name
        assert len(used) == 8, name  # every GPU used exactly once


def test_setup3_matches_qos_description():
    """A: 2 GPUs + 2 NICs per host; B and C one each (§6.4)."""
    placements = {p.app_id: p for p in qos_setup()}
    cl = testbed_cluster()
    a_hosts = [h for h, _ in placements["A"].gpus]
    assert len(placements["A"].gpus) == 4
    assert all(a_hosts.count(h) == 2 for h in set(a_hosts))
    for app in ("B", "C"):
        hosts = [h for h, _ in placements[app].gpus]
        assert len(hosts) == len(set(hosts)) == 2
    # every tenant spans both racks
    for p in qos_setup():
        racks = {cl.hosts[h].rack for h, _ in p.gpus}
        assert racks == {0, 1}


def test_naive_tenant_order_alternates_racks():
    cl = testbed_cluster()
    gpus = [cl.hosts[h].gpus[0] for h in range(4)]
    order = naive_tenant_order(cl, gpus)
    racks = [cl.rack_of(gpus[r]) for r in order]
    assert racks == [0, 1, 0, 1]


def test_naive_tenant_order_keeps_host_blocks():
    cl = testbed_cluster()
    gpus = [g for h in range(4) for g in cl.hosts[h].gpus]
    order = naive_tenant_order(cl, gpus)
    hosts = [gpus[r].host_id for r in order]
    for i in range(0, 8, 2):
        assert hosts[i] == hosts[i + 1]


# -- report helpers -------------------------------------------------------------
def test_stat_of_single_sample():
    s = Stat.of([4.0])
    assert (s.mean, s.lo, s.hi, s.n) == (4.0, 4.0, 4.0, 1)
    assert str(s) == "4"


def test_stat_interval_covers_extremes():
    s = Stat.of(list(range(101)))
    assert s.mean == pytest.approx(50.0)
    assert s.lo == pytest.approx(2.5)
    assert s.hi == pytest.approx(97.5)


def test_stat_requires_samples():
    with pytest.raises(ValueError):
        Stat.of([])


def test_format_table_alignment():
    text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "333" in lines[-1]


def test_cdf_points():
    pts = cdf_points([3.0, 1.0, 2.0])
    assert pts == [(1.0, pytest.approx(1 / 3)), (2.0, pytest.approx(2 / 3)), (3.0, 1.0)]


def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        geometric_mean([])


def test_ascii_cdf_renders_quantiles():
    from repro.experiments.report import ascii_cdf

    text = ascii_cdf({"OR": [1.0, 2.0, 3.0, 4.0]}, width=10)
    assert "OR:" in text
    assert "p100" in text and "4.00x" in text
    with pytest.raises(ValueError):
        ascii_cdf({})


def test_sparkline_scaling():
    from repro.experiments.report import sparkline

    line = sparkline([0.0, 0.5, 1.0])
    assert len(line) == 3
    assert line[0] == " " and line[-1] == "@"
    assert sparkline([]) == ""
    assert sparkline([2.0, 2.0]) == "@@"
    assert len(sparkline(list(range(500)), width=60)) == 60
