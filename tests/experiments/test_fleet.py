"""The fleet experiment: acceptance witnesses at test-sized scale."""

import json
from dataclasses import asdict

import pytest

from repro.experiments import ALL_FIGURES
from repro.experiments.fig_fleet import FleetReport, run_fleet


@pytest.fixture(scope="module")
def fleet_report():
    # A 48-tenant / 12-host miniature of the 1000-tenant scenario; same
    # chaos schedule (poisoned comms, tenant storms, a gateway crash and
    # service crashes at the diurnal crest).  base_rate is scaled up so
    # the aggregate offered load — what drives brownout — matches the
    # paper-scale run (1000 tenants x 2 req/s).
    return run_fleet(num_tenants=48, seed=0, base_rate=42.0, poison=2, storms=4)


def test_fleet_registered_as_experiment_mode():
    assert "fleet" in ALL_FIGURES
    assert hasattr(ALL_FIGURES["fleet"], "main")


def test_every_request_answered_and_ledger_disjoint(fleet_report):
    assert fleet_report.responses_accounted
    assert fleet_report.num_tenants == 48


def test_robustness_stack_engaged(fleet_report):
    r = fleet_report
    assert r.throttled > 0, "token buckets never throttled"
    assert r.breaker_trips > 0, "no breaker tripped despite poisoned comms"
    assert r.poison_tripped
    assert r.brownout_peak_level >= 1, "brownout never engaged"
    assert r.brownout_shed_low > 0
    assert r.brownout_shed_high == 0, "brownout shed the protected class"


def test_high_class_attainment_holds_through_brownout(fleet_report):
    by_qos = {row.qos: row for row in fleet_report.classes}
    assert by_qos["high"].attainment >= 0.99
    assert by_qos["high"].issued > 0 and by_qos["low"].issued > 0


def test_breaker_blast_radius_zero(fleet_report):
    assert fleet_report.witness_unharmed
    assert fleet_report.witness_byte_exact
    assert len(fleet_report.witness_tenants) == len(fleet_report.poison_tenants)


def test_gateway_crash_restores_from_journal(fleet_report):
    r = fleet_report
    assert r.gateway_crashes == 1 and r.gateway_restarts == 1
    assert r.restored_tenants == r.num_tenants
    assert r.journal_diff == []
    assert r.service_crashes > 0 and r.service_restarts == r.service_crashes


def test_planner_answer_is_sane(fleet_report):
    assert 1 <= fleet_report.planner_hosts <= fleet_report.hosts


def test_report_is_json_serializable(fleet_report):
    blob = json.dumps(asdict(fleet_report))
    parsed = json.loads(blob)
    assert parsed["num_tenants"] == 48
    assert {row["qos"] for row in parsed["classes"]} == {"high", "normal", "low"}


def test_seed_determinism():
    a = run_fleet(num_tenants=16, seed=7, base_rate=20.0, poison=1,
                  storms=2, horizon=0.2)
    b = run_fleet(num_tenants=16, seed=7, base_rate=20.0, poison=1,
                  storms=2, horizon=0.2)
    assert isinstance(a, FleetReport)
    assert asdict(a) == asdict(b)
