"""Shape tests for the QoS (Figures 9/10) and large-scale (Figure 11)
experiments, at reduced scale so the suite stays fast."""

import pytest

from repro.experiments.fig09_qos import (
    DEFAULT_PENALTY,
    _run_once,
    profile_ts_schedule,
)
from repro.experiments.fig10_dynamic import run_fig10
from repro.experiments.fig11_simulation import (
    precompute_placements,
    run_fig11,
)

SMALL_ITERS = {"A": 6, "B": 5, "C": 5}


@pytest.fixture(scope="module")
def qos_jcts():
    schedule = profile_ts_schedule(0, iterations=SMALL_ITERS, penalty=DEFAULT_PENALTY)
    out = {}
    for solution in ("ecmp", "ffa", "pfa", "pfa+ts"):
        out[solution] = _run_once(
            solution,
            1,
            iterations=SMALL_ITERS,
            penalty=DEFAULT_PENALTY,
            ts_schedule=schedule if solution == "pfa+ts" else None,
        )
    return out


def test_fig09_ecmp_slowest_for_everyone(qos_jcts):
    for app in ("A", "B", "C"):
        assert qos_jcts["ecmp"][app] > qos_jcts["ffa"][app]


def test_fig09_pfa_prioritizes_a(qos_jcts):
    assert qos_jcts["pfa"]["A"] <= qos_jcts["ffa"]["A"] * 1.02
    assert qos_jcts["pfa"]["A"] < qos_jcts["ecmp"]["A"]
    # B and C pay for A's dedicated route
    assert qos_jcts["pfa"]["B"] > qos_jcts["ffa"]["B"]


def test_fig09_ts_prioritizes_b_without_touching_a(qos_jcts):
    assert qos_jcts["pfa+ts"]["B"] < qos_jcts["pfa"]["B"]
    assert qos_jcts["pfa+ts"]["A"] == pytest.approx(qos_jcts["pfa"]["A"], rel=0.02)
    assert qos_jcts["pfa+ts"]["C"] > qos_jcts["pfa"]["C"]


def test_fig10_timeline_story():
    timeline = run_fig10(t1=1.5, t2=3.0, t3=4.5, t4=6.0, end=7.5)
    normalized = timeline.normalized()
    # A alone is fastest; sharing with B then C slows it down.
    a_alone = normalized[("A", "A alone")]
    a_ab = normalized[("A", "A+B (FFA)")]
    a_abc = normalized[("A", "A+B+C (FFA)")]
    assert a_alone > a_ab >= a_abc * 0.98
    # PFA lifts A back up.
    assert normalized[("A", "PFA(A)")] > a_abc
    # TS lifts B and squeezes C (C may complete no iteration at all in a
    # short window, which is the extreme form of being squeezed).
    assert normalized[("B", "PFA+TS(B)")] > normalized[("B", "PFA(A)")]
    c_after_ts = normalized.get(("C", "PFA+TS(B)"))
    assert c_after_ts is None or c_after_ts < normalized[("C", "PFA(A)")]


# -- Figure 11 -----------------------------------------------------------------
def test_fig11_placements_are_solution_independent():
    a = precompute_placements(placement="random", num_jobs=10, iterations=50, seed=3)
    b = precompute_placements(placement="random", num_jobs=10, iterations=50, seed=3)
    assert a == b
    sizes = {j.num_gpus for j in a}
    assert sizes <= {16, 32}


def test_fig11_compact_placement_jobs_pack():
    jobs = precompute_placements(placement="compact", num_jobs=6, iterations=50, seed=0)
    from repro.cluster.specs import large_cluster

    cl = large_cluster()
    for job in jobs:
        racks = {cl.rack_of(cl.gpu(i)) for i in job.gpu_ids}
        assert len(racks) == 1  # 16/32 GPUs fit one 32-GPU rack


@pytest.mark.slow
def test_fig11_small_run_shapes():
    outcome = run_fig11(
        placement="compact", num_jobs=8, iterations=80, channels=2, seed=0
    )
    speedups = outcome.speedups("or")
    assert all(s > 1.5 for s in speedups)  # OR crushes random GPU rings
    ffa = outcome.speedups("or+ffa")
    # FFA adds little under compact placement (§6.5)
    mean_or = sum(speedups) / len(speedups)
    mean_ffa = sum(ffa) / len(ffa)
    assert mean_ffa == pytest.approx(mean_or, rel=0.15)
