"""Synthesis experiment mode: synthesized-vs-builtin sweep + tuner adoption."""

import json

import pytest

from repro.core.algorithms import registered_algorithms
from repro.experiments import ALL_FIGURES
from repro.experiments.fig_synth import (
    OUT_ENV,
    as_json,
    as_table,
    run_synth,
)
from repro.netsim.units import KB, MB


@pytest.fixture(scope="module")
def synth_results():
    return run_synth(
        sizes=(64 * KB, 16 * MB),
        static_iters=2,
        tune_rounds=24,
        tail=4,
    )


def test_synth_registered_as_experiment_mode():
    assert "synth" in ALL_FIGURES
    assert hasattr(ALL_FIGURES["synth"], "main")


def test_sweep_covers_both_fabrics(synth_results):
    assert [r.fabric for r in synth_results] == ["testbed", "two_region"]
    for result in synth_results:
        assert result.world == 8
        assert result.synthesized  # the search emitted a pareto front
        assert len(result.points) == 2


def test_synthesized_schedule_wins_on_the_wan_fabric(synth_results):
    """The ISSUE acceptance bar: on >= 1 topology a synthesized schedule
    strictly beats the best built-in at some message size (measured on
    the flow data plane, not just predicted)."""
    two_region = synth_results[1]
    assert any(p.synth_wins for p in two_region.points)
    bandwidth_point = two_region.points[-1]  # 16MB
    assert bandwidth_point.synth_wins
    assert bandwidth_point.speedup > 1.5  # ~4x in practice
    assert bandwidth_point.synth_label.startswith("synth:")


def test_tuner_adopts_synth_through_barrier(synth_results):
    tuned = synth_results[1].tuned
    assert tuned is not None
    assert tuned.adopted_synth
    assert tuned.retunes > 0
    assert tuned.barrier_only
    assert tuned.inconsistent == 0
    assert tuned.tail_mean < tuned.first


def test_run_synth_cleans_up_the_registry(synth_results):
    assert not any(
        name.startswith("synth:") for name in registered_algorithms()
    )


def test_synth_table_and_json_rendering(synth_results):
    table = as_table(synth_results)
    assert table[0][0] == "Fabric"
    assert len(table) == 1 + 2 * 2  # header + fabrics x sizes
    payload = as_json(synth_results)
    assert json.dumps(payload)  # JSON-serializable end to end
    two_region = payload["fabrics"][1]
    assert two_region["tuned"]["adopted_synth"] is True
    assert two_region["tuned"]["inconsistent"] == 0


def test_synth_main_writes_json(tmp_path, monkeypatch, capsys):
    out = tmp_path / "synth.json"
    monkeypatch.setenv(OUT_ENV, str(out))
    ALL_FIGURES["synth"].main(tune_rounds=10, static_iters=1)
    stdout = capsys.readouterr().out
    assert "Synthesis" in stdout
    assert "adopted_synth" in stdout
    payload = json.loads(out.read_text())
    assert len(payload["fabrics"]) == 2
