"""Shape tests for every reproduced figure.

These are the assertions the paper's qualitative claims translate into;
each runs a scaled-down version of the corresponding experiment.  The
full-scale sweeps live in benchmarks/.
"""

import pytest

from repro.collectives.types import Collective
from repro.experiments.fig02_breakdown import measure_vgg_breakdown, run_breakdowns
from repro.experiments.fig03_crossrack import run_curves, validate_on_cluster
from repro.experiments.fig06_single_app import run_fig06
from repro.experiments.fig07_reconfig import run_fig07
from repro.experiments.fig08_multi_app import run_fig08
from repro.netsim.units import KB, MB


# -- Figure 2 ----------------------------------------------------------------
def test_fig02_comm_is_significant():
    assert all(b.comm >= 0.10 for b in run_breakdowns())


def test_fig02_measured_vgg_breakdown():
    measured = measure_vgg_breakdown(iterations=2)
    assert 0.05 <= measured.comm_fraction <= 0.95
    assert measured.memcpy_fraction > 0
    total = (
        measured.idle_fraction
        + measured.memcpy_fraction
        + measured.compute_fraction
        + measured.comm_fraction
    )
    assert total == pytest.approx(1.0, abs=1e-6)


# -- Figure 3 ----------------------------------------------------------------
def test_fig03_ratios_grow_with_job_size():
    points = run_curves(job_sizes=(16, 64, 512), trials=400, seed=1)
    r2 = [p.ratio_2hosts for p in points]
    r4 = [p.ratio_4hosts for p in points]
    assert r2 == sorted(r2) and r4 == sorted(r4)
    assert r2[-1] <= 2.0 and r4[-1] <= 4.0
    assert r4[-1] > r2[-1]  # deeper racks hurt more


def test_fig03_cluster_validation_matches_closed_form():
    check = validate_on_cluster(job_size=64, trials=120, seed=2)
    assert check["measured"] == pytest.approx(check["closed_form"], rel=0.10)
    assert check["optimal"] == 1.0


# -- Figure 6 -----------------------------------------------------------------
@pytest.fixture(scope="module")
def fig06_small():
    return run_fig06(
        setups=("8gpu",),
        kinds=(Collective.ALL_REDUCE,),
        sizes=(512 * KB, 128 * MB),
        trials=6,
        iters=1,
    )


def by_system(results, size):
    return {r.system: r.stat.mean for r in results if r.size == size}


def test_fig06_mccs_wins_at_large_sizes(fig06_small):
    means = by_system(fig06_small, 128 * MB)
    assert means["mccs"] > means["mccs_nofa"]
    assert means["mccs"] > means["nccl_or"] > means["nccl"]
    assert means["mccs"] / means["nccl"] > 1.8  # paper: up to 2.4x


def test_fig06_mccs_pays_latency_at_small_sizes(fig06_small):
    means = by_system(fig06_small, 512 * KB)
    # MCCS(-FA) below NCCL(OR): the 50-80us datapath hop
    assert means["mccs_nofa"] < means["nccl_or"]


# -- Figure 7 -----------------------------------------------------------------
def test_fig07_drop_and_recovery():
    timeline = run_fig07(duration=16.0, bg_start=5.0, reconfig_at=10.0)
    before = timeline.bandwidth_in(2.0, 5.0)
    during = timeline.bandwidth_in(6.0, 10.0)
    after = timeline.bandwidth_in(12.0, 16.0)
    assert during < before / 2.5  # paper: 5.9 -> 1.7 GB/s
    assert after == pytest.approx(before, rel=0.05)  # full recovery
    assert timeline.ring_after == tuple(reversed(timeline.ring_before))
    assert timeline.reconfig_done is not None
    assert timeline.reconfig_done - timeline.reconfig_issued < 0.1


# -- Figure 8 -----------------------------------------------------------------
@pytest.fixture(scope="module")
def fig08_small():
    return run_fig08(
        setups=("setup1", "setup3"),
        trials=3,
        duration=1.0,
        warmup=0.2,
    )


def table(results, setup, system):
    return {
        r.app_id: r.stat.mean
        for r in results
        if r.setup == setup and r.system == system
    }


def test_fig08_mccs_has_best_aggregate(fig08_small):
    for setup in ("setup1", "setup3"):
        aggregates = {
            system: sum(table(fig08_small, setup, system).values())
            for system in ("nccl", "mccs")
        }
        assert aggregates["mccs"] > aggregates["nccl"]


def test_fig08_mccs_fair_in_setup1(fig08_small):
    shares = table(fig08_small, "setup1", "mccs")
    assert shares["A"] == pytest.approx(shares["B"], rel=0.05)


def test_fig08_setup3_two_to_one_split(fig08_small):
    """A owns 2 NICs/host vs 1 for B and C: bus bandwidth should split
    close to 2:1:1 under MCCS (§6.3)."""
    shares = table(fig08_small, "setup3", "mccs")
    assert shares["A"] / shares["B"] == pytest.approx(2.0, rel=0.1)
    assert shares["B"] == pytest.approx(shares["C"], rel=0.05)
