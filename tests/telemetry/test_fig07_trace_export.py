"""Acceptance: the Figure 7 run exports a loadable Chrome trace with the
reconfiguration barrier stall visible as a span."""

import json

import pytest

from repro.experiments.fig07_reconfig import run_fig07


@pytest.fixture(scope="module")
def timeline():
    return run_fig07(duration=16.0, bg_start=5.0, reconfig_at=10.0)


def test_fig07_returns_its_telemetry(timeline):
    assert timeline.telemetry is not None
    assert timeline.reconfig_done is not None
    hub = timeline.telemetry
    assert hub.metrics.histograms()["mccs_barrier_stall_seconds"].count() == 1
    assert len(hub.spans.spans("collective")) > 0


def test_fig07_chrome_trace_loads_and_shows_barrier(timeline, tmp_path):
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(timeline.telemetry.to_chrome_trace()))
    trace = json.loads(path.read_text())  # what chrome://tracing would load

    events = trace["traceEvents"]
    assert all({"ph", "pid", "tid", "name"} <= set(e) for e in events)
    complete = [e for e in events if e["ph"] == "X"]

    barrier = [e for e in complete if e["name"] == "barrier"]
    assert len(barrier) == 1
    assert barrier[0]["cat"] == "reconfig"
    # The stall sits at the reconfiguration time (t=10 s -> 1e7 us) and
    # has a visible extent.
    assert barrier[0]["ts"] == pytest.approx(10.0e6, rel=0.01)
    assert barrier[0]["dur"] > 0
    # Nested under the reconfig root span, alongside the collectives.
    root = [e for e in complete if e["name"].startswith("reconfig comm")]
    assert len(root) == 1
    assert barrier[0]["args"]["parent_id"] == root[0]["args"]["span_id"]
    assert any(e["cat"] == "collective" for e in complete)


def test_fig07_link_series_show_background_contention(timeline):
    network = timeline.telemetry.network
    assert network is not None
    series = network.link_series("sw1->sw2")
    assert series, "the loaded link must have been sampled"
    times = [t for t, _ in series]
    assert times == sorted(times)
