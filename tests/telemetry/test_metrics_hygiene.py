"""Metrics hygiene: every ``mccs_*`` series has help text and docs.

The registry accepts ``help=""`` so call sites stay terse in prototypes,
but an operator-facing service must not scrape undocumented series.
These tests walk the *source tree* with ``ast`` — not a runtime registry
snapshot — so a metric registered only on a rare code path (crash
recovery, live upgrade, autotune fallback) is still held to the bar.

A name is "documented" when it appears verbatim in
``docs/observability.md``, or when the docs list its family with a
wildcard/brace form (``mccs_autotune_*``,
``mccs_program_cache_{size,...}``) — the same families that are
registered through f-strings in the source.
"""

import ast
import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent
SRC = REPO / "src" / "repro"
DOCS = REPO / "docs" / "observability.md"

_REGISTER_METHODS = {"counter", "gauge", "histogram"}


def _metric_name(node: ast.expr):
    """Static metric name of a registration call's first argument.

    Returns the full name for string literals, the literal prefix for
    f-strings (``f"mccs_netsim_{name}"`` -> ``"mccs_netsim_"`` plus a
    dynamic marker), and ``None`` for anything non-constant.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, False
    if isinstance(node, ast.JoinedStr) and node.values:
        head = node.values[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            return head.value, True
    return None


def _registrations():
    """Every static ``.counter/.gauge/.histogram("mccs_...")`` call site."""
    sites = []
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _REGISTER_METHODS
                and node.args
            ):
                continue
            named = _metric_name(node.args[0])
            if named is None or not named[0].startswith("mccs_"):
                continue
            name, dynamic = named
            help_arg = None
            if len(node.args) > 1:
                help_arg = node.args[1]
            else:
                for kw in node.keywords:
                    if kw.arg == "help":
                        help_arg = kw.value
            sites.append(
                {
                    "name": name,
                    "dynamic": dynamic,
                    "kind": node.func.attr,
                    "where": f"{path.relative_to(REPO)}:{node.lineno}",
                    "help": help_arg,
                }
            )
    return sites


def test_sources_register_metrics():
    """The scan itself must see the fleet — guards against ast drift."""
    names = {s["name"] for s in _registrations()}
    # Spot-check one metric per PR era: seed, reconfig, faults, autotune,
    # causal tracing.  If any disappears the scan (or the metric) broke.
    for expected in (
        "mccs_shim_calls_total",
        "mccs_barrier_stall_seconds",
        "mccs_recovery_seconds",
        "mccs_autotune_observations_total",
        "mccs_traces_total",
        "mccs_slo_violations_total",
    ):
        assert expected in names, f"scan no longer finds {expected}"
    assert len(names) > 40


def test_every_metric_has_help_text():
    missing = [
        s["where"] + " " + s["name"]
        for s in _registrations()
        if not (
            isinstance(s["help"], ast.Constant)
            and isinstance(s["help"].value, str)
            and s["help"].value.strip()
        )
    ]
    assert not missing, f"metrics registered without help text: {missing}"


def test_every_metric_is_documented():
    docs = DOCS.read_text()
    # Family rows: `mccs_autotune_*`, `mccs_program_cache_{size,...}` —
    # a trailing `*` or `{` marks everything sharing the prefix covered.
    # The prefix must extend past `mccs_` itself, or prose mentioning
    # the bare `mccs_*` convention would blanket-document everything.
    families = set(re.findall(r"(mccs_[a-z0-9_]+)[*{]", docs))

    def documented(site) -> bool:
        name = site["name"]
        if not site["dynamic"] and name in docs:
            return True
        return any(name.startswith(prefix) for prefix in families)

    undocumented = sorted(
        {s["name"] for s in _registrations() if not documented(s)}
    )
    assert not undocumented, (
        "metrics missing a row in docs/observability.md: "
        f"{undocumented}"
    )
