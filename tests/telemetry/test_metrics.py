"""Counters, gauges, and histograms: the Prometheus-style data model."""

import json
import math

import pytest

from repro.telemetry import (
    DEFAULT_SIM_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_accumulates_per_label_set():
    c = Counter("requests_total")
    c.inc(app="A")
    c.inc(2.0, app="A")
    c.inc(app="B")
    assert c.value(app="A") == 3.0
    assert c.value(app="B") == 1.0
    assert c.value(app="missing") == 0.0
    assert c.total() == 4.0


def test_counter_rejects_decrease():
    c = Counter("requests_total")
    with pytest.raises(ValueError):
        c.inc(-1.0)


def test_counter_label_order_is_irrelevant():
    c = Counter("x")
    c.inc(a="1", b="2")
    assert c.value(b="2", a="1") == 1.0


def test_gauge_moves_both_ways():
    g = Gauge("active")
    g.set(5)
    g.inc()
    g.dec(2.0)
    assert g.value() == 4.0


def test_histogram_bucket_math_le_inclusive():
    """Prometheus ``le`` semantics: a value equal to a bound lands in it."""
    h = Histogram("d", buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 1.0, 1.5, 2.0, 3.0, 10.0):
        h.observe(v)
    counts = dict(h.bucket_counts())
    assert counts[1.0] == 2  # 0.5, 1.0 (inclusive)
    assert counts[2.0] == 4  # + 1.5, 2.0
    assert counts[4.0] == 5  # + 3.0
    assert counts[math.inf] == 6  # + 10.0
    assert h.count() == 6
    assert h.total() == pytest.approx(18.0)
    assert h.mean() == pytest.approx(3.0)


def test_histogram_cumulative_counts_are_monotone():
    h = Histogram("d", buckets=DEFAULT_SIM_BUCKETS)
    for v in (1e-5, 3e-4, 0.02, 0.3, 7.0, 100.0):
        h.observe(v)
    counts = [n for _, n in h.bucket_counts()]
    assert counts == sorted(counts)
    assert counts[-1] == 6


def test_histogram_per_label_streams_are_independent():
    h = Histogram("d", buckets=(1.0,))
    h.observe(0.5, app="A")
    h.observe(2.0, app="B")
    assert h.count(app="A") == 1
    assert h.count(app="B") == 1
    assert h.count() == 0
    assert h.mean(app="A") == pytest.approx(0.5)
    assert h.mean() is None


def test_histogram_validates_bounds():
    with pytest.raises(ValueError):
        Histogram("d", buckets=())
    with pytest.raises(ValueError):
        Histogram("d", buckets=(1.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("d", buckets=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("d", buckets=(1.0, math.inf))


def test_registry_get_or_create_returns_same_object():
    reg = MetricsRegistry()
    a = reg.counter("c", "help text")
    b = reg.counter("c")
    assert a is b
    assert reg.get("c") is a
    assert reg.get("missing") is None


def test_registry_rejects_kind_mismatch():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")
    with pytest.raises(TypeError):
        reg.histogram("x")


def test_registry_snapshot_is_json_serializable():
    reg = MetricsRegistry()
    reg.counter("c").inc(app="A")
    reg.gauge("g").set(2.5)
    reg.histogram("h", buckets=(1.0,)).observe(0.5)
    snap = reg.snapshot()
    text = json.dumps(snap)  # must not raise
    assert "+Inf" in text
    assert snap["c"]["kind"] == "counter"
    assert snap["h"]["samples"][0]["count"] == 1
