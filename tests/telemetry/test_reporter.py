"""The pluggable reporter and its routing of experiment output."""

import io
import json

import pytest

from repro.telemetry import (
    BufferSink,
    Reporter,
    StreamSink,
    TelemetryHub,
    format_table,
    get_default_reporter,
    set_default_reporter,
)


@pytest.fixture
def buffered_reporter():
    """Install a BufferSink reporter as the default; restore afterwards."""
    reporter = Reporter(BufferSink())
    previous = set_default_reporter(reporter)
    try:
        yield reporter
    finally:
        set_default_reporter(previous)


def test_format_table_alignment():
    text = format_table(["name", "v"], [["a", 1], ["bcd", 22]], title="T")
    assert text.split("\n") == [
        "T",
        "name  v ",
        "----  --",
        "a     1 ",
        "bcd   22",
    ]


def test_reporter_table_emits_trailing_blank_line():
    sink = BufferSink()
    Reporter(sink).table(["h"], [["x"]])
    assert sink.lines == ["h", "-", "x", ""]


def test_set_default_reporter_returns_previous(buffered_reporter):
    assert get_default_reporter() is buffered_reporter
    other = Reporter(BufferSink())
    assert set_default_reporter(other) is buffered_reporter
    assert set_default_reporter(buffered_reporter) is other


def test_print_table_routes_through_default_reporter(buffered_reporter):
    from repro.experiments.report import print_table

    print_table(["a", "b"], [[1, 2]], title="caught")
    text = buffered_reporter.sink.text()
    assert "caught" in text
    assert "1  2" in text


def test_experiment_main_output_is_capturable(buffered_reporter, capsys):
    """A harness can redirect a whole figure main into a buffer."""
    from repro.experiments.fig10_dynamic import DynamicTimeline, _print

    timeline = DynamicTimeline(
        events={},
        phases=[("solo", 0.0, 1.0)],
        throughput=[],
        ffa_baseline={},
    )
    _print(timeline)
    assert "Figure 10" in buffered_reporter.sink.text()
    assert capsys.readouterr().out == ""  # nothing leaked to stdout


def test_stream_sink_writes_lines():
    stream = io.StringIO()
    reporter = Reporter(StreamSink(stream))
    reporter.line("hello")
    reporter.line()
    assert stream.getvalue() == "hello\n\n"


def test_metrics_summary_lines():
    sink = BufferSink()
    hub = TelemetryHub()
    hub.metrics.counter("mccs_flows_total").inc(3, job="A")
    hub.metrics.histogram("d_seconds", buckets=(1.0,)).observe(0.5, app="A")
    Reporter(sink).metrics_summary(hub)
    text = sink.text()
    assert "mccs_flows_total{job=A}  3" in text
    assert "d_seconds{app=A}  count=1 mean=0.5s" in text


def test_metrics_summary_with_name_selection():
    sink = BufferSink()
    hub = TelemetryHub()
    hub.metrics.counter("a").inc()
    hub.metrics.counter("b").inc()
    Reporter(sink).metrics_summary(hub, names=["b", "missing"])
    assert sink.text() == "  b  1"


def test_dump_json_writes_file_and_reports(tmp_path):
    sink = BufferSink()
    path = tmp_path / "out.json"
    Reporter(sink).dump_json({"k": [1, 2]}, str(path))
    assert json.loads(path.read_text()) == {"k": [1, 2]}
    assert sink.lines == [f"wrote {path}"]


def test_hub_summary_lines_cover_all_stores():
    hub = TelemetryHub()
    hub.metrics.counter("mccs_flows_total").inc(2)
    hub.spans.begin("op", 0.0).finish(1.0)
    hub.events.log(0.0, "policy_run")
    lines = hub.summary_lines()
    assert "mccs_flows_total = 2" in lines
    assert "spans recorded = 1 (evicted 0)" in lines
    assert "decision events = 1 (evicted 0)" in lines
