"""Span lifecycle and the bounded span recorder."""

import pytest

from repro.telemetry import Span, SpanRecorder


def test_span_finish_and_duration():
    span = Span(1, "op", 1.0)
    assert not span.finished
    assert span.duration is None
    span.finish(3.5)
    assert span.finished
    assert span.duration == pytest.approx(2.5)


def test_span_cannot_finish_twice_or_end_before_start():
    span = Span(1, "op", 1.0)
    with pytest.raises(ValueError):
        span.finish(0.5)
    span.finish(2.0)
    with pytest.raises(ValueError):
        span.finish(3.0)


def test_span_point_events():
    span = Span(1, "op", 0.0)
    span.mark("rank_launch", 0.1, rank=0)
    span.mark("rank_launch", 0.2, rank=1)
    span.mark("first_flow_start", 0.3)
    assert span.event_time("rank_launch") == pytest.approx(0.1)
    assert span.event_times("rank_launch") == [pytest.approx(0.1), pytest.approx(0.2)]
    assert span.event_time("missing") is None


def test_span_to_dict_shape():
    span = Span(7, "op", 0.0, category="collective", parent_id=3, attrs={"app": "A"})
    span.mark("e", 0.5, rank=1)
    span.finish(1.0)
    d = span.to_dict()
    assert d["span_id"] == 7
    assert d["parent_id"] == 3
    assert d["category"] == "collective"
    assert d["attrs"] == {"app": "A"}
    assert d["events"] == [{"name": "e", "time": 0.5, "attrs": {"rank": 1}}]


def test_recorder_assigns_deterministic_ids():
    rec = SpanRecorder()
    a = rec.begin("a", 0.0)
    b = rec.begin("b", 0.0)
    assert (a.span_id, b.span_id) == (1, 2)
    # A fresh recorder starts over — exports are reproducible run to run.
    rec2 = SpanRecorder()
    assert rec2.begin("a", 0.0).span_id == 1


def test_recorder_parent_child_links():
    rec = SpanRecorder()
    root = rec.begin("root", 0.0, category="collective")
    child1 = rec.begin("queued", 0.0, category="phase", parent=root)
    child2 = rec.begin("launch", 0.1, category="phase", parent=root)
    assert child1.parent_id == root.span_id
    assert rec.children_of(root) == [child1, child2]
    assert rec.spans("phase") == [child1, child2]
    assert rec.spans("collective") == [root]


def test_recorder_find_matches_attrs():
    rec = SpanRecorder()
    rec.begin("a", 0.0, app="A", comm="comm0")
    rec.begin("b", 0.0, app="B", comm="comm0")
    assert [s.name for s in rec.find(comm="comm0")] == ["a", "b"]
    assert [s.name for s in rec.find(app="B", comm="comm0")] == ["b"]
    assert rec.find(app="C") == []


def test_recorder_is_bounded():
    rec = SpanRecorder(max_spans=3)
    for i in range(5):
        rec.begin(f"s{i}", float(i))
    assert len(rec) == 3
    assert rec.evicted == 2
    assert [s.name for s in rec.spans()] == ["s2", "s3", "s4"]
