"""NetworkTelemetry: flow-lifecycle metrics and link-utilization series."""

import pytest

from repro.netsim.engine import FlowSimulator
from repro.netsim.topology import Topology
from repro.telemetry import MetricsRegistry, NetworkTelemetry


def line_topo(cap=8.0):
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    topo.add_node("c")
    topo.add_link("a", "b", cap)
    topo.add_link("b", "c", cap)
    return topo


def make_telemetry(**kwargs):
    sim = FlowSimulator(line_topo())
    net = NetworkTelemetry(sim, MetricsRegistry(), **kwargs)
    return sim, net


def test_sample_interval_must_be_positive():
    sim = FlowSimulator(line_topo())
    with pytest.raises(ValueError):
        NetworkTelemetry(sim, MetricsRegistry(), sample_interval=0.0)


def test_flow_lifecycle_counters():
    sim, net = make_telemetry()
    sim.add_flow(8.0, ["a->b"], job_id="A")
    sim.add_flow(16.0, ["a->b", "b->c"], job_id="B")
    sim.run()
    counters = net.metrics.counters()
    assert counters["mccs_flows_total"].value(job="A") == 1
    assert counters["mccs_flows_completed_total"].value(job="A") == 1
    assert counters["mccs_bytes_moved_total"].value(job="A") == 8.0
    assert counters["mccs_bytes_moved_total"].value(job="B") == 16.0
    assert net.metrics.gauges()["mccs_active_flows"].value() == 0
    hist = net.metrics.histograms()["mccs_flow_duration_seconds"]
    assert hist.count(job="A") == 1
    assert hist.count(job="B") == 1


def test_preemptions_counted_once_per_gate_closure():
    sim, net = make_telemetry()
    flow = sim.add_flow(8.0, ["a->b"], job_id="A")
    sim.gate_flow(flow, True)
    sim.gate_flow(flow, True)  # no transition: must not double-count
    sim.gate_flow(flow, False)
    sim.gate_flow(flow, True)
    sim.gate_flow(flow, False)
    sim.run()
    preemptions = net.metrics.counters()["mccs_flow_preemptions_total"]
    assert preemptions.value(job="A") == 2


def test_periodic_sampler_records_link_series_and_stops():
    sim, net = make_telemetry(sample_interval=0.25)
    sim.add_flow(16.0, ["a->b"], job_id="A")  # drains in 2 s at 8 B/s
    end = sim.run()  # must terminate: the ticker is self-stopping
    assert end == pytest.approx(2.0)
    assert "a->b" in net.sampled_links()
    series = net.link_series("a->b")
    assert len(series) >= 4
    times = [t for t, _ in series]
    assert times == sorted(times)
    # The single flow saturates the link while it is active.
    assert all(u == pytest.approx(1.0) for _, u in series)
    assert net.link_series("missing") == []


def test_sampler_restarts_for_later_traffic():
    sim, net = make_telemetry(sample_interval=0.25)
    sim.add_flow(8.0, ["a->b"])  # done at t=1
    sim.schedule(5.0, lambda: sim.add_flow(8.0, ["b->c"]))  # t=5..6
    sim.run()
    assert "b->c" in net.sampled_links()
    assert all(t >= 5.0 for t, _ in net.link_series("b->c"))


def test_link_series_is_bounded():
    sim, net = make_telemetry(sample_interval=0.25, max_samples=3)
    sim.add_flow(32.0, ["a->b"])  # 4 s of traffic -> ~16 ticks
    sim.run()
    assert len(net.link_series("a->b")) == 3
    assert net.evicted_samples("a->b") > 0
    assert net.evicted_samples() >= net.evicted_samples("a->b")
    assert net.evicted_samples("missing") == 0


def test_sample_now_and_snapshot():
    sim, net = make_telemetry()
    sim.add_flow(8.0, ["a->b"], job_id="A")
    utilization = net.sample_now()
    assert utilization["a->b"] == pytest.approx(1.0)
    snap = net.utilization_snapshot()
    assert snap["a->b"]["samples"] == [[0.0, 1.0]]
    assert snap["a->b"]["evicted"] == 0


def test_program_cache_gauges_need_a_provider():
    _, net = make_telemetry()
    assert net.publish_program_cache() is None
    assert "mccs_program_cache_hits" not in net.metrics.gauges()


def test_program_cache_gauges_published_from_provider():
    _, net = make_telemetry()
    stats = {"size": 3, "hits": 7, "misses": 2, "evictions": 1}
    net.set_program_cache_provider(lambda: dict(stats))
    assert net.publish_program_cache() == stats
    gauges = net.metrics.gauges()
    for name, value in stats.items():
        assert gauges[f"mccs_program_cache_{name}"].value() == value
    # provider is re-read on every publish
    stats["hits"] = 9
    net.publish_program_cache()
    assert net.metrics.gauges()["mccs_program_cache_hits"].value() == 9
