"""Fixtures for the telemetry tests.

Object ids (communicators, flows, buffers, streams, events, ...) come
from process-global counters, and some of them feed the ECMP connection
hash — so tests that create them shift the path choices of every test
that runs after them.  The statistical assertions elsewhere in the suite
(e.g. the partial-adoption integration test) are calibrated against the
seed's id sequences; these tests therefore borrow private counters and
hand the untouched globals back, as if they had created nothing.
"""

import itertools

import pytest

import repro.baselines.nccl
import repro.cluster.gpu
import repro.cluster.ipc
import repro.core.communicator
import repro.core.messages
import repro.core.reconfig
import repro.core.sync
import repro.netsim.flows
import repro.transport.launcher

_GLOBAL_COUNTERS = [
    (repro.baselines.nccl, "_comm_counter"),
    (repro.cluster.gpu, "_buffer_counter"),
    (repro.cluster.gpu, "_stream_counter"),
    (repro.cluster.gpu, "_event_counter"),
    (repro.cluster.ipc, "_handle_counter"),
    (repro.core.communicator, "_comm_counter"),
    (repro.core.messages, "_msg_counter"),
    (repro.core.reconfig, "_session_counter"),
    (repro.core.sync, "_sync_counter"),
    (repro.netsim.flows, "_flow_counter"),
    (repro.transport.launcher, "_launch_counter"),
]


# Package-scoped so it also wraps module-scoped fixtures (which pytest
# instantiates before any function-scoped autouse fixture could run).
@pytest.fixture(scope="package", autouse=True)
def _private_id_counters():
    originals = [(mod, name, getattr(mod, name)) for mod, name in _GLOBAL_COUNTERS]
    for mod, name in _GLOBAL_COUNTERS:
        setattr(mod, name, itertools.count(100_000))
    try:
        yield
    finally:
        for mod, name, counter in originals:
            setattr(mod, name, counter)
