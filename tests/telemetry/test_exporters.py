"""Exporters: Prometheus text, JSON snapshot, Chrome trace-event golden."""

import json
import pathlib

from repro.telemetry import (
    EventLog,
    MetricsRegistry,
    SpanRecorder,
    TelemetryHub,
    chrome_trace,
    prometheus_text,
)

GOLDEN = pathlib.Path(__file__).parent / "data" / "golden_chrome_trace.json"


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def test_prometheus_counter_and_gauge_lines():
    reg = MetricsRegistry()
    reg.counter("mccs_flows_total", "Flows injected.").inc(2, job="A")
    reg.gauge("mccs_active_flows").set(1.5)
    text = prometheus_text(reg)
    assert "# HELP mccs_flows_total Flows injected.\n" in text
    assert "# TYPE mccs_flows_total counter\n" in text
    assert 'mccs_flows_total{job="A"} 2\n' in text
    assert "# TYPE mccs_active_flows gauge\n" in text
    assert "mccs_active_flows 1.5\n" in text


def test_prometheus_histogram_exposition():
    reg = MetricsRegistry()
    h = reg.histogram("d_seconds", "Durations.", buckets=(0.1, 1.0))
    h.observe(0.05, app="A")
    h.observe(0.5, app="A")
    h.observe(5.0, app="A")
    text = prometheus_text(reg)
    assert '# TYPE d_seconds histogram' in text
    assert 'd_seconds_bucket{app="A",le="0.1"} 1\n' in text
    assert 'd_seconds_bucket{app="A",le="1"} 2\n' in text
    assert 'd_seconds_bucket{app="A",le="+Inf"} 3\n' in text
    assert 'd_seconds_sum{app="A"} 5.55' in text
    assert 'd_seconds_count{app="A"} 3\n' in text


def test_prometheus_escapes_label_values():
    reg = MetricsRegistry()
    reg.counter("c").inc(app='we"ird\\app')
    text = prometheus_text(reg)
    assert 'app="we\\"ird\\\\app"' in text


def test_prometheus_unsampled_counter_renders_zero():
    reg = MetricsRegistry()
    reg.counter("mccs_reconfigs_total", "Reconfigurations.")
    assert "mccs_reconfigs_total 0\n" in prometheus_text(reg)


# ----------------------------------------------------------------------
# JSON snapshot
# ----------------------------------------------------------------------
def test_json_snapshot_shape_and_serializability():
    hub = TelemetryHub()
    hub.metrics.counter("c").inc()
    span = hub.spans.begin("op", 0.0, category="collective", app="A")
    span.finish(1.0)
    hub.events.log(0.5, "policy_run", policy="ffa")
    snap = hub.to_json()
    json.dumps(snap)  # must not raise
    assert set(snap) == {"metrics", "spans", "events"}
    assert snap["spans"]["records"][0]["name"] == "op"
    assert snap["events"]["records"][0]["kind"] == "policy_run"
    assert snap["spans"]["evicted"] == 0


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------
def build_trace_fixture():
    """A deterministic two-collective + reconfig span tree."""
    spans = SpanRecorder()
    events = EventLog()

    ar0 = spans.begin(
        "allreduce comm0.s0", 0.0, category="collective",
        app="tenantA", comm="comm0", seq=0,
    )
    queued = spans.begin(
        "queued", 0.0, category="phase", parent=ar0,
        app="tenantA", comm="comm0",
    )
    queued.finish(0.001)
    network = spans.begin(
        "network", 0.001, category="phase", parent=ar0,
        app="tenantA", comm="comm0",
    )
    ar0.mark("rank_launch", 0.001, rank=0, version=0)
    ar0.mark("first_flow_start", 0.001)
    ar0.mark("last_flow_end", 0.005)
    network.finish(0.005)
    ar0.finish(0.005)

    reconfig = spans.begin(
        "reconfig comm0 v0->v1", 0.006, category="reconfig",
        app="tenantA", comm="comm0",
    )
    barrier = spans.begin(
        "barrier", 0.006, category="reconfig", parent=reconfig,
        app="tenantA", comm="comm0",
    )
    reconfig.mark("barrier_resolved", 0.0061, max_seq=0)
    barrier.finish(0.0061)
    reconfig.mark("rank_applied", 0.0062, rank=0)
    reconfig.finish(0.0062)

    unfinished = spans.begin(
        "allreduce comm0.s1", 0.007, category="collective",
        app="tenantA", comm="comm0", seq=1,
    )
    unfinished.mark("rank_launch", 0.0071, rank=0, version=1)

    events.log(0.006, "reconfig_issued", "ring reversed", comm=0)
    return spans, events


def test_chrome_trace_matches_golden_file():
    spans, events = build_trace_fixture()
    rendered = json.dumps(chrome_trace(spans, events), indent=2, sort_keys=True)
    assert rendered + "\n" == GOLDEN.read_text()


def test_chrome_trace_structure():
    spans, events = build_trace_fixture()
    trace = chrome_trace(spans, events)
    evs = trace["traceEvents"]
    complete = [e for e in evs if e["ph"] == "X"]
    instants = [e for e in evs if e["ph"] == "i"]
    metadata = [e for e in evs if e["ph"] == "M"]

    # Unfinished spans are skipped; their instants still show up.
    assert sorted(e["name"] for e in complete) == [
        "allreduce comm0.s0", "barrier", "network", "queued",
        "reconfig comm0 v0->v1",
    ]
    assert any(e["name"] == "rank_launch" and e["args"].get("version") == 1
               for e in instants)

    # Everything for tenantA lands on one named process/track pair.
    names = {(m["name"], m["args"]["name"]) for m in metadata}
    assert ("process_name", "tenantA") in names
    assert ("thread_name", "comm0") in names
    assert ("process_name", "control-plane") in names

    root = next(e for e in complete if e["name"] == "allreduce comm0.s0")
    barrier = next(e for e in complete if e["name"] == "barrier")
    assert root["ts"] == 0.0 and root["dur"] == 5000.0  # microseconds
    assert barrier["ts"] == 6000.0 and barrier["dur"] == 100.0
    assert barrier["args"]["parent_id"] == next(
        e for e in complete if e["name"].startswith("reconfig")
    )["args"]["span_id"]

    # Output is sorted by timestamp, so goldens are stable.
    body = [e for e in evs if e["ph"] != "M"]
    assert [e["ts"] for e in body] == sorted(e["ts"] for e in body)


def test_chrome_trace_without_events_omits_control_track():
    spans, _ = build_trace_fixture()
    trace = chrome_trace(spans)
    metadata_names = {
        e["args"]["name"] for e in trace["traceEvents"] if e["ph"] == "M"
    }
    assert "control-plane" not in metadata_names
