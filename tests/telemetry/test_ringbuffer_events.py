"""Bounded buffers: the ring buffer and the decision event log."""

import pytest

from repro.telemetry import EventLog, RingBuffer


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        RingBuffer(0)
    with pytest.raises(ValueError):
        RingBuffer(-1)


def test_append_under_capacity_keeps_everything():
    buf = RingBuffer(3)
    buf.extend([1, 2])
    assert buf.to_list() == [1, 2]
    assert len(buf) == 2
    assert buf.evicted == 0


def test_eviction_drops_oldest_first_and_counts():
    buf = RingBuffer(3)
    buf.extend([1, 2, 3, 4, 5])
    assert buf.to_list() == [3, 4, 5]
    assert buf.evicted == 2
    assert buf[0] == 3
    assert buf[-1] == 5
    assert list(buf) == [3, 4, 5]


def test_clear_resets_contents_and_eviction_count():
    buf = RingBuffer(2)
    buf.extend([1, 2, 3])
    buf.clear()
    assert len(buf) == 0
    assert buf.evicted == 0


def test_event_log_records_and_filters():
    log = EventLog()
    log.log(1.0, "policy_run", policy="ffa")
    log.log(2.0, "reconfig_issued", "ring reversed", comm=0)
    assert len(log) == 2
    assert [e.kind for e in log.events()] == ["policy_run", "reconfig_issued"]
    assert log.events("policy_run")[0].attrs == {"policy": "ffa"}
    assert log.events("reconfig_issued")[0].message == "ring reversed"
    assert log.events("missing") == []


def test_event_log_is_bounded():
    log = EventLog(max_events=4)
    for i in range(10):
        log.log(float(i), "tick", i=i)
    assert len(log) == 4
    assert log.evicted == 6
    assert [e.attrs["i"] for e in log.events()] == [6, 7, 8, 9]


def test_event_to_dict_round_trips_through_json():
    import json

    log = EventLog()
    event = log.log(0.5, "policy_run", "report", policy="pfa", apps=["A"])
    payload = json.dumps(event.to_dict())
    assert "pfa" in payload and "report" in payload
