"""Telemetry wired through the full service: spans, metrics, traces.

These tests drive real deployments (shim -> frontend -> proxy ->
transport -> netsim) and assert on what lands in the hub — including the
acceptance scenario: the Figure 4 reconfiguration barrier visible as a
span with intact parent/child links.
"""

import pytest

from repro.cluster.specs import testbed_cluster
from repro.core.deployment import MccsDeployment
from repro.netsim.units import MB
from repro.telemetry import (
    EVENT_BARRIER_RESOLVED,
    EVENT_FIRST_FLOW_START,
    EVENT_HELD,
    EVENT_RANK_APPLIED,
    EVENT_RANK_LAUNCH,
    TelemetryHub,
)


def make_env(world=3, **kwargs):
    cluster = testbed_cluster()
    deployment = MccsDeployment(cluster, **kwargs)
    gpus = [cluster.hosts[h % 4].gpus[h // 4] for h in range(world)]
    comm = deployment.create_communicator("app", gpus)
    client = deployment.connect("app")
    handle = client.adopt_communicator(comm.comm_id)
    return cluster, deployment, comm, client, handle


def test_collective_span_tree():
    """One collective = one root span + queued/launch/network children."""
    cluster, deployment, comm, client, handle = make_env()
    op = client.all_reduce(handle, 8 * MB)
    deployment.run()
    hub = deployment.telemetry()

    roots = hub.spans.spans("collective")
    assert len(roots) == 1
    root = roots[0]
    assert root.finished
    assert root.attrs["app"] == "app"
    assert root.attrs["seq"] == 0
    assert root.end == pytest.approx(op.instance.end_time)

    children = hub.spans.children_of(root)
    assert [c.name for c in children] == ["queued", "launch", "network"]
    assert all(c.finished for c in children)
    # Phases tile the root span: queued ends where launch begins, etc.
    assert children[0].end == pytest.approx(children[1].start)
    assert children[1].end == pytest.approx(children[2].start)
    assert children[2].end == pytest.approx(root.end)

    # Point events: every rank launched, flows started and drained.
    assert len(root.event_times(EVENT_RANK_LAUNCH)) == 3
    first_flow = root.event_time(EVENT_FIRST_FLOW_START)
    assert first_flow is not None
    assert first_flow == pytest.approx(children[2].start)


def test_collective_counters_and_ipc_histogram():
    cluster, deployment, comm, client, handle = make_env()
    for _ in range(3):
        client.all_reduce(handle, 8 * MB)
    deployment.run()
    metrics = deployment.telemetry().metrics
    issued = metrics.counters()["mccs_collectives_issued_total"]
    completed = metrics.counters()["mccs_collectives_completed_total"]
    assert issued.value(app="app", kind="all_reduce") == 3
    assert completed.value(app="app", kind="all_reduce") == 3
    durations = metrics.histograms()["mccs_collective_duration_seconds"]
    assert durations.count(app="app") == 3
    assert durations.mean(app="app") > 0
    # The shim->service hop is measured in wall-clock time.
    ipc = metrics.histograms()["mccs_ipc_hop_seconds"]
    assert ipc.count(request="CollectiveRequest") == 3
    assert metrics.counters()["mccs_shim_calls_total"].value(
        app="app", call="all_reduce"
    ) == 3


def test_reconfig_barrier_span_integrity():
    """The acceptance scenario: a reconfig during held collectives leaves
    a root reconfig span with a barrier child, and the held collective's
    span records the hold."""
    cluster, deployment, comm, client, handle = make_env()
    client.all_reduce(handle, 8 * MB)
    deployment.run()
    # Ranks 1,2 hear about the reconfig first and hold; rank 0 launches
    # the next collective, forcing a real barrier stall (Figure 4).
    deployment.reconfigure(comm.comm_id, ring=[2, 1, 0], delays=[0.010, 0.0, 0.0])
    deployment.run(until=cluster.sim.now + 0.001)
    client.all_reduce(handle, 8 * MB)
    deployment.run()
    hub = deployment.telemetry()

    reconfigs = [s for s in hub.spans.spans("reconfig") if s.parent_id is None]
    assert len(reconfigs) == 1
    root = reconfigs[0]
    assert root.finished
    children = hub.spans.children_of(root)
    assert [c.name for c in children] == ["barrier"]
    barrier = children[0]
    assert barrier.finished
    # The barrier resolves when the AllGather completes, strictly inside
    # the reconfiguration span.
    resolved = root.event_time(EVENT_BARRIER_RESOLVED)
    assert resolved == pytest.approx(barrier.end)
    assert root.start <= barrier.start <= barrier.end <= root.end
    assert len(root.event_times(EVENT_RANK_APPLIED)) == 3

    # The queued second collective recorded the proxy hold.
    second = next(s for s in hub.spans.spans("collective") if s.attrs["seq"] == 1)
    held = second.event_times(EVENT_HELD)
    assert len(held) == 2  # ranks 1 and 2 were holding

    metrics = hub.metrics
    stall = metrics.histograms()["mccs_barrier_stall_seconds"]
    assert stall.count() == 1
    assert metrics.histograms()["mccs_reconfig_duration_seconds"].count() == 1
    assert metrics.counters()["mccs_launches_held_total"].value(
        comm=f"comm{comm.comm_id}"
    ) == 2
    assert metrics.histograms()["mccs_proxy_hold_seconds"].count() == 3


def test_trace_record_duration_split():
    """total = queue delay + network time, re-derived from the span."""
    cluster, deployment, comm, client, handle = make_env()
    client.all_reduce(handle, 8 * MB)
    op = client.all_reduce(handle, 8 * MB)  # queues behind the first
    deployment.run()
    rec = comm.trace.record_for(op.instance.seq)
    assert rec.span is not None
    assert rec.completed
    assert rec.total_duration() == pytest.approx(rec.duration())
    assert rec.network_duration() > 0
    assert rec.queue_delay() > 0  # it waited for the first collective
    assert rec.total_duration() == pytest.approx(
        rec.queue_delay() + rec.network_duration()
    )


def test_comm_trace_is_bounded():
    cluster, deployment, comm, client, handle = make_env(trace_capacity=4)
    ops = [client.all_reduce(handle, 1 * MB) for _ in range(7)]
    deployment.run()
    trace = deployment.trace(comm.comm_id)
    assert all(op.completed for op in ops)
    assert trace.max_records == 4
    assert len(trace.records) == 4
    assert trace.evicted == 3
    assert [r.seq for r in trace.records] == [3, 4, 5, 6]
    assert trace.record_for(0) is None
    assert trace.record_for(6) is not None


def test_deployment_accepts_external_hub():
    hub = TelemetryHub()
    cluster = testbed_cluster()
    deployment = MccsDeployment(cluster, telemetry=hub)
    assert deployment.telemetry() is hub
    assert hub.network is not None  # the sampler attached to cluster.sim


def test_network_telemetry_sees_collective_flows():
    cluster, deployment, comm, client, handle = make_env()
    client.all_reduce(handle, 8 * MB)
    deployment.run()
    counters = deployment.telemetry().metrics.counters()
    assert counters["mccs_flows_total"].value(job="app") > 0
    assert counters["mccs_flows_completed_total"].value(
        job="app"
    ) == counters["mccs_flows_total"].value(job="app")
    assert counters["mccs_bytes_moved_total"].value(job="app") > 0


def test_prometheus_export_from_live_deployment():
    cluster, deployment, comm, client, handle = make_env()
    client.all_reduce(handle, 8 * MB)
    deployment.run()
    text = deployment.telemetry().to_prometheus()
    assert '# TYPE mccs_collectives_issued_total counter' in text
    assert 'mccs_collectives_issued_total{app="app",kind="all_reduce"} 1' in text
    assert "# TYPE mccs_collective_duration_seconds histogram" in text


def test_program_cache_stats_flow_into_summary():
    cluster, deployment, comm, client, handle = make_env()
    client.all_reduce(handle, 8 * MB)
    client.all_reduce(handle, 8 * MB)  # second issue hits the cache
    deployment.run()
    hub = deployment.telemetry()
    stats = hub.network.publish_program_cache()
    assert stats is not None
    assert stats["hits"] >= 1
    assert stats["size"] >= 1
    gauges = hub.metrics.gauges()
    assert gauges["mccs_program_cache_hits"].value() == stats["hits"]
    assert gauges["mccs_program_cache_misses"].value() == stats["misses"]
    lines = hub.summary_lines()
    assert any(line.startswith("program_cache.hits = ") for line in lines)


def test_program_cache_stats_aggregate_across_comms():
    cluster, deployment, comm, client, handle = make_env()
    gpus = [cluster.hosts[h].gpus[1] for h in range(3)]
    deployment.create_communicator("other", gpus)
    client.all_reduce(handle, 8 * MB)
    deployment.run()
    stats = deployment.program_cache_stats()
    assert set(stats) == {"size", "hits", "misses", "evictions"}
    per_comm = [c.program_cache.stats() for c in deployment.communicators()]
    assert stats["size"] == sum(s["size"] for s in per_comm)
