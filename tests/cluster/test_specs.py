"""Cluster assembly and GPU/NIC affinity tests."""

import pytest

from repro.cluster.specs import (
    custom_cluster,
    large_cluster,
    ring_cluster,
    testbed_cluster,
)


def test_testbed_cluster_shape():
    cl = testbed_cluster()
    assert cl.num_hosts == 4
    assert cl.num_gpus == 8
    assert all(len(h.gpus) == 2 and len(h.nics) == 2 for h in cl.hosts)


def test_gpu_global_ids_follow_layout():
    cl = testbed_cluster()
    for host in cl.hosts:
        for gpu in host.gpus:
            assert gpu.global_id == host.host_id * 2 + gpu.local_index
            assert cl.gpu(gpu.global_id) is gpu


def test_rack_mapping():
    cl = testbed_cluster()
    assert cl.rack_of(cl.gpu(0)) == 0
    assert cl.rack_of(cl.gpu(5)) == 1


def test_nic_affinity():
    cl = testbed_cluster()
    gpu = cl.hosts[1].gpus[1]
    assert cl.nic_of(gpu).index == 1
    assert cl.nic_of(gpu).node_id == "h1.nic1"


def test_nic_of_channel_rotates():
    cl = testbed_cluster()
    gpu = cl.hosts[0].gpus[1]
    assert cl.nic_of_channel(gpu, 0) == "h0.nic1"
    assert cl.nic_of_channel(gpu, 1) == "h0.nic0"
    assert cl.nic_of_channel(gpu, 2) == "h0.nic1"


def test_hosts_share_one_simulator():
    cl = testbed_cluster()
    sims = {gpu.sim for gpu in cl.gpus}
    assert sims == {cl.sim}


def test_large_cluster_scale():
    cl = large_cluster()
    assert cl.num_gpus == 768
    assert cl.num_hosts == 96
    assert len(cl.hosts[0].nics) == 8


def test_ring_cluster():
    cl = ring_cluster()
    assert cl.num_hosts == 4
    assert cl.num_gpus == 8
    assert "sw0" in cl.topology.nodes


def test_custom_cluster_nic_default():
    cl = custom_cluster(
        num_spines=2, num_leaves=2, hosts_per_leaf=1, gpus_per_host=4
    )
    assert len(cl.hosts[0].nics) == 4
    assert cl.num_gpus == 8


def test_interference_penalty_threads_through():
    cl = testbed_cluster(interference_penalty=0.25)
    assert cl.sim.interference_penalty == 0.25


def test_host_nic_for_foreign_gpu_rejected():
    cl = testbed_cluster()
    with pytest.raises(ValueError):
        cl.hosts[0].nic_for_gpu(cl.hosts[1].gpus[0])


def test_gpus_of_host():
    cl = testbed_cluster()
    gpus = cl.gpus_of_host(2)
    assert [g.global_id for g in gpus] == [4, 5]
