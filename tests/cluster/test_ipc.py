"""cudaIpc-style handle broker tests."""

import pytest

from repro.cluster.gpu import Event, GpuDevice
from repro.cluster.ipc import IpcError, IpcRegistry
from repro.netsim.engine import FlowSimulator
from repro.netsim.topology import Topology


@pytest.fixture
def gpu():
    topo = Topology()
    topo.add_node("x")
    return GpuDevice(FlowSimulator(topo), 0, 0, 0)


@pytest.fixture
def registry():
    return IpcRegistry(host_id=0)


def test_memory_export_open_round_trip(gpu, registry):
    buf = gpu.allocate(128)
    handle = registry.export_memory(buf)
    opened = registry.open_memory(handle)
    assert opened is buf
    assert registry.is_open(handle)


def test_memory_close_protocol(gpu, registry):
    buf = gpu.allocate(128)
    handle = registry.export_memory(buf)
    registry.open_memory(handle)
    registry.close_memory(handle)
    assert not registry.is_open(handle)
    registry.revoke_memory(handle)
    with pytest.raises(IpcError):
        registry.open_memory(handle)


def test_close_unopened_handle_rejected(gpu, registry):
    buf = gpu.allocate(128)
    handle = registry.export_memory(buf)
    with pytest.raises(IpcError):
        registry.close_memory(handle)


def test_revoke_while_open_rejected(gpu, registry):
    buf = gpu.allocate(128)
    handle = registry.export_memory(buf)
    registry.open_memory(handle)
    with pytest.raises(IpcError):
        registry.revoke_memory(handle)


def test_export_freed_buffer_rejected(gpu, registry):
    buf = gpu.allocate(128)
    gpu.free(buf)
    with pytest.raises(IpcError):
        registry.export_memory(buf)


def test_handles_are_host_scoped(gpu, registry):
    other_host = IpcRegistry(host_id=1)
    buf = gpu.allocate(128)
    handle = registry.export_memory(buf)
    with pytest.raises(IpcError):
        other_host.open_memory(handle)


def test_unknown_memory_handle(gpu, registry):
    buf = gpu.allocate(128)
    handle = registry.export_memory(buf)
    registry.open_memory(handle)
    registry.close_memory(handle)
    registry.revoke_memory(handle)
    # revoked handle is unknown now
    with pytest.raises(IpcError):
        registry.open_memory(handle)


def test_event_export_open(registry):
    event = Event("sync")
    handle = registry.export_event(event)
    assert registry.open_event(handle) is event


def test_event_handles_host_scoped(registry):
    other = IpcRegistry(host_id=2)
    handle = registry.export_event(Event())
    with pytest.raises(IpcError):
        other.open_event(handle)


def test_unknown_event_handle(registry):
    other = IpcRegistry(host_id=0)
    handle = registry.export_event(Event())
    with pytest.raises(IpcError):
        other.open_event(handle)
