"""Simulated GPU: memory, streams, events, async ops."""

import numpy as np
import pytest

from repro.cluster.gpu import (
    AsyncOp,
    ComputeOp,
    Event,
    GpuDevice,
    Stream,
)
from repro.netsim.engine import FlowSimulator
from repro.netsim.errors import AllocationError
from repro.netsim.topology import Topology


@pytest.fixture
def sim():
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    topo.add_link("a", "b", 1e9)
    return FlowSimulator(topo)


@pytest.fixture
def gpu(sim):
    return GpuDevice(sim, global_id=0, host_id=0, local_index=0, memory_capacity=1024)


# -- memory -----------------------------------------------------------------
def test_allocate_and_free(gpu):
    buf = gpu.allocate(512)
    assert gpu.memory_used == 512
    gpu.free(buf)
    assert gpu.memory_used == 0
    assert buf.freed


def test_out_of_memory(gpu):
    gpu.allocate(1000)
    with pytest.raises(AllocationError):
        gpu.allocate(100)


def test_double_free_rejected(gpu):
    buf = gpu.allocate(64)
    gpu.free(buf)
    with pytest.raises(AllocationError):
        gpu.free(buf)


def test_zero_size_allocation_rejected(gpu):
    with pytest.raises(AllocationError):
        gpu.allocate(0)


def test_view_types_and_offsets(gpu):
    buf = gpu.allocate(64)
    v = buf.view(np.float32)
    assert v.size == 16
    v[:] = 2.0
    assert np.allclose(buf.view(np.float32, offset=4, count=2), 2.0)


def test_view_rejects_misaligned_offset(gpu):
    buf = gpu.allocate(64)
    with pytest.raises(ValueError):
        buf.view(np.float32, offset=3)


def test_view_rejects_overrun(gpu):
    buf = gpu.allocate(64)
    with pytest.raises(ValueError):
        buf.view(np.float32, count=99)


def test_view_after_free_rejected(gpu):
    buf = gpu.allocate(64)
    gpu.free(buf)
    with pytest.raises(AllocationError):
        buf.view()


def test_contains(gpu):
    buf = gpu.allocate(64)
    assert buf.contains(0, 64)
    assert buf.contains(32, 32)
    assert not buf.contains(32, 64)
    assert not buf.contains(-1, 4)


def test_allocation_lookup(gpu):
    buf = gpu.allocate(64)
    assert gpu.allocation(buf.buffer_id) is buf
    assert gpu.allocation(999999) is None
    assert buf in gpu.allocations()


# -- streams ------------------------------------------------------------------
def test_compute_ops_run_in_order(sim, gpu):
    stream = gpu.create_stream()
    stream.compute(1.0, name="k1")
    stream.compute(2.0, name="k2")
    marks = []
    stream.add_callback(lambda: marks.append(sim.now))
    sim.run()
    assert marks == [pytest.approx(3.0)]
    assert stream.history[:2] == ["k1", "k2"]


def test_zero_duration_compute(sim, gpu):
    stream = gpu.create_stream()
    stream.compute(0.0)
    marks = []
    stream.add_callback(lambda: marks.append(sim.now))
    sim.run()
    assert marks == [0.0]


def test_streams_run_concurrently(sim, gpu):
    s1, s2 = gpu.create_stream("s1"), gpu.create_stream("s2")
    s1.compute(2.0)
    s2.compute(1.0)
    marks = []
    s1.synchronize(lambda t: marks.append(("s1", t)))
    s2.synchronize(lambda t: marks.append(("s2", t)))
    sim.run()
    assert ("s2", pytest.approx(1.0)) in marks
    assert ("s1", pytest.approx(2.0)) in marks


def test_event_record_and_wait_across_streams(sim, gpu):
    s1, s2 = gpu.create_stream(), gpu.create_stream()
    event = Event()
    s1.compute(2.0)
    s1.record_event(event)
    s2.wait_event(event)
    marks = []
    s2.add_callback(lambda: marks.append(sim.now))
    sim.run()
    assert marks == [pytest.approx(2.0)]


def test_wait_on_already_fired_event_passes_through(sim, gpu):
    stream = gpu.create_stream()
    event = Event()
    event.record()
    stream.wait_event(event)
    marks = []
    stream.add_callback(lambda: marks.append(sim.now))
    sim.run()
    assert marks == [0.0]


def test_event_reset_rearms(sim, gpu):
    event = Event()
    event.record()
    assert event.fired
    event.reset()
    assert not event.fired


def test_async_op_blocks_until_completed(sim, gpu):
    stream = gpu.create_stream()
    op = AsyncOp("collective")
    stream.enqueue(op)
    marks = []
    stream.add_callback(lambda: marks.append(sim.now))
    sim.schedule(5.0, op.complete)
    sim.run()
    assert marks == [pytest.approx(5.0)]


def test_async_op_completed_before_start(sim, gpu):
    stream = gpu.create_stream()
    stream.compute(1.0)
    op = AsyncOp()
    op.complete()  # completes before the stream reaches it
    stream.enqueue(op)
    marks = []
    stream.add_callback(lambda: marks.append(sim.now))
    sim.run()
    assert marks == [pytest.approx(1.0)]


def test_async_op_on_start_hook(sim, gpu):
    stream = gpu.create_stream()
    started = []
    op = AsyncOp(on_start=lambda: started.append(sim.now))
    stream.compute(1.5)
    stream.enqueue(op)
    sim.schedule(9.0, op.complete)
    sim.run()
    assert started == [pytest.approx(1.5)]


def test_stream_idle_property(sim, gpu):
    stream = gpu.create_stream()
    assert stream.idle
    stream.compute(1.0)
    assert not stream.idle
    sim.run()
    assert stream.idle


def test_negative_compute_duration_rejected(sim, gpu):
    with pytest.raises(ValueError):
        ComputeOp(-1.0)
