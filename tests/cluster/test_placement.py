"""Placement policy tests (random / compact) for the §6.5 simulation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.placement import ClusterAllocator, hosts_spanned, racks_spanned
from repro.cluster.specs import custom_cluster, large_cluster
from repro.netsim.errors import PlacementError


@pytest.fixture
def cluster():
    # 4 racks x 2 hosts x 4 GPUs = 32 GPUs
    return custom_cluster(
        num_spines=2, num_leaves=4, hosts_per_leaf=2, gpus_per_host=4
    )


def test_random_placement_size_and_uniqueness(cluster):
    alloc = ClusterAllocator(cluster, seed=1)
    gpus = alloc.place_random("j1", 8)
    assert len(gpus) == 8
    assert len({g.global_id for g in gpus}) == 8
    assert alloc.free_count == 24


def test_compact_placement_minimizes_racks(cluster):
    alloc = ClusterAllocator(cluster, seed=1)
    gpus = alloc.place_compact("j1", 8)
    assert racks_spanned(cluster, gpus) == 1
    assert hosts_spanned(cluster, gpus) == 2


def test_compact_spills_to_second_rack(cluster):
    alloc = ClusterAllocator(cluster, seed=1)
    gpus = alloc.place_compact("j1", 12)
    assert racks_spanned(cluster, gpus) == 2


def test_compact_prefers_fullest_rack(cluster):
    alloc = ClusterAllocator(cluster, seed=1)
    alloc.place_compact("j1", 4)  # takes half of rack 0
    gpus = alloc.place_compact("j2", 8)
    # j2 should land in a completely free rack, not straddle rack 0.
    assert racks_spanned(cluster, gpus) == 1


def test_release_returns_gpus(cluster):
    alloc = ClusterAllocator(cluster, seed=1)
    alloc.place_random("j1", 8)
    alloc.release("j1")
    assert alloc.free_count == 32
    assert alloc.gpus_of_job("j1") == []


def test_over_allocation_rejected(cluster):
    alloc = ClusterAllocator(cluster, seed=1)
    with pytest.raises(PlacementError):
        alloc.place_random("j1", 33)


def test_duplicate_job_rejected(cluster):
    alloc = ClusterAllocator(cluster, seed=1)
    alloc.place_random("j1", 2)
    with pytest.raises(PlacementError):
        alloc.place_random("j1", 2)


def test_place_dispatch(cluster):
    alloc = ClusterAllocator(cluster, seed=1)
    assert len(alloc.place("a", 4, "random")) == 4
    assert len(alloc.place("b", 4, "compact")) == 4
    with pytest.raises(ValueError):
        alloc.place("c", 4, "diagonal")


@given(st.lists(st.integers(1, 8), min_size=1, max_size=6), st.integers(0, 5))
@settings(max_examples=40, deadline=None)
def test_no_gpu_allocated_twice(sizes, seed):
    cluster = custom_cluster(
        num_spines=2, num_leaves=4, hosts_per_leaf=2, gpus_per_host=4
    )
    alloc = ClusterAllocator(cluster, seed=seed)
    held = set()
    for i, size in enumerate(sizes):
        if size > alloc.free_count:
            continue
        strategy = "random" if (i + seed) % 2 else "compact"
        gpus = alloc.place(f"j{i}", size, strategy)
        ids = {g.global_id for g in gpus}
        assert not (ids & held)
        held |= ids


def test_compact_on_large_cluster_packs_16_gpu_job():
    cluster = large_cluster()
    alloc = ClusterAllocator(cluster, seed=0)
    gpus = alloc.place_compact("j", 16)
    assert hosts_spanned(cluster, gpus) == 2
    assert racks_spanned(cluster, gpus) == 1
