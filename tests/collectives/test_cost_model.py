"""Alpha-beta cost model and static algorithm-selection tests."""

import pytest

from repro.collectives.cost_model import (
    LatencyModel,
    MCCS_LATENCY,
    NCCL_LATENCY,
    effective_bandwidth,
    ring_allreduce_cost,
    select_ring_or_tree,
    tree_allreduce_cost,
)


def test_latency_model_composition():
    model = LatencyModel(base=10e-6, per_step=2e-6, datapath=50e-6)
    assert model.collective_latency(5) == pytest.approx(70e-6)


def test_latency_model_rejects_negative_steps():
    with pytest.raises(ValueError):
        NCCL_LATENCY.collective_latency(-1)


def test_mccs_latency_reflects_paper_range():
    """The paper measures the shim->service datapath at 50-80 us."""
    extra = MCCS_LATENCY.datapath - NCCL_LATENCY.datapath
    assert 50e-6 <= extra <= 80e-6


def test_ring_cost_scales_linearly_in_size():
    c1 = ring_allreduce_cost(1e6, 4, alpha=1e-5, beta=1e-10)
    c2 = ring_allreduce_cost(2e6, 4, alpha=1e-5, beta=1e-10)
    assert c2 - c1 == pytest.approx(2 * (3 / 4) * 1e6 * 1e-10)


def test_tree_cost_logarithmic_latency():
    c8 = tree_allreduce_cost(0.0 + 1.0, 8, alpha=1.0, beta=0.0)
    c64 = tree_allreduce_cost(1.0, 64, alpha=1.0, beta=0.0)
    assert c64 - c8 == pytest.approx(2 * 3)  # log2 64 - log2 8 = 3 doublings


def test_selection_small_messages_prefer_tree_on_large_worlds():
    assert select_ring_or_tree(1024, 256) == "tree"


def test_selection_large_messages_prefer_ring():
    assert select_ring_or_tree(512 * 1024 * 1024, 256) == "ring"


def test_selection_validates_world():
    with pytest.raises(ValueError):
        select_ring_or_tree(1024, 1)


def test_effective_bandwidth_monotone_in_size():
    small = effective_bandwidth(32 * 1024, 6, 6.25e9, MCCS_LATENCY)
    large = effective_bandwidth(512 * 1024**2, 6, 6.25e9, MCCS_LATENCY)
    assert small < large < 6.25e9
    assert large > 0.99 * 6.25e9


def test_effective_bandwidth_penalizes_mccs_at_small_sizes():
    """The Figure 6 small-message story in closed form."""
    size = 512 * 1024
    nccl = effective_bandwidth(size, 6, 6.25e9, NCCL_LATENCY)
    mccs = effective_bandwidth(size, 6, 6.25e9, MCCS_LATENCY)
    assert mccs < nccl
    size = 512 * 1024**2
    nccl = effective_bandwidth(size, 6, 6.25e9, NCCL_LATENCY)
    mccs = effective_bandwidth(size, 6, 6.25e9, MCCS_LATENCY)
    assert mccs == pytest.approx(nccl, rel=0.01)
