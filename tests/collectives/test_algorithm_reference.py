"""Every registered algorithm is byte-exact vs the numpy reference.

The registry (:mod:`repro.core.algorithms`) is the extension point the
autotuner searches over; this ONE parametrized suite pins down that each
registered family — built-in *and* synthesized chunk-level programs —
produces through its actual ``run_data`` interface exactly what the
single-node numpy oracle (:mod:`repro.collectives.reference`) computes,
for every supported collective kind, world sizes 2–9, non-power-of-two
sizes, every operator and several dtypes.  Any strategy the tuner
installs is therefore *always correct*, only faster or slower.

Synthesized programs are registered at import time with no topology
fingerprint, so they are visible to the collection-time
``registered_algorithms()`` snapshot here but can never leak into
planner candidate sets (the planner requires an exact fingerprint
match).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.reference import reference_outputs
from repro.collectives.types import Collective, ReduceOp
from repro.core.algorithms import (
    AlgorithmContext,
    get_algorithm,
    registered_algorithms,
    unregister_algorithm,
)
from repro.synth import (
    hierarchical_allreduce_program,
    register_program,
    ring_program,
)

# Synthesized entries exercised by the shared suite: a two-level
# hierarchical all-reduce (its native world is 4; every other world
# falls back to the ring path) and an IR-compiled ring all-gather.
_SYNTH_PROGRAMS = (
    hierarchical_allreduce_program(
        [[0, 1], [2, 3]], name="synth:test-hier-ar/w4"
    ),
    ring_program(
        Collective.ALL_GATHER, 5, name="synth:test-ring-ag/w5"
    ),
)

for _program in _SYNTH_PROGRAMS:
    register_program(_program, replace=True)


def teardown_module(module):
    for program in _SYNTH_PROGRAMS:
        unregister_algorithm(program.name)


ALL_ALGORITHMS = registered_algorithms()


def _run(name, kind, inputs, op, root=0):
    """Execute ``kind`` through the registry's run_data interface."""
    world = len(inputs)
    ctx = AlgorithmContext(
        kind=kind,
        out_bytes=inputs[0].nbytes,
        world=world,
        rank=0,
        root=root,
        ring_order=tuple(range(world)),
        channels=1,
    )
    return get_algorithm(name).run_data(ctx, list(inputs), op)


def _make_inputs(kind, world, elems, dtype, rng):
    """Per-rank inputs sized by the kind's buffer convention.

    Small positive integers keep every operator (including PROD) exact
    in every dtype, so equality really is byte-for-byte.
    """
    if kind is Collective.REDUCE_SCATTER:
        size = elems * world  # must divide into world equal blocks
    else:
        size = elems  # ALL_GATHER: per-rank block; others: full vector
    return [
        rng.integers(1, 4, size=size).astype(dtype) for _ in range(world)
    ]


def test_synth_entries_visible_to_the_shared_suite():
    assert {"ring", "tree", "halving_doubling"} <= set(ALL_ALGORITHMS)
    assert {p.name for p in _SYNTH_PROGRAMS} <= set(ALL_ALGORITHMS)


@pytest.mark.parametrize("name", ALL_ALGORITHMS)
@given(
    kind=st.sampled_from(list(Collective)),
    world=st.integers(2, 9),
    elems=st.sampled_from([1, 3, 5, 7, 11, 17, 23, 33]),
    op=st.sampled_from(list(ReduceOp)),
    dtype=st.sampled_from([np.int32, np.int64, np.float32, np.float64]),
    root=st.integers(0, 8),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_registered_algorithms_byte_exact_vs_reference(
    name, kind, world, elems, op, dtype, root, seed
):
    root %= world
    rng = np.random.default_rng(seed)
    inputs = _make_inputs(kind, world, elems, dtype, rng)
    outputs = _run(name, kind, inputs, op, root=root)
    expected = reference_outputs(
        kind, [a.copy() for a in inputs], op=op, root=root
    )
    assert len(outputs) == world
    for rank, (out, want) in enumerate(zip(outputs, expected)):
        assert out.dtype == dtype
        np.testing.assert_array_equal(
            out.ravel(),
            want.ravel(),
            err_msg=f"{name} {kind} world={world} rank={rank}",
        )


@pytest.mark.parametrize("name", ALL_ALGORITHMS)
@given(
    world=st.integers(2, 9),
    size=st.integers(1, 33),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_all_reduce_sum_matches_numpy_floats(name, world, size, seed):
    # float path: associative-order differences stay within allclose
    rng = np.random.default_rng(seed)
    inputs = [rng.standard_normal(size) for _ in range(world)]
    outputs = _run(name, Collective.ALL_REDUCE, inputs, ReduceOp.SUM)
    expected = np.sum(inputs, axis=0)
    for out in outputs:
        assert np.allclose(out, expected)
