"""Every registered algorithm family is byte-correct vs a numpy reference.

The registry (:mod:`repro.core.algorithms`) is the extension point the
autotuner searches over; this suite pins down that each family's data
plane produces exactly what a single-node numpy reduction would, across
operators, dtypes, and world sizes — so any strategy the tuner installs
is *always correct*, only faster or slower.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.halving_doubling import (
    HalvingDoublingDataPlane,
    is_power_of_two,
)
from repro.collectives.ring import RingDataPlane, RingSchedule
from repro.collectives.tree import DoubleTreeDataPlane, double_binary_trees
from repro.collectives.types import ReduceOp, reduce_many
from repro.core.algorithms import registered_algorithms


def data_plane_for(name, world):
    """AllReduce data plane executing registry family ``name``.

    Mirrors the registry fallback: halving-doubling only specializes
    power-of-two worlds (otherwise the service runs the ring).
    """
    order = range(world)
    if name == "ring":
        return RingDataPlane(RingSchedule(tuple(order)))
    if name == "tree":
        return DoubleTreeDataPlane(double_binary_trees(order))
    if name == "halving_doubling":
        if not is_power_of_two(world):
            return RingDataPlane(RingSchedule(tuple(order)))
        return HalvingDoublingDataPlane(order)
    raise NotImplementedError(
        f"no reference data plane for registered algorithm {name!r}"
    )


def test_every_registered_algorithm_has_a_data_plane():
    names = registered_algorithms()
    assert {"ring", "tree", "halving_doubling"} <= set(names)
    for name in names:
        plane = data_plane_for(name, 8)
        assert hasattr(plane, "all_reduce")


@pytest.mark.parametrize("name", registered_algorithms())
@given(
    world=st.integers(2, 9),
    size=st.integers(1, 33),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_all_reduce_sum_matches_numpy(name, world, size, seed):
    rng = np.random.default_rng(seed)
    inputs = [rng.standard_normal(size) for _ in range(world)]
    outputs = data_plane_for(name, world).all_reduce(inputs)
    expected = np.sum(inputs, axis=0)
    assert len(outputs) == world
    for out in outputs:
        assert np.allclose(out, expected)


@pytest.mark.parametrize("name", registered_algorithms())
@given(
    world=st.sampled_from([2, 3, 4, 7, 8]),
    op=st.sampled_from(list(ReduceOp)),
    dtype=st.sampled_from([np.int32, np.int64, np.float64]),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=25, deadline=None)
def test_all_reduce_ops_dtypes_exact(name, world, op, dtype, seed):
    # small positive integers: every op (incl. PROD) is exact in every
    # dtype, so equality really is byte-for-byte
    rng = np.random.default_rng(seed)
    inputs = [
        rng.integers(1, 4, size=17).astype(dtype) for _ in range(world)
    ]
    outputs = data_plane_for(name, world).all_reduce(inputs, op)
    expected = reduce_many(op, inputs)
    for out in outputs:
        assert out.dtype == dtype
        np.testing.assert_array_equal(out, expected)
