"""Recursive halving-doubling: traffic model and butterfly data plane."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.halving_doubling import (
    HalvingDoublingDataPlane,
    halving_doubling_traffic,
    hd_steps,
    is_power_of_two,
)
from repro.collectives.types import ReduceOp


def test_is_power_of_two():
    assert [n for n in range(1, 17) if is_power_of_two(n)] == [1, 2, 4, 8, 16]


def test_hd_steps_is_two_log2():
    assert hd_steps(2) == 2
    assert hd_steps(4) == 4
    assert hd_steps(8) == 6


def test_hd_steps_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        hd_steps(6)


def test_traffic_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        halving_doubling_traffic(range(6), 100)


def test_traffic_total_is_bandwidth_optimal():
    # per-rank egress 2*S*(n-1)/n; n ranks -> total 2*S*(n-1)
    for n in (2, 4, 8, 16):
        traffic = halving_doubling_traffic(range(n), 128.0)
        assert sum(traffic.values()) == pytest.approx(2 * 128.0 * (n - 1))


def test_traffic_per_rank_egress_matches_ring():
    n = 8
    traffic = halving_doubling_traffic(range(n), 128.0)
    for rank in range(n):
        egress = sum(v for (s, _), v in traffic.items() if s == rank)
        assert egress == pytest.approx(2 * 128.0 * (n - 1) / n)


def test_traffic_pairs_are_butterfly_partners():
    traffic = halving_doubling_traffic(range(4), 64.0)
    # mask 2 pairs (0,2),(1,3); mask 1 pairs (0,1),(2,3) — each both ways
    assert set(traffic) == {
        (0, 2), (2, 0), (1, 3), (3, 1), (0, 1), (1, 0), (2, 3), (3, 2),
    }
    # the first halving step moves half the vector across the bisection
    assert traffic[(0, 2)] == pytest.approx(2 * 64.0 * 2 / 4)
    assert traffic[(0, 1)] == pytest.approx(2 * 64.0 * 1 / 4)


def test_traffic_respects_position_order():
    # permuting positions permutes which *ranks* are bisection partners
    traffic = halving_doubling_traffic([3, 1, 0, 2], 64.0)
    assert (3, 0) in traffic and (1, 2) in traffic


def test_data_plane_validation():
    with pytest.raises(ValueError):
        HalvingDoublingDataPlane(range(6))
    with pytest.raises(ValueError):
        HalvingDoublingDataPlane((0, 0, 1, 1))
    plane = HalvingDoublingDataPlane(range(4))
    with pytest.raises(ValueError):
        plane.all_reduce([np.zeros(4)])
    with pytest.raises(ValueError):
        plane.all_reduce([np.zeros(4), np.zeros(4), np.zeros(4), np.zeros(5)])


@given(
    world_exp=st.integers(1, 4),
    size=st.integers(1, 40),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_all_reduce_matches_numpy_sum(world_exp, size, seed):
    world = 2**world_exp
    rng = np.random.default_rng(seed)
    inputs = [rng.standard_normal(size) for _ in range(world)]
    outputs = HalvingDoublingDataPlane(range(world)).all_reduce(inputs)
    expected = np.sum(inputs, axis=0)
    assert len(outputs) == world
    for out in outputs:
        assert np.allclose(out, expected)


@pytest.mark.parametrize("op", list(ReduceOp))
@pytest.mark.parametrize("dtype", [np.int64, np.float64])
def test_all_reduce_ops_and_dtypes(op, dtype):
    world = 8
    rng = np.random.default_rng(7)
    inputs = [rng.integers(1, 5, size=13).astype(dtype) for _ in range(world)]
    outputs = HalvingDoublingDataPlane(range(world)).all_reduce(inputs, op)
    expected = inputs[0].copy()
    for arr in inputs[1:]:
        expected = op.combine(expected, arr)
    for out in outputs:
        assert out.dtype == dtype
        np.testing.assert_array_equal(out, expected)


def test_all_reduce_over_permuted_order():
    world = 4
    rng = np.random.default_rng(3)
    inputs = [rng.standard_normal((3, 5)) for _ in range(world)]
    outputs = HalvingDoublingDataPlane([2, 0, 3, 1]).all_reduce(inputs)
    expected = np.sum(inputs, axis=0)
    for out in outputs:
        assert out.shape == (3, 5)
        assert np.allclose(out, expected)


def test_edge_bytes_match_traffic_model():
    world = 4
    plane = HalvingDoublingDataPlane(range(world))
    inputs = [np.zeros(32, dtype=np.float64) for _ in range(world)]
    plane.all_reduce(inputs)
    predicted = halving_doubling_traffic(range(world), inputs[0].nbytes)
    assert plane.edge_bytes == {k: int(v) for k, v in predicted.items()}


def test_edge_bytes_match_traffic_model_uneven_size():
    # 13 elements over 4 ranks: chunk_bounds blocks are uneven, but the
    # total moved still matches the closed form to within block rounding
    world = 4
    plane = HalvingDoublingDataPlane(range(world))
    inputs = [np.zeros(13, dtype=np.float64) for _ in range(world)]
    plane.all_reduce(inputs)
    predicted = halving_doubling_traffic(range(world), inputs[0].nbytes)
    total = sum(plane.edge_bytes.values())
    assert total == pytest.approx(sum(predicted.values()), rel=0.25)
