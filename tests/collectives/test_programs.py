"""Flow-program cache: LRU behavior and launch-path reuse."""

import pytest

from repro.collectives.programs import FlowProgramCache
from repro.collectives.ring import RingSchedule
from repro.collectives.types import Collective


def test_compiles_once_per_key():
    cache = FlowProgramCache()
    calls = []

    def compile():
        calls.append(1)
        return ("program",)

    first = cache.get(("k",), compile)
    second = cache.get(("k",), compile)
    assert first is second
    assert len(calls) == 1
    assert cache.stats() == {"size": 1, "hits": 1, "misses": 1, "evictions": 0}


def test_distinct_keys_compile_separately():
    cache = FlowProgramCache()
    a = cache.get(("ring", 4), lambda: ("a",))
    b = cache.get(("ring", 8), lambda: ("b",))
    assert a == ("a",) and b == ("b",)
    assert cache.misses == 2


def test_lru_eviction_drops_oldest():
    cache = FlowProgramCache(maxsize=2)
    cache.get("a", lambda: 1)
    cache.get("b", lambda: 2)
    cache.get("a", lambda: 1)  # refresh a; b is now oldest
    cache.get("c", lambda: 3)  # evicts b
    assert cache.evictions == 1
    assert cache.get("a", lambda: 99) == 1  # still cached
    assert cache.get("b", lambda: 42) == 42  # recompiled
    assert len(cache) == 2


def test_cached_none_is_a_hit():
    cache = FlowProgramCache()
    cache.get("k", lambda: None)
    assert cache.get("k", lambda: "recompiled") is None
    assert cache.hits == 1


def test_clear_resets_entries_but_not_counters():
    cache = FlowProgramCache()
    cache.get("k", lambda: 1)
    cache.clear()
    assert len(cache) == 0
    assert cache.misses == 1


def test_rejects_nonpositive_maxsize():
    with pytest.raises(ValueError):
        FlowProgramCache(maxsize=0)


def test_launcher_reuses_ring_program(monkeypatch):
    """Two identical ring launches compile the transfer program once."""
    from repro.cluster.specs import testbed_cluster
    from repro.collectives.cost_model import LatencyModel
    from repro.netsim.routing import EcmpSelector
    from repro.transport.connections import ConnectionTable
    from repro.transport.launcher import FlowTransport

    cluster = testbed_cluster()
    gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    schedule = RingSchedule(order=tuple(range(4)))
    table = ConnectionTable(cluster, "test")
    selector = EcmpSelector(seed=0)
    for pos in range(4):
        src, dst = gpus[pos], gpus[(pos + 1) % 4]
        table.establish_edge(src, dst, 0, selector)
    transport = FlowTransport(
        cluster, LatencyModel(base=0.0, per_step=0.0, datapath=0.0)
    )

    def launch():
        return transport.launch_ring(
            kind=Collective.ALL_REDUCE,
            out_bytes=1024,
            schedule=schedule,
            gpus_by_rank=gpus,
            table=table,
            channels=1,
        )

    launch()
    cluster.sim.run()
    assert transport.program_cache.stats()["misses"] == 1
    launch()
    cluster.sim.run()
    stats = transport.program_cache.stats()
    assert stats["misses"] == 1
    assert stats["hits"] == 1
    # A different size is a different program.
    transport.launch_ring(
        kind=Collective.ALL_REDUCE,
        out_bytes=2048,
        schedule=schedule,
        gpus_by_rank=gpus,
        table=table,
        channels=1,
    )
    cluster.sim.run()
    assert transport.program_cache.stats()["misses"] == 2
