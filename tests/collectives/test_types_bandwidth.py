"""Collective types, size conventions, and bandwidth accounting."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.collectives.bandwidth import (
    algorithm_bandwidth,
    bus_bandwidth,
    busbw_factor,
)
from repro.collectives.chunking import chunk_bounds, chunk_for_step, ring_neighbors
from repro.collectives.types import (
    Collective,
    ReduceOp,
    input_bytes,
    reduce_many,
    validate_world,
)


# -- types ---------------------------------------------------------------------
def test_reduce_ops():
    a, b = np.array([1.0, 5.0]), np.array([3.0, 2.0])
    assert np.allclose(ReduceOp.SUM.combine(a, b), [4.0, 7.0])
    assert np.allclose(ReduceOp.PROD.combine(a, b), [3.0, 10.0])
    assert np.allclose(ReduceOp.MAX.combine(a, b), [3.0, 5.0])
    assert np.allclose(ReduceOp.MIN.combine(a, b), [1.0, 2.0])


def test_reduce_many():
    arrays = [np.full(3, float(i)) for i in range(1, 5)]
    assert np.allclose(reduce_many(ReduceOp.SUM, arrays), 10.0)
    assert np.allclose(reduce_many(ReduceOp.MAX, arrays), 4.0)
    with pytest.raises(ValueError):
        reduce_many(ReduceOp.SUM, [])


def test_input_bytes_follows_output_convention():
    # "512 KB AllGather corresponds to 128 KB input per GPU" (4 GPUs).
    assert input_bytes(Collective.ALL_GATHER, 512 * 1024, 4) == 128 * 1024
    assert input_bytes(Collective.ALL_REDUCE, 1000, 4) == 1000
    assert input_bytes(Collective.REDUCE_SCATTER, 250, 4) == 1000


def test_validate_world():
    validate_world(2)
    with pytest.raises(ValueError):
        validate_world(1)


# -- chunking --------------------------------------------------------------------
def test_chunk_bounds_example():
    assert chunk_bounds(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]


@given(st.integers(0, 10_000), st.integers(1, 64))
def test_chunk_bounds_properties(total, parts):
    bounds = chunk_bounds(total, parts)
    assert len(bounds) == parts
    assert bounds[0][0] == 0 and bounds[-1][1] == total
    sizes = [hi - lo for lo, hi in bounds]
    assert sum(sizes) == total
    assert max(sizes) - min(sizes) <= 1
    for (l0, h0), (l1, h1) in zip(bounds, bounds[1:]):
        assert h0 == l1


def test_chunk_bounds_validation():
    with pytest.raises(ValueError):
        chunk_bounds(10, 0)
    with pytest.raises(ValueError):
        chunk_bounds(-1, 2)


def test_chunk_for_step_wraps():
    assert chunk_for_step(0, 1, 4) == 3
    assert chunk_for_step(2, 1, 4) == 1


def test_ring_neighbors():
    assert ring_neighbors(0, 4) == (3, 1)
    assert ring_neighbors(3, 4) == (2, 0)


# -- bandwidth accounting ----------------------------------------------------------
def test_busbw_factors():
    assert busbw_factor(Collective.ALL_REDUCE, 4) == pytest.approx(1.5)
    assert busbw_factor(Collective.ALL_GATHER, 4) == pytest.approx(0.75)
    assert busbw_factor(Collective.REDUCE_SCATTER, 8) == pytest.approx(7 / 8)
    assert busbw_factor(Collective.BROADCAST, 4) == 1.0


def test_algorithm_bandwidth():
    assert algorithm_bandwidth(1e9, 0.5) == pytest.approx(2e9)
    with pytest.raises(ValueError):
        algorithm_bandwidth(1e9, 0.0)


def test_bus_bandwidth_composes():
    assert bus_bandwidth(Collective.ALL_REDUCE, 1e9, 1.0, 2) == pytest.approx(1e9)


@given(st.integers(2, 64))
def test_allreduce_factor_approaches_two(world):
    f = busbw_factor(Collective.ALL_REDUCE, world)
    assert 1.0 <= f < 2.0
