"""Ring schedules, data plane correctness, and traffic-model agreement."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.ring import (
    RingDataPlane,
    RingSchedule,
    edge_traffic,
    identity_ring,
    steps_for,
)
from repro.collectives.types import Collective, ReduceOp


# -- schedules ----------------------------------------------------------------
def test_schedule_requires_permutation():
    with pytest.raises(ValueError):
        RingSchedule((0, 0, 1))
    with pytest.raises(ValueError):
        RingSchedule((0, 2))


def test_schedule_requires_two_ranks():
    with pytest.raises(ValueError):
        RingSchedule((0,))


def test_edges_wrap_around():
    sched = RingSchedule((2, 0, 1))
    assert sched.edges() == [(2, 0), (0, 1), (1, 2)]


def test_position_of():
    sched = RingSchedule((2, 0, 1))
    assert sched.position_of(0) == 1
    assert sched.position_of(2) == 0


def test_reversed_schedule():
    sched = RingSchedule((0, 1, 2, 3))
    assert sched.reversed().order == (3, 2, 1, 0)


def test_identity_ring():
    assert identity_ring(4).order == (0, 1, 2, 3)


# -- traffic model -------------------------------------------------------------
def test_allreduce_edge_traffic():
    per_edge = edge_traffic(Collective.ALL_REDUCE, 1000, 4)
    assert per_edge == [1500.0] * 4  # 2*(n-1)/n * S


def test_allgather_edge_traffic():
    per_edge = edge_traffic(Collective.ALL_GATHER, 1000, 4)
    assert per_edge == [750.0] * 4


def test_reduce_scatter_edge_traffic():
    per_edge = edge_traffic(Collective.REDUCE_SCATTER, 250, 4)
    assert per_edge == [750.0] * 4  # (n-1) * per-rank output


def test_broadcast_skips_edge_into_root():
    per_edge = edge_traffic(Collective.BROADCAST, 100, 4, root_position=1)
    assert per_edge == [0.0, 100.0, 100.0, 100.0]


def test_reduce_skips_edge_out_of_root():
    per_edge = edge_traffic(Collective.REDUCE, 100, 4, root_position=1)
    assert per_edge == [100.0, 0.0, 100.0, 100.0]


def test_steps():
    assert steps_for(Collective.ALL_REDUCE, 4) == 6
    assert steps_for(Collective.ALL_GATHER, 4) == 3
    assert steps_for(Collective.BROADCAST, 4) == 3


# -- data plane -----------------------------------------------------------------
@st.composite
def world_and_order(draw):
    world = draw(st.integers(2, 6))
    order = draw(st.permutations(range(world)))
    return world, tuple(order)


@given(world_and_order(), st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_allreduce_matches_numpy_sum(wo, seed):
    world, order = wo
    rng = np.random.default_rng(seed)
    inputs = [rng.standard_normal(24) for _ in range(world)]
    outputs = RingDataPlane(RingSchedule(order)).all_reduce(inputs)
    expected = np.sum(inputs, axis=0)
    for out in outputs:
        assert np.allclose(out, expected)


@given(world_and_order(), st.sampled_from(list(ReduceOp)))
@settings(max_examples=40, deadline=None)
def test_allreduce_supports_all_ops(wo, op):
    world, order = wo
    rng = np.random.default_rng(7)
    inputs = [rng.uniform(0.5, 2.0, size=12) for _ in range(world)]
    outputs = RingDataPlane(RingSchedule(order)).all_reduce(inputs, op)
    from repro.collectives.types import reduce_many

    expected = reduce_many(op, inputs)
    for out in outputs:
        assert np.allclose(out, expected)


@given(world_and_order())
@settings(max_examples=40, deadline=None)
def test_allgather_concatenates_by_rank(wo):
    world, order = wo
    inputs = [np.full(5, float(r)) for r in range(world)]
    outputs = RingDataPlane(RingSchedule(order)).all_gather(inputs)
    expected = np.concatenate(inputs)
    for out in outputs:
        assert np.allclose(out, expected)


@given(world_and_order())
@settings(max_examples=40, deadline=None)
def test_reduce_scatter_gives_each_rank_its_block(wo):
    world, order = wo
    rng = np.random.default_rng(3)
    inputs = [rng.standard_normal(world * 4) for _ in range(world)]
    outputs = RingDataPlane(RingSchedule(order)).reduce_scatter(inputs)
    total = np.sum(inputs, axis=0)
    for rank in range(world):
        assert np.allclose(outputs[rank], total[rank * 4 : (rank + 1) * 4])


@given(world_and_order(), st.integers(0, 5))
@settings(max_examples=40, deadline=None)
def test_broadcast_distributes_root(wo, root_seed):
    world, order = wo
    root = root_seed % world
    inputs = [np.full(4, float(r + 1)) for r in range(world)]
    outputs = RingDataPlane(RingSchedule(order)).broadcast(inputs, root=root)
    for out in outputs:
        assert np.allclose(out, inputs[root])


@given(world_and_order(), st.integers(0, 5))
@settings(max_examples=40, deadline=None)
def test_reduce_collects_at_root(wo, root_seed):
    world, order = wo
    root = root_seed % world
    rng = np.random.default_rng(11)
    inputs = [rng.standard_normal(6) for _ in range(world)]
    outputs = RingDataPlane(RingSchedule(order)).reduce(inputs, root=root)
    assert np.allclose(outputs[root], np.sum(inputs, axis=0))


# -- cross-check: data plane bytes == traffic model ------------------------------
@pytest.mark.parametrize(
    "kind",
    [Collective.ALL_REDUCE, Collective.ALL_GATHER, Collective.REDUCE_SCATTER],
)
@pytest.mark.parametrize("world", [2, 3, 4, 5])
def test_data_plane_bytes_match_traffic_model(kind, world):
    """The fluid model's per-edge byte counts are exactly what the chunked
    algorithm moves (sum over edges; chunk rounding redistributes within
    the ring but preserves the total)."""
    rng = np.random.default_rng(0)
    if kind is Collective.ALL_GATHER:
        inputs = [rng.standard_normal(6).astype(np.float64) for _ in range(world)]
        out_bytes = inputs[0].nbytes * world
    elif kind is Collective.REDUCE_SCATTER:
        inputs = [rng.standard_normal(world * 6) for _ in range(world)]
        out_bytes = inputs[0].nbytes // world
    else:
        inputs = [rng.standard_normal(4 * world) for _ in range(world)]
        out_bytes = inputs[0].nbytes
    plane = RingDataPlane(identity_ring(world))
    plane.run(kind, inputs)
    predicted = edge_traffic(kind, out_bytes, world)
    assert sum(plane.edge_bytes) == pytest.approx(sum(predicted))


def test_data_plane_requires_one_input_per_rank():
    plane = RingDataPlane(identity_ring(3))
    with pytest.raises(ValueError):
        plane.all_reduce([np.zeros(4)])


def test_data_plane_requires_uniform_shapes():
    plane = RingDataPlane(identity_ring(2))
    with pytest.raises(ValueError):
        plane.all_reduce([np.zeros(4), np.zeros(5)])


def test_reduce_scatter_requires_divisible_size():
    plane = RingDataPlane(identity_ring(3))
    with pytest.raises(ValueError):
        plane.reduce_scatter([np.zeros(4) for _ in range(3)])
