"""Tree schedule and double-binary-tree data plane tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives.tree import (
    DoubleTreeDataPlane,
    TreeDataPlane,
    TreeSchedule,
    binary_tree,
    double_binary_trees,
    double_tree_allreduce_traffic,
    tree_allreduce_traffic,
    tree_steps,
)


def test_tree_schedule_validation():
    with pytest.raises(ValueError):
        TreeSchedule((0, -1))  # rank 0's parent is itself
    with pytest.raises(ValueError):
        TreeSchedule((-1, -1))  # two roots
    with pytest.raises(ValueError):
        TreeSchedule((1, 0))  # cycle, no root


def test_binary_tree_layout():
    tree = binary_tree([0, 1, 2, 3, 4])
    assert tree.root == 0
    assert set(tree.children(0)) == {1, 2}
    assert set(tree.children(1)) == {3, 4}
    assert tree.depth() == 2


def test_binary_tree_over_permuted_order():
    tree = binary_tree([3, 1, 0, 2])
    assert tree.root == 3
    assert set(tree.children(3)) == {1, 0}
    assert tree.children(1) == [2]


def test_edges_are_child_parent_pairs():
    tree = binary_tree([0, 1, 2])
    assert sorted(tree.edges()) == [(1, 0), (2, 0)]


def test_double_trees_have_different_roots():
    t1, t2 = double_binary_trees(range(6))
    assert t1.root != t2.root


def test_tree_steps():
    tree = binary_tree(range(8))
    assert tree_steps(tree) == 2 * tree.depth()


def test_tree_allreduce_traffic_counts_up_and_down():
    tree = binary_tree([0, 1, 2])
    traffic = tree_allreduce_traffic(tree, 100)
    assert traffic[(1, 0)] == 100 and traffic[(0, 1)] == 100
    assert traffic[(2, 0)] == 100 and traffic[(0, 2)] == 100
    assert sum(traffic.values()) == 4 * 100


def test_double_tree_traffic_splits_in_half():
    trees = double_binary_trees(range(4))
    traffic = double_tree_allreduce_traffic(trees, 100)
    # each tree moves S/2 per edge both ways over 3 edges
    assert sum(traffic.values()) == pytest.approx(2 * 3 * 100 / 2 * 2)


@given(st.integers(2, 9), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_tree_allreduce_correctness(world, seed):
    rng = np.random.default_rng(seed)
    inputs = [rng.standard_normal(10) for _ in range(world)]
    tree = binary_tree(range(world))
    outputs = TreeDataPlane(tree).all_reduce(inputs)
    expected = np.sum(inputs, axis=0)
    assert len(outputs) == world
    for out in outputs:
        assert np.allclose(out, expected)


@given(st.integers(2, 9))
@settings(max_examples=30, deadline=None)
def test_double_tree_allreduce_correctness(world):
    rng = np.random.default_rng(world)
    inputs = [rng.standard_normal(12) for _ in range(world)]
    trees = double_binary_trees(range(world))
    outputs = DoubleTreeDataPlane(trees).all_reduce(inputs)
    expected = np.sum(inputs, axis=0)
    for out in outputs:
        assert np.allclose(out, expected)


def test_tree_data_plane_edge_bytes():
    tree = binary_tree(range(3))
    plane = TreeDataPlane(tree)
    inputs = [np.zeros(25, dtype=np.float64) for _ in range(3)]
    plane.all_reduce(inputs)
    predicted = tree_allreduce_traffic(tree, inputs[0].nbytes)
    assert plane.edge_bytes == {k: int(v) for k, v in predicted.items()}


def test_tree_data_plane_input_count_checked():
    plane = TreeDataPlane(binary_tree(range(3)))
    with pytest.raises(ValueError):
        plane.all_reduce([np.zeros(4)])
