"""Large-scale integration: MCCS managing churning tenants on 768 GPUs."""

import pytest

from repro.cluster.placement import ClusterAllocator
from repro.cluster.specs import large_cluster
from repro.core.controller import CentralManager
from repro.core.deployment import MccsDeployment
from repro.netsim.units import MB
from repro.workloads.arrivals import poisson_arrivals


@pytest.mark.slow
def test_job_churn_with_policies_on_large_cluster():
    """Jobs arrive, run a few collectives under locality rings + FFA,
    depart; the controller reschedules on every join/exit; nothing leaks
    and all collectives complete consistently."""
    cluster = large_cluster()
    deployment = MccsDeployment(cluster, strict_consistency=True)
    manager = CentralManager(deployment)
    allocator = ClusterAllocator(cluster, seed=5)
    jobs = poisson_arrivals(12, seed=5, sizes=(16, 32))
    finished = []

    def launch(spec):
        gpus = allocator.place_compact(spec.job_id, spec.num_gpus)
        state = manager.admit(spec.job_id, gpus, channels=4)
        manager.apply_flow_policy("ffa")
        client = deployment.connect(spec.job_id)
        handle = client.adopt_communicator(state.comm_id)
        remaining = {"n": 3}

        def next_op(inst=None, now=None):
            if remaining["n"] == 0:
                client.destroy_communicator(handle)
                allocator.release(spec.job_id)
                manager.apply_flow_policy("ffa")  # reschedule on exit
                finished.append(spec.job_id)
                return
            remaining["n"] -= 1
            client.all_reduce(handle, 64 * MB, on_complete=next_op)

        next_op()

    for spec in jobs:
        cluster.sim.schedule(spec.arrival_time, lambda spec=spec: launch(spec))
    deployment.run()
    assert sorted(finished) == sorted(j.job_id for j in jobs)
    assert deployment.communicators() == []
    assert allocator.free_count == cluster.num_gpus
    # every FFA pass stayed in the paper's ~1 ms planning regime
    ffa_reports = [r for r in manager.reports if r.policy == "ffa"]
    assert ffa_reports
    assert max(r.compute_seconds for r in ffa_reports) < 0.5


@pytest.mark.slow
def test_mid_churn_reconfigurations_stay_consistent():
    """Ring reconfigurations issued while many tenants are active never
    mix strategy versions (strict mode enforces it)."""
    cluster = large_cluster()
    deployment = MccsDeployment(cluster, strict_consistency=True)
    manager = CentralManager(deployment)
    allocator = ClusterAllocator(cluster, seed=9)
    handles = []
    for i in range(6):
        gpus = allocator.place_random(f"job{i}", 16)
        state = manager.admit(f"job{i}", gpus, channels=2)
        client = deployment.connect(f"job{i}")
        handles.append((state, client, client.adopt_communicator(state.comm_id)))
    ops = []
    for state, client, handle in handles:
        for _ in range(3):
            ops.append(client.all_reduce(handle, 32 * MB))
    # re-ring everyone mid-flight with staggered delivery
    for state, client, handle in handles:
        order = list(reversed(state.strategy.ring.order))
        deployment.reconfigure(
            state.comm_id,
            ring=order,
            delays=[0.0002 * (r % 5) for r in range(state.world)],
        )
    for state, client, handle in handles:
        ops.append(client.all_reduce(handle, 32 * MB))
    deployment.run()
    assert all(op.completed for op in ops)
    for state, _, _ in handles:
        assert state.inconsistent_collectives == 0
        assert state.strategy.version == 1
