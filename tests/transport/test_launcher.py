"""Flow launcher tests: collectives become flows with the right sizes."""

import pytest

from repro.cluster.specs import testbed_cluster
from repro.collectives.cost_model import LatencyModel, NCCL_LATENCY
from repro.collectives.ring import RingSchedule, identity_ring
from repro.collectives.tree import double_binary_trees
from repro.collectives.types import Collective
from repro.netsim.routing import EcmpSelector
from repro.transport.connections import ConnectionTable
from repro.transport.launcher import FlowTransport

ZERO_LATENCY = LatencyModel(base=0.0, per_step=0.0, datapath=0.0)


@pytest.fixture
def env():
    cl = testbed_cluster()
    gpus = [cl.hosts[h].gpus[0] for h in range(4)]
    table = ConnectionTable(cl, "t")
    sched = identity_ring(4)
    edges = [(gpus[a], gpus[b]) for a, b in sched.edges()]
    table.establish(edges, channels=1, selector=EcmpSelector())
    return cl, gpus, table, sched


def test_ring_launch_creates_one_flow_per_edge(env):
    cl, gpus, table, sched = env
    transport = FlowTransport(cl, ZERO_LATENCY)
    handle = transport.launch_ring(
        kind=Collective.ALL_REDUCE,
        out_bytes=1000,
        schedule=sched,
        gpus_by_rank=gpus,
        table=table,
        channels=1,
    )
    cl.sim.run(until=0.0)
    assert len(handle.flows) == 4
    for flow in handle.flows:
        assert flow.size == pytest.approx(2 * 3 / 4 * 1000)


def test_completion_fires_when_slowest_flow_finishes(env):
    cl, gpus, table, sched = env
    transport = FlowTransport(cl, ZERO_LATENCY)
    seen = []
    handle = transport.launch_ring(
        kind=Collective.ALL_GATHER,
        out_bytes=8 * 1024**2,
        schedule=sched,
        gpus_by_rank=gpus,
        table=table,
        channels=1,
        on_complete=lambda h, t: seen.append(t),
    )
    cl.sim.run()
    assert handle.completed
    assert seen == [handle.end_time]
    assert handle.end_time == max(f.end_time for f in handle.flows)


def test_fixed_latency_delays_injection(env):
    cl, gpus, table, sched = env
    latency = LatencyModel(base=1e-3, per_step=0.0, datapath=0.0)
    transport = FlowTransport(cl, latency)
    handle = transport.launch_ring(
        kind=Collective.ALL_REDUCE,
        out_bytes=1000,
        schedule=sched,
        gpus_by_rank=gpus,
        table=table,
        channels=1,
    )
    cl.sim.run()
    assert handle.start_time == pytest.approx(1e-3)
    assert handle.duration() >= 1e-3


def test_broadcast_skips_root_edge(env):
    cl, gpus, table, sched = env
    transport = FlowTransport(cl, ZERO_LATENCY)
    handle = transport.launch_ring(
        kind=Collective.BROADCAST,
        out_bytes=1000,
        schedule=sched,
        gpus_by_rank=gpus,
        table=table,
        channels=1,
        root=0,
    )
    cl.sim.run()
    assert len(handle.flows) == 3


def test_channels_split_bytes(env):
    cl, gpus, table, sched = env
    edges = [(gpus[a], gpus[b]) for a, b in sched.edges()]
    table2 = ConnectionTable(cl, "t2")
    table2.establish(edges, channels=2, selector=EcmpSelector())
    transport = FlowTransport(cl, ZERO_LATENCY)
    handle = transport.launch_ring(
        kind=Collective.ALL_REDUCE,
        out_bytes=1000,
        schedule=sched,
        gpus_by_rank=gpus,
        table=table2,
        channels=2,
    )
    cl.sim.run()
    assert len(handle.flows) == 8
    # per channel: 4 edges x 2*(3/4)*500 bytes -> 3000; two channels -> 6000
    assert sum(f.size for f in handle.flows) == pytest.approx(6000.0)


def test_double_tree_launch(env):
    cl, gpus, table, sched = env
    trees = double_binary_trees(range(4))
    tree_table = ConnectionTable(cl, "tree")
    edges = []
    for tree in trees:
        for child, parent in tree.edges():
            edges.append((gpus[child], gpus[parent]))
            edges.append((gpus[parent], gpus[child]))
    tree_table.establish(edges, channels=1, selector=EcmpSelector())
    transport = FlowTransport(cl, ZERO_LATENCY)
    handle = transport.launch_double_tree(
        out_bytes=1000,
        trees=trees,
        gpus_by_rank=gpus,
        table=tree_table,
    )
    cl.sim.run()
    assert handle.completed
    assert sum(f.size for f in handle.flows) == pytest.approx(2 * 1000 * 3)


def test_invalid_channels_rejected(env):
    cl, gpus, table, sched = env
    transport = FlowTransport(cl, ZERO_LATENCY)
    with pytest.raises(ValueError):
        transport.launch_ring(
            kind=Collective.ALL_REDUCE,
            out_bytes=1,
            schedule=sched,
            gpus_by_rank=gpus,
            table=table,
            channels=0,
        )


def test_gate_hook_sees_every_flow(env):
    cl, gpus, table, sched = env
    seen = []

    class Gate:
        def register(self, flow):
            seen.append(flow)

    transport = FlowTransport(cl, ZERO_LATENCY, gate=Gate())
    transport.launch_ring(
        kind=Collective.ALL_REDUCE,
        out_bytes=1000,
        schedule=sched,
        gpus_by_rank=gpus,
        table=table,
        channels=1,
    )
    cl.sim.run()
    assert len(seen) == 4
