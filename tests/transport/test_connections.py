"""Connection table tests (shared NCCL/MCCS transport substrate)."""

import pytest

from repro.cluster.specs import testbed_cluster
from repro.netsim.routing import EcmpSelector, RouteIdSelector, RouteMap
from repro.transport.connections import ConnectionTable, connection_key


@pytest.fixture
def cl():
    return testbed_cluster()


def test_intra_host_connection_uses_local_link(cl):
    table = ConnectionTable(cl, "t")
    conn = table.establish_edge(
        cl.hosts[0].gpus[0], cl.hosts[0].gpus[1], 0, EcmpSelector()
    )
    assert conn.intra_host
    assert conn.path == ["h0.local"]


def test_inter_host_connection_has_fabric_path(cl):
    table = ConnectionTable(cl, "t")
    conn = table.establish_edge(
        cl.hosts[0].gpus[0], cl.hosts[2].gpus[0], 0, EcmpSelector(seed=1)
    )
    assert not conn.intra_host
    assert conn.path[0].startswith("h0.nic0")
    assert conn.path[-1].endswith("h2.nic0")


def test_channel_selects_nic_pair(cl):
    table = ConnectionTable(cl, "t")
    c0 = table.establish_edge(cl.hosts[0].gpus[0], cl.hosts[2].gpus[0], 0, EcmpSelector())
    c1 = table.establish_edge(cl.hosts[0].gpus[0], cl.hosts[2].gpus[0], 1, EcmpSelector())
    assert "h0.nic0" in c0.path[0]
    assert "h0.nic1" in c1.path[0]


def test_path_pinned_for_connection_lifetime(cl):
    """The ECMP hash decided at establishment sticks (same object back)."""
    table = ConnectionTable(cl, "t")
    first = table.establish_edge(cl.hosts[0].gpus[0], cl.hosts[2].gpus[0], 0, EcmpSelector())
    again = table.establish_edge(cl.hosts[0].gpus[0], cl.hosts[2].gpus[0], 0, EcmpSelector(seed=999))
    assert first is again


def test_establish_many(cl):
    table = ConnectionTable(cl, "t")
    edges = [
        (cl.hosts[0].gpus[0], cl.hosts[1].gpus[0]),
        (cl.hosts[1].gpus[0], cl.hosts[0].gpus[0]),
    ]
    table.establish(edges, channels=2, selector=EcmpSelector())
    assert len(table) == 4
    assert len(table.inter_host_connections()) == 4


def test_lookup_missing_connection_raises(cl):
    table = ConnectionTable(cl, "t")
    with pytest.raises(KeyError):
        table.connection(cl.hosts[0].gpus[0], cl.hosts[1].gpus[0], 0)


def test_teardown_closes_everything(cl):
    table = ConnectionTable(cl, "t")
    table.establish_edge(cl.hosts[0].gpus[0], cl.hosts[1].gpus[0], 0, EcmpSelector())
    table.teardown()
    assert len(table) == 0
    assert table.torn_down
    with pytest.raises(RuntimeError):
        table.establish_edge(cl.hosts[0].gpus[0], cl.hosts[1].gpus[0], 0, EcmpSelector())


def test_connection_key_uses_channel_nics(cl):
    key = connection_key(cl, cl.hosts[0].gpus[1], cl.hosts[2].gpus[0], 1, "job")
    assert key == ("h0.nic0", "h2.nic1", "job/ch1")


def test_route_map_controls_connection_path(cl):
    rm = RouteMap()
    key = connection_key(cl, cl.hosts[0].gpus[0], cl.hosts[2].gpus[0], 0, "j")
    rm.assign(key, 1)
    table = ConnectionTable(cl, "j")
    conn = table.establish_edge(
        cl.hosts[0].gpus[0], cl.hosts[2].gpus[0], 0, RouteIdSelector(rm)
    )
    assert "spine1" in " ".join(conn.path)
