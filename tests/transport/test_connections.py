"""Connection table tests (shared NCCL/MCCS transport substrate)."""

import pytest

from repro.cluster.specs import testbed_cluster
from repro.netsim.routing import EcmpSelector, RouteIdSelector, RouteMap
from repro.transport.connections import ConnectionTable, connection_key


@pytest.fixture
def cl():
    return testbed_cluster()


def test_intra_host_connection_uses_local_link(cl):
    table = ConnectionTable(cl, "t")
    conn = table.establish_edge(
        cl.hosts[0].gpus[0], cl.hosts[0].gpus[1], 0, EcmpSelector()
    )
    assert conn.intra_host
    assert conn.path == ["h0.local"]


def test_inter_host_connection_has_fabric_path(cl):
    table = ConnectionTable(cl, "t")
    conn = table.establish_edge(
        cl.hosts[0].gpus[0], cl.hosts[2].gpus[0], 0, EcmpSelector(seed=1)
    )
    assert not conn.intra_host
    assert conn.path[0].startswith("h0.nic0")
    assert conn.path[-1].endswith("h2.nic0")


def test_channel_selects_nic_pair(cl):
    table = ConnectionTable(cl, "t")
    c0 = table.establish_edge(cl.hosts[0].gpus[0], cl.hosts[2].gpus[0], 0, EcmpSelector())
    c1 = table.establish_edge(cl.hosts[0].gpus[0], cl.hosts[2].gpus[0], 1, EcmpSelector())
    assert "h0.nic0" in c0.path[0]
    assert "h0.nic1" in c1.path[0]


def test_path_pinned_for_connection_lifetime(cl):
    """The ECMP hash decided at establishment sticks (same object back)."""
    table = ConnectionTable(cl, "t")
    first = table.establish_edge(cl.hosts[0].gpus[0], cl.hosts[2].gpus[0], 0, EcmpSelector())
    again = table.establish_edge(cl.hosts[0].gpus[0], cl.hosts[2].gpus[0], 0, EcmpSelector(seed=999))
    assert first is again


def test_establish_many(cl):
    table = ConnectionTable(cl, "t")
    edges = [
        (cl.hosts[0].gpus[0], cl.hosts[1].gpus[0]),
        (cl.hosts[1].gpus[0], cl.hosts[0].gpus[0]),
    ]
    table.establish(edges, channels=2, selector=EcmpSelector())
    assert len(table) == 4
    assert len(table.inter_host_connections()) == 4


def test_lookup_missing_connection_raises(cl):
    table = ConnectionTable(cl, "t")
    with pytest.raises(KeyError):
        table.connection(cl.hosts[0].gpus[0], cl.hosts[1].gpus[0], 0)


def test_teardown_closes_everything(cl):
    table = ConnectionTable(cl, "t")
    table.establish_edge(cl.hosts[0].gpus[0], cl.hosts[1].gpus[0], 0, EcmpSelector())
    table.teardown()
    assert len(table) == 0
    assert table.torn_down
    with pytest.raises(RuntimeError):
        table.establish_edge(cl.hosts[0].gpus[0], cl.hosts[1].gpus[0], 0, EcmpSelector())


def test_connection_key_uses_channel_nics(cl):
    key = connection_key(cl, cl.hosts[0].gpus[1], cl.hosts[2].gpus[0], 1, "job")
    assert key == ("h0.nic0", "h2.nic1", "job/ch1")


def test_route_map_controls_connection_path(cl):
    rm = RouteMap()
    key = connection_key(cl, cl.hosts[0].gpus[0], cl.hosts[2].gpus[0], 0, "j")
    rm.assign(key, 1)
    table = ConnectionTable(cl, "j")
    conn = table.establish_edge(
        cl.hosts[0].gpus[0], cl.hosts[2].gpus[0], 0, RouteIdSelector(rm)
    )
    assert "spine1" in " ".join(conn.path)


# ----------------------------------------------------------------------
# routing-epoch pin invalidation (restored / resized links)
# ----------------------------------------------------------------------
def test_pins_reresolved_after_link_restore(cl):
    """A restored link widens the path set: cached pins must not survive."""
    table = ConnectionTable(cl, "t")
    cl.sim.fail_link("leaf0->spine0")
    conn = table.establish_edge(
        cl.hosts[0].gpus[0], cl.hosts[2].gpus[0], 0, EcmpSelector()
    )
    assert not any("spine0" in link for link in conn.path)
    cl.sim.restore_link("leaf0->spine0")
    again = table.establish_edge(
        cl.hosts[0].gpus[0], cl.hosts[2].gpus[0], 0, EcmpSelector()
    )
    # The pin was dropped and the path re-resolved over the full ECMP set.
    assert again is not conn
    cl.topology.validate_path(again.path)


def test_pins_reresolved_after_bandwidth_resize(cl):
    """set_link_bandwidth bumps the routing epoch and clears the pins."""
    table = ConnectionTable(cl, "t")
    conn = table.establish_edge(
        cl.hosts[0].gpus[0], cl.hosts[2].gpus[0], 0, EcmpSelector()
    )
    link = conn.path[1]  # a fabric link on the pinned path
    cl.sim.set_link_bandwidth(link, cl.topology.link(link).capacity * 2)
    again = table.establish_edge(
        cl.hosts[0].gpus[0], cl.hosts[2].gpus[0], 0, EcmpSelector()
    )
    assert again is not conn


def test_link_failure_alone_keeps_pins(cl):
    """Failure does not move the epoch — only restore/resize do."""
    table = ConnectionTable(cl, "t")
    conn = table.establish_edge(
        cl.hosts[0].gpus[0], cl.hosts[2].gpus[0], 0, EcmpSelector()
    )
    victim = next(l for l in ("leaf0->spine0", "leaf0->spine1") if l not in conn.path)
    cl.sim.fail_link(victim)
    again = table.establish_edge(
        cl.hosts[0].gpus[0], cl.hosts[2].gpus[0], 0, EcmpSelector()
    )
    assert again is conn
