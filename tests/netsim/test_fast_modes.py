"""Exactness and unit coverage of the datacenter-scale fast modes.

The macro-flow aggregation (:mod:`repro.netsim.macroflow`) and the
sharded solver (:mod:`repro.netsim.sharding`) are *exact* optimizations:
every rate and completion time they produce must be bit-identical to the
per-flow reference engine, not merely close.  The property test here
drives all four engine configurations (reference, macro, sharded,
macro+sharded) through the same randomized add / batch-add / cancel /
gate / link-fail churn on a two-pod Clos fabric and compares the full
per-flow outcome — start, end, failure — with ``==`` on floats.

The unit tests pin the mechanics the property test exercises blindly:
domain merge/dissolve accounting, the solo-domain fast path, macro group
lifecycle, the batched ``add_flows`` surface, and the multi-pod fabric /
profile-harness helpers the scale benchmark builds on.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.engine import FlowSimulator
from repro.netsim.fabric import MultiPodSpec, multi_pod_clos
from repro.netsim.profile import (
    connection_path,
    prepare_scale_workload,
    run_scale_workload,
    scale_spec,
    synthetic_connections,
)

#: Tiny two-pod fabric for churn tests: 2 pods x 2 leaves x 2 hosts x 2
#: NICs (16 GPUs) — big enough for merges across the core tier, small
#: enough to rebuild per drive (link failures mutate the topology).
TINY_SPEC = MultiPodSpec(
    pods=2,
    spines_per_pod=2,
    leaves_per_pod=2,
    hosts_per_leaf=2,
    nics_per_host=2,
    core_switches=2,
)

#: The three fast configurations, each checked against the reference.
FAST_MODES = [
    pytest.param(True, False, id="macro"),
    pytest.param(False, True, id="sharded"),
    pytest.param(True, True, id="macro+sharded"),
]


def _connection_pool(count=12, inter_pod_fraction=0.4, seed=7):
    """Deterministic (path, job) templates spanning both pods."""
    rng = random.Random(seed)
    return list(
        synthetic_connections(
            TINY_SPEC, rng, count, inter_pod_fraction=inter_pod_fraction
        )
    )


_POOL = _connection_pool()

_churn_op = st.one_of(
    st.tuples(
        st.just("add"),
        st.integers(0, len(_POOL) - 1),  # connection template
        st.sampled_from([0.5, 1.0, 2.0]),  # dyadic weight
        st.integers(1, 4),  # channel fan-out (batch size)
        st.integers(1, 6),  # size multiplier
    ),
    st.tuples(st.just("cancel"), st.integers(0, 199)),
    st.tuples(st.just("gate"), st.integers(0, 199)),
    st.tuples(st.just("fail"), st.integers(0, len(_POOL) - 1)),
    # Live bandwidth drift: resize a link already carrying traffic.  The
    # factors are dyadic so rate arithmetic stays exactly representable
    # and the cross-mode comparison can keep using ``==`` on floats.
    st.tuples(
        st.just("bw"),
        st.integers(0, len(_POOL) - 1),
        st.sampled_from([0.25, 0.5, 2.0]),
    ),
    st.tuples(st.just("advance"), st.floats(0.01, 0.4)),
)


def _drive(ops, macro, sharded):
    """Replay one churn script; returns the per-flow outcome summary.

    The summary deliberately excludes ``flow_id`` (the global flow
    counter differs between runs) and compares floats exactly: creation
    order is identical across modes, so position identifies the flow.
    """
    fabric = multi_pod_clos(TINY_SPEC)
    sim = FlowSimulator(fabric.topology, macro=macro, sharded=sharded)
    handles = []
    rejected = []
    for op in ops:
        kind = op[0]
        if kind == "add":
            _, conn, weight, channels, size_k = op
            path, job = _POOL[conn]
            try:
                handles.extend(
                    sim.add_flows(
                        2e7 * size_k, path, channels, job_id=job, weight=weight
                    )
                )
            except Exception as exc:  # path crosses a failed link
                rejected.append((len(handles), type(exc).__name__))
        elif kind == "cancel":
            live = [f for f in handles if f.end_time is None and not f.failed]
            if live:
                sim.cancel_flow(live[op[1] % len(live)])
        elif kind == "gate":
            live = [f for f in handles if f.end_time is None and not f.failed]
            if live:
                victim = live[op[1] % len(live)]
                sim.gate_flow(victim, not victim.gated)
        elif kind == "fail":
            link = _POOL[op[1]][0][0]
            try:
                sim.fail_link(link)
            except Exception as exc:
                rejected.append(("fail", type(exc).__name__))
        elif kind == "bw":
            link = _POOL[op[1]][0][0]
            try:
                sim.set_link_bandwidth(
                    link, sim.topology.link(link).capacity * op[2]
                )
            except Exception as exc:  # link already failed
                rejected.append(("bw", type(exc).__name__))
        else:  # advance
            sim.run(until=sim.now + op[1])
    sim.run()  # drain whatever can still finish (gated flows stay put)
    summary = [
        (f.size, f.weight, f.start_time, f.end_time, f.failed, f.gated)
        for f in handles
    ]
    return summary, rejected, sim.now, sim.flows_completed


@given(ops=st.lists(_churn_op, min_size=1, max_size=25))
@settings(max_examples=12, deadline=None, derandomize=True)
def test_fast_modes_bit_identical_under_churn(ops):
    reference = _drive(ops, macro=False, sharded=False)
    for macro, sharded in ((True, False), (False, True), (True, True)):
        assert _drive(ops, macro, sharded) == reference


# ----------------------------------------------------------------------
# sharding mechanics
# ----------------------------------------------------------------------
def _sim(macro=False, sharded=False):
    fabric = multi_pod_clos(TINY_SPEC)
    return FlowSimulator(fabric.topology, macro=macro, sharded=sharded)


def _pod_local_path(pod, host=0, nic=0, peer_nic=1):
    base = pod * TINY_SPEC.hosts_per_pod
    return connection_path(
        TINY_SPEC, base + host, nic, base + host + 1, peer_nic, spine=0, core=0
    )


def test_sharded_disjoint_flows_get_separate_domains():
    sim = _sim(sharded=True)
    sim.add_flow(1e9, _pod_local_path(0))
    sim.add_flow(1e9, _pod_local_path(1))
    sim.run(until=0.01)
    counters = sim.perf_counters()
    assert counters["solver_domains"] == 2
    assert counters["solver_domain_merges"] == 0
    # Singleton components take the solo fast path: no solver is built.
    assert counters["solver_solo_solves"] >= 2


def test_sharded_spanning_flow_merges_and_dissolves():
    sim = _sim(sharded=True)
    sim.add_flow(1e9, _pod_local_path(0))
    sim.add_flow(1e9, _pod_local_path(1))
    # An inter-pod flow sharing a NIC uplink with the first flow and a
    # leaf downlink with the second fuses the two domains.
    base = TINY_SPEC.hosts_per_pod
    bridge_path = connection_path(TINY_SPEC, 0, 0, base + 1, 1, spine=0, core=0)
    sim.add_flow(1e9, bridge_path)
    sim.run(until=0.01)
    counters = sim.perf_counters()
    assert counters["solver_domains"] == 1
    assert counters["solver_domain_merges"] >= 1
    assert counters["solver_max_domain_flows"] == 3
    sim.run()  # all complete; emptied domains dissolve
    assert sim.perf_counters()["solver_domain_dissolutions"] >= 1
    assert sim.perf_counters()["solver_domains"] == 0


def test_sharded_rates_match_reference_on_shared_link():
    path = _pod_local_path(0)
    ref, fast = _sim(), _sim(sharded=True)
    for sim in (ref, fast):
        sim.add_flow(1e9, path, weight=0.5)
        sim.add_flow(1e9, path, weight=2.0)
        sim.run(until=0.001)
    ref_rates = sorted(f.rate for f in ref.active_flows())
    fast_rates = sorted(f.rate for f in fast.active_flows())
    assert fast_rates == ref_rates  # bit-identical, not approx


# ----------------------------------------------------------------------
# macro-flow mechanics
# ----------------------------------------------------------------------
def test_macro_channel_fanout_collapses_to_one_group():
    sim = _sim(macro=True)
    path = _pod_local_path(0)
    flows = sim.add_flows(1e9, path, 8, job_id="job0")
    sim.run(until=0.001)
    counters = sim.perf_counters()
    assert counters["macro_groups"] == 1
    assert counters["macro_members"] == 8
    assert counters["macro_peak_group_size"] == 8
    # All channels share one (path, weight, tenant): identical rates.
    rates = {f.rate for f in flows}
    assert len(rates) == 1
    sim.run()
    assert sim.flows_completed == 8
    assert sim.perf_counters()["macro_groups"] == 0


def test_macro_distinct_weights_get_distinct_groups():
    sim = _sim(macro=True)
    path = _pod_local_path(0)
    sim.add_flow(1e9, path, weight=1.0)
    sim.add_flow(1e9, path, weight=2.0)
    sim.run(until=0.001)
    assert sim.perf_counters()["macro_groups"] == 2


def test_add_flows_equivalent_to_repeated_add_flow():
    path = _pod_local_path(0)
    batched, loose = _sim(), _sim()
    flows_b = batched.add_flows(3e8, path, 4, job_id="j")
    flows_l = [loose.add_flow(3e8, path, job_id="j") for _ in range(4)]
    assert len(flows_b) == 4
    batched.run()
    loose.run()
    assert [f.end_time for f in flows_b] == [f.end_time for f in flows_l]


# ----------------------------------------------------------------------
# multi-pod fabric + profile harness helpers
# ----------------------------------------------------------------------
def test_scale_spec_hits_roadmap_gpu_band():
    assert scale_spec(1).gpus == 512
    assert scale_spec(4).gpus == 2048
    assert scale_spec(16).gpus == 8192


def test_connection_paths_are_valid_on_the_fabric():
    fabric = multi_pod_clos(TINY_SPEC)
    rng = random.Random(3)
    for path, _job in synthetic_connections(
        TINY_SPEC, rng, 40, inter_pod_fraction=0.5
    ):
        fabric.topology.validate_path(path)  # raises on any bad link id


def test_prepare_scale_workload_runs_to_completion():
    fabric = multi_pod_clos(TINY_SPEC)
    sim = FlowSimulator(fabric.topology, macro=True, sharded=True)
    injected = prepare_scale_workload(
        sim, TINY_SPEC, 64, channels=4, wave_flows=32
    )
    assert injected >= 64
    sim.run()
    assert sim.flows_completed == injected
    counters = sim.perf_counters()
    assert "solver_coalesced_solves" in counters
    assert "solver_solo_solves" in counters


def test_run_scale_workload_counts_completions():
    fabric = multi_pod_clos(TINY_SPEC)
    sim = FlowSimulator(fabric.topology, macro=True, sharded=True)
    assert run_scale_workload(sim, TINY_SPEC, 32, channels=4) >= 32


def test_profile_main_smoke(capsys):
    from repro.netsim.profile import main

    main(["--flows", "32", "--pods", "1", "--channels", "4", "--top", "3"])
    out = capsys.readouterr().out
    assert "events/s" in out
    assert "perf counters:" in out
