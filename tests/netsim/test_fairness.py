"""Max-min fairness allocator tests, including reference/vectorized parity."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.fairness import (
    FairnessSolver,
    bottleneck_rate,
    link_loads,
    progressive_filling,
)
from repro.netsim.flows import Flow


def mk_flow(path, weight=1.0, gated=False, size=1e9):
    return Flow(size=size, path=tuple(path), weight=weight, gated=gated)


CAPS = {"l1": 10.0, "l2": 10.0, "l3": 5.0}


def test_single_flow_gets_bottleneck():
    f = mk_flow(["l1", "l3"])
    rates = progressive_filling([f], CAPS)
    assert rates[f.flow_id] == pytest.approx(5.0)


def test_equal_share_on_one_link():
    flows = [mk_flow(["l1"]) for _ in range(4)]
    rates = progressive_filling(flows, CAPS)
    for f in flows:
        assert rates[f.flow_id] == pytest.approx(2.5)


def test_classic_three_flow_maxmin():
    # f1 on l1+l2, f2 on l1, f3 on l2, caps 10/10: all get 5.
    f1, f2, f3 = mk_flow(["l1", "l2"]), mk_flow(["l1"]), mk_flow(["l2"])
    rates = progressive_filling([f1, f2, f3], {"l1": 10.0, "l2": 10.0})
    assert rates[f1.flow_id] == pytest.approx(5.0)
    assert rates[f2.flow_id] == pytest.approx(5.0)
    assert rates[f3.flow_id] == pytest.approx(5.0)


def test_unfrozen_flows_pick_up_slack():
    # f1 bottlenecked at l3 (5), f2 alone gets the rest of l1 (10-? = ...)
    f1 = mk_flow(["l1", "l3"])
    f2 = mk_flow(["l1"])
    rates = progressive_filling([f1, f2], CAPS)
    assert rates[f1.flow_id] == pytest.approx(5.0)
    assert rates[f2.flow_id] == pytest.approx(5.0)
    # l1 still has headroom; f2's share is max-min fair (5 each would leave
    # slack, so f2 grows to 5? no: l1 cap 10, f1 frozen at 5 -> f2 gets 5.)


def test_weighted_shares():
    f1 = mk_flow(["l1"], weight=3.0)
    f2 = mk_flow(["l1"], weight=1.0)
    rates = progressive_filling([f1, f2], {"l1": 8.0})
    assert rates[f1.flow_id] == pytest.approx(6.0)
    assert rates[f2.flow_id] == pytest.approx(2.0)


def test_gated_flows_get_zero():
    f1 = mk_flow(["l1"], gated=True)
    f2 = mk_flow(["l1"])
    rates = progressive_filling([f1, f2], CAPS)
    assert rates[f1.flow_id] == 0.0
    assert rates[f2.flow_id] == pytest.approx(10.0)


def test_unknown_link_raises():
    f = mk_flow(["ghost"])
    with pytest.raises(KeyError):
        progressive_filling([f], CAPS)


def test_bottleneck_rate():
    assert bottleneck_rate(["l1", "l3"], CAPS) == 5.0


def test_link_loads_sum_of_rates():
    f1, f2 = mk_flow(["l1", "l2"]), mk_flow(["l1"])
    rates = progressive_filling([f1, f2], {"l1": 10.0, "l2": 10.0})
    loads = link_loads([f1, f2], rates)
    assert loads["l1"] == pytest.approx(rates[f1.flow_id] + rates[f2.flow_id])
    assert loads["l2"] == pytest.approx(rates[f1.flow_id])


# ---------------------------------------------------------------------------
# property-based: vectorized solver == reference, and max-min invariants
# ---------------------------------------------------------------------------
@st.composite
def random_scenario(draw):
    num_links = draw(st.integers(2, 6))
    links = [f"L{i}" for i in range(num_links)]
    caps = {l: draw(st.floats(1.0, 100.0)) for l in links}
    num_flows = draw(st.integers(1, 8))
    flows = []
    for _ in range(num_flows):
        path_len = draw(st.integers(1, min(3, num_links)))
        path = draw(
            st.lists(st.sampled_from(links), min_size=path_len, max_size=path_len, unique=True)
        )
        weight = draw(st.floats(0.5, 4.0))
        gated = draw(st.booleans())
        flows.append(mk_flow(path, weight=weight, gated=gated))
    return flows, caps


@given(random_scenario())
@settings(max_examples=120, deadline=None)
def test_vectorized_matches_reference(scenario):
    flows, caps = scenario
    ref = progressive_filling(flows, caps)
    vec = FairnessSolver(flows, caps).solve()
    for f in flows:
        assert vec[f.flow_id] == pytest.approx(ref[f.flow_id], rel=1e-6, abs=1e-9)


@given(random_scenario())
@settings(max_examples=120, deadline=None)
def test_allocation_is_feasible_and_positive(scenario):
    flows, caps = scenario
    rates = FairnessSolver(flows, caps).solve()
    loads = link_loads(flows, rates)
    for link, load in loads.items():
        assert load <= caps[link] * (1 + 1e-6)
    for f in flows:
        if f.active:
            assert rates[f.flow_id] > 0
        else:
            assert rates[f.flow_id] == 0


@given(random_scenario())
@settings(max_examples=80, deadline=None)
def test_maxmin_no_unilateral_increase(scenario):
    """No active flow can grow without a saturated link on its path."""
    flows, caps = scenario
    rates = FairnessSolver(flows, caps).solve()
    loads = link_loads(flows, rates)
    for f in flows:
        if not f.active:
            continue
        saturated = any(loads[l] >= caps[l] * (1 - 1e-6) for l in set(f.path))
        assert saturated, f"flow {f.flow_id} could still grow"
