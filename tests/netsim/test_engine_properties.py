"""Property-based invariants of the fluid simulator.

Three properties the whole reproduction leans on:

* **byte conservation** — a flow of S bytes finishes exactly when S bytes
  of capacity-time have been delivered to it, no matter how the sharing
  pattern evolved;
* **determinism** — the same scenario replays to the identical schedule
  (the experiments rely on seeded reproducibility);
* **feasibility over time** — at no recompute does any link exceed its
  capacity.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.engine import FlowSimulator
from repro.netsim.topology import Topology


def grid_topology(num_links, caps):
    topo = Topology()
    topo.add_node("n0")
    for i in range(num_links):
        topo.add_node(f"n{i + 1}")
        topo.add_link(f"n{i}", f"n{i + 1}", caps[i])
    return topo


@st.composite
def scenario(draw):
    num_links = draw(st.integers(1, 4))
    caps = [draw(st.floats(1.0, 50.0)) for _ in range(num_links)]
    flows = []
    for _ in range(draw(st.integers(1, 8))):
        start = draw(st.integers(0, num_links - 1))
        end = draw(st.integers(start + 1, num_links))
        flows.append(
            {
                "size": draw(st.floats(1.0, 200.0)),
                "path": [f"n{i}->n{i + 1}" for i in range(start, end)],
                "at": draw(st.floats(0.0, 5.0)),
                "weight": draw(st.floats(0.5, 3.0)),
            }
        )
    return num_links, caps, flows


def replay(num_links, caps, flow_specs, audit=None):
    sim = FlowSimulator(grid_topology(num_links, caps))
    record = []
    flows = []
    for spec in flow_specs:
        def add(spec=spec):
            flow = sim.add_flow(
                spec["size"],
                spec["path"],
                weight=spec["weight"],
                on_complete=lambda f, t: record.append((f.size, round(t, 9))),
            )
            flows.append((flow, spec))

        sim.schedule(spec["at"], add)
    if audit is not None:
        original = sim._ensure_rates

        def audited():
            original()
            audit(sim)

        sim._ensure_rates = audited
    end = sim.run()
    return end, record, flows


@given(scenario())
@settings(max_examples=60, deadline=None)
def test_byte_conservation(sc):
    """Every flow's delivered bytes equal its size: completion time is at
    least arrival + size/bottleneck and all flows complete."""
    num_links, caps, specs = sc
    end, record, flows = replay(num_links, caps, specs)
    assert len(record) == len(specs)
    for flow, spec in flows:
        assert flow.completed
        assert flow.remaining == pytest.approx(0.0, abs=1e-6)
        bottleneck = min(caps[int(l[1 : l.index("-")])] for l in spec["path"])
        min_time = spec["size"] / bottleneck
        assert flow.fct() >= min_time * (1 - 1e-9)


@given(scenario())
@settings(max_examples=40, deadline=None)
def test_determinism(sc):
    num_links, caps, specs = sc
    end1, record1, _ = replay(num_links, caps, specs)
    end2, record2, _ = replay(num_links, caps, specs)
    assert end1 == end2
    assert record1 == record2


@given(scenario())
@settings(max_examples=40, deadline=None)
def test_no_link_overcommitted_ever(sc):
    num_links, caps, specs = sc
    link_caps = {f"n{i}->n{i + 1}": caps[i] for i in range(num_links)}

    def audit(sim):
        loads = {}
        for flow in sim.active_flows():
            for link in set(flow.path):
                loads[link] = loads.get(link, 0.0) + flow.rate
        for link, load in loads.items():
            assert load <= link_caps[link] * (1 + 1e-6)

    replay(num_links, caps, specs, audit=audit)


@given(scenario())
@settings(max_examples=30, deadline=None)
def test_flows_finish_in_bounded_time(sc):
    """An upper bound: serializing everything over the slowest link."""
    num_links, caps, specs = sc
    end, _, _ = replay(num_links, caps, specs)
    worst = max(s["at"] for s in specs) + sum(
        s["size"] / min(caps) for s in specs
    )
    assert end <= worst * (1 + 1e-6)
