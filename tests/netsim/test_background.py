"""Background traffic: fair-share flows and capacity occupation."""

import pytest

from repro.netsim.background import BackgroundTrafficManager
from repro.netsim.engine import FlowSimulator
from repro.netsim.topology import Topology
from repro.netsim.units import gbps


@pytest.fixture
def sim():
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    topo.add_link("a", "b", gbps(100))
    return FlowSimulator(topo)


def test_fig7_weight_semantics(sim):
    """A 75G background flow against one tenant flow leaves it 25G."""
    bg = BackgroundTrafficManager(sim)
    bg.start(["a->b"], 75.0)
    tenant = sim.add_flow(1e9, ["a->b"])
    assert sim.rate_of(tenant) * 8 / 1e9 == pytest.approx(25.0)


def test_stop_restores_bandwidth(sim):
    bg = BackgroundTrafficManager(sim)
    handle = bg.start(["a->b"], 75.0)
    tenant = sim.add_flow(1e9, ["a->b"])
    assert sim.rate_of(tenant) < gbps(100) / 2
    bg.stop(handle)
    assert sim.rate_of(tenant) == pytest.approx(gbps(100))
    assert not handle.active


def test_stop_all(sim):
    bg = BackgroundTrafficManager(sim)
    bg.start(["a->b"], 20.0)
    bg.start(["a->b"], 20.0)
    bg.stop_all()
    assert bg.loaded_links() == {}


def test_offered_rate_must_be_positive(sim):
    bg = BackgroundTrafficManager(sim)
    with pytest.raises(ValueError):
        bg.start(["a->b"], 0.0)


def test_occupy_reduces_capacity_exactly(sim):
    """The Figure 7 model: 75G CBR load leaves 25G available."""
    bg = BackgroundTrafficManager(sim)
    bg.occupy("a->b", 75.0)
    tenant = sim.add_flow(1e9, ["a->b"])
    assert sim.rate_of(tenant) == pytest.approx(gbps(25))


def test_vacate_restores_capacity(sim):
    bg = BackgroundTrafficManager(sim)
    bg.occupy("a->b", 75.0)
    bg.vacate("a->b")
    tenant = sim.add_flow(1e9, ["a->b"])
    assert sim.rate_of(tenant) == pytest.approx(gbps(100))


def test_partial_vacate(sim):
    bg = BackgroundTrafficManager(sim)
    bg.occupy("a->b", 75.0)
    bg.vacate("a->b", 50.0)
    tenant = sim.add_flow(1e9, ["a->b"])
    assert sim.rate_of(tenant) == pytest.approx(gbps(75))


def test_occupy_cannot_exceed_capacity(sim):
    bg = BackgroundTrafficManager(sim)
    with pytest.raises(ValueError):
        bg.occupy("a->b", 150.0)


def test_vacate_without_occupy_raises(sim):
    bg = BackgroundTrafficManager(sim)
    with pytest.raises(ValueError):
        bg.vacate("a->b")


def test_switch_agent_report(sim):
    bg = BackgroundTrafficManager(sim)
    bg.start(["a->b"], 75.0)
    bg.occupy("a->b", 10.0)
    loads = bg.loaded_links()
    assert loads["a->b"] == pytest.approx(85.0)
    assert bg.report_persistent_flows(threshold_gbps=50.0) == ["a->b"]
    assert bg.report_persistent_flows(threshold_gbps=90.0) == []
