"""Multi-region WAN fabrics: geometry, routing, drift, cluster layering."""

import pytest

from repro.cluster.specs import multi_region_cluster
from repro.netsim.engine import FlowSimulator
from repro.netsim.fabric import (
    RegionSpec,
    multi_region,
    nic_node,
    wan_link_id,
    wan_links,
)
from repro.netsim.units import gbps


def test_default_spec_geometry():
    spec = RegionSpec()
    assert spec.regions == 2
    assert spec.num_hosts == 8
    assert spec.hosts_per_region == 4
    assert spec.region_of_host(0) == 0 and spec.region_of_host(4) == 1
    assert spec.hosts_of_region(1) == [4, 5, 6, 7]
    assert spec.leaf_of_host(2) == 1 and spec.leaf_of_host(4) == 2
    with pytest.raises(ValueError):
        spec.region_of_host(8)
    with pytest.raises(ValueError):
        spec.hosts_of_region(2)


def test_wan_links_full_mesh():
    fab = multi_region(RegionSpec(regions=3))
    links = wan_links(fab)
    assert links == sorted(
        wan_link_id(a, b) for a in range(3) for b in range(3) if a != b
    )
    for link_id in links:
        assert fab.topology.capacity_of(link_id) == pytest.approx(gbps(10))


def test_switches_carry_region_attribute():
    fab = multi_region(RegionSpec())
    for node_id, node in fab.topology.nodes.items():
        if node_id.startswith("r0.") or "h0." in node_id:
            assert node.attrs["region"] == 0
        if node_id.startswith("r1.") or "h7." in node_id:
            assert node.attrs["region"] == 1


def test_intra_region_path_avoids_wan():
    fab = multi_region(RegionSpec())
    paths = fab.topology.equal_cost_paths(nic_node(0, 0), nic_node(2, 0))
    assert paths
    for path in paths:
        assert not any(link.startswith("wan:") for link in path)


def test_cross_region_path_crosses_exactly_one_wan_link():
    fab = multi_region(RegionSpec())
    paths = fab.topology.equal_cost_paths(nic_node(0, 0), nic_node(4, 0))
    assert paths
    for path in paths:
        crossed = [link for link in path if link.startswith("wan:")]
        assert crossed == [wan_link_id(0, 1)]


def test_wan_flow_is_bottlenecked_by_wan_capacity():
    fab = multi_region(RegionSpec())
    sim = FlowSimulator(fab.topology)
    path = fab.topology.equal_cost_paths(nic_node(0, 0), nic_node(4, 0))[0]
    flow = sim.add_flow(1e9, path)
    sim.run(until=0.001)
    assert flow.rate == pytest.approx(gbps(10))


def test_wan_drift_rescales_live_flow():
    fab = multi_region(RegionSpec())
    sim = FlowSimulator(fab.topology)
    path = fab.topology.equal_cost_paths(nic_node(0, 0), nic_node(4, 0))[0]
    flow = sim.add_flow(1e12, path)
    sim.run(until=0.001)
    epoch = fab.topology.routing_epoch
    sim.set_link_bandwidth(wan_link_id(0, 1), gbps(5))
    sim.run(until=0.002)
    assert flow.rate == pytest.approx(gbps(5))
    # Resizes widen/narrow the usable path set: pins must re-resolve.
    assert fab.topology.routing_epoch == epoch + 1


def test_multi_region_cluster_layers_hosts_and_fingerprint():
    cluster = multi_region_cluster()
    assert cluster.num_hosts == 8 and cluster.num_gpus == 8
    assert cluster.rack_of(cluster.gpu(0)) == 0
    # region_of_host is reachable through the fabric spec (the autotuner
    # keys WAN-crossing placements on it).
    assert cluster.fabric.spec.region_of_host(cluster.gpu(7).host_id) == 1

    from repro.autotune.cost import topology_fingerprint

    local = topology_fingerprint(cluster, [cluster.gpu(0), cluster.gpu(1)])
    wan = topology_fingerprint(cluster, [cluster.gpu(0), cluster.gpu(4)])
    assert local.endswith("/regions1")
    assert wan.endswith("/regions2")
    assert local != wan
