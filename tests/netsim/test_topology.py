"""Topology graph and equal-cost path enumeration tests."""

import pytest

from repro.netsim.errors import NoPathError, UnknownLinkError, UnknownNodeError
from repro.netsim.topology import Link, Topology


def diamond() -> Topology:
    """a -> (b | c) -> d: two equal-cost 2-hop paths."""
    topo = Topology("diamond")
    for n in "abcd":
        topo.add_node(n)
    topo.add_link("a", "b", 1e9)
    topo.add_link("a", "c", 1e9)
    topo.add_link("b", "d", 1e9)
    topo.add_link("c", "d", 1e9)
    return topo


def test_add_node_is_idempotent():
    topo = Topology()
    first = topo.add_node("x", kind="leaf")
    second = topo.add_node("x")
    assert first is second
    assert topo.node("x").kind == "leaf"


def test_link_requires_existing_nodes():
    topo = Topology()
    topo.add_node("a")
    with pytest.raises(UnknownNodeError):
        topo.add_link("a", "missing", 1e9)


def test_link_capacity_must_be_positive():
    with pytest.raises(ValueError):
        Link("l", "a", "b", 0.0)


def test_link_ids_auto_deduplicate():
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    l1 = topo.add_link("a", "b", 1e9)
    l2 = topo.add_link("a", "b", 1e9)
    assert l1.link_id == "a->b"
    assert l2.link_id == "a->b#1"


def test_duplicate_explicit_link_id_rejected():
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    topo.add_link("a", "b", 1e9, link_id="L")
    with pytest.raises(ValueError):
        topo.add_link("a", "b", 1e9, link_id="L")


def test_unknown_lookups_raise():
    topo = Topology()
    with pytest.raises(UnknownNodeError):
        topo.node("ghost")
    with pytest.raises(UnknownLinkError):
        topo.link("ghost")


def test_equal_cost_paths_in_diamond():
    topo = diamond()
    paths = topo.equal_cost_paths("a", "d")
    assert len(paths) == 2
    assert [["a->b", "b->d"], ["a->c", "c->d"]] == sorted(paths)


def test_paths_are_minimum_hop_only():
    topo = diamond()
    # add a longer detour a->e->b; must not appear in results for a->d
    topo.add_node("e")
    topo.add_link("a", "e", 1e9)
    topo.add_link("e", "b", 1e9)
    paths = topo.equal_cost_paths("a", "d")
    assert all(len(p) == 2 for p in paths)


def test_no_path_raises():
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    with pytest.raises(NoPathError):
        topo.equal_cost_paths("a", "b")


def test_self_path_is_empty():
    topo = diamond()
    assert topo.equal_cost_paths("a", "a") == [[]]


def test_paths_respect_direction():
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    topo.add_link("a", "b", 1e9)
    with pytest.raises(NoPathError):
        topo.equal_cost_paths("b", "a")


def test_path_cache_invalidated_on_growth():
    topo = diamond()
    assert len(topo.equal_cost_paths("a", "d")) == 2
    topo.add_node("x")
    topo.add_link("a", "x", 1e9)
    topo.add_link("x", "d", 1e9)
    assert len(topo.equal_cost_paths("a", "d")) == 3


def test_path_nodes_expansion():
    topo = diamond()
    assert topo.path_nodes(["a->b", "b->d"]) == ["a", "b", "d"]
    assert topo.path_nodes([]) == []


def test_validate_path_rejects_discontinuity():
    topo = diamond()
    with pytest.raises(ValueError):
        topo.validate_path(["a->b", "c->d"])


def test_capacity_lookup():
    topo = diamond()
    assert topo.capacity_of("a->b") == 1e9


def test_out_links():
    topo = diamond()
    outs = {l.dst for l in topo.out_links("a")}
    assert outs == {"b", "c"}
