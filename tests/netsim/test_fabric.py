"""Fabric builders: the Figure 5a testbed, the §6.5 cluster, Figure 7 ring."""

import pytest

from repro.netsim.fabric import (
    FabricSpec,
    large_cluster_fabric,
    local_link_id,
    nic_node,
    spine_leaf,
    spine_links,
    switch_ring,
    testbed_fabric as build_testbed,
)
from repro.netsim.units import gbps


def test_testbed_geometry():
    fab = build_testbed()
    spec = fab.spec
    assert spec.num_hosts == 4
    assert spec.nics_per_host == 2
    assert fab.num_fabric_paths == 2
    assert fab.rack_of(0) == 0 and fab.rack_of(1) == 0
    assert fab.rack_of(2) == 1 and fab.rack_of(3) == 1
    assert fab.same_rack(0, 1) and not fab.same_rack(1, 2)


def test_testbed_capacities():
    topo = build_testbed().topology
    # vNIC links are 50G, fabric links are 50G (2:1 oversubscription).
    assert topo.capacity_of("h0.nic0->leaf0") == pytest.approx(gbps(50))
    assert topo.capacity_of("leaf0->spine0") == pytest.approx(gbps(50))


def test_cross_rack_paths_one_per_spine():
    fab = build_testbed()
    paths = fab.topology.equal_cost_paths(nic_node(0, 0), nic_node(2, 0))
    assert len(paths) == fab.spec.num_spines == 2
    for path in paths:
        assert len(path) == 4  # nic->leaf->spine->leaf->nic


def test_intra_rack_path_is_unique_and_short():
    fab = build_testbed()
    paths = fab.topology.equal_cost_paths(nic_node(0, 0), nic_node(1, 0))
    assert len(paths) == 1
    assert len(paths[0]) == 2


def test_local_link_per_host():
    fab = build_testbed()
    for host in range(4):
        assert local_link_id(host) in fab.topology.links


def test_large_cluster_dimensions():
    fab = large_cluster_fabric()
    spec = fab.spec
    assert spec.num_hosts == 96
    assert spec.num_hosts * 8 == 768  # GPUs
    assert spec.num_spines == 16
    assert spec.num_leaves == 24
    assert fab.num_fabric_paths == 16
    # 2:1 oversubscription: 4 hosts x 8 NICs = 32 down vs 16 up per leaf.
    assert spec.hosts_per_leaf * spec.nics_per_host == 32


def test_large_cluster_cross_rack_path_count():
    fab = large_cluster_fabric()
    paths = fab.topology.equal_cost_paths(nic_node(0, 0), nic_node(95, 7))
    assert len(paths) == 16


def test_host_out_of_range_rejected():
    spec = FabricSpec()
    with pytest.raises(ValueError):
        spec.leaf_of_host(99)


def test_hosts_of_leaf():
    spec = FabricSpec(num_leaves=3, hosts_per_leaf=2)
    assert spec.hosts_of_leaf(1) == [2, 3]


def test_switch_ring_structure():
    fab = switch_ring()
    topo = fab.topology
    # adjacent switches connected both ways
    for s in range(4):
        assert f"sw{s}->sw{(s + 1) % 4}" in topo.links
        assert f"sw{(s + 1) % 4}->sw{s}" in topo.links
    # adjacent hosts: unique shortest path via one inter-switch hop
    paths = topo.equal_cost_paths(nic_node(0, 0), nic_node(1, 0))
    assert len(paths) == 1
    assert "sw0->sw1" in paths[0]
    # opposite hosts: two equal-cost directions around the ring
    paths = topo.equal_cost_paths(nic_node(0, 0), nic_node(2, 0))
    assert len(paths) == 2


def test_spine_links_helper():
    fab = build_testbed()
    links = spine_links(fab)
    assert len(links) == 2 * 2 * 2  # leaves x spines x both directions
    assert all("spine" in l for l in links)


def test_custom_spec_scales():
    fab = spine_leaf(FabricSpec(num_spines=4, num_leaves=6, hosts_per_leaf=3))
    assert fab.spec.num_hosts == 18
    assert fab.num_fabric_paths == 4
    paths = fab.topology.equal_cost_paths(nic_node(0, 0), nic_node(17, 0))
    assert len(paths) == 4


def test_intra_host_path_helper():
    from repro.netsim.fabric import intra_host_path

    fab = build_testbed()
    path = intra_host_path(fab, 2)
    assert path == ["h2.local"]
    fab.topology.validate_path(path)


def test_fabric_paths_helper():
    from repro.netsim.fabric import fabric_paths

    fab = build_testbed()
    paths = fabric_paths(fab, nic_node(0, 0), nic_node(3, 1))
    assert paths == fab.topology.equal_cost_paths(nic_node(0, 0), nic_node(3, 1))
