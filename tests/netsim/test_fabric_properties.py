"""Property-based checks of the Clos fabric builder."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.fabric import FabricSpec, nic_node, spine_leaf


@st.composite
def fabric_spec(draw):
    return FabricSpec(
        num_spines=draw(st.integers(1, 6)),
        num_leaves=draw(st.integers(2, 6)),
        hosts_per_leaf=draw(st.integers(1, 4)),
        nics_per_host=draw(st.integers(1, 4)),
        nic_gbps=draw(st.sampled_from([25.0, 50.0, 100.0, 200.0])),
        fabric_gbps=draw(st.sampled_from([50.0, 100.0, 200.0])),
    )


@given(fabric_spec())
@settings(max_examples=40, deadline=None)
def test_cross_rack_path_count_equals_spines(spec):
    fab = spine_leaf(spec)
    a = nic_node(0, 0)
    b = nic_node(spec.num_hosts - 1, spec.nics_per_host - 1)
    paths = fab.topology.equal_cost_paths(a, b)
    assert len(paths) == spec.num_spines
    for path in paths:
        fab.topology.validate_path(path)  # contiguous
        assert len(path) == 4
        nodes = fab.topology.path_nodes(path)
        assert nodes[0] == a and nodes[-1] == b
        assert sum(1 for n in nodes if n.startswith("spine")) == 1


@given(fabric_spec())
@settings(max_examples=40, deadline=None)
def test_intra_rack_paths_avoid_spines(spec):
    if spec.hosts_per_leaf < 2:
        return
    fab = spine_leaf(spec)
    paths = fab.topology.equal_cost_paths(nic_node(0, 0), nic_node(1, 0))
    assert len(paths) == 1
    assert not any("spine" in link for link in paths[0])


@given(fabric_spec())
@settings(max_examples=30, deadline=None)
def test_every_host_maps_to_exactly_one_leaf(spec):
    fab = spine_leaf(spec)
    counts = {}
    for host in range(spec.num_hosts):
        counts.setdefault(spec.leaf_of_host(host), 0)
        counts[spec.leaf_of_host(host)] += 1
    assert all(c == spec.hosts_per_leaf for c in counts.values())
    assert len(counts) == spec.num_leaves


@given(fabric_spec())
@settings(max_examples=30, deadline=None)
def test_link_inventory(spec):
    fab = spine_leaf(spec)
    links = fab.topology.links
    expected = (
        2 * spec.num_leaves * spec.num_spines  # leaf<->spine duplex
        + 2 * spec.num_hosts * spec.nics_per_host  # nic<->leaf duplex
        + spec.num_hosts  # one local link per host
    )
    assert len(links) == expected
