"""Old-engine vs new-engine equivalence, and the incremental-only surface.

The legacy core (full solver rebuild + full completion scans per event) is
kept as the reference implementation; the incremental core (persistent
solver, completion heap, virtual-byte clock) must reproduce its results
exactly on real scenarios.  These tests replay the Figure 7 reconfiguration
timeline and a Figure 8 multi-tenant grid under both modes and compare
completion timestamps and bandwidths.
"""

import itertools

import pytest

import repro.baselines.nccl as nccl_mod
import repro.core.communicator as comm_mod
import repro.netsim.engine as engine_mod
import repro.netsim.flows as flows_mod
import repro.transport.launcher as launcher_mod
from repro.core.transport import TrafficGateManager, WindowSchedule
from repro.netsim.engine import FlowSimulator, SimObserver
from repro.netsim.topology import Topology


def _reset_global_counters(monkeypatch):
    """Pin every id counter that feeds ECMP hashing / flow identity.

    Experiment runs are deterministic only relative to these counters;
    resetting them lets two in-process runs (one per engine mode) see
    byte-identical inputs.
    """
    monkeypatch.setattr(comm_mod, "_comm_counter", itertools.count())
    monkeypatch.setattr(nccl_mod, "_comm_counter", itertools.count())
    monkeypatch.setattr(flows_mod, "_flow_counter", itertools.count())
    monkeypatch.setattr(launcher_mod, "_launch_counter", itertools.count())


def _run_in_mode(monkeypatch, incremental, fn):
    _reset_global_counters(monkeypatch)
    monkeypatch.setattr(engine_mod, "DEFAULT_INCREMENTAL", incremental)
    return fn()


def line_topo(cap=8.0):
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    topo.add_link("a", "b", cap)
    return topo


# ----------------------------------------------------------------------
# determinism: legacy and incremental engines agree on real scenarios
# ----------------------------------------------------------------------
def test_fig07_timeline_identical_across_engines(monkeypatch):
    from repro.experiments.fig07_reconfig import run_fig07

    def scenario():
        timeline = run_fig07(
            op_bytes=64 * 1024 * 1024,
            duration=6.0,
            bg_start=2.0,
            reconfig_at=3.0,
        )
        return timeline

    legacy = _run_in_mode(monkeypatch, False, scenario)
    incremental = _run_in_mode(monkeypatch, True, scenario)
    assert len(legacy.points) == len(incremental.points)
    assert len(legacy.points) > 0
    for old, new in zip(legacy.points, incremental.points):
        assert new.time == pytest.approx(old.time, rel=1e-9, abs=1e-9)
        assert new.algbw_gBps == pytest.approx(old.algbw_gBps, rel=1e-9)
    assert legacy.ring_after == incremental.ring_after
    assert legacy.reconfig_done == pytest.approx(
        incremental.reconfig_done, rel=1e-9
    )


def test_fig08_grid_identical_across_engines(monkeypatch):
    from repro.experiments.fig08_multi_app import run_fig08

    def scenario():
        results = run_fig08(
            setups=("setup1",),
            trials=1,
            op_bytes=32 * 1024 * 1024,
            duration=0.8,
            warmup=0.2,
        )
        return [(r.setup, r.system, r.app_id, r.stat.mean) for r in results]

    legacy = _run_in_mode(monkeypatch, False, scenario)
    incremental = _run_in_mode(monkeypatch, True, scenario)
    assert len(legacy) == len(incremental)
    for old, new in zip(legacy, incremental):
        assert new[:3] == old[:3]
        assert new[3] == pytest.approx(old[3], rel=1e-9)


#: The datacenter fast modes (macro aggregation, sharded solver, both);
#: each must reproduce the incremental reference *bit-identically* — the
#: floats below are compared with ``==``, not approx.
FAST_MODES = [
    pytest.param(True, False, id="macro"),
    pytest.param(False, True, id="sharded"),
    pytest.param(True, True, id="macro+sharded"),
]


def _run_in_fast_mode(monkeypatch, macro, sharded, fn):
    _reset_global_counters(monkeypatch)
    monkeypatch.setattr(engine_mod, "DEFAULT_INCREMENTAL", True)
    monkeypatch.setattr(engine_mod, "DEFAULT_MACRO", macro)
    monkeypatch.setattr(engine_mod, "DEFAULT_SHARDED", sharded)
    return fn()


def _fig08_speedup_grid():
    from repro.experiments.fig08_multi_app import run_fig08

    results = run_fig08(
        setups=("setup1",),
        trials=1,
        op_bytes=32 * 1024 * 1024,
        duration=0.8,
        warmup=0.2,
    )
    return [(r.setup, r.system, r.app_id, r.stat.mean) for r in results]


def _fig11_speedup_distributions():
    from repro.experiments.fig11_simulation import run_fig11

    outcome = run_fig11(
        placement="random", num_jobs=4, iterations=6, channels=2, seed=0
    )
    return [(s, tuple(outcome.speedups(s))) for s in ("or", "or+ffa")]


_fast_mode_reference_cache = {}


def _reference_run(monkeypatch, fn):
    """Reference (plain incremental) result, computed once per scenario."""
    if fn not in _fast_mode_reference_cache:
        _fast_mode_reference_cache[fn] = _run_in_fast_mode(
            monkeypatch, False, False, fn
        )
    return _fast_mode_reference_cache[fn]


@pytest.mark.parametrize("macro,sharded", FAST_MODES)
def test_fig08_grid_bit_identical_in_fast_modes(monkeypatch, macro, sharded):
    reference = _reference_run(monkeypatch, _fig08_speedup_grid)
    fast = _run_in_fast_mode(monkeypatch, macro, sharded, _fig08_speedup_grid)
    assert fast == reference


@pytest.mark.parametrize("macro,sharded", FAST_MODES)
def test_fig11_speedups_bit_identical_in_fast_modes(monkeypatch, macro, sharded):
    reference = _reference_run(monkeypatch, _fig11_speedup_distributions)
    fast = _run_in_fast_mode(
        monkeypatch, macro, sharded, _fig11_speedup_distributions
    )
    assert fast == reference


@pytest.mark.parametrize("incremental", [False, True])
def test_staggered_sharing_same_in_both_modes(incremental):
    sim = FlowSimulator(line_topo(), incremental=incremental)
    f1 = sim.add_flow(8.0, ["a->b"])
    sim.schedule(0.5, lambda: sim.add_flow(8.0, ["a->b"]))
    sim.run()
    assert f1.end_time == pytest.approx(1.5)
    assert sim.incremental is incremental


# ----------------------------------------------------------------------
# cancellation: observers and gate managers see flows leave
# ----------------------------------------------------------------------
class _Recorder(SimObserver):
    def __init__(self):
        self.added = []
        self.completed = []
        self.cancelled = []

    def on_flow_added(self, flow, now):
        self.added.append(flow.flow_id)

    def on_flow_completed(self, flow, now):
        self.completed.append(flow.flow_id)

    def on_flow_cancelled(self, flow, now):
        self.cancelled.append((flow.flow_id, now))


def test_cancel_flow_notifies_observers():
    sim = FlowSimulator(line_topo())
    recorder = _Recorder()
    sim.add_observer(recorder)
    flow = sim.add_flow(100.0, ["a->b"])
    sim.run(until=1.0)
    assert sim.has_flow(flow)
    sim.cancel_flow(flow)
    assert not sim.has_flow(flow)
    assert recorder.cancelled == [(flow.flow_id, 1.0)]
    assert recorder.completed == []
    # Cancelling twice is a no-op, not a double notification.
    sim.cancel_flow(flow)
    assert len(recorder.cancelled) == 1
    # The network drains without the cancelled flow.
    assert sim.run() == pytest.approx(1.0)


def test_cancelled_flow_does_not_complete_or_stall():
    sim = FlowSimulator(line_topo(cap=8.0))
    done = []
    keeper = sim.add_flow(8.0, ["a->b"], on_complete=lambda f, t: done.append(t))
    doomed = sim.add_flow(8.0, ["a->b"], on_complete=lambda f, t: done.append(t))
    sim.schedule(0.5, lambda: sim.cancel_flow(doomed))
    sim.run()
    # keeper shared until t=0.5 (2 bytes left of 6) then ran alone.
    assert keeper.completed and not doomed.completed
    assert done == [pytest.approx(1.25)]


def test_gate_manager_forgets_cancelled_flows():
    sim = FlowSimulator(line_topo())
    gates = TrafficGateManager(sim)
    flow = sim.add_flow(1e6, ["a->b"], job_id="appA")
    gates.register(flow)
    sim.cancel_flow(flow)
    # Installing a closed-window schedule must not touch the dead flow.
    closed = WindowSchedule(period=1.0, open_intervals=((0.9, 1.0),))
    gates.set_schedule("appA", closed)
    assert gates.gate_transitions == 0
    assert not flow.gated


# ----------------------------------------------------------------------
# perf counters
# ----------------------------------------------------------------------
def test_perf_counters_incremental():
    sim = FlowSimulator(line_topo())
    for _ in range(5):
        sim.add_flow(8.0, ["a->b"])
    sim.run()
    counters = sim.perf_counters()
    assert counters["flows_completed"] == 5
    assert counters["rate_recomputations"] >= 1
    assert counters["solver_full_rebuilds"] == 1  # initial build only
    assert counters["solver_delta_updates"] == 10  # 5 adds + 5 removals
    assert (
        counters["solver_rebuilds_avoided"]
        == counters["rate_recomputations"] - 1
    )
    assert counters["heap_pushes"] > 0
    assert counters["heap_invalidations"] > 0


def test_perf_counters_legacy_mode_reports_rebuilds():
    sim = FlowSimulator(line_topo(), incremental=False)
    sim.add_flow(8.0, ["a->b"])
    sim.run()
    counters = sim.perf_counters()
    assert counters["solver_delta_updates"] == 0
    assert counters["solver_rebuilds_avoided"] == 0
    assert counters["solver_full_rebuilds"] == counters["rate_recomputations"]


def test_rate_recomputations_count_matches_dirty_transitions():
    # Semantics guard: one recomputation per dirty->clean transition, in
    # both modes, for the same scenario.
    def run(incremental):
        sim = FlowSimulator(line_topo(), incremental=incremental)
        sim.add_flow(8.0, ["a->b"])
        sim.schedule(0.25, lambda: sim.add_flow(4.0, ["a->b"]))
        sim.run()
        return sim.rate_recomputations

    assert run(True) == run(False)


# ----------------------------------------------------------------------
# link churn: fail/degrade/restore is bit-identical across engine modes
# ----------------------------------------------------------------------
def diamond_topo(cap=8.0):
    topo = Topology()
    for node in ("a", "m1", "m2", "b"):
        topo.add_node(node)
    topo.add_link("a", "m1", cap)
    topo.add_link("m1", "b", cap)
    topo.add_link("a", "m2", cap)
    topo.add_link("m2", "b", cap)
    return topo


def _churn_scenario(incremental):
    """Flows through a diamond while one path flaps and one degrades."""
    sim = FlowSimulator(diamond_topo(), incremental=incremental)
    log = []
    f1 = sim.add_flow(
        16.0, ["a->m1", "m1->b"],
        on_complete=lambda f, t: log.append(("done", f.flow_id, t)),
        on_fail=lambda f, t, err: log.append(("fail", f.flow_id, t, str(err))),
    )
    f2 = sim.add_flow(
        16.0, ["a->m2", "m2->b"],
        on_complete=lambda f, t: log.append(("done", f.flow_id, t)),
    )
    late = []
    sim.schedule(0.5, lambda: sim.fail_link("m1->b"))
    sim.schedule(0.7, lambda: sim.set_link_capacity("a->m2", 4.0))
    sim.schedule(0.9, lambda: sim.restore_link("m1->b"))

    def relaunch():
        late.append(
            sim.add_flow(
                8.0, ["a->m1", "m1->b"],
                on_complete=lambda f, t: log.append(("done", f.flow_id, t)),
            )
        )

    sim.schedule(0.9, relaunch)
    sim.schedule(1.1, lambda: sim.set_link_capacity("a->m2", 8.0))
    end = sim.run()
    counters = sim.perf_counters()
    return {
        "log": tuple(log),
        "end": end,
        "f1": (f1.failed, f1.remaining, f1.end_time),
        "f2": (f2.completed, f2.end_time),
        "late": [(f.completed, f.end_time) for f in late],
        "flows_failed": counters["flows_failed"],
        "flows_completed": counters["flows_completed"],
        "link_up": sim.link_is_up("m1->b"),
    }


def test_link_churn_identical_across_engines(monkeypatch):
    legacy = _run_in_mode(monkeypatch, False, lambda: _churn_scenario(False))
    incremental = _run_in_mode(monkeypatch, True, lambda: _churn_scenario(True))
    assert legacy == incremental  # bit-identical, not just approximately
    assert legacy["flows_failed"] == 1
    assert legacy["f1"][0] and legacy["f2"][0]
    assert legacy["link_up"]


def test_fault_recovery_timeline_identical_across_engines(monkeypatch):
    """A full deployment-level failover replays identically in both modes."""
    import numpy as np

    from repro.cluster.specs import testbed_cluster
    from repro.core.controller import CentralManager
    from repro.core.deployment import MccsDeployment
    from repro.core.recovery import RecoveryPolicy
    from repro.faults import FaultInjector

    def scenario():
        cluster = testbed_cluster()
        deployment = MccsDeployment(cluster)
        recovery = deployment.enable_recovery(
            RecoveryPolicy(collective_deadline=0.25), heartbeat_until=1.0
        )
        manager = CentralManager(deployment)
        gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
        state = manager.admit("A", gpus)
        client = deployment.connect("A")
        comm = client.adopt_communicator(state.comm_id)
        injector = FaultInjector(cluster, deployment=deployment)

        def strike():
            links = sorted(
                {
                    link
                    for flow in cluster.sim.active_flows()
                    for link in flow.links
                    if "spine" in link
                }
            )
            injector.fail_link(links[0])
            cluster.sim.call_in(0.05, lambda: injector.restore_link(links[0]))

        cluster.sim.call_in(0.004, strike)
        sends = [client.alloc(g, 256) for g in gpus]
        recvs = [client.alloc(g, 256) for g in gpus]
        for buf in sends:
            buf.view(np.float32)[:] = 2.0
        big = client.all_reduce(comm, 64 * 1024 * 1024)
        small = client.all_reduce(comm, 256, send=sends, recv=recvs)
        deployment.run()
        assert big.completed and small.completed
        assert all(np.allclose(r.view(np.float32), 8.0) for r in recvs)
        return (
            big.instance.end_time,
            small.instance.end_time,
            big.instance.attempts,
            tuple((e["time"], e["event"]) for e in recovery.audit),
        )

    legacy = _run_in_mode(monkeypatch, False, scenario)
    incremental = _run_in_mode(monkeypatch, True, scenario)
    assert legacy == incremental
    assert legacy[2] >= 2  # the big collective really was retried
