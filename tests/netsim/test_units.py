"""Unit conversion tests."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim import units


def test_gbps_converts_bits_to_bytes():
    assert units.gbps(100) == 100e9 / 8


def test_gbps_50_is_6_25_gigabytes():
    assert units.gbps(50) == pytest.approx(6.25e9)


def test_gBps_is_decimal():
    assert units.gBps(1.0) == 1e9


def test_to_gBps_round_trip():
    assert units.to_gBps(units.gBps(3.5)) == pytest.approx(3.5)


def test_size_constants_are_binary():
    assert units.KB == 1024
    assert units.MB == 1024**2
    assert units.GB == 1024**3


def test_parse_size_examples():
    assert units.parse_size("32KB") == 32 * 1024
    assert units.parse_size("8MB") == 8 * 1024**2
    assert units.parse_size("512MB") == 512 * 1024**2
    assert units.parse_size("1GB") == 1024**3
    assert units.parse_size("123") == 123
    assert units.parse_size("100B") == 100


def test_parse_size_is_case_insensitive():
    assert units.parse_size("32kb") == 32 * 1024


def test_format_size_examples():
    assert units.format_size(32 * 1024) == "32KB"
    assert units.format_size(512 * 1024**2) == "512MB"
    assert units.format_size(1024**3) == "1GB"
    assert units.format_size(100) == "100B"


@given(st.sampled_from([1, 2, 32, 128, 512]), st.sampled_from(["KB", "MB", "GB"]))
def test_parse_format_round_trip(value, suffix):
    text = f"{value}{suffix}"
    assert units.format_size(units.parse_size(text)) == text


def test_time_constants():
    assert units.USEC == pytest.approx(1e-6)
    assert units.MSEC == pytest.approx(1e-3)
    assert units.SEC == 1.0


def test_bytes_to_gb():
    assert units.bytes_to_gb(2.5e9) == pytest.approx(2.5)
