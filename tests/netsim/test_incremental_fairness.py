"""IncrementalFairnessSolver vs the reference allocator, under churn.

The persistent solver must produce the same weighted max-min allocation as
:func:`progressive_filling` after *any* sequence of structural updates
(flow add/remove, gate flips, capacity changes) — that is the whole
correctness contract of the O(Δ) update path, including tombstone
compaction and slot reuse.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netsim.fairness import (
    IncrementalFairnessSolver,
    progressive_filling,
)
from repro.netsim.flows import Flow

LINKS = [f"l{i}" for i in range(6)]


def mk_flow(path, weight=1.0, gated=False, size=1e9):
    return Flow(size=size, path=tuple(path), weight=weight, gated=gated)


def assert_matches_reference(solver, live, caps):
    solver.solve()
    got = solver.rates_by_id()
    want = progressive_filling(list(live.values()), caps)
    assert set(got) == set(want)
    for flow_id, rate in want.items():
        assert got[flow_id] == pytest.approx(rate, rel=1e-9, abs=1e-9)


# One churn operation: (kind, path selector, weight, capacity).
_op = st.tuples(
    st.sampled_from(["add", "remove", "gate", "ungate", "capacity"]),
    st.lists(st.sampled_from(LINKS), min_size=1, max_size=4, unique=True),
    st.floats(min_value=0.25, max_value=4.0),
    st.floats(min_value=0.5, max_value=20.0),
)


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(_op, min_size=1, max_size=40), data=st.data())
def test_churn_matches_progressive_filling(ops, data):
    caps = {link: 10.0 for link in LINKS}
    solver = IncrementalFairnessSolver(caps)
    live = {}
    for kind, path, weight, capacity in ops:
        if kind == "add" or not live:
            flow = mk_flow(path, weight=weight)
            solver.add_flow(flow)
            live[flow.flow_id] = flow
        elif kind == "remove":
            flow_id = data.draw(st.sampled_from(sorted(live)))
            flow = live.pop(flow_id)
            solver.remove_flow(flow)
        elif kind in ("gate", "ungate"):
            flow_id = data.draw(st.sampled_from(sorted(live)))
            flow = live[flow_id]
            flow.gated = kind == "gate"
            solver.set_active(flow, flow.active)
        else:  # capacity
            link = path[0]
            caps[link] = capacity
            solver.set_capacity(link, capacity)
        assert_matches_reference(solver, live, caps)


def test_empty_solver_solves_to_nothing():
    solver = IncrementalFairnessSolver({"l0": 10.0})
    changed, rates = solver.solve()
    assert changed.size == 0
    assert solver.rates_by_id() == {}
    assert solver.link_loads() == {}


def test_changed_slots_are_only_the_moved_rates():
    caps = {"l0": 10.0, "l1": 10.0}
    solver = IncrementalFairnessSolver(caps)
    f0 = mk_flow(["l0"])
    f1 = mk_flow(["l1"])
    solver.add_flow(f0)
    solver.add_flow(f1)
    changed, rates = solver.solve()
    assert len(changed) == 2  # both went 0 -> 10
    # A third flow on l1 halves f1's rate but leaves f0 untouched.
    f2 = mk_flow(["l1"])
    solver.add_flow(f2)
    changed, rates = solver.solve()
    moved = {solver.flow_at(int(s)).flow_id for s in changed}
    assert moved == {f1.flow_id, f2.flow_id}
    assert solver.rates_by_id()[f0.flow_id] == pytest.approx(10.0)
    assert solver.rates_by_id()[f1.flow_id] == pytest.approx(5.0)


def test_gated_flow_gets_zero_and_share_returns():
    caps = {"l0": 9.0}
    solver = IncrementalFairnessSolver(caps)
    flows = [mk_flow(["l0"]) for _ in range(3)]
    for f in flows:
        solver.add_flow(f)
    solver.solve()
    assert solver.rates_by_id()[flows[0].flow_id] == pytest.approx(3.0)
    flows[0].gated = True
    solver.set_active(flows[0], flows[0].active)
    solver.solve()
    rates = solver.rates_by_id()
    assert rates[flows[0].flow_id] == 0.0
    assert rates[flows[1].flow_id] == pytest.approx(4.5)


def test_capacity_change_applies_immediately():
    solver = IncrementalFairnessSolver({"l0": 10.0})
    flow = mk_flow(["l0"])
    solver.add_flow(flow)
    solver.solve()
    solver.set_capacity("l0", 4.0)
    solver.solve()
    assert solver.rates_by_id()[flow.flow_id] == pytest.approx(4.0)
    assert solver.capacity("l0") == pytest.approx(4.0)


def test_compaction_reclaims_tombstones_and_slots():
    caps = {link: 10.0 for link in LINKS}
    solver = IncrementalFairnessSolver(caps)
    doomed = [mk_flow(LINKS[:3]) for _ in range(60)]
    keeper = mk_flow(["l0"])
    for f in doomed:
        solver.add_flow(f)
    solver.add_flow(keeper)
    solver.solve()
    rebuilds_before = solver.full_rebuilds
    for f in doomed:
        solver.remove_flow(f)
    # 180 dead incidence entries vs 1 live: the next solve must compact.
    solver.solve()
    assert solver.full_rebuilds == rebuilds_before + 1
    assert solver._dead_nnz == 0
    assert solver._nnz == 1
    assert solver.rates_by_id() == {keeper.flow_id: pytest.approx(10.0)}
    # Freed slots are reusable after compaction.
    fresh = mk_flow(["l1"])
    solver.add_flow(fresh)
    solver.solve()
    assert solver.rates_by_id()[fresh.flow_id] == pytest.approx(10.0)


def test_delta_counters_track_updates():
    solver = IncrementalFairnessSolver({"l0": 10.0, "l1": 10.0})
    f0, f1 = mk_flow(["l0"]), mk_flow(["l1"])
    solver.add_flow(f0)
    solver.add_flow(f1)
    solver.solve()
    assert solver.last_delta == 2
    solver.remove_flow(f0)
    solver.set_capacity("l1", 5.0)
    solver.solve()
    assert solver.last_delta == 2
    assert solver.delta_updates == 4
    assert solver.delta_flows_total == 4
    solver.solve()
    assert solver.last_delta == 0


def test_unknown_link_raises():
    solver = IncrementalFairnessSolver({"l0": 10.0})
    with pytest.raises(KeyError):
        solver.add_flow(mk_flow(["nope"]))


def test_link_loads_and_utilization_reflect_last_solve():
    solver = IncrementalFairnessSolver({"l0": 10.0, "l1": 20.0})
    solver.add_flow(mk_flow(["l0", "l1"]))
    solver.solve()
    assert solver.link_loads() == {
        "l0": pytest.approx(10.0),
        "l1": pytest.approx(10.0),
    }
    util = solver.link_utilization()
    assert util["l0"] == pytest.approx(1.0)
    assert util["l1"] == pytest.approx(0.5)


# ----------------------------------------------------------------------
# fast-mode wrappers: macro aggregation / sharded solve are bit-exact
# ----------------------------------------------------------------------
#: Fixed path pool: overlapping paths force shared components (and macro
#: groups when (path, weight, job) repeats); ``l3``/``l4->l5`` stay
#: disjoint so the sharded solver sees independent domains and solo
#: singletons.
_PATHS = [("l0", "l1"), ("l1", "l2"), ("l3",), ("l4", "l5"), ("l2", "l3")]

#: Dyadic weights/caps keep every partial sum and product exact, which is
#: the macro aggregation's exactness condition (``k*w`` representable)
#: and avoids manufactured near-ties between disjoint components (the
#: sharded solver's documented 1e-9 freeze-tolerance caveat).
_DYADIC_WEIGHTS = [0.5, 1.0, 2.0]
_DYADIC_CAPS = [2.5, 5.0, 10.0, 20.0]

_wrap_op = st.tuples(
    st.sampled_from(["add", "batch", "remove", "gate", "ungate", "capacity"]),
    st.integers(0, len(_PATHS) - 1),
    st.sampled_from(_DYADIC_WEIGHTS),
    st.sampled_from(["jobA", "jobB"]),
    st.integers(2, 4),  # batch size
    st.sampled_from(_DYADIC_CAPS),
)


def _make_wrapped_solvers(caps):
    from repro.netsim.macroflow import MacroFlowSolver
    from repro.netsim.sharding import ShardedFairnessSolver

    return {
        "sharded": ShardedFairnessSolver(dict(caps)),
        "macro": MacroFlowSolver(IncrementalFairnessSolver(dict(caps))),
        "macro+sharded": MacroFlowSolver(ShardedFairnessSolver(dict(caps))),
    }


@settings(max_examples=40, deadline=None, derandomize=True)
@given(ops=st.lists(_wrap_op, min_size=1, max_size=30), data=st.data())
def test_fast_wrappers_bit_identical_to_reference(ops, data):
    """Macro/sharded solvers equal the per-flow reference with ``==``.

    The same :class:`Flow` objects are registered with the reference
    solver and with every wrapper (solvers never mutate flows), so any
    rate difference — even one ulp — fails the comparison.
    """
    caps = {link: 10.0 for link in LINKS}
    reference = IncrementalFairnessSolver(dict(caps))
    wrappers = _make_wrapped_solvers(caps)
    live = {}
    for kind, path_idx, weight, job, batch, capacity in ops:
        path = _PATHS[path_idx]
        if kind in ("add", "batch") or not live:
            flows = [
                Flow(size=1e9, path=path, weight=weight, job_id=job)
                for _ in range(batch if kind == "batch" else 1)
            ]
            for flow in flows:
                reference.add_flow(flow)
                live[flow.flow_id] = flow
            for solver in wrappers.values():
                batch_add = getattr(solver, "add_flows", None)
                if batch_add is not None and len(flows) > 1:
                    batch_add(flows)
                else:
                    for flow in flows:
                        solver.add_flow(flow)
        elif kind == "remove":
            flow = live.pop(data.draw(st.sampled_from(sorted(live))))
            reference.remove_flow(flow)
            for solver in wrappers.values():
                solver.remove_flow(flow)
        elif kind in ("gate", "ungate"):
            flow = live[data.draw(st.sampled_from(sorted(live)))]
            flow.gated = kind == "gate"
            reference.set_active(flow, flow.active)
            for solver in wrappers.values():
                solver.set_active(flow, flow.active)
        else:  # capacity
            link = path[0]
            reference.set_capacity(link, capacity)
            for solver in wrappers.values():
                solver.set_capacity(link, capacity)
        reference.solve()
        want = reference.rates_by_id()
        for name, solver in wrappers.items():
            solver.solve()
            got = solver.rates_by_id()
            for flow_id in live:
                assert got.get(flow_id, 0.0) == want.get(flow_id, 0.0), name
