"""Flow object invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.flows import Flow


def test_flow_requires_positive_size():
    with pytest.raises(ValueError):
        Flow(size=0, path=("l",))


def test_flow_requires_path():
    with pytest.raises(ValueError):
        Flow(size=1.0, path=())


def test_flow_requires_positive_weight():
    with pytest.raises(ValueError):
        Flow(size=1.0, path=("l",), weight=0.0)


def test_flow_ids_unique():
    a = Flow(size=1.0, path=("l",))
    b = Flow(size=1.0, path=("l",))
    assert a.flow_id != b.flow_id


def test_initial_state():
    f = Flow(size=10.0, path=("l1", "l2"))
    assert f.remaining == 10.0
    assert not f.completed
    assert f.active
    assert f.progress() == 0.0


def test_gated_flow_is_not_active():
    f = Flow(size=10.0, path=("l",), gated=True)
    assert not f.active and not f.completed


def test_fct_requires_completion():
    f = Flow(size=10.0, path=("l",))
    with pytest.raises(ValueError):
        f.fct()
    f.start_time = 1.0
    f.end_time = 3.5
    assert f.fct() == pytest.approx(2.5)


@given(st.floats(1.0, 1e9), st.floats(0.0, 1.0))
def test_progress_bounds(size, frac):
    f = Flow(size=size, path=("l",))
    f.remaining = size * (1 - frac)
    assert 0.0 <= f.progress() <= 1.0 + 1e-9
    assert f.progress() == pytest.approx(frac, abs=1e-6)


def test_path_normalized_to_tuple():
    f = Flow(size=1.0, path=["l1", "l2"])
    assert isinstance(f.path, tuple)


def test_flows_hash_by_identity():
    a = Flow(size=1.0, path=("l",))
    b = Flow(size=1.0, path=("l",))
    assert len({a, b}) == 2
