"""ECMP hashing and route-id path control."""

import pytest

from repro.netsim.errors import NoPathError
from repro.netsim.fabric import nic_node, testbed_fabric as build_testbed
from repro.netsim.routing import (
    EcmpSelector,
    RandomSelector,
    RouteIdSelector,
    RouteMap,
    ecmp_hash,
)


@pytest.fixture
def fab():
    return build_testbed()


def key(i=0):
    return (nic_node(0, 0), nic_node(2, 0), f"conn{i}")


def test_ecmp_hash_is_deterministic():
    assert ecmp_hash(key(), 2, seed=5) == ecmp_hash(key(), 2, seed=5)


def test_ecmp_hash_varies_with_seed():
    values = {ecmp_hash(key(), 16, seed=s) for s in range(40)}
    assert len(values) > 4


def test_ecmp_hash_varies_with_discriminator():
    values = {ecmp_hash(key(i), 16) for i in range(40)}
    assert len(values) > 4


def test_ecmp_hash_is_roughly_balanced():
    hits = [ecmp_hash(key(i), 2) for i in range(400)]
    ones = sum(hits)
    assert 120 <= ones <= 280  # loose 2-sided bound


def test_ecmp_hash_rejects_zero_paths():
    with pytest.raises(ValueError):
        ecmp_hash(key(), 0)


def test_ecmp_selector_returns_valid_path(fab):
    selector = EcmpSelector(seed=3)
    path = selector.select(fab.topology, key())
    assert path in fab.topology.equal_cost_paths(*key()[:2])


def test_route_map_assignment_and_lookup():
    rm = RouteMap()
    rm.assign(key(), 1)
    assert rm.route_id(key()) == 1
    assert rm.route_id(key(9)) is None
    assert len(rm) == 1


def test_route_map_rejects_negative():
    with pytest.raises(ValueError):
        RouteMap().assign(key(), -1)


def test_route_map_merge_and_clear():
    a, b = RouteMap(), RouteMap()
    a.assign(key(0), 0)
    b.assign(key(1), 1)
    a.merge(b)
    assert len(a) == 2
    a.clear_job("conn0")
    assert a.route_id(key(0)) is None
    assert a.route_id(key(1)) == 1


def test_route_id_selector_honours_map(fab):
    rm = RouteMap()
    rm.assign(key(), 1)
    selector = RouteIdSelector(rm)
    paths = fab.topology.equal_cost_paths(*key()[:2])
    assert selector.select(fab.topology, key()) == paths[1]


def test_route_id_selector_falls_back_to_ecmp(fab):
    selector = RouteIdSelector(RouteMap(), fallback_seed=11)
    expected = EcmpSelector(seed=11).select(fab.topology, key())
    assert selector.select(fab.topology, key()) == expected


def test_route_id_out_of_range_raises(fab):
    rm = RouteMap()
    rm.assign(key(), 99)
    with pytest.raises(NoPathError):
        RouteIdSelector(rm).select(fab.topology, key())


def test_random_selector_seeded(fab):
    a = RandomSelector(seed=1)
    b = RandomSelector(seed=1)
    for i in range(10):
        assert a.select(fab.topology, key(i)) == b.select(fab.topology, key(i))


# ----------------------------------------------------------------------
# Clos-scale selection: path synthesis without BFS
# ----------------------------------------------------------------------
def test_clos_ecmp_selector_paths_are_valid_and_deterministic():
    from repro.netsim.fabric import MultiPodSpec, multi_pod_clos
    from repro.netsim.routing import ClosEcmpSelector, clos_path

    spec = MultiPodSpec(
        pods=2,
        spines_per_pod=2,
        leaves_per_pod=2,
        hosts_per_leaf=2,
        nics_per_host=2,
        core_switches=2,
    )
    fabric = multi_pod_clos(spec)
    selector = ClosEcmpSelector(spec, seed=3)
    hosts_per_pod = spec.hosts_per_pod
    seen = set()
    for i in range(24):
        src = i % (2 * hosts_per_pod)
        dst = (i * 5 + 3) % (2 * hosts_per_pod)
        if dst == src:
            dst = (dst + 1) % (2 * hosts_per_pod)
        k = (nic_node(src, i % 2), nic_node(dst, (i + 1) % 2), f"c{i}")
        path = selector.select(fabric.topology, k)
        fabric.topology.validate_path(path)  # raises on any bad link
        assert path == selector.select(fabric.topology, k)
        seen.add(tuple(path))
    assert len(seen) > 1  # the hash actually spreads choices
    # The synthesized path equals the explicit-index synthesis.
    assert clos_path(spec, 0, 0, 1, 1, spine=0, core=0) == tuple(
        clos_path(spec, 0, 0, 1, 1, spine=0, core=0)
    )


def test_clos_path_tier_shapes():
    from repro.netsim.routing import clos_path
    from repro.netsim.fabric import MultiPodSpec

    spec = MultiPodSpec(
        pods=2,
        spines_per_pod=2,
        leaves_per_pod=2,
        hosts_per_leaf=2,
        nics_per_host=2,
        core_switches=2,
    )
    same_leaf = clos_path(spec, 0, 0, 1, 0, spine=0, core=0)
    intra_pod = clos_path(spec, 0, 0, 2, 0, spine=1, core=0)
    inter_pod = clos_path(spec, 0, 0, spec.hosts_per_pod, 0, spine=0, core=1)
    assert len(same_leaf) == 2
    assert len(intra_pod) == 4 and "pod0.spine1" in intra_pod[1]
    assert len(inter_pod) == 6 and any("core1" in hop for hop in inter_pod)
