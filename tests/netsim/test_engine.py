"""Discrete-event fluid simulator tests."""

import pytest

from repro.netsim.engine import FlowSimulator
from repro.netsim.errors import SimulationError
from repro.netsim.topology import Topology


def line_topo(cap=8.0):
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    topo.add_node("c")
    topo.add_link("a", "b", cap)
    topo.add_link("b", "c", cap)
    return topo


def test_single_flow_completion_time():
    sim = FlowSimulator(line_topo(cap=8.0))
    flow = sim.add_flow(16.0, ["a->b"])
    t = sim.run()
    assert t == pytest.approx(2.0)
    assert flow.completed and flow.fct() == pytest.approx(2.0)


def test_two_flows_share_then_speed_up():
    # Two equal flows share 8 B/s; after the first half completes... they
    # are equal so they finish together at t = 2*size/cap.
    sim = FlowSimulator(line_topo())
    f1 = sim.add_flow(8.0, ["a->b"])
    f2 = sim.add_flow(8.0, ["a->b"])
    t = sim.run()
    assert t == pytest.approx(2.0)
    assert f1.end_time == f2.end_time == pytest.approx(2.0)


def test_staggered_flow_gets_residual():
    sim = FlowSimulator(line_topo())
    f1 = sim.add_flow(8.0, ["a->b"])
    # f2 arrives at t=0.5 (f1 has 4 bytes left); they share at 4 B/s, so
    # f1 finishes its remaining 4 bytes at t=1.5.
    sim.schedule(0.5, lambda: sim.add_flow(8.0, ["a->b"], tags={"late": True}))
    sim.run()
    assert f1.end_time == pytest.approx(1.5)


def test_completion_callback_fires_with_time():
    sim = FlowSimulator(line_topo())
    seen = []
    sim.add_flow(8.0, ["a->b"], on_complete=lambda f, t: seen.append((f.flow_id, t)))
    sim.run()
    assert seen and seen[0][1] == pytest.approx(1.0)


def test_events_and_flows_interleave():
    sim = FlowSimulator(line_topo())
    order = []
    sim.add_flow(8.0, ["a->b"], on_complete=lambda f, t: order.append("flow"))
    sim.schedule(0.5, lambda: order.append("early"))
    sim.schedule(2.0, lambda: order.append("late"))
    sim.run()
    assert order == ["early", "flow", "late"]


def test_run_until_stops_clock_exactly():
    sim = FlowSimulator(line_topo())
    flow = sim.add_flow(8.0, ["a->b"])
    t = sim.run(until=0.25)
    assert t == pytest.approx(0.25)
    assert flow.remaining == pytest.approx(6.0)
    sim.run()
    assert flow.end_time == pytest.approx(1.0)


def test_cancel_flow_frees_bandwidth():
    sim = FlowSimulator(line_topo())
    f1 = sim.add_flow(8.0, ["a->b"])
    f2 = sim.add_flow(8.0, ["a->b"])
    sim.schedule(0.5, lambda: sim.cancel_flow(f1))
    sim.run()
    assert not f1.completed
    # f2: 2 bytes at 4 B/s by t=0.5, then 6 bytes at 8 B/s -> t=1.25
    assert f2.end_time == pytest.approx(1.25)


def test_gate_and_release():
    sim = FlowSimulator(line_topo())
    f = sim.add_flow(8.0, ["a->b"], gated=True)
    sim.schedule(3.0, lambda: sim.gate_flow(f, False))
    sim.run()
    assert f.end_time == pytest.approx(4.0)


def test_gating_mid_flight():
    sim = FlowSimulator(line_topo())
    f = sim.add_flow(8.0, ["a->b"])
    sim.schedule(0.5, lambda: sim.gate_flow(f, True))
    sim.schedule(1.5, lambda: sim.gate_flow(f, False))
    sim.run()
    # 4 bytes by 0.5, paused 1s, remaining 4 bytes -> 2.0
    assert f.end_time == pytest.approx(2.0)


def test_permanently_gated_flow_raises_stall():
    sim = FlowSimulator(line_topo())
    f = sim.add_flow(8.0, ["a->b"], gated=True)
    sim.gate_flow(f, False)
    sim.gate_flow(f, True)
    f.gated = False  # active but rate stays 0? no - force recompute path:
    f.gated = True
    sim.run()  # gated flows are not "active"; quiescent run is fine
    assert not f.completed


def test_set_link_capacity_changes_rates():
    sim = FlowSimulator(line_topo(cap=8.0))
    f = sim.add_flow(8.0, ["a->b"])
    sim.schedule(0.5, lambda: sim.set_link_capacity("a->b", 2.0))
    sim.run()
    # 4 bytes at 8 B/s, then 4 bytes at 2 B/s -> 0.5 + 2 = 2.5
    assert f.end_time == pytest.approx(2.5)


def test_capacity_must_stay_positive():
    sim = FlowSimulator(line_topo())
    with pytest.raises(ValueError):
        sim.set_link_capacity("a->b", 0.0)
    with pytest.raises(KeyError):
        sim.set_link_capacity("ghost", 1.0)


def test_when_all_fires_after_last():
    sim = FlowSimulator(line_topo())
    f1 = sim.add_flow(8.0, ["a->b"])
    f2 = sim.add_flow(4.0, ["b->c"])
    times = []
    sim.when_all([f1, f2], times.append)
    sim.run()
    assert times == [pytest.approx(1.0)]


def test_when_all_with_no_pending_fires_immediately():
    sim = FlowSimulator(line_topo())
    f = sim.add_flow(8.0, ["a->b"])
    sim.run()
    times = []
    sim.when_all([f], times.append)
    sim.run()
    assert times == [pytest.approx(1.0)]


def test_when_all_preserves_existing_callbacks():
    sim = FlowSimulator(line_topo())
    order = []
    f = sim.add_flow(8.0, ["a->b"], on_complete=lambda fl, t: order.append("own"))
    sim.when_all([f], lambda t: order.append("all"))
    sim.run()
    assert order == ["own", "all"]


def test_call_in_negative_delay_rejected():
    sim = FlowSimulator(line_topo())
    with pytest.raises(ValueError):
        sim.call_in(-1.0, lambda: None)


def test_multipath_flows_do_not_interact():
    topo = Topology()
    for n in ("a", "b", "c", "d"):
        topo.add_node(n)
    topo.add_link("a", "b", 10.0)
    topo.add_link("c", "d", 10.0)
    sim = FlowSimulator(topo)
    f1 = sim.add_flow(10.0, ["a->b"])
    f2 = sim.add_flow(10.0, ["c->d"])
    sim.run()
    assert f1.end_time == f2.end_time == pytest.approx(1.0)


def test_interference_penalty_applies_on_shared_links():
    topo = line_topo(cap=10.0)
    sim = FlowSimulator(topo, interference_penalty=0.2)
    f1 = sim.add_flow(8.0, ["a->b"], job_id="jobA")
    f2 = sim.add_flow(8.0, ["a->b"], job_id="jobB")
    # effective capacity 8.0 shared by two flows -> 4.0 each -> t=2.0
    sim.run()
    assert f1.end_time == pytest.approx(2.0)
    assert f2.end_time == pytest.approx(2.0)


def test_interference_penalty_skips_single_tenant_links():
    sim = FlowSimulator(line_topo(cap=10.0), interference_penalty=0.2)
    f1 = sim.add_flow(10.0, ["a->b"], job_id="jobA")
    f2 = sim.add_flow(10.0, ["a->b"], job_id="jobA")  # same job
    sim.run()
    assert f1.end_time == pytest.approx(2.0)  # full 10.0 shared by 2


def test_interference_penalty_validation():
    with pytest.raises(ValueError):
        FlowSimulator(line_topo(), interference_penalty=1.0)
    with pytest.raises(ValueError):
        FlowSimulator(line_topo(), interference_penalty=-0.1)


def test_events_scheduled_in_past_clamp_to_now():
    sim = FlowSimulator(line_topo())
    sim.add_flow(8.0, ["a->b"])
    sim.run()
    fired = []
    sim.schedule(0.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [pytest.approx(1.0)]


def test_flow_counters():
    sim = FlowSimulator(line_topo())
    sim.add_flow(8.0, ["a->b"])
    sim.add_flow(8.0, ["b->c"])
    sim.run()
    assert sim.flows_completed == 2
    assert sim.rate_recomputations >= 1
