"""NCCL-like baseline library tests."""

import numpy as np
import pytest

from repro.baselines.nccl import NcclCommunicator, default_channels
from repro.cluster.specs import testbed_cluster
from repro.netsim.errors import CommunicatorError
from repro.netsim.units import MB


@pytest.fixture
def cl():
    return testbed_cluster()


@pytest.fixture
def four(cl):
    return [cl.hosts[h].gpus[0] for h in range(4)]


@pytest.fixture
def eight(cl):
    return [g for h in range(4) for g in cl.hosts[h].gpus]


def test_default_channels_match_nics_used(cl, four, eight):
    assert default_channels(four) == 1
    assert default_channels(eight) == 2


def test_ring_follows_user_rank_order(cl):
    """NCCL wires the inter-host ring exactly as the user ordered ranks."""
    gpus = [cl.hosts[h].gpus[0] for h in (0, 2, 1, 3)]
    comm = NcclCommunicator(cl, gpus)
    assert comm.schedule.order == (0, 1, 2, 3)  # rank order, i.e. hosts 0,2,1,3
    hosts = [comm.gpus[r].host_id for r in comm.schedule.order]
    assert hosts == [0, 2, 1, 3]


def test_or_variant_overrides_ring(cl, four):
    comm = NcclCommunicator(cl, four, ring_order=[3, 2, 1, 0])
    assert comm.schedule.order == (3, 2, 1, 0)


def test_connections_established_at_init(cl, four):
    comm = NcclCommunicator(cl, four)
    assert len(comm.connections) == 4


def test_optimal_ring_4gpu_hits_analytic_bandwidth(cl, four):
    """The no-collision closed form: 512 MB AllReduce at 4.17 GB/s."""
    comm = NcclCommunicator(cl, four)  # identity order == optimal here
    op = comm.all_reduce(512 * MB)
    cl.sim.run()
    algbw = 512 * MB / op.duration() / 1e9
    assert algbw == pytest.approx(6.25 / 1.5, rel=0.02)


def test_bad_ring_is_slower(cl):
    gpus = [cl.hosts[h].gpus[0] for h in (0, 2, 1, 3)]
    comm = NcclCommunicator(cl, gpus, ecmp_seed=1)
    op = comm.all_reduce(512 * MB)
    cl.sim.run()
    algbw = 512 * MB / op.duration() / 1e9
    assert algbw < 3.0  # vs 4.17 optimal


def test_collectives_serialize_per_communicator(cl, four):
    comm = NcclCommunicator(cl, four)
    a = comm.all_reduce(64 * MB)
    b = comm.all_reduce(64 * MB)
    cl.sim.run()
    assert b.handle.start_time >= a.end_time - 1e-9
    assert b.duration() > a.duration()  # b waited for a


def test_data_plane_round_trip(cl, four):
    comm = NcclCommunicator(cl, four)
    data = [np.full(16, float(i + 1)) for i in range(4)]
    op = comm.all_reduce(data[0].nbytes, data=data)
    cl.sim.run()
    assert op.outputs is not None
    assert all(np.allclose(o, 10.0) for o in op.outputs)


def test_all_gather_data(cl, four):
    comm = NcclCommunicator(cl, four)
    data = [np.full(4, float(i)) for i in range(4)]
    op = comm.all_gather(4 * data[0].nbytes, data=data)
    cl.sim.run()
    assert np.allclose(op.outputs[0], np.concatenate(data))


def test_broadcast_and_reduce(cl, four):
    comm = NcclCommunicator(cl, four)
    data = [np.full(4, float(i)) for i in range(4)]
    op = comm.broadcast(data[0].nbytes, root=2, data=data)
    cl.sim.run()
    assert all(np.allclose(o, 2.0) for o in op.outputs)
    op2 = comm.reduce(data[0].nbytes, root=1, data=data)
    cl.sim.run()
    assert np.allclose(op2.outputs[1], 6.0)


def test_tree_algorithm(cl, four):
    comm = NcclCommunicator(cl, four, algorithm="tree")
    data = [np.full(8, 1.0) for _ in range(4)]
    op = comm.all_reduce(data[0].nbytes, data=data)
    cl.sim.run()
    assert op.completed
    assert all(np.allclose(o, 4.0) for o in op.outputs)


def test_unknown_algorithm_rejected(cl, four):
    with pytest.raises(CommunicatorError):
        NcclCommunicator(cl, four, algorithm="mesh")


def test_destroyed_communicator_rejects_collectives(cl, four):
    comm = NcclCommunicator(cl, four)
    comm.destroy()
    with pytest.raises(CommunicatorError):
        comm.all_reduce(1024)


def test_zero_size_rejected(cl, four):
    comm = NcclCommunicator(cl, four)
    with pytest.raises(CommunicatorError):
        comm.all_reduce(0)


def test_ecmp_seed_changes_outcomes_somewhere(cl):
    """Across many seeds the bad ring sees both collision and luck."""
    values = set()
    for seed in range(12):
        cluster = testbed_cluster()
        gpus = [cluster.hosts[h].gpus[0] for h in (0, 2, 1, 3)]
        comm = NcclCommunicator(cluster, gpus, ecmp_seed=seed)
        op = comm.all_reduce(512 * MB)
        cluster.sim.run()
        values.add(round(512 * MB / op.duration() / 1e9, 2))
    assert len(values) >= 2


def test_stream_integration(cl, four):
    comm = NcclCommunicator(cl, four)
    stream = four[0].create_stream()
    stream.compute(5e-3)
    op = comm.all_reduce(8 * MB, stream=stream)
    cl.sim.run()
    assert op.handle.start_time >= 5e-3


def test_auto_algorithm_static_selection(cl, four):
    """'auto' mirrors classic libraries: tree for small latency-bound
    messages, ring for large bandwidth-bound ones (§2.1)."""
    from repro.collectives.types import Collective

    comm = NcclCommunicator(cl, four, algorithm="auto")
    assert comm._algorithm_for(Collective.ALL_REDUCE, 32 * 1024) == "tree"
    assert comm._algorithm_for(Collective.ALL_REDUCE, 512 * MB) == "ring"
    assert comm._algorithm_for(Collective.ALL_GATHER, 32 * 1024) == "ring"


def test_auto_algorithm_runs_both_paths(cl, four):
    comm = NcclCommunicator(cl, four, algorithm="auto")
    small = comm.all_reduce(32 * 1024)
    big = comm.all_reduce(512 * MB)
    cl.sim.run()
    assert small.completed and big.completed
    # the tree path is latency-cheaper for the tiny op
    assert small.duration() < big.duration()


def test_auto_selection_is_network_agnostic(cl, four):
    """The choice depends only on static factors — it does not react to a
    congested network, which is the paper's point."""
    from repro.collectives.types import Collective
    from repro.netsim.units import gbps

    comm = NcclCommunicator(cl, four, algorithm="auto")
    before = comm._algorithm_for(Collective.ALL_REDUCE, 8 * MB)
    # crush the fabric: auto does not notice
    for link_id in list(cl.topology.links):
        if "spine" in link_id:
            cl.sim.set_link_capacity(link_id, gbps(1))
    after = comm._algorithm_for(Collective.ALL_REDUCE, 8 * MB)
    assert before == after
