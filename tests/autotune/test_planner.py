"""Offline planner: cost model, candidate space, ranking, table building."""

import pytest

from repro.autotune import (
    StrategyPlanner,
    TuningTable,
    bottleneck_seconds,
    estimate_seconds,
    pair_traffic,
    pipelined_seconds,
    size_bucket,
    topology_fingerprint,
)
from repro.cluster.specs import testbed_cluster
from repro.collectives.types import Collective
from repro.experiments.setups import single_app_gpus
from repro.netsim.units import KB, MB
from repro.telemetry.metrics import MetricsRegistry


@pytest.fixture
def gpus(cluster):
    return single_app_gpus(cluster, "8gpu")


# -- fingerprint ----------------------------------------------------------------
def test_fingerprint_is_stable_and_descriptive(cluster, gpus):
    fp = topology_fingerprint(cluster, gpus)
    assert fp == topology_fingerprint(testbed_cluster(), gpus)
    assert cluster.fabric.spec.name in fp
    assert "hosts4" in fp and "racks2" in fp


def test_fingerprint_distinguishes_placement_shape(cluster):
    fp8 = topology_fingerprint(cluster, single_app_gpus(cluster, "8gpu"))
    fp4 = topology_fingerprint(cluster, single_app_gpus(cluster, "4gpu"))
    assert fp8 != fp4


# -- traffic + bottleneck -------------------------------------------------------
def test_pair_traffic_falls_back_to_ring():
    # tree only specializes AllReduce; halving-doubling additionally
    # needs a power-of-two world — both mirror the registry fallback
    ring = pair_traffic("ring", Collective.ALL_GATHER, range(4), 100)
    assert pair_traffic("tree", Collective.ALL_GATHER, range(4), 100) == ring
    hd6 = pair_traffic("halving_doubling", Collective.ALL_REDUCE, range(6), 100)
    assert hd6 == pair_traffic("ring", Collective.ALL_REDUCE, range(6), 100)


def test_pair_traffic_specializations_differ_from_ring():
    ring = pair_traffic("ring", Collective.ALL_REDUCE, range(8), 100)
    tree = pair_traffic("tree", Collective.ALL_REDUCE, range(8), 100)
    hd = pair_traffic("halving_doubling", Collective.ALL_REDUCE, range(8), 100)
    assert tree != ring and hd != ring and hd != tree


def test_bottleneck_spine_uplink_bites_cross_rack(cluster, gpus):
    # the bisection-heavy halving-doubling butterfly loads the rack
    # uplinks harder than the locality-friendly ring at equal bytes
    nbytes = 64 * MB
    ring_t = bottleneck_seconds(
        cluster, gpus,
        pair_traffic("ring", Collective.ALL_REDUCE, range(8), nbytes), 2,
    )
    hd_t = bottleneck_seconds(
        cluster, gpus,
        pair_traffic("halving_doubling", Collective.ALL_REDUCE, range(8), nbytes), 2,
    )
    assert hd_t > ring_t


def test_bottleneck_intra_host_uses_local_channel(cluster):
    host = cluster.hosts[0]
    both_local = bottleneck_seconds(
        cluster, host.gpus, {(0, 1): 1e9, (1, 0): 1e9}, 1
    )
    # local_gBps (200 Gbps-equivalent at 25 GB/s) beats a 50 Gbps NIC
    one_remote = bottleneck_seconds(
        cluster,
        [host.gpus[0], cluster.hosts[1].gpus[0]],
        {(0, 1): 1e9, (1, 0): 1e9},
        1,
    )
    assert both_local < one_remote


def test_more_channels_spread_nic_load(cluster):
    gpus = [cluster.hosts[0].gpus[0], cluster.hosts[1].gpus[0]]
    traffic = {(0, 1): 1e9}
    one = bottleneck_seconds(cluster, gpus, traffic, 1)
    two = bottleneck_seconds(cluster, gpus, traffic, 2)
    assert two < one  # second channel lands on the second NIC


# -- pipelining -----------------------------------------------------------------
def test_pipelined_single_chunk_closed_form():
    assert pipelined_seconds(1.0, steps=4, chunks=1, per_step=0.1) == (
        pytest.approx(1.0 + 4 * 0.1)
    )


def test_pipelined_has_interior_optimum():
    # big transfer, small per-step: some chunking must beat none, while
    # absurd chunking pays per_step once per chunk and loses again
    times = {
        c: pipelined_seconds(1.0, steps=4, chunks=c, per_step=1e-3)
        for c in (1, 8, 10_000)
    }
    assert times[8] < times[1]
    assert times[8] < times[10_000]


def test_pipelined_rejects_bad_chunks():
    with pytest.raises(ValueError):
        pipelined_seconds(1.0, steps=4, chunks=0, per_step=0.1)


# -- ring canonicalization ------------------------------------------------------
def test_canonical_ring_collapses_rotations_and_reflections():
    from repro.autotune import canonical_ring

    base = (0, 3, 1, 2)
    for rotation in range(4):
        rotated = base[rotation:] + base[:rotation]
        assert canonical_ring(rotated) == canonical_ring(base)
        assert canonical_ring(tuple(reversed(rotated))) == (
            canonical_ring(base)
        )
    # genuinely different cycles stay apart
    assert canonical_ring((0, 1, 3, 2)) != canonical_ring((0, 1, 2, 3))
    assert canonical_ring(()) == ()


def test_equivalent_ring_orders_are_deduped_before_costing(
    cluster, gpus, monkeypatch
):
    """Satellite fix: a locality order that is merely a rotation or
    reflection of rank order must not double the candidate space."""
    import repro.autotune.planner as planner_mod

    def count(locality):
        monkeypatch.setattr(
            planner_mod, "locality_ring_order", lambda c, g: locality
        )
        planner = StrategyPlanner(cluster)
        orders = planner.ring_orders(gpus)
        return orders, len(planner.candidates(Collective.ALL_REDUCE, gpus))

    world = len(gpus)
    distinct = (0, 2, 4, 6, 1, 3, 5, 7)
    orders_two, n_two = count(distinct)
    assert set(orders_two) == {"rank_order", "locality"}

    # a rotation of identity, and its reflection, collapse to rank_order
    for alias in (
        tuple(range(3, world)) + tuple(range(3)),
        tuple(reversed(range(world))),
    ):
        orders_one, n_one = count(alias)
        assert set(orders_one) == {"rank_order"}
        assert n_one == n_two // 2  # candidate count drops, not just labels


# -- planner --------------------------------------------------------------------
def test_planner_validates_options(cluster):
    with pytest.raises(ValueError):
        StrategyPlanner(cluster, channel_options=())
    with pytest.raises(ValueError):
        StrategyPlanner(cluster, chunk_options=(0,))


def test_candidate_space_shape(cluster, gpus):
    planner = StrategyPlanner(cluster)
    allreduce = planner.candidates(Collective.ALL_REDUCE, gpus)
    assert {c.algorithm for c in allreduce} == {
        "ring", "tree", "halving_doubling",
    }
    # AllGather has no specialized families
    allgather = planner.candidates(Collective.ALL_GATHER, gpus)
    assert {c.algorithm for c in allgather} == {"ring"}
    # non-power-of-two world drops halving-doubling
    six = planner.candidates(Collective.ALL_REDUCE, gpus[:6])
    assert "halving_doubling" not in {c.algorithm for c in six}


def test_plan_collapses_chunk_dimension(cluster, gpus):
    planner = StrategyPlanner(cluster)
    ranked = planner.plan(Collective.ALL_REDUCE, 1 * MB, gpus)
    signatures = [s.candidate.signature() for s in ranked]
    assert len(signatures) == len(set(signatures))
    raw = planner.candidates(Collective.ALL_REDUCE, gpus)
    assert len(ranked) == len({c.signature() for c in raw})


def test_plan_is_sorted_and_size_sensitive(cluster, gpus):
    planner = StrategyPlanner(cluster)
    small = planner.plan(Collective.ALL_REDUCE, 64 * KB, gpus)
    large = planner.plan(Collective.ALL_REDUCE, 64 * MB, gpus)
    for ranked in (small, large):
        costs = [s.predicted_seconds for s in ranked]
        assert costs == sorted(costs)
    # the paper's trade: fewer latency hops win small, rings win large
    assert small[0].candidate.algorithm in ("halving_doubling", "tree")
    assert large[0].candidate.algorithm == "ring"
    assert planner.best(Collective.ALL_REDUCE, 64 * MB, gpus) == large[0]


def test_plan_publishes_metrics(cluster, gpus):
    metrics = MetricsRegistry()
    planner = StrategyPlanner(cluster, metrics=metrics)
    ranked = planner.plan(Collective.ALL_REDUCE, 1 * MB, gpus)
    assert planner.plans_evaluated > len(ranked)  # pre-collapse count
    counter = metrics.counters()["mccs_autotune_plans_evaluated_total"]
    assert counter.value(kind="all_reduce") == planner.plans_evaluated


def test_build_table_round_trips_through_json(cluster, gpus, tmp_path):
    planner = StrategyPlanner(cluster)
    sizes = (48 * KB, 64 * KB, 64 * MB)  # first two share bucket 16
    table = planner.build_table(
        gpus, kinds=(Collective.ALL_REDUCE, Collective.ALL_GATHER), sizes=sizes
    )
    buckets = {size_bucket(s) for s in sizes}
    assert len(table) == 2 * len(buckets)
    path = str(tmp_path / "table.json")
    table.save(path)
    restored = TuningTable.load(path)
    assert restored.to_json() == table.to_json()
    fp = topology_fingerprint(cluster, gpus)
    hit = restored.lookup("all_reduce", len(gpus), 48 * KB, fp)
    assert hit is not None
    assert hit.algorithm in ("halving_doubling", "tree")
    big = restored.lookup("all_reduce", len(gpus), 64 * MB, fp)
    assert big is not None and big.algorithm == "ring"
