"""Bounded-exploration bandit policies over strategy arms."""

import pytest

from repro.autotune import ArmStats, EpsilonGreedy, UcbBandit, make_bandit

ARMS = ["ring", "tree", "hd"]


def feed(bandit, costs, rounds=1):
    for _ in range(rounds):
        for arm, cost in costs.items():
            bandit.observe(arm, cost)


def test_arm_stats_mean():
    stats = ArmStats()
    assert stats.mean == float("inf")
    stats.observe(2.0)
    stats.observe(4.0)
    assert stats.mean == pytest.approx(3.0)


def test_observe_rejects_negative_cost():
    with pytest.raises(ValueError):
        EpsilonGreedy().observe("ring", -1.0)


def test_select_requires_arms():
    with pytest.raises(ValueError):
        EpsilonGreedy().select([])
    with pytest.raises(ValueError):
        UcbBandit().select([])


def test_best_arm_prefers_lowest_mean_then_name():
    bandit = EpsilonGreedy()
    feed(bandit, {"ring": 3.0, "tree": 1.0, "hd": 1.0})
    # tie between tree and hd broken deterministically by name
    assert bandit.best_arm(ARMS) == "hd"
    bandit.observe("tree", 0.0)
    assert bandit.best_arm(ARMS) == "tree"


def test_unpulled_arms_tried_first():
    for bandit in (EpsilonGreedy(seed=1), UcbBandit()):
        seen = set()
        for _ in range(len(ARMS)):
            arm = bandit.select(ARMS)
            assert arm not in seen  # never repeats an unpulled arm...
            seen.add(arm)
            bandit.observe(arm, 1.0)
        assert seen == set(ARMS)  # ...until every arm has one pull


@pytest.mark.parametrize(
    "bandit",
    [
        EpsilonGreedy(epsilon=1.0, exploration_budget=5, seed=0),
        UcbBandit(c=2.0, exploration_budget=5),
    ],
)
def test_exploration_budget_is_a_hard_bound(bandit):
    costs = {"ring": 3.0, "tree": 1.0, "hd": 2.0}
    for _ in range(40):
        arm = bandit.select(ARMS)
        bandit.observe(arm, costs[arm])
    assert bandit.state.exploration_spent <= 5
    assert bandit.exploration_exhausted
    # purely greedy from now on
    for _ in range(10):
        assert bandit.select(ARMS) == "tree"


@pytest.mark.parametrize("policy", ["epsilon", "ucb"])
def test_converges_to_cheapest_arm(policy):
    bandit = make_bandit(policy, exploration_budget=10, seed=3)
    costs = {"ring": 3.0, "tree": 1.0, "hd": 2.0}
    pulls = []
    for _ in range(60):
        arm = bandit.select(ARMS)
        bandit.observe(arm, costs[arm])
        pulls.append(arm)
    assert set(pulls[-10:]) == {"tree"}


def test_epsilon_greedy_is_deterministic_per_seed():
    def trajectory(seed):
        bandit = EpsilonGreedy(epsilon=0.5, exploration_budget=8, seed=seed)
        costs = {"ring": 3.0, "tree": 1.0, "hd": 2.0}
        out = []
        for _ in range(20):
            arm = bandit.select(ARMS)
            bandit.observe(arm, costs[arm])
            out.append(arm)
        return out

    assert trajectory(5) == trajectory(5)


def test_ucb_explores_undersampled_arms_before_budget_runs_out():
    bandit = UcbBandit(c=2.0, exploration_budget=20)
    # tree looks best but hd has barely been sampled
    feed(bandit, {"ring": 3.0, "tree": 1.0}, rounds=5)
    bandit.observe("hd", 1.05)
    spent = bandit.state.exploration_spent
    choices = {bandit.select(ARMS) for _ in range(1)}
    # the near-tied, undersampled arm gets optimism at least once
    for _ in range(6):
        arm = bandit.select(ARMS)
        bandit.observe(arm, {"ring": 3.0, "tree": 1.0, "hd": 1.05}[arm])
        choices.add(arm)
    assert "hd" in choices
    assert bandit.state.exploration_spent > spent


def test_make_bandit_validation():
    assert isinstance(make_bandit("epsilon"), EpsilonGreedy)
    assert isinstance(make_bandit("ucb"), UcbBandit)
    with pytest.raises(ValueError):
        make_bandit("thompson")
    with pytest.raises(ValueError):
        EpsilonGreedy(epsilon=1.5)
    with pytest.raises(ValueError):
        UcbBandit(c=-1.0)
    with pytest.raises(ValueError):
        EpsilonGreedy(exploration_budget=-1)
