"""Tuning-table keying, bucketing, and JSON persistence."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.autotune import (
    TABLE_FORMAT_VERSION,
    TableEntry,
    TableKey,
    TuningTable,
    size_bucket,
)

FP = "spine-leaf/spines2@50g/nic50g/hosts4[2x2x2x2]/racks2"


def entry(algorithm="ring", channels=2):
    return TableEntry(
        algorithm=algorithm,
        channels=channels,
        ring=(0, 1, 2, 3),
        chunk_bytes=65536,
        predicted_seconds=1.25e-4,
        candidates_evaluated=12,
    )


def key(bucket=16, kind="all_reduce"):
    return TableKey(kind=kind, world=4, bucket=bucket, fingerprint=FP)


def test_size_bucket_covers_half_open_power_of_two_ranges():
    assert size_bucket(1) == 0
    assert size_bucket(2) == 1
    assert size_bucket(1024) == 10
    assert size_bucket(1025) == 11
    with pytest.raises(ValueError):
        size_bucket(0)


@given(st.integers(1, 2**40))
@settings(max_examples=100, deadline=None)
def test_size_bucket_bounds(nbytes):
    k = size_bucket(nbytes)
    assert 2 ** (k - 1) < nbytes <= 2**k if k else nbytes == 1


def test_key_encode_decode_round_trip():
    k = key()
    assert TableKey.decode(k.encode()) == k


def test_key_decode_keeps_fingerprint_intact():
    # fingerprints contain '/' and '[' freely; only '|' is structural
    k = TableKey(kind="all_gather", world=8, bucket=26, fingerprint=FP)
    decoded = TableKey.decode(k.encode())
    assert decoded.fingerprint == FP
    assert decoded.world == 8 and decoded.bucket == 26


def test_get_counts_hits_and_misses():
    table = TuningTable()
    table.put(key(), entry())
    assert table.get(key()) == entry()
    assert table.get(key(bucket=20)) is None
    assert table.stats() == {"size": 1, "hits": 1, "misses": 1}


def test_lookup_buckets_the_size():
    table = TuningTable()
    table.put(key(bucket=16), entry())
    # 40000 lands in (2^15, 2^16]
    assert table.lookup("all_reduce", 4, 40000, FP) == entry()
    assert table.lookup("all_reduce", 4, 70000, FP) is None
    assert table.lookup("all_gather", 4, 40000, FP) is None


def test_entry_signature_is_the_runtime_part():
    assert entry().signature() == ("ring", 2, (0, 1, 2, 3))


def test_json_round_trip():
    table = TuningTable()
    table.put(key(bucket=16), entry("ring"))
    table.put(key(bucket=26), entry("halving_doubling", channels=1))
    table.put(key(bucket=16, kind="all_gather"), entry("tree"))
    restored = TuningTable.from_json(table.to_json())
    assert len(restored) == 3
    assert list(restored) == list(table)
    assert restored.to_json() == table.to_json()
    # hit/miss counters are runtime state, not persisted
    assert restored.stats()["hits"] == 0


def test_save_load_round_trip(tmp_path):
    table = TuningTable()
    table.put(key(), entry())
    path = str(tmp_path / "tuning.json")
    table.save(path)
    restored = TuningTable.load(path)
    assert restored.get(key()) == entry()


def test_from_json_rejects_unknown_format_version():
    with pytest.raises(ValueError):
        TuningTable.from_json({"format_version": TABLE_FORMAT_VERSION + 1})
    with pytest.raises(ValueError):
        TuningTable.from_json({"entries": {}})


def test_iteration_is_sorted_by_encoded_key():
    table = TuningTable()
    table.put(key(bucket=26), entry())
    table.put(key(bucket=16), entry())
    buckets = [k.bucket for k, _ in table]
    assert buckets == sorted(buckets)
