"""Online tuner integration: live retuning through the §4.2 barrier."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autotune import AutotuneConfig, StrategyPlanner, TuningTable
from repro.cluster.specs import testbed_cluster
from repro.collectives.types import Collective
from repro.core.deployment import MccsDeployment
from repro.experiments.setups import single_app_gpus
from repro.netsim.units import KB, MB


def tuned_run(
    size,
    *,
    rounds=12,
    config=None,
    table=None,
    setup="8gpu",
    on_complete=None,
):
    """Default-strategy communicator + autotuner, driven for ``rounds``.

    The communicator pins the experiment's datapath tag so durations (and
    comparisons against ``_measure_static``, which pins the same tag) are
    independent of how many communicators earlier tests created.
    """
    cluster = testbed_cluster()
    gpus = single_app_gpus(cluster, setup)
    deployment = MccsDeployment(cluster)
    tuner = deployment.enable_autotuning(config, table=table)
    comm = deployment.create_communicator(
        "A", gpus, datapath_tag="autotune"
    )
    client = deployment.connect("A")
    shim = client.adopt_communicator(comm.comm_id)
    durations = []
    for _ in range(rounds):
        client.all_reduce(
            shim,
            size,
            on_complete=lambda inst, now: (
                durations.append(inst.duration()),
                on_complete(inst) if on_complete else None,
            ),
        )
        deployment.run()
    return deployment, tuner, comm, durations


def test_enable_autotuning_is_idempotent_and_attaches_existing_comms():
    cluster = testbed_cluster()
    deployment = MccsDeployment(cluster)
    comm = deployment.create_communicator(
        "A", single_app_gpus(cluster, "4gpu")
    )
    tuner = deployment.enable_autotuning()
    assert tuner.attached_comms() == (comm.comm_id,)
    config = AutotuneConfig(policy="epsilon")
    assert deployment.enable_autotuning(config) is tuner
    assert tuner.config is config


def test_retunes_applied_exclusively_through_the_barrier():
    deployment, tuner, comm, _ = tuned_run(64 * KB)
    sessions = deployment.reconfig.sessions
    assert tuner.retunes_applied(comm.comm_id) > 0
    assert sessions, "the tuner never issued a reconfiguration"
    assert all(s.barrier_enabled for s in sessions)
    assert comm.inconsistent_collectives == 0


def test_strategy_versions_are_monotonic():
    _, tuner, comm, _ = tuned_run(64 * KB)
    versions = sorted(comm.strategy_history)
    assert versions == list(range(versions[0], versions[-1] + 1))
    assert comm.strategy.version == versions[-1]
    assert comm.strategy.version >= tuner.retunes_applied(comm.comm_id)


@pytest.mark.parametrize("size", [64 * KB, 64 * MB])
def test_tuner_converges_to_best_static_choice(size):
    cluster = testbed_cluster()
    gpus = single_app_gpus(cluster, "8gpu")
    predictions = StrategyPlanner(cluster).plan(
        Collective.ALL_REDUCE, size, gpus
    )
    deployment, tuner, comm, durations = tuned_run(size, rounds=24)
    tail = sum(durations[-4:]) / 4
    # measure the best candidate statically on a fresh deployment
    from repro.experiments.fig_autotune import _measure_static

    best_static = min(
        _measure_static(
            "8gpu",
            Collective.ALL_REDUCE,
            size,
            algorithm=s.candidate.algorithm,
            channels=s.candidate.channels,
            ring=s.candidate.ring,
            iters=2,
        )
        for s in predictions
    )
    assert tail <= best_static * 1.05


def test_observation_and_retune_metrics_published():
    deployment, tuner, comm, durations = tuned_run(64 * KB)
    counters = deployment.telemetry().metrics.counters()
    label = {"comm": f"comm{comm.comm_id}"}
    assert counters["mccs_autotune_observations_total"].value(**label) == (
        len(durations)
    )
    assert counters["mccs_autotune_retunes_applied_total"].total() == (
        tuner.retunes_applied(comm.comm_id)
    )
    assert "mccs_autotune_regret_seconds_total" in counters
    gauges = deployment.telemetry().metrics.gauges()
    assert "mccs_autotune_gain_seconds" in gauges


def test_table_miss_grows_table_then_hit_on_reload(tmp_path):
    deployment, tuner, _, _ = tuned_run(64 * KB, rounds=4)
    counters = deployment.telemetry().metrics.counters()
    assert counters["mccs_autotune_table_misses_total"].total() == 1
    assert len(tuner.table) == 1  # planner's winner cached on the miss
    path = str(tmp_path / "table.json")
    tuner.table.save(path)

    # a fresh deployment seeded with the persisted table hits immediately
    deployment2, tuner2, _, _ = tuned_run(
        64 * KB, rounds=4, table=TuningTable.load(path)
    )
    counters2 = deployment2.telemetry().metrics.counters()
    assert counters2["mccs_autotune_table_hits_total"].total() == 1
    assert counters2["mccs_autotune_table_misses_total"].total() == 0


def test_buckets_are_tuned_independently():
    deployment, tuner, comm, _ = tuned_run(64 * KB, rounds=6)
    client = deployment.connect("A")
    shim = client.adopt_communicator(comm.comm_id)
    for _ in range(6):
        client.all_reduce(shim, 64 * MB, on_complete=lambda inst, now: None)
        deployment.run()
    state = tuner._states[comm.comm_id]
    assert len(state.buckets) == 2
    kinds = {key[0] for key in state.buckets}
    assert kinds == {"all_reduce"}


def test_epsilon_policy_also_converges():
    config = AutotuneConfig(policy="epsilon", epsilon=0.3, seed=11)
    deployment, tuner, comm, durations = tuned_run(
        64 * KB, rounds=20, config=config
    )
    assert tuner.retunes_applied(comm.comm_id) > 0
    assert comm.inconsistent_collectives == 0
    # never ends up worse than where it started (allow fp noise)
    assert min(durations[-3:]) <= min(durations[:3]) * (1 + 1e-6)


@given(seed=st.integers(0, 2**16))
@settings(max_examples=5, deadline=None)
def test_midrun_retunes_preserve_byte_correctness(seed):
    """Real bytes through the service while the tuner retunes: every
    AllReduce — under whatever strategy the bandit had installed at that
    instant — lands the exact numpy sum in the receive buffers, and the
    executed strategy versions never regress."""
    rng = np.random.default_rng(seed)
    cluster = testbed_cluster()
    gpus = single_app_gpus(cluster, "8gpu")
    deployment = MccsDeployment(cluster)
    deployment.enable_autotuning(
        AutotuneConfig(policy="epsilon", epsilon=0.5, seed=seed)
    )
    comm = deployment.create_communicator("A", gpus)
    client = deployment.connect("A")
    shim = client.adopt_communicator(comm.comm_id)
    size = 64 * KB
    sends = [client.alloc(g, size) for g in gpus]
    recvs = [client.alloc(g, size) for g in gpus]
    executed = []
    for _ in range(10):
        values = rng.standard_normal(
            (len(gpus), size // 4)
        ).astype(np.float32)
        for buf, row in zip(sends, values):
            buf.view(np.float32)[:] = row
        for buf in recvs:
            buf.view(np.float32)[:] = 0.0
        client.all_reduce(
            shim,
            size,
            send=sends,
            recv=recvs,
            on_complete=lambda inst, now: executed.append(
                next(iter(inst.rank_versions.values()))
            ),
        )
        deployment.run()
        expected = values.sum(axis=0)
        for buf in recvs:
            assert np.allclose(buf.view(np.float32), expected, atol=1e-4)
    assert len(executed) == 10
    assert executed == sorted(executed)  # versions only move forward
    algorithms = {
        comm.strategy_history[v].algorithm for v in executed
    }
    assert algorithms <= {"ring", "tree", "halving_doubling"}
