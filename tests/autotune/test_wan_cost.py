"""WAN terms in the cost model: bandwidth loads and the RTT step penalty."""

import pytest

from repro.autotune import (
    StrategyPlanner,
    bottleneck_seconds,
    estimate_seconds,
    pair_traffic,
    wan_rtt_seconds,
)
from repro.cluster.specs import multi_region_cluster, testbed_cluster
from repro.collectives.types import Collective
from repro.experiments.setups import single_app_gpus
from repro.netsim.fabric import RegionSpec
from repro.netsim.units import KB, MB
from repro.synth import hierarchical_allreduce_program, temporarily_registered


@pytest.fixture
def two_regions():
    cluster = multi_region_cluster(RegionSpec())
    gpus = [h.gpus[0] for h in cluster.hosts]
    return cluster, gpus


def test_wan_bandwidth_enters_the_bottleneck(two_regions):
    cluster, gpus = two_regions
    traffic = pair_traffic("ring", Collective.ALL_REDUCE, range(8), 64 * MB)
    with_wan = bottleneck_seconds(cluster, gpus, traffic, 1)
    # same ring entirely inside region 0 never touches the WAN
    dense = multi_region_cluster(RegionSpec(), gpus_per_host=2)
    local_gpus = [g for h in dense.hosts[:4] for g in h.gpus]
    without_wan = bottleneck_seconds(dense, local_gpus, traffic, 1)
    assert with_wan > without_wan


def test_rtt_term_zero_without_regions_or_crossings(two_regions):
    cluster, gpus = two_regions
    traffic = pair_traffic("ring", Collective.ALL_REDUCE, range(8), 1 * MB)
    # single-region fabric: no region_of_host, term vanishes
    flat = testbed_cluster()
    flat_gpus = single_app_gpus(flat, "8gpu")
    assert wan_rtt_seconds(
        flat, flat_gpus, Collective.ALL_REDUCE,
        algorithm="ring", steps=14, traffic=traffic,
    ) == 0.0
    # multi-region fabric but placement confined to one region
    local = [h.gpus[0] for h in cluster.hosts[:4]]
    local_traffic = pair_traffic(
        "ring", Collective.ALL_REDUCE, range(4), 1 * MB
    )
    assert wan_rtt_seconds(
        cluster, local, Collective.ALL_REDUCE,
        algorithm="ring", steps=6, traffic=local_traffic,
    ) == 0.0


def test_builtin_pays_rtt_on_every_step_synth_only_on_crossing_steps(
    two_regions,
):
    cluster, gpus = two_regions
    wan_rtt = cluster.fabric.spec.wan_rtt
    assert wan_rtt > 0
    traffic = pair_traffic("ring", Collective.ALL_REDUCE, range(8), 1 * MB)
    ring_penalty = wan_rtt_seconds(
        cluster, gpus, Collective.ALL_REDUCE,
        algorithm="ring", steps=14, traffic=traffic,
    )
    assert ring_penalty == pytest.approx(wan_rtt * 14)

    program = hierarchical_allreduce_program(
        [[0, 1, 2, 3], [4, 5, 6, 7]], name="synth:test-wan-hier/w8"
    )
    with temporarily_registered(program) as (algo,):
        synth_penalty = wan_rtt_seconds(
            cluster, gpus, Collective.ALL_REDUCE,
            algorithm=algo.name,
            steps=program.num_steps,
            traffic=program.pair_traffic(1 * MB),
        )
    # only phase 2 (the inter-group all-reduce, 2(g-1)=2 steps) crosses
    assert synth_penalty == pytest.approx(wan_rtt * 2)
    assert synth_penalty < ring_penalty


@pytest.mark.parametrize("size", [64 * KB, 64 * MB])
def test_hierarchical_beats_flat_ring_on_multi_region_fingerprint(
    two_regions, size
):
    """Satellite acceptance: on the ``multi_region`` fingerprint the
    two-level schedule out-predicts the flat locality ring at both a
    latency-probe and a bandwidth-probe size."""
    cluster, gpus = two_regions
    program = hierarchical_allreduce_program(
        [[0, 1, 2, 3], [4, 5, 6, 7]], name="synth:test-wan-beats/w8"
    )
    with temporarily_registered(program) as (algo,):
        hier = estimate_seconds(
            cluster, gpus, Collective.ALL_REDUCE, size,
            algorithm=algo.name, channels=1,
            ring=tuple(range(8)), chunk_bytes=256 * KB,
        )
        best_flat_ring = min(
            estimate_seconds(
                cluster, gpus, Collective.ALL_REDUCE, size,
                algorithm="ring", channels=channels,
                ring=ring, chunk_bytes=256 * KB,
            )
            for channels in (1, 2)
            for ring in (tuple(range(8)), tuple(reversed(range(8))))
        )
    assert hier < best_flat_ring


def test_planner_on_two_regions_prefers_locality_consistent_orders(
    two_regions,
):
    # sanity: with no synth programs registered the planner still plans,
    # and its WAN-aware estimates keep the ranking sorted
    cluster, gpus = two_regions
    ranked = StrategyPlanner(cluster).plan(
        Collective.ALL_REDUCE, 16 * MB, gpus
    )
    costs = [s.predicted_seconds for s in ranked]
    assert costs == sorted(costs)
    assert all(
        not s.candidate.algorithm.startswith("synth:") for s in ranked
    )
