"""MCCS: Managed Collective Communication as a Service — reproduction.

A full Python reproduction of *MCCS: A Service-based Approach to
Collective Communication for Multi-Tenant Cloud* (Wu et al., ACM SIGCOMM
2024): the MCCS service (shim, frontend/proxy/transport engines, the
Figure 4 reconfiguration barrier, management and tracing APIs), the §4.3
policies (locality rings, FFA, PFA, TS), an NCCL-like baseline, and the
simulated substrate they run on (GPUs/streams/events, spine-leaf fabrics,
a fluid flow-level network simulator with max-min fairness).

Quick start::

    from repro import testbed_cluster, MccsDeployment, CentralManager
    from repro.netsim.units import MB

    cluster = testbed_cluster()
    deployment = MccsDeployment(cluster)
    manager = CentralManager(deployment)

    gpus = [cluster.hosts[h].gpus[0] for h in range(4)]
    comm_state = manager.admit("tenantA", gpus)       # provider side
    client = deployment.connect("tenantA")            # tenant side
    ...

See ``examples/quickstart.py`` for the end-to-end version.
"""

from . import errors
from .baselines import NcclCommunicator
from .cluster import (
    Cluster,
    ClusterAllocator,
    GpuDevice,
    Host,
    custom_cluster,
    large_cluster,
    ring_cluster,
    testbed_cluster,
)
from .collectives import (
    Collective,
    ReduceOp,
    RingDataPlane,
    RingSchedule,
    algorithm_bandwidth,
    bus_bandwidth,
    identity_ring,
)
from .core import (
    CollectiveStrategy,
    MccsBuffer,
    MccsClient,
    MccsCommunicator,
    MccsDeployment,
    ServiceCommunicator,
    WindowSchedule,
)
from .core.controller import CentralManager, PolicyReport
from .telemetry import TelemetryHub
from .netsim import (
    BackgroundTrafficManager,
    FlowSimulator,
    Topology,
    testbed_fabric,
    units,
)
from .workloads import (
    MccsIssuer,
    NcclIssuer,
    TrafficGenerator,
    gpt_tp_trace,
    poisson_arrivals,
    resnet50_dp_trace,
    vgg19_dp_trace,
)

__version__ = "1.0.0"

__all__ = [
    "BackgroundTrafficManager",
    "CentralManager",
    "Cluster",
    "ClusterAllocator",
    "Collective",
    "CollectiveStrategy",
    "FlowSimulator",
    "GpuDevice",
    "Host",
    "MccsBuffer",
    "MccsClient",
    "MccsCommunicator",
    "MccsDeployment",
    "MccsIssuer",
    "NcclCommunicator",
    "NcclIssuer",
    "PolicyReport",
    "ReduceOp",
    "RingDataPlane",
    "RingSchedule",
    "ServiceCommunicator",
    "TelemetryHub",
    "Topology",
    "TrafficGenerator",
    "WindowSchedule",
    "algorithm_bandwidth",
    "bus_bandwidth",
    "custom_cluster",
    "errors",
    "gpt_tp_trace",
    "identity_ring",
    "large_cluster",
    "poisson_arrivals",
    "resnet50_dp_trace",
    "ring_cluster",
    "testbed_cluster",
    "testbed_fabric",
    "units",
    "vgg19_dp_trace",
]
