"""Lowering: compile a validated IR program onto the flow data plane.

:class:`SynthAlgorithm` wraps a :class:`~repro.synth.ir.Program` in the
:class:`repro.core.algorithms.CollectiveAlgorithm` interface, which is
all the service needs to treat a synthesized schedule as a first-class
strategy:

* ``rank_transfers`` aggregates the program's sends per (peer, channel)
  into one flow launch each — the same one-aggregate-flow-per-edge shape
  the built-ins produce — so the communicator's ``FlowProgramCache`` and
  the netsim engines (reference / macro / sharded) run synthesized
  schedules through exactly the same path as rings and trees;
* ``steps`` reports the program's pipeline step count to the fixed
  latency model;
* ``run_data`` byte-moves through the numpy interpreter
  (:func:`repro.synth.interp.run_program`), so consistency checks and
  the shared reference suite apply unmodified.

A synthesized program targets one (kind, world) point and is built
against a concrete rank->location mapping, so it deliberately ignores
the strategy's ring order (synth candidates always ship the identity
ring).  Collective kinds or world sizes the program does not cover fall
back to the ring algorithm, mirroring how the built-in tree and
halving-doubling algorithms degrade.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..collectives.types import Collective, ReduceOp
from ..core.algorithms import (
    AlgorithmContext,
    CollectiveAlgorithm,
    RankTransfer,
    RingAlgorithm,
    register_algorithm,
    registered_algorithms,
    unregister_algorithm,
)
from .ir import Program, Protocol
from .interp import run_program
from .validate import validate_program

#: Registry-name prefix marking synthesized algorithms.
SYNTH_PREFIX = "synth:"


class SynthAlgorithm(CollectiveAlgorithm):
    """A validated chunk-level program as a pluggable algorithm.

    Attributes:
        program: The underlying IR program.
        fingerprint: Topology fingerprint the program was synthesized
            for, or ``None``.  The planner only offers the algorithm as
            a candidate on an exactly matching fingerprint, so programs
            registered by one tenant (or one test) never leak into
            plans for other topologies.
        protocol: NCCL-style protocol annotation; consumed by the cost
            model (duck-typed, like ``fingerprint``).
    """

    def __init__(
        self,
        program: Program,
        *,
        fingerprint: Optional[str] = None,
        validate: bool = True,
    ) -> None:
        if validate:
            validate_program(program)
        self.program = program
        self.name = program.name
        self.fingerprint = fingerprint
        self.protocol: Protocol = program.protocol
        self._ring = RingAlgorithm()

    # -- applicability ----------------------------------------------------
    def supports(self, kind: Collective, world: int) -> bool:
        """Whether the program itself covers this (kind, world) point."""
        return kind is self.program.kind and world == self.program.world

    def _applies(self, ctx: AlgorithmContext) -> bool:
        if not self.supports(ctx.kind, ctx.world):
            return False
        rooted = ctx.kind in (Collective.BROADCAST, Collective.REDUCE)
        return not rooted or ctx.root == self.program.root

    # -- CollectiveAlgorithm ----------------------------------------------
    def rank_transfers(self, ctx: AlgorithmContext) -> List[RankTransfer]:
        if not self._applies(ctx):
            return self._ring.rank_transfers(ctx)
        by_edge = self.program.rank_transfer_bytes(ctx.rank, ctx.out_bytes)
        return [
            RankTransfer(dst_rank=dst, nbytes=nbytes, channel=channel)
            for (dst, channel), nbytes in sorted(by_edge.items())
            if nbytes > 0
        ]

    def steps(self, kind: Collective, world: int) -> int:
        if not self.supports(kind, world):
            return self._ring.steps(kind, world)
        return self.program.num_steps

    def run_data(
        self,
        ctx: AlgorithmContext,
        inputs: Sequence[np.ndarray],
        op: ReduceOp,
    ) -> List[np.ndarray]:
        if not self._applies(ctx):
            return self._ring.run_data(ctx, inputs, op)
        return run_program(self.program, list(inputs), op)

    def __repr__(self) -> str:
        p = self.program
        return (
            f"SynthAlgorithm({p.name!r}, kind={p.kind}, world={p.world}, "
            f"chunks={p.num_chunks}, steps={p.num_steps}, "
            f"protocol={p.protocol.value}, fingerprint={self.fingerprint!r})"
        )


def register_program(
    program: Program,
    *,
    fingerprint: Optional[str] = None,
    replace: bool = False,
) -> SynthAlgorithm:
    """Validate, wrap and register ``program``; returns the algorithm."""
    algorithm = SynthAlgorithm(program, fingerprint=fingerprint)
    register_algorithm(algorithm, replace=replace)
    return algorithm


def unregister_program(name: str) -> None:
    """Remove a previously registered synthesized program."""
    unregister_algorithm(name)


def registered_synth_algorithms() -> List[str]:
    """Names of currently registered synthesized programs."""
    return [n for n in registered_algorithms() if n.startswith(SYNTH_PREFIX)]


@contextlib.contextmanager
def temporarily_registered(
    *programs: Program,
    fingerprint: Optional[str] = None,
) -> Iterator[List[SynthAlgorithm]]:
    """Register programs for the duration of a ``with`` block.

    Guarantees the global registry is restored on exit, which keeps
    test-suite and notebook experimentation from leaking synthesized
    candidates into unrelated planner runs.
    """
    registered: List[SynthAlgorithm] = []
    try:
        for program in programs:
            registered.append(
                register_program(program, fingerprint=fingerprint)
            )
        yield registered
    finally:
        for algorithm in registered:
            try:
                unregister_algorithm(algorithm.name)
            except Exception:
                pass
