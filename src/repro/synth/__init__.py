"""Chunk-level collective IR, validator, compiler and schedule synthesizer.

The paper argues (§3, §5) that a collective *service* can specialize
algorithms per tenant and topology because it owns the whole execution
stack.  This package supplies the machinery above the hand-written
algorithm zoo: SCCL/GC3-style chunk-level programs
(:mod:`~repro.synth.ir`), a validator proving a program implements its
collective kind (:mod:`~repro.synth.validate`), a numpy interpreter
(:mod:`~repro.synth.interp`), a lowering pass onto the flow data plane
(:mod:`~repro.synth.lowering`), parametric generators
(:mod:`~repro.synth.generators`) and a bounded topology-aware search
(:mod:`~repro.synth.search`) whose pareto front feeds the autotuner.

See ``docs/synthesis.md`` for the IR grammar, validator invariants,
lowering contract and search knobs.
"""

from .generators import hierarchical_allreduce_program, ring_program
from .interp import run_program
from .ir import (
    Instr,
    OpKind,
    Program,
    Protocol,
    make_program,
)
from .lowering import (
    SYNTH_PREFIX,
    SynthAlgorithm,
    register_program,
    registered_synth_algorithms,
    temporarily_registered,
    unregister_program,
)
from .search import (
    ScoredProgram,
    Synthesizer,
    estimate_program_seconds,
    placement_groups,
    synthesize_and_register,
)
from .validate import is_valid, toposort, validate_program

__all__ = [
    "SYNTH_PREFIX",
    "Instr",
    "OpKind",
    "Program",
    "Protocol",
    "ScoredProgram",
    "SynthAlgorithm",
    "Synthesizer",
    "estimate_program_seconds",
    "hierarchical_allreduce_program",
    "is_valid",
    "make_program",
    "placement_groups",
    "register_program",
    "registered_synth_algorithms",
    "ring_program",
    "run_program",
    "synthesize_and_register",
    "temporarily_registered",
    "toposort",
    "unregister_program",
    "validate_program",
]
