"""Schedule synthesis: bounded search over chunk-level programs.

The synthesizer enumerates a parametric family of candidate programs for
a concrete placement — flat rings plus two-level hierarchical schedules
for every grouping the topology exposes (co-hosted ranks, same-leaf
ranks, same-region ranks), crossed with channel counts and NCCL-style
protocol variants — validates each candidate, scores it with the same
alpha-beta + bottleneck cost model the planner uses
(:mod:`repro.autotune.cost`), prunes to a beam per step count, and emits
the pareto front over (latency-probe, bandwidth-probe) cost.

Emitted candidates are registered as first-class algorithms gated on the
placement's topology fingerprint (:func:`synthesize_and_register`), so
the :class:`~repro.autotune.planner.StrategyPlanner` offers them next to
the built-ins and the :class:`~repro.autotune.tuner.AutoTuner` promotes
one only if it actually measures faster — through the usual §4.2
reconfiguration barrier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..cluster.gpu import GpuDevice
from ..cluster.specs import Cluster
from ..collectives.cost_model import LatencyModel, MCCS_LATENCY
from ..collectives.types import Collective
from ..netsim.errors import ProgramValidationError
from ..netsim.units import KB, MB
from .generators import hierarchical_allreduce_program, ring_program
from .ir import Program, Protocol
from .lowering import SynthAlgorithm, register_program
from .validate import validate_program

#: Probe sizes for the pareto objectives: a latency-dominated point and a
#: bandwidth-dominated point (the paper's §6.2 sweep spans this range).
LATENCY_PROBE_BYTES = 64 * KB
BANDWIDTH_PROBE_BYTES = 64 * MB


@dataclass(frozen=True)
class ScoredProgram:
    """One validated candidate with its two probe costs."""

    program: Program
    latency_seconds: float
    bandwidth_seconds: float

    def dominates(self, other: "ScoredProgram") -> bool:
        return (
            self.latency_seconds <= other.latency_seconds
            and self.bandwidth_seconds <= other.bandwidth_seconds
            and (
                self.latency_seconds < other.latency_seconds
                or self.bandwidth_seconds < other.bandwidth_seconds
            )
        )


def estimate_program_seconds(
    cluster: Cluster,
    gpus: Sequence[GpuDevice],
    program: Program,
    out_bytes: float,
    *,
    latency: LatencyModel = MCCS_LATENCY,
) -> float:
    """Cost-model completion time of ``program`` on this placement.

    Uses the same primitives as :func:`repro.autotune.cost.estimate_seconds`
    (per-pair traffic -> bottleneck resource -> pipelined closed form,
    plus the WAN RTT term), with the program's own step and chunk counts.
    """
    from ..autotune.cost import bottleneck_seconds, pipelined_seconds

    traffic = program.pair_traffic(out_bytes)
    bottleneck = bottleneck_seconds(cluster, gpus, traffic, program.channels)
    protocol = program.protocol
    bottleneck /= protocol.bandwidth_efficiency
    per_step = latency.per_step * protocol.latency_factor
    seconds = (
        latency.base
        + latency.datapath
        + pipelined_seconds(bottleneck, program.num_steps, 1, per_step)
    )
    region_of_rank = _region_of_rank(cluster, gpus)
    if region_of_rank is not None:
        wan_rtt = float(getattr(cluster.fabric.spec, "wan_rtt", 0.0))
        seconds += wan_rtt * program.wan_step_count(region_of_rank)
    return seconds


def _region_of_rank(
    cluster: Cluster, gpus: Sequence[GpuDevice]
) -> Optional[Callable[[int], int]]:
    region_of_host = getattr(cluster.fabric.spec, "region_of_host", None)
    if not callable(region_of_host):
        return None
    regions = [region_of_host(gpu.host_id) for gpu in gpus]
    return lambda rank: regions[rank]


def placement_groups(
    cluster: Cluster, gpus: Sequence[GpuDevice]
) -> Dict[str, List[List[int]]]:
    """Rank groupings the topology exposes, coarsest-meaningful first.

    Keys are grouping labels (``region`` / ``rack`` / ``host``); values
    partition ranks ``0..world-1``.  Groupings where every group is a
    single rank, or a single group swallows everyone, are dropped — the
    two-level schedule would degenerate to a flat ring.
    """
    spec = cluster.fabric.spec
    keys: Dict[str, Callable[[GpuDevice], int]] = {
        "host": lambda gpu: gpu.host_id,
        "rack": lambda gpu: cluster.rack_of(gpu),
    }
    region_of_host = getattr(spec, "region_of_host", None)
    if callable(region_of_host):
        keys["region"] = lambda gpu: region_of_host(gpu.host_id)

    out: Dict[str, List[List[int]]] = {}
    for label, key in keys.items():
        buckets: Dict[int, List[int]] = {}
        for rank, gpu in enumerate(gpus):
            buckets.setdefault(key(gpu), []).append(rank)
        groups = [sorted(buckets[k]) for k in sorted(buckets)]
        if len(groups) < 2 or all(len(g) == 1 for g in groups):
            continue
        out[label] = groups
    return out


class Synthesizer:
    """Bounded search for chunk-level schedules on one placement.

    Args:
        cluster: Fabric + placement the costs are computed against.
        gpus: The communicator's GPUs, in rank order.
        latency: Fixed-overhead model (kept equal to the planner's).
        channel_options: Channel counts candidate programs may use.
        protocols: Protocol variants to cross every candidate with.
        beam_width: Candidates kept per distinct step count before the
            pareto cut.
    """

    def __init__(
        self,
        cluster: Cluster,
        gpus: Sequence[GpuDevice],
        *,
        latency: LatencyModel = MCCS_LATENCY,
        channel_options: Sequence[int] = (1, 2),
        protocols: Sequence[Protocol] = (
            Protocol.SIMPLE,
            Protocol.LL128,
            Protocol.LL,
        ),
        beam_width: int = 4,
    ) -> None:
        if beam_width < 1:
            raise ValueError("beam_width must be >= 1")
        self.cluster = cluster
        self.gpus = list(gpus)
        self.latency = latency
        self.channel_options = tuple(channel_options)
        self.protocols = tuple(protocols)
        self.beam_width = beam_width
        self.candidates_generated = 0
        self.candidates_rejected = 0

    # -- candidate generation -------------------------------------------
    def _generate(self, kind: Collective) -> List[Program]:
        world = len(self.gpus)
        groupings = placement_groups(self.cluster, self.gpus)
        programs: List[Program] = []
        for protocol in self.protocols:
            for channels in self.channel_options:
                tag = f"c{channels}.{protocol.value}"
                programs.append(
                    ring_program(
                        kind,
                        world,
                        channels=channels,
                        protocol=protocol,
                        name=f"synth:ring.{tag}/{kind.value}/w{world}",
                    )
                )
                if kind is not Collective.ALL_REDUCE:
                    continue
                for label, groups in sorted(groupings.items()):
                    sizes = {len(g) for g in groups}
                    if len(sizes) != 1:
                        continue  # two-level schedule needs equal groups
                    programs.append(
                        hierarchical_allreduce_program(
                            groups,
                            channels=channels,
                            protocol=protocol,
                            name=(
                                f"synth:hier-{label}.{tag}"
                                f"/{kind.value}/w{world}"
                            ),
                        )
                    )
        return programs

    # -- search ----------------------------------------------------------
    def search(self, kind: Collective) -> List[ScoredProgram]:
        """Validate, score, beam-prune and pareto-filter candidates.

        Returns the pareto front over (latency-probe cost, bandwidth-probe
        cost), best bandwidth cost first.
        """
        scored: List[ScoredProgram] = []
        for program in self._generate(kind):
            self.candidates_generated += 1
            try:
                validate_program(program)
            except ProgramValidationError:
                self.candidates_rejected += 1
                continue
            scored.append(
                ScoredProgram(
                    program=program,
                    latency_seconds=estimate_program_seconds(
                        self.cluster,
                        self.gpus,
                        program,
                        LATENCY_PROBE_BYTES,
                        latency=self.latency,
                    ),
                    bandwidth_seconds=estimate_program_seconds(
                        self.cluster,
                        self.gpus,
                        program,
                        BANDWIDTH_PROBE_BYTES,
                        latency=self.latency,
                    ),
                )
            )
        beamed = self._beam(scored)
        front = [
            s
            for s in beamed
            if not any(o.dominates(s) for o in beamed)
        ]
        return sorted(
            front, key=lambda s: (s.bandwidth_seconds, s.latency_seconds)
        )

    def _beam(self, scored: List[ScoredProgram]) -> List[ScoredProgram]:
        """Keep the ``beam_width`` cheapest candidates per step count."""
        by_steps: Dict[int, List[ScoredProgram]] = {}
        for s in scored:
            by_steps.setdefault(s.program.num_steps, []).append(s)
        kept: List[ScoredProgram] = []
        for steps in sorted(by_steps):
            bucket = sorted(
                by_steps[steps],
                key=lambda s: (s.bandwidth_seconds, s.latency_seconds),
            )
            kept.extend(bucket[: self.beam_width])
        return kept


def synthesize_and_register(
    cluster: Cluster,
    gpus: Sequence[GpuDevice],
    kind: Collective = Collective.ALL_REDUCE,
    *,
    latency: LatencyModel = MCCS_LATENCY,
    channel_options: Sequence[int] = (1, 2),
    protocols: Sequence[Protocol] = (
        Protocol.SIMPLE,
        Protocol.LL128,
        Protocol.LL,
    ),
    beam_width: int = 4,
    max_programs: int = 4,
    replace: bool = True,
) -> List[SynthAlgorithm]:
    """Search this placement and register the pareto front.

    The registered algorithms carry the placement's topology fingerprint,
    so only plans for an identically shaped placement will see them.
    Returns the registered algorithms, best predicted first.
    """
    from ..autotune.cost import topology_fingerprint

    synthesizer = Synthesizer(
        cluster,
        gpus,
        latency=latency,
        channel_options=channel_options,
        protocols=protocols,
        beam_width=beam_width,
    )
    front = synthesizer.search(kind)[:max_programs]
    fingerprint = topology_fingerprint(cluster, gpus)
    return [
        register_program(
            scored.program, fingerprint=fingerprint, replace=replace
        )
        for scored in front
    ]
