"""Program generators: parametric families of chunk-level schedules.

Two families feed the synthesizer:

* :func:`ring_program` — the classic chunked ring schedules for all five
  collective kinds, expressed in the IR.  These exist both as a
  correctness anchor (they must validate and reproduce the built-in
  ring data plane byte-for-byte) and as the flat baseline the search
  compares against.
* :func:`hierarchical_allreduce_program` — the SCCL-style two-level
  schedule for hierarchical fabrics: intra-group reduce-scatter, an
  inter-group ring all-reduce of each member's shard (the only phase
  that crosses group boundaries — e.g. WAN links), and an intra-group
  all-gather.  With ``g`` groups of ``m`` ranks it finishes in
  ``2m + 2g - 4`` steps and moves ~``S`` bytes per directed WAN link
  versus ~``2S`` for a flat locality ring — which is exactly the win the
  cost model and the netsim agree on for multi-region fabrics.

Generators only *construct* programs; callers validate via
:func:`repro.synth.validate.validate_program` (the synthesizer always
does).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..collectives.types import Collective, validate_world
from ..netsim.errors import MalformedProgramError
from .ir import Instr, OpKind, Program, Protocol, make_program


def _channel_of(chunk: int, channels: int) -> int:
    return chunk % channels


def _transfer(
    sends: List[List[Instr]],
    src: int,
    dst: int,
    chunk: int,
    step: int,
    channels: int,
    *,
    reduce: bool,
) -> None:
    """Emit one matched send/receive pair into the per-rank programs."""
    channel = _channel_of(chunk, channels)
    sends[src].append(
        Instr(OpKind.SEND, chunk, peer=dst, channel=channel, step=step)
    )
    kind = OpKind.RECV_REDUCE if reduce else OpKind.RECV
    sends[dst].append(
        Instr(kind, chunk, peer=src, channel=channel, step=step)
    )


def _sort_rank_programs(programs: List[List[Instr]]) -> List[List[Instr]]:
    """Stable-sort each rank's program by step, sends before receives.

    Within a step a rank's send never waits on that step's receive (ring
    steps are simultaneous shifts), so ordering sends first keeps the
    dependency graph acyclic.
    """
    order = {OpKind.SEND: 0, OpKind.COPY: 1, OpKind.RECV: 2, OpKind.RECV_REDUCE: 2}
    return [
        sorted(p, key=lambda i: (i.step, order[i.kind]))
        for p in programs
    ]


# ---------------------------------------------------------------------------
# flat ring programs
# ---------------------------------------------------------------------------
def ring_program(
    kind: Collective,
    world: int,
    *,
    order: Optional[Sequence[int]] = None,
    channels: int = 1,
    protocol: Protocol = Protocol.SIMPLE,
    root: int = 0,
    name: Optional[str] = None,
) -> Program:
    """The chunked ring schedule for ``kind``, as an IR program.

    Mirrors :class:`repro.collectives.ring.RingDataPlane` exactly:
    all-reduce is reduce-scatter + all-gather over ``world`` chunks,
    all-gather/reduce-scatter rotate rank blocks, broadcast and reduce
    are pipelined whole-buffer chains.
    """
    validate_world(world)
    ring = list(order) if order is not None else list(range(world))
    if sorted(ring) != list(range(world)):
        raise MalformedProgramError(
            f"ring order {ring} is not a permutation of 0..{world - 1}"
        )
    n = world
    programs: List[List[Instr]] = [[] for _ in range(n)]
    label = name or f"synth:ring/{kind.value}/w{world}"

    if kind is Collective.ALL_REDUCE:
        num_chunks = n
        for s in range(n - 1):  # reduce-scatter phase
            for p in range(n):
                _transfer(
                    programs,
                    ring[p],
                    ring[(p + 1) % n],
                    (p - s) % n,
                    s,
                    channels,
                    reduce=True,
                )
        for s in range(n - 1):  # all-gather phase
            for p in range(n):
                _transfer(
                    programs,
                    ring[p],
                    ring[(p + 1) % n],
                    (p + 1 - s) % n,
                    (n - 1) + s,
                    channels,
                    reduce=False,
                )
    elif kind is Collective.ALL_GATHER:
        # Chunk c is rank c's block; position p forwards the block that
        # originated (p - s) positions back.
        num_chunks = n
        for s in range(n - 1):
            for p in range(n):
                _transfer(
                    programs,
                    ring[p],
                    ring[(p + 1) % n],
                    ring[(p - s) % n],
                    s,
                    channels,
                    reduce=False,
                )
    elif kind is Collective.REDUCE_SCATTER:
        # Shifted schedule: position p sends ring-chunk (p - s - 1); after
        # n-1 steps position p holds its own rank's block fully reduced.
        num_chunks = n
        for s in range(n - 1):
            for p in range(n):
                _transfer(
                    programs,
                    ring[p],
                    ring[(p + 1) % n],
                    ring[(p - s - 1) % n],
                    s,
                    channels,
                    reduce=True,
                )
    elif kind in (Collective.BROADCAST, Collective.REDUCE):
        num_chunks = 1
        root_pos = ring.index(root)
        if kind is Collective.BROADCAST:
            p = root_pos
            for s in range(n - 1):
                _transfer(
                    programs,
                    ring[p],
                    ring[(p + 1) % n],
                    0,
                    s,
                    channels,
                    reduce=False,
                )
                p = (p + 1) % n
        else:
            p = (root_pos + 1) % n
            for s in range(n - 1):
                _transfer(
                    programs,
                    ring[p],
                    ring[(p + 1) % n],
                    0,
                    s,
                    channels,
                    reduce=True,
                )
                p = (p + 1) % n
    else:
        raise MalformedProgramError(f"unsupported collective {kind}")

    return make_program(
        label,
        kind,
        _sort_rank_programs(programs),
        num_chunks=num_chunks,
        channels=channels,
        protocol=protocol,
        root=root,
        meta={"family": "ring", "order": tuple(ring)},
    )


# ---------------------------------------------------------------------------
# hierarchical two-level all-reduce
# ---------------------------------------------------------------------------
def hierarchical_allreduce_program(
    groups: Sequence[Sequence[int]],
    *,
    channels: int = 1,
    protocol: Protocol = Protocol.SIMPLE,
    name: Optional[str] = None,
) -> Program:
    """Two-level all-reduce over equally sized rank groups.

    ``groups[j]`` lists the ranks of group ``j`` (a host, a rack or a
    region); only phase 2 crosses group boundaries.  The working vector
    is split into ``m * g`` chunks (``m`` ranks per group, ``g``
    groups); member ``i`` of each group owns *super-chunk* ``i`` (the
    ``g`` consecutive chunks ``[i*g, (i+1)*g)``):

    1. intra-group ring reduce-scatter over super-chunks (``m - 1``
       steps) — member ``i`` ends holding super-chunk ``i`` reduced
       over its group;
    2. inter-group ring all-reduce of super-chunk ``i`` among the
       ``i``-th members of every group (``2(g - 1)`` steps, the only
       WAN-crossing phase);
    3. intra-group ring all-gather of super-chunks (``m - 1`` steps).
    """
    groups = [list(g) for g in groups]
    g = len(groups)
    if g < 1:
        raise MalformedProgramError("need at least one group")
    m = len(groups[0])
    if any(len(grp) != m for grp in groups):
        raise MalformedProgramError(
            f"groups must be equally sized, got {[len(grp) for grp in groups]}"
        )
    ranks = sorted(r for grp in groups for r in grp)
    world = g * m
    if ranks != list(range(world)):
        raise MalformedProgramError(
            f"groups must partition 0..{world - 1}, got {ranks}"
        )
    validate_world(world)

    num_chunks = world  # m super-chunks of g sub-chunks each
    programs: List[List[Instr]] = [[] for _ in range(world)]

    def super_chunks(i: int) -> range:
        return range(i * g, (i + 1) * g)

    step = 0
    # Phase 1: intra-group reduce-scatter over super-chunks.
    for s in range(m - 1):
        for grp in groups:
            for p in range(m):
                i = (p - s - 1) % m
                for chunk in super_chunks(i):
                    _transfer(
                        programs,
                        grp[p],
                        grp[(p + 1) % m],
                        chunk,
                        step + s,
                        channels,
                        reduce=True,
                    )
    step += m - 1

    # Phase 2: inter-group all-reduce of super-chunk i among the i-th
    # members.  Sub-chunk t of super-chunk i is chunk i*g + t.
    if g > 1:
        for i in range(m):
            members = [groups[j][i] for j in range(g)]
            for s in range(g - 1):  # reduce-scatter among groups
                for j in range(g):
                    _transfer(
                        programs,
                        members[j],
                        members[(j + 1) % g],
                        i * g + (j - s) % g,
                        step + s,
                        channels,
                        reduce=True,
                    )
            for s in range(g - 1):  # all-gather among groups
                for j in range(g):
                    _transfer(
                        programs,
                        members[j],
                        members[(j + 1) % g],
                        i * g + (j + 1 - s) % g,
                        step + (g - 1) + s,
                        channels,
                        reduce=False,
                    )
        step += 2 * (g - 1)

    # Phase 3: intra-group all-gather of super-chunks.
    for s in range(m - 1):
        for grp in groups:
            for p in range(m):
                i = (p - s) % m
                for chunk in super_chunks(i):
                    _transfer(
                        programs,
                        grp[p],
                        grp[(p + 1) % m],
                        chunk,
                        step + s,
                        channels,
                        reduce=False,
                    )

    label = name or f"synth:hier/{Collective.ALL_REDUCE.value}/g{g}m{m}"
    return make_program(
        label,
        Collective.ALL_REDUCE,
        _sort_rank_programs(programs),
        num_chunks=num_chunks,
        channels=channels,
        protocol=protocol,
        meta={
            "family": "hierarchical",
            "groups": tuple(tuple(grp) for grp in groups),
        },
    )
