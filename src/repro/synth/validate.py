"""Validator for chunk-level collective programs.

A program is accepted only if it is *provably* a correct implementation
of its collective kind:

1. **Structure** — ranks, chunks, channels and op shapes are in range,
   step tags are non-decreasing within each rank
   (:class:`~repro.errors.MalformedProgramError`).
2. **Matching** — every ``SEND`` has exactly one matching
   ``RECV``/``RECV_REDUCE`` on its peer at the same
   (chunk, channel, step) coordinates, and vice versa
   (:class:`~repro.errors.UnmatchedTransferError`).
3. **Liveness** — the dependency graph (program order within each rank,
   plus one edge from every send to its matching receive) is acyclic
   (:class:`~repro.errors.DeadlockError`).
4. **Dataflow** — executing instructions in dependency order, no rank
   ever sends or copies a chunk slot it does not hold, and a
   ``RECV_REDUCE`` only folds together values of the same origin chunk
   with disjoint contributor sets
   (:class:`~repro.errors.MissingChunkError`).
5. **Postcondition** — the final chunk placement matches the collective
   kind's specification: e.g. after ``ALL_REDUCE`` every rank holds every
   chunk with *all* ranks' contributions folded in exactly once
   (:class:`~repro.errors.PostconditionError`).

Together 4 + 5 imply byte-exactness for any associative/commutative
reduction: the abstract state tracks exactly which input fragments are
summed into each slot, so a program that validates computes the same
bytes as the numpy reference.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..netsim.errors import (
    DeadlockError,
    MalformedProgramError,
    MissingChunkError,
    PostconditionError,
    UnmatchedTransferError,
)
from .ir import (
    ChunkValue,
    OpKind,
    Program,
    blocked_kinds,
    initial_state,
    required_state,
)

#: Identity of one instruction inside a program: (rank, index-in-program).
NodeId = Tuple[int, int]


def _structural_check(program: Program) -> None:
    name = program.name
    if program.world < 2:
        raise MalformedProgramError(
            f"{name}: world must be >= 2, got {program.world}"
        )
    if len(program.rank_programs) != program.world:
        raise MalformedProgramError(
            f"{name}: {len(program.rank_programs)} rank programs "
            f"for world {program.world}"
        )
    if program.num_chunks < 1:
        raise MalformedProgramError(
            f"{name}: num_chunks must be >= 1, got {program.num_chunks}"
        )
    if program.channels < 1:
        raise MalformedProgramError(
            f"{name}: channels must be >= 1, got {program.channels}"
        )
    if not 0 <= program.root < program.world:
        raise MalformedProgramError(
            f"{name}: root {program.root} out of range for world "
            f"{program.world}"
        )
    if program.kind in blocked_kinds() and program.num_chunks % program.world:
        raise MalformedProgramError(
            f"{name}: {program.kind} needs num_chunks divisible by world "
            f"({program.num_chunks} % {program.world} != 0)"
        )
    for rank, instrs in enumerate(program.rank_programs):
        last_step = -1
        for idx, instr in enumerate(instrs):
            where = f"{name}: rank {rank} instr {idx} ({instr.kind})"
            if not 0 <= instr.chunk < program.num_chunks:
                raise MalformedProgramError(
                    f"{where}: chunk {instr.chunk} out of range"
                )
            if instr.step < last_step:
                raise MalformedProgramError(
                    f"{where}: step {instr.step} decreases "
                    f"(previous {last_step})"
                )
            last_step = instr.step
            if instr.kind is OpKind.COPY:
                if instr.peer != -1:
                    raise MalformedProgramError(
                        f"{where}: copy must not name a peer"
                    )
                if not 0 <= instr.src_chunk < program.num_chunks:
                    raise MalformedProgramError(
                        f"{where}: src_chunk {instr.src_chunk} out of range"
                    )
            else:
                if not 0 <= instr.peer < program.world:
                    raise MalformedProgramError(
                        f"{where}: peer {instr.peer} out of range"
                    )
                if instr.peer == rank:
                    raise MalformedProgramError(f"{where}: self-transfer")
                if not 0 <= instr.channel < program.channels:
                    raise MalformedProgramError(
                        f"{where}: channel {instr.channel} out of range "
                        f"(program has {program.channels})"
                    )
                if instr.src_chunk != -1:
                    raise MalformedProgramError(
                        f"{where}: src_chunk only applies to copy"
                    )


def _match_transfers(program: Program) -> Dict[NodeId, NodeId]:
    """Pair each SEND with its receive; return send-node -> recv-node."""
    name = program.name
    # (src, dst, chunk, channel, step) -> node
    sends: Dict[Tuple[int, int, int, int, int], NodeId] = {}
    recvs: Dict[Tuple[int, int, int, int, int], NodeId] = {}
    for rank, instrs in enumerate(program.rank_programs):
        for idx, instr in enumerate(instrs):
            if instr.kind is OpKind.SEND:
                key = (rank, instr.peer, instr.chunk, instr.channel, instr.step)
                table = sends
            elif instr.kind in (OpKind.RECV, OpKind.RECV_REDUCE):
                key = (instr.peer, rank, instr.chunk, instr.channel, instr.step)
                table = recvs
            else:
                continue
            if key in table:
                raise UnmatchedTransferError(
                    f"{name}: duplicate {instr.kind} for chunk {key[2]} "
                    f"{key[0]}->{key[1]} channel {key[3]} step {key[4]}"
                )
            table[key] = (rank, idx)
    for key in sends:
        if key not in recvs:
            src, dst, chunk, channel, step = key
            raise UnmatchedTransferError(
                f"{name}: send of chunk {chunk} {src}->{dst} "
                f"channel {channel} step {step} has no matching receive"
            )
    for key in recvs:
        if key not in sends:
            src, dst, chunk, channel, step = key
            raise UnmatchedTransferError(
                f"{name}: receive of chunk {chunk} {src}->{dst} "
                f"channel {channel} step {step} has no matching send"
            )
    return {sends[key]: recvs[key] for key in sends}


def toposort(program: Program) -> List[NodeId]:
    """Dependency-order the program's instructions.

    Edges are program order within each rank plus send -> matching
    receive.  Raises :class:`DeadlockError` on a cycle — such a program
    would wait forever on real hardware (rank A's receive blocks the send
    rank B's receive is waiting on, and vice versa).
    """
    matches = _match_transfers(program)
    adj: Dict[NodeId, List[NodeId]] = {}
    indeg: Dict[NodeId, int] = {}
    for rank, instrs in enumerate(program.rank_programs):
        for idx in range(len(instrs)):
            node = (rank, idx)
            adj.setdefault(node, [])
            indeg.setdefault(node, 0)
            if idx:
                adj[(rank, idx - 1)].append(node)
                indeg[node] += 1
    for send, recv in matches.items():
        adj[send].append(recv)
        indeg[recv] += 1

    ready = sorted(node for node, deg in indeg.items() if deg == 0)
    order: List[NodeId] = []
    while ready:
        node = ready.pop()
        order.append(node)
        for nxt in adj[node]:
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                ready.append(nxt)
    if len(order) != len(indeg):
        stuck = sorted(node for node, deg in indeg.items() if deg > 0)[:6]
        raise DeadlockError(
            f"{program.name}: dependency cycle; "
            f"{len(indeg) - len(order)} instructions can never run "
            f"(first stuck: {stuck})"
        )
    return order


def _execute_abstract(
    program: Program, order: List[NodeId]
) -> List[Dict[int, ChunkValue]]:
    """Run the program over the abstract chunk-provenance state."""
    name = program.name
    state = initial_state(
        program.kind, program.world, program.num_chunks, program.root
    )
    # Value carried by each in-flight send, consumed by its receive.
    in_flight: Dict[NodeId, ChunkValue] = {}
    matches = _match_transfers(program)
    recv_source = {recv: send for send, recv in matches.items()}

    for node in order:
        rank, idx = node
        instr = program.rank_programs[rank][idx]
        where = f"{name}: rank {rank} instr {idx} ({instr.kind})"
        if instr.kind is OpKind.SEND:
            if instr.chunk not in state[rank]:
                raise MissingChunkError(
                    f"{where}: sends chunk {instr.chunk} it does not hold"
                )
            in_flight[node] = state[rank][instr.chunk]
        elif instr.kind is OpKind.COPY:
            if instr.src_chunk not in state[rank]:
                raise MissingChunkError(
                    f"{where}: copies from chunk {instr.src_chunk} "
                    f"it does not hold"
                )
            state[rank][instr.chunk] = state[rank][instr.src_chunk]
        elif instr.kind is OpKind.RECV:
            state[rank][instr.chunk] = in_flight[recv_source[node]]
        elif instr.kind is OpKind.RECV_REDUCE:
            incoming = in_flight[recv_source[node]]
            if instr.chunk not in state[rank]:
                raise MissingChunkError(
                    f"{where}: reduces into chunk {instr.chunk} "
                    f"it does not hold"
                )
            local = state[rank][instr.chunk]
            if local[0] != incoming[0]:
                raise MissingChunkError(
                    f"{where}: reduces origin chunk {incoming[0]} into a "
                    f"slot holding origin chunk {local[0]}"
                )
            overlap = local[1] & incoming[1]
            if overlap:
                raise MissingChunkError(
                    f"{where}: contributions of ranks "
                    f"{sorted(overlap)} would be folded in twice"
                )
            state[rank][instr.chunk] = (local[0], local[1] | incoming[1])
    return state


def validate_program(program: Program) -> Program:
    """Fully validate ``program``; return it unchanged for chaining.

    Raises a :class:`~repro.errors.ProgramValidationError` subclass
    naming the violated invariant otherwise.
    """
    _structural_check(program)
    order = toposort(program)  # matching + deadlock checks
    final = _execute_abstract(program, order)
    required = required_state(
        program.kind, program.world, program.num_chunks, program.root
    )
    for rank in range(program.world):
        for chunk, want in required[rank].items():
            got = final[rank].get(chunk)
            if got is None:
                raise PostconditionError(
                    f"{program.name}: rank {rank} ends without chunk "
                    f"{chunk} ({program.kind} requires it)"
                )
            if got != want:
                raise PostconditionError(
                    f"{program.name}: rank {rank} chunk {chunk} ends as "
                    f"(origin={got[0]}, contributors={sorted(got[1])}), "
                    f"{program.kind} requires "
                    f"(origin={want[0]}, contributors={sorted(want[1])})"
                )
    return program


def is_valid(program: Program) -> bool:
    """Predicate form of :func:`validate_program` for search filters."""
    from ..netsim.errors import ProgramValidationError

    try:
        validate_program(program)
    except ProgramValidationError:
        return False
    return True
