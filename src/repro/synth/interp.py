"""Numpy interpreter for chunk-level collective programs.

Executes a validated :class:`~repro.synth.ir.Program` on real buffers,
following exactly the input/output conventions of the built-in data
planes (:class:`repro.collectives.ring.RingDataPlane` and friends), so a
synthesized algorithm's ``run_data`` is byte-for-byte comparable with
the built-ins:

* ``ALL_REDUCE`` — one vector per rank in, reduced vector out;
* ``ALL_GATHER`` — one block per rank in, concatenation out (block ``r``
  holds rank ``r``'s input);
* ``REDUCE_SCATTER`` — full vector per rank in, rank ``r`` gets reduced
  block ``r`` out;
* ``BROADCAST`` — every rank ends with the root's buffer;
* ``REDUCE`` — the root gets the reduction; non-root outputs are the
  inputs unchanged (the determinism convention of the ring plane).

Instructions run in dependency order (the validator's topological sort),
so the interpreter is also an executable semantics for the IR: if the
abstract validator accepts a program, this interpreter computes the
numpy reference answer.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..collectives.types import Collective, ReduceOp
from ..netsim.errors import MalformedProgramError
from .ir import OpKind, Program, chunk_spans
from .validate import NodeId, toposort


def _working_vectors(
    program: Program, inputs: Sequence[np.ndarray]
) -> Tuple[List[np.ndarray], int]:
    """Per-rank working vectors (flat copies) and their element count."""
    world = program.world
    if len(inputs) != world:
        raise MalformedProgramError(
            f"{program.name}: expected {world} input buffers, "
            f"got {len(inputs)}"
        )
    first = inputs[0]
    for arr in inputs[1:]:
        if arr.shape != first.shape or arr.dtype != first.dtype:
            raise MalformedProgramError(
                f"{program.name}: rank buffers must match in shape and dtype"
            )
    if program.kind is Collective.ALL_GATHER:
        block = first.size
        work = [
            np.zeros(block * world, dtype=first.dtype) for _ in range(world)
        ]
        for rank in range(world):
            work[rank][rank * block : (rank + 1) * block] = inputs[
                rank
            ].ravel()
        return work, block * world
    if program.kind is Collective.REDUCE_SCATTER and first.size % world:
        raise MalformedProgramError(
            f"{program.name}: reduce-scatter input size {first.size} "
            f"not divisible by world {world}"
        )
    work = [inputs[r].copy().ravel() for r in range(world)]
    return work, first.size


def run_program(
    program: Program,
    inputs: Sequence[np.ndarray],
    op: ReduceOp = ReduceOp.SUM,
) -> List[np.ndarray]:
    """Execute ``program`` on real buffers; returns per-rank outputs."""
    work, total = _working_vectors(program, inputs)
    # Buffers smaller than the chunk count leave trailing chunks empty
    # (zero-length slices), exactly like the built-in ring planes.
    spans = chunk_spans(program.kind, total, program.num_chunks, program.world)

    def view(rank: int, chunk: int) -> np.ndarray:
        lo, hi = spans[chunk]
        return work[rank][lo:hi]

    in_flight: Dict[NodeId, np.ndarray] = {}
    order = toposort(program)
    # Rebuild the send->recv matching the same way toposort did.
    sends: Dict[Tuple[int, int, int, int, int], NodeId] = {}
    for rank, instrs in enumerate(program.rank_programs):
        for idx, instr in enumerate(instrs):
            if instr.kind is OpKind.SEND:
                sends[
                    (rank, instr.peer, instr.chunk, instr.channel, instr.step)
                ] = (rank, idx)

    for node in order:
        rank, idx = node
        instr = program.rank_programs[rank][idx]
        if instr.kind is OpKind.SEND:
            in_flight[node] = view(rank, instr.chunk).copy()
        elif instr.kind is OpKind.COPY:
            src = view(rank, instr.src_chunk)
            dst = view(rank, instr.chunk)
            if src.size != dst.size:
                raise MalformedProgramError(
                    f"{program.name}: rank {rank} copies chunk "
                    f"{instr.src_chunk} ({src.size} elems) into chunk "
                    f"{instr.chunk} ({dst.size} elems)"
                )
            dst[:] = src
        else:
            send_node = sends[
                (instr.peer, rank, instr.chunk, instr.channel, instr.step)
            ]
            payload = in_flight[send_node]
            dst = view(rank, instr.chunk)
            if payload.size != dst.size:
                raise MalformedProgramError(
                    f"{program.name}: rank {rank} receives chunk "
                    f"{instr.chunk} with mismatched size"
                )
            if instr.kind is OpKind.RECV:
                dst[:] = payload
            else:  # RECV_REDUCE
                dst[:] = op.combine(dst, payload)

    return _finalize(program, inputs, work, total)


def _finalize(
    program: Program,
    inputs: Sequence[np.ndarray],
    work: List[np.ndarray],
    total: int,
) -> List[np.ndarray]:
    world = program.world
    if program.kind is Collective.REDUCE_SCATTER:
        block = total // world
        return [
            work[r][r * block : (r + 1) * block].copy() for r in range(world)
        ]
    if program.kind is Collective.REDUCE:
        outputs = [inputs[r].copy() for r in range(world)]
        outputs[program.root] = work[program.root].reshape(
            inputs[program.root].shape
        )
        return outputs
    if program.kind is Collective.ALL_GATHER:
        return work
    # ALL_REDUCE / BROADCAST: same shape as the inputs.
    return [work[r].reshape(inputs[r].shape) for r in range(world)]
