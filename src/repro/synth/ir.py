"""Chunk-level collective program IR.

This is the SCCL/GC3-style intermediate representation sitting between
the algorithm zoo and the flow data plane: a collective is expressed as
one instruction list per rank over *chunk ids* — contiguous slices of the
collective's working vector — using four primitive operations:

* ``SEND``        — ship a chunk to a peer over a channel;
* ``RECV``        — receive a chunk from a peer, overwriting the local slot;
* ``RECV_REDUCE`` — receive a chunk and combine it into the local slot
  with the collective's reduction operator;
* ``COPY``        — duplicate one local chunk slot into another.

Each instruction carries a ``step`` tag.  Steps serve two purposes: a
``SEND`` is matched to the unique ``RECV``/``RECV_REDUCE`` on its peer
with the same (chunk, channel, step) coordinates, and the program's step
count feeds the fixed-latency model exactly like the built-in
algorithms' pipeline-hop counts.  Dependencies are explicit in the
graph sense: program order within a rank, plus one edge from every send
to its matching receive.  The validator (:mod:`repro.synth.validate`)
checks the graph is acyclic and that chunk dataflow is correct for the
program's :class:`~repro.collectives.types.Collective` kind.

Programs also carry a NCCL-style :class:`Protocol` attribute (LL /
LL128 / Simple from "Demystifying NCCL"): a pure cost-model annotation
trading per-step latency against effective link bandwidth, consumed by
:func:`repro.autotune.cost.estimate_seconds`.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..collectives.chunking import chunk_bounds
from ..collectives.types import Collective
from ..netsim.errors import MalformedProgramError

#: Schema version stamped into every serialized program.
PROGRAM_FORMAT_VERSION = 1


class Protocol(enum.Enum):
    """NCCL transfer protocol, as a latency-bandwidth cost annotation.

    The factors follow the published shape of the tradeoff ("Demystifying
    NCCL"): LL ships 4 B of data per 8 B line (50% wire efficiency) but
    skips the heavyweight synchronization, LL128 moves 120 of every
    128 B (93.75%) at a moderate latency discount, and Simple pays the
    full synchronization latency for full bandwidth.
    """

    LL = "ll"
    LL128 = "ll128"
    SIMPLE = "simple"

    @property
    def bandwidth_efficiency(self) -> float:
        return _PROTOCOL_FACTORS[self][0]

    @property
    def latency_factor(self) -> float:
        """Multiplier on the per-step fixed latency."""
        return _PROTOCOL_FACTORS[self][1]


_PROTOCOL_FACTORS: Dict[Protocol, Tuple[float, float]] = {
    Protocol.LL: (0.5, 0.25),
    Protocol.LL128: (120.0 / 128.0, 0.5),
    Protocol.SIMPLE: (1.0, 1.0),
}


class OpKind(enum.Enum):
    SEND = "send"
    RECV = "recv"
    RECV_REDUCE = "recv_reduce"
    COPY = "copy"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Instr:
    """One instruction of one rank's program.

    Attributes:
        kind: The operation.
        chunk: The chunk id operated on (the *destination* slot for
            ``COPY``).
        peer: The remote rank for ``SEND``/``RECV``/``RECV_REDUCE``;
            must stay -1 for ``COPY``.
        channel: Connection channel the transfer rides (ignored by
            ``COPY``).
        step: Step tag; matches sends to receives and counts pipeline
            hops for the latency model.  Must be non-decreasing within a
            rank's program.
        src_chunk: Source slot for ``COPY``; -1 otherwise.
    """

    kind: OpKind
    chunk: int
    peer: int = -1
    channel: int = 0
    step: int = 0
    src_chunk: int = -1

    @property
    def is_transfer(self) -> bool:
        return self.kind is not OpKind.COPY

    def to_json(self) -> Dict[str, object]:
        return {
            "op": self.kind.value,
            "chunk": self.chunk,
            "peer": self.peer,
            "channel": self.channel,
            "step": self.step,
            "src_chunk": self.src_chunk,
        }

    @staticmethod
    def from_json(data: Dict[str, object]) -> "Instr":
        return Instr(
            kind=OpKind(data["op"]),
            chunk=int(data["chunk"]),
            peer=int(data.get("peer", -1)),
            channel=int(data.get("channel", 0)),
            step=int(data.get("step", 0)),
            src_chunk=int(data.get("src_chunk", -1)),
        )


#: What one rank knows about one chunk slot: which original chunk's data
#: it holds and which ranks' contributions are folded into it.
ChunkValue = Tuple[int, FrozenSet[int]]


@dataclass(frozen=True)
class Program:
    """A complete chunk-level collective program.

    Attributes:
        name: Registry name; synthesized programs use ``synth:`` prefixes.
        kind: Collective kind the program implements.
        world: Number of participating ranks.
        num_chunks: How many contiguous chunks the working vector is
            split into.  For ``ALL_GATHER`` and ``REDUCE_SCATTER`` this
            must be a multiple of ``world`` so per-rank blocks are
            chunk-aligned.
        channels: Channels the program's transfers use (max channel + 1).
        protocol: NCCL-style protocol annotation for the cost model.
        rank_programs: ``rank_programs[r]`` is rank ``r``'s instruction
            tuple, executed in order.
        root: Root rank for rooted kinds (broadcast / reduce).
    """

    name: str
    kind: Collective
    world: int
    num_chunks: int
    channels: int
    rank_programs: Tuple[Tuple[Instr, ...], ...]
    protocol: Protocol = Protocol.SIMPLE
    root: int = 0
    #: Free-form generator parameters, for provenance and reports.
    meta: Tuple[Tuple[str, object], ...] = field(default=(), compare=False)

    # -- derived shape --------------------------------------------------
    @property
    def num_steps(self) -> int:
        """Pipeline step count (max step tag + 1; 0 for an empty program)."""
        steps = [
            instr.step
            for program in self.rank_programs
            for instr in program
        ]
        return max(steps) + 1 if steps else 0

    def total_bytes(self, out_bytes: float) -> float:
        """Size of the working vector given the *output-buffer* size.

        The working vector of a ``REDUCE_SCATTER`` is the full per-rank
        input (``world * out_bytes``); every other kind works in a vector
        of exactly ``out_bytes`` (the output-buffer convention of
        :func:`repro.collectives.types.input_bytes`).
        """
        if self.kind is Collective.REDUCE_SCATTER:
            return out_bytes * self.world
        return float(out_bytes)

    def chunk_nbytes(self, out_bytes: float) -> List[float]:
        """Bytes of each chunk for a collective of ``out_bytes``."""
        total = self.total_bytes(out_bytes)
        # chunk_bounds needs integers; scale fractional byte counts by
        # distributing proportionally over the integer bounds.
        total_int = max(int(round(total)), self.num_chunks)
        bounds = chunk_spans(self.kind, total_int, self.num_chunks, self.world)
        scale = total / total_int if total_int else 0.0
        return [(hi - lo) * scale for lo, hi in bounds]

    # -- traffic views ---------------------------------------------------
    def sends_of(self, rank: int) -> List[Instr]:
        return [
            instr
            for instr in self.rank_programs[rank]
            if instr.kind is OpKind.SEND
        ]

    def rank_transfer_bytes(
        self, rank: int, out_bytes: float
    ) -> Dict[Tuple[int, int], float]:
        """Aggregate outgoing bytes of ``rank`` per (dst_rank, channel)."""
        sizes = self.chunk_nbytes(out_bytes)
        out: Dict[Tuple[int, int], float] = {}
        for instr in self.sends_of(rank):
            key = (instr.peer, instr.channel)
            out[key] = out.get(key, 0.0) + sizes[instr.chunk]
        return out

    def pair_traffic(self, out_bytes: float) -> Dict[Tuple[int, int], float]:
        """Bytes per directed (src_rank, dst_rank) pair, all channels."""
        sizes = self.chunk_nbytes(out_bytes)
        traffic: Dict[Tuple[int, int], float] = {}
        for rank, program in enumerate(self.rank_programs):
            for instr in program:
                if instr.kind is OpKind.SEND:
                    pair = (rank, instr.peer)
                    traffic[pair] = traffic.get(pair, 0.0) + sizes[instr.chunk]
        return traffic

    def wan_step_count(self, region_of_rank: Callable[[int], int]) -> int:
        """Steps containing at least one region-crossing send.

        This is the exact count the RTT-weighted cost term wants: only
        steps that actually traverse a WAN link pay the inter-region
        round-trip, whereas a flat ring pays it on (nearly) every hop.
        """
        wan_steps = set()
        for rank, program in enumerate(self.rank_programs):
            for instr in program:
                if (
                    instr.kind is OpKind.SEND
                    and region_of_rank(rank) != region_of_rank(instr.peer)
                ):
                    wan_steps.add(instr.step)
        return len(wan_steps)

    # -- serialization ---------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        return {
            "format_version": PROGRAM_FORMAT_VERSION,
            "name": self.name,
            "kind": self.kind.value,
            "world": self.world,
            "num_chunks": self.num_chunks,
            "channels": self.channels,
            "protocol": self.protocol.value,
            "root": self.root,
            "num_steps": self.num_steps,
            "meta": dict(self.meta),
            "rank_programs": [
                [instr.to_json() for instr in program]
                for program in self.rank_programs
            ],
        }

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)

    @staticmethod
    def from_json(data: Dict[str, object]) -> "Program":
        version = data.get("format_version")
        if version != PROGRAM_FORMAT_VERSION:
            raise MalformedProgramError(
                f"unsupported program format version {version!r}"
            )
        return Program(
            name=str(data["name"]),
            kind=Collective(data["kind"]),
            world=int(data["world"]),
            num_chunks=int(data["num_chunks"]),
            channels=int(data["channels"]),
            protocol=Protocol(data.get("protocol", "simple")),
            root=int(data.get("root", 0)),
            meta=tuple(sorted(dict(data.get("meta", {})).items())),
            rank_programs=tuple(
                tuple(Instr.from_json(i) for i in program)
                for program in data["rank_programs"]
            ),
        )

    @staticmethod
    def loads(text: str) -> "Program":
        return Program.from_json(json.loads(text))


# ---------------------------------------------------------------------------
# pre/postconditions per collective kind
# ---------------------------------------------------------------------------
def block_of_chunk(chunk: int, num_chunks: int, world: int) -> int:
    """Owning rank block of ``chunk`` when chunks partition rank blocks."""
    per_block = num_chunks // world
    return chunk // per_block


def chunk_spans(
    kind: Collective, total: int, num_chunks: int, world: int
) -> List[Tuple[int, int]]:
    """(lo, hi) extent of each chunk in a working vector of ``total`` units.

    For block-structured kinds (all-gather / reduce-scatter) the vector is
    first split into ``world`` rank blocks and each block into
    ``num_chunks / world`` chunks, so chunk boundaries never straddle a
    rank block even when ``total`` has a remainder.  Other kinds split the
    vector flat.
    """
    if kind in blocked_kinds() and num_chunks % world == 0:
        per_block = num_chunks // world
        spans: List[Tuple[int, int]] = []
        for lo, hi in chunk_bounds(total, world):
            spans.extend(
                (lo + clo, lo + chi)
                for clo, chi in chunk_bounds(hi - lo, per_block)
            )
        return spans
    return list(chunk_bounds(total, num_chunks))


def initial_state(
    kind: Collective, world: int, num_chunks: int, root: int
) -> List[Dict[int, ChunkValue]]:
    """Chunk slots each rank holds *before* the program runs.

    The state maps chunk id -> (origin chunk, contributor set): reducing
    kinds start with every rank holding its own version of every chunk
    (a singleton contributor set); gather-style kinds start with each
    rank holding only its own block; broadcast starts with only the root
    populated.
    """
    all_chunks = range(num_chunks)
    if kind in (Collective.ALL_REDUCE, Collective.REDUCE):
        return [
            {c: (c, frozenset((r,))) for c in all_chunks}
            for r in range(world)
        ]
    if kind is Collective.REDUCE_SCATTER:
        return [
            {c: (c, frozenset((r,))) for c in all_chunks}
            for r in range(world)
        ]
    if kind is Collective.ALL_GATHER:
        return [
            {
                c: (c, frozenset((r,)))
                for c in all_chunks
                if block_of_chunk(c, num_chunks, world) == r
            }
            for r in range(world)
        ]
    if kind is Collective.BROADCAST:
        return [
            {c: (c, frozenset((root,))) for c in all_chunks}
            if r == root
            else {}
            for r in range(world)
        ]
    raise MalformedProgramError(f"unsupported collective {kind}")


def required_state(
    kind: Collective, world: int, num_chunks: int, root: int
) -> List[Dict[int, ChunkValue]]:
    """Chunk slots each rank must hold *after* the program runs.

    Slots absent from a rank's required map are unconstrained (e.g.
    non-root outputs of a rooted reduce, non-own blocks after a
    reduce-scatter).
    """
    everyone = frozenset(range(world))
    all_chunks = range(num_chunks)
    if kind is Collective.ALL_REDUCE:
        return [{c: (c, everyone) for c in all_chunks} for _ in range(world)]
    if kind is Collective.REDUCE:
        return [
            {c: (c, everyone) for c in all_chunks} if r == root else {}
            for r in range(world)
        ]
    if kind is Collective.REDUCE_SCATTER:
        return [
            {
                c: (c, everyone)
                for c in all_chunks
                if block_of_chunk(c, num_chunks, world) == r
            }
            for r in range(world)
        ]
    if kind is Collective.ALL_GATHER:
        return [
            {
                c: (c, frozenset((block_of_chunk(c, num_chunks, world),)))
                for c in all_chunks
            }
            for _ in range(world)
        ]
    if kind is Collective.BROADCAST:
        return [
            {c: (c, frozenset((root,))) for c in all_chunks}
            for _ in range(world)
        ]
    raise MalformedProgramError(f"unsupported collective {kind}")


def blocked_kinds() -> Tuple[Collective, ...]:
    """Kinds whose chunk count must be a multiple of the world size."""
    return (Collective.ALL_GATHER, Collective.REDUCE_SCATTER)


def make_program(
    name: str,
    kind: Collective,
    rank_programs: Sequence[Sequence[Instr]],
    *,
    num_chunks: int,
    channels: Optional[int] = None,
    protocol: Protocol = Protocol.SIMPLE,
    root: int = 0,
    meta: Optional[Dict[str, object]] = None,
) -> Program:
    """Convenience constructor inferring the channel count."""
    programs = tuple(tuple(p) for p in rank_programs)
    if channels is None:
        used = [
            instr.channel
            for program in programs
            for instr in program
            if instr.is_transfer
        ]
        channels = max(used) + 1 if used else 1
    return Program(
        name=name,
        kind=kind,
        world=len(programs),
        num_chunks=num_chunks,
        channels=channels,
        protocol=protocol,
        rank_programs=programs,
        root=root,
        meta=tuple(sorted((meta or {}).items())),
    )
