"""Macro-flow aggregation: one solver slot per (route, weight, tenant).

NCCL-style collectives launch many *channels* per connection — flows that
share the exact same link path, fairness weight, and owning job.  Under
weighted max-min fairness such flows are interchangeable: k flows of
weight ``w`` on a path receive exactly the allocation of one flow of
weight ``k*w``, split evenly.  :class:`MacroFlowSolver` exploits this by
registering a single *macro group* per ``(path, weight, job_id)`` key
with the underlying solver and reconstructing member rates as
``member_weight * level`` — the same IEEE product ``weight * level`` the
per-flow reference solver computes per slot, so member rates are
bit-identical whenever the aggregated group weight is exact
(``k * w == w + w + ... + w``; always true for the default weight 1.0
and for any dyadic weight at realistic fan-outs).

The wrapper is solver-agnostic: the base may be a plain
:class:`~repro.netsim.fairness.IncrementalFairnessSolver` or a
:class:`~repro.netsim.sharding.ShardedFairnessSolver` (the engine's
``macro=True, sharded=True`` composition), as long as it implements the
shared solve protocol plus ``set_weight`` / ``level_of``.

Membership churn (a member joining, leaving, gating, or un-gating)
resizes the group's weight in place — one O(1) solver delta instead of a
structural add/remove — and the next solve re-derives every member rate
of each touched or rate-changed group.  Link loads and utilization are
reported from group rates; a group's rate ``(k*w)*level`` can differ
from the sum of its member rates ``k*(w*level)`` by one ulp, which is
why exactness tests compare member rates, not link loads.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from .flows import Flow

_group_counter = itertools.count()


class _MacroGroup:
    """Solver-facing aggregate of interchangeable member flows.

    Duck-types the slice of :class:`~repro.netsim.flows.Flow` the solvers
    read (``flow_id`` / ``links`` / ``weight`` / ``active`` / ``job_id``).
    """

    __slots__ = (
        "flow_id",
        "path",
        "links",
        "job_id",
        "member_weight",
        "weight",
        "active",
        "members",
        "active_ids",
    )

    def __init__(self, template: Flow) -> None:
        self.flow_id = f"macro{next(_group_counter)}"
        self.path = template.path
        self.links = template.links
        self.job_id = template.job_id
        self.member_weight = template.weight
        self.weight = template.weight
        self.active = False
        self.members: Dict[str, Flow] = {}
        self.active_ids: Set[str] = set()


class MacroFlowSolver:
    """Engine-facing solver that aggregates flows into macro groups."""

    def __init__(self, base) -> None:
        self._base = base
        # The base's slot table is a plain list mutated in place
        # (``_slots`` on the sharded wrapper, ``_flows`` on the
        # incremental solver); indexing it avoids a method call per
        # changed group in the solve fan-out.
        self._base_table = getattr(base, "_slots", None)
        if self._base_table is None:
            self._base_table = base._flows
        self._groups: Dict[Tuple, _MacroGroup] = {}
        self._group_of: Dict[str, _MacroGroup] = {}
        # groups with membership/gate churn since the last solve; their
        # member rates are re-derived even if the group's own aggregate
        # rate happens to come back unchanged (level may still move when
        # the weight moved with it)
        self._touched: Set[_MacroGroup] = set()
        # engine-facing member slots
        self._slots: List[Optional[Flow]] = []
        self._slot_of: Dict[str, int] = {}
        self._free_slots: List[int] = []
        self._member_rate: Dict[str, float] = {}
        self.macro_peak_group_size = 0

    # -- counter/telemetry delegation ----------------------------------
    @property
    def full_rebuilds(self) -> int:
        return self._base.full_rebuilds

    @property
    def delta_updates(self) -> int:
        return self._base.delta_updates

    @property
    def delta_flows_total(self) -> int:
        return self._base.delta_flows_total

    @property
    def last_delta(self) -> int:
        return self._base.last_delta

    @property
    def solves_skipped(self) -> int:
        return getattr(self._base, "solves_skipped", 0)

    @property
    def scalar_solves(self) -> int:
        return getattr(self._base, "scalar_solves", 0)

    @property
    def solve_epoch(self) -> int:
        return self._base.solve_epoch

    @property
    def macro_groups(self) -> int:
        return len(self._groups)

    @property
    def macro_members(self) -> int:
        return len(self._group_of)

    @property
    def domain_count(self) -> int:
        return getattr(self._base, "domain_count", 1)

    # -- group maintenance ---------------------------------------------
    def _sync_group(self, group: _MacroGroup) -> None:
        """Push the group's membership state down to the base solver.

        Called once per touched group at solve time, not per membership
        change — a k-member join burst costs one ``set_weight``, not k.
        """
        count = len(group.active_ids)
        if count == 0:
            if group.active:
                self._base.set_active(group, False)
                group.active = False
            return
        weight = group.member_weight * count
        if weight != group.weight:
            self._base.set_weight(group, weight)
            group.weight = weight
        if not group.active:
            self._base.set_active(group, True)
            group.active = True

    def add_flow(self, flow: Flow) -> None:
        key = (flow.path, flow.weight, flow.job_id)
        group = self._groups.get(key)
        if group is None:
            group = _MacroGroup(flow)
            self._groups[key] = group
            self._base.add_flow(group)
        group.members[flow.flow_id] = flow
        if flow.active:
            group.active_ids.add(flow.flow_id)
        self._group_of[flow.flow_id] = group
        self._touched.add(group)
        if len(group.members) > self.macro_peak_group_size:
            self.macro_peak_group_size = len(group.members)
        if self._free_slots:
            slot = self._free_slots.pop()
            self._slots[slot] = flow
        else:
            slot = len(self._slots)
            self._slots.append(flow)
        self._slot_of[flow.flow_id] = slot
        self._member_rate[flow.flow_id] = 0.0

    def add_flows(self, flows: List[Flow]) -> None:
        """Register a sibling batch sharing one (path, weight, tenant).

        The engine's :meth:`~FlowSimulator.add_flows` guarantees the batch
        is parameter-identical, so the group lookup runs once for the
        whole channel fan-out instead of once per member.
        """
        first = flows[0]
        key = (first.path, first.weight, first.job_id)
        group = self._groups.get(key)
        if group is None:
            group = _MacroGroup(first)
            self._groups[key] = group
            self._base.add_flow(group)
        members = group.members
        active_ids = group.active_ids
        group_of = self._group_of
        member_rate = self._member_rate
        slot_of = self._slot_of
        slots = self._slots
        free_slots = self._free_slots
        for flow in flows:
            fid = flow.flow_id
            members[fid] = flow
            if flow.active:
                active_ids.add(fid)
            group_of[fid] = group
            if free_slots:
                slot = free_slots.pop()
                slots[slot] = flow
            else:
                slot = len(slots)
                slots.append(flow)
            slot_of[fid] = slot
            member_rate[fid] = 0.0
        self._touched.add(group)
        if len(members) > self.macro_peak_group_size:
            self.macro_peak_group_size = len(members)

    def remove_flow(self, flow: Flow) -> None:
        group = self._group_of.pop(flow.flow_id, None)
        if group is None:
            return
        group.members.pop(flow.flow_id, None)
        group.active_ids.discard(flow.flow_id)
        self._member_rate.pop(flow.flow_id, None)
        slot = self._slot_of.pop(flow.flow_id, None)
        if slot is not None:
            self._slots[slot] = None
            self._free_slots.append(slot)
        if not group.members:
            self._base.remove_flow(group)
            del self._groups[(group.path, group.member_weight, group.job_id)]
            self._touched.discard(group)
        else:
            self._touched.add(group)

    def remove_flows(self, flows: List[Flow]) -> None:
        """Deregister a batch of members (one completion burst).

        Same semantics as per-flow :meth:`remove_flow`; hoisting the
        bookkeeping lookups matters because a channelized completion
        removes whole sibling sets at one instant.
        """
        group_of = self._group_of
        member_rate = self._member_rate
        slot_of = self._slot_of
        slots = self._slots
        free_slots = self._free_slots
        touched = self._touched
        for flow in flows:
            fid = flow.flow_id
            group = group_of.pop(fid, None)
            if group is None:
                continue
            group.members.pop(fid, None)
            group.active_ids.discard(fid)
            member_rate.pop(fid, None)
            slot = slot_of.pop(fid, None)
            if slot is not None:
                slots[slot] = None
                free_slots.append(slot)
            if not group.members:
                self._base.remove_flow(group)
                del self._groups[
                    (group.path, group.member_weight, group.job_id)
                ]
                touched.discard(group)
            else:
                touched.add(group)

    def set_active(self, flow: Flow, active: bool) -> None:
        group = self._group_of.get(flow.flow_id)
        if group is None:
            return
        if active:
            group.active_ids.add(flow.flow_id)
        else:
            group.active_ids.discard(flow.flow_id)
        self._touched.add(group)

    def set_capacity(self, link_id: str, capacity: float) -> None:
        self._base.set_capacity(link_id, capacity)

    def scaled_caps(self, penalty: float):
        return self._base.scaled_caps(penalty)

    # -- queries --------------------------------------------------------
    def flow_count(self) -> int:
        return len(self._group_of)

    def flow_at(self, slot: int) -> Optional[Flow]:
        return self._slots[slot]

    def bottleneck_of(self, flow_id: str) -> Optional[str]:
        group = self._group_of.get(flow_id)
        if group is None:
            return None
        return self._base.bottleneck_of(group.flow_id)

    def bottleneck_of_slot(self, slot: int) -> Optional[str]:
        flow = self._slots[slot]
        if flow is None:
            return None
        return self.bottleneck_of(flow.flow_id)

    def level_of(self, flow_id: str) -> float:
        group = self._group_of.get(flow_id)
        return 0.0 if group is None else self._base.level_of(group.flow_id)

    def rates_by_id(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for group in self._groups.values():
            level = self._base.level_of(group.flow_id)
            for fid, member in group.members.items():
                if fid in group.active_ids:
                    out[fid] = member.weight * level
                else:
                    out[fid] = 0.0
        return out

    def link_loads(self) -> Dict[str, float]:
        return self._base.link_loads()

    def link_utilization(self, min_utilization: float = 0.0) -> Dict[str, float]:
        return self._base.link_utilization(min_utilization)

    # -- the solve ------------------------------------------------------
    def solve(
        self, capacities: Optional[np.ndarray] = None
    ) -> Tuple[List[int], Dict[int, float]]:
        """Solve groups in the base, then fan rates back out to members.

        Returns ``(changed_member_slots, {slot: rate})``.  A member is
        reported when its reconstructed rate differs from the last rate
        reported for it, which covers both rate moves from contention
        elsewhere and rate-0 reports for freshly gated members.
        """
        base = self._base
        # Flush deferred membership state: one set_weight/set_active per
        # touched group, however many members joined/left/gated since the
        # last solve.
        for group in self._touched:
            self._sync_group(group)
        changed_groups, _ = base.solve(capacities)
        if isinstance(changed_groups, np.ndarray):
            changed_groups = changed_groups.tolist()
        pending: Set[_MacroGroup] = self._touched
        self._touched = set()
        base_table = self._base_table
        for gslot in changed_groups:
            group = base_table[gslot]
            if group is not None:
                pending.add(group)
        changed: List[int] = []
        rates: Dict[int, float] = {}
        member_rate = self._member_rate
        slot_of = self._slot_of
        for group in pending:
            if not group.members:
                continue
            level = base.level_of(group.flow_id)
            active_ids = group.active_ids
            for fid, member in group.members.items():
                rate = member.weight * level if fid in active_ids else 0.0
                if member_rate[fid] != rate:
                    member_rate[fid] = rate
                    mslot = slot_of[fid]
                    rates[mslot] = rate
                    changed.append(mslot)
        return changed, rates
