"""Flow-level network simulator substrate.

This package provides the timing plane of the reproduction: a directed
capacitated :class:`~repro.netsim.topology.Topology`, concrete fabrics
(:mod:`repro.netsim.fabric`), fluid flows shared by weighted max-min
fairness (:mod:`repro.netsim.fairness`), ECMP / route-id path selection
(:mod:`repro.netsim.routing`) and the discrete-event engine
(:class:`~repro.netsim.engine.FlowSimulator`).
"""

from .background import BackgroundFlow, BackgroundTrafficManager
from .engine import FlowSimulator
from .errors import (
    NetSimError,
    NoPathError,
    ReproError,
    SimulationError,
    UnknownLinkError,
    UnknownNodeError,
)
from .fabric import (
    Fabric,
    FabricSpec,
    MultiPodSpec,
    RegionSpec,
    RingFabricSpec,
    fabric_paths,
    intra_host_path,
    large_cluster_fabric,
    local_link_id,
    multi_pod_clos,
    multi_region,
    nic_node,
    spine_leaf,
    spine_links,
    switch_ring,
    testbed_fabric,
    wan_link_id,
    wan_links,
)
from .fairness import FairnessSolver, bottleneck_rate, link_loads, progressive_filling
from .flows import Flow
from .macroflow import MacroFlowSolver
from .sharding import ShardedFairnessSolver
from .routing import (
    ClosEcmpSelector,
    ConnectionKey,
    EcmpSelector,
    PathSelector,
    RandomSelector,
    RouteIdSelector,
    RouteMap,
    clos_path,
    ecmp_hash,
)
from .topology import Link, Node, Topology
from . import units

__all__ = [
    "BackgroundFlow",
    "BackgroundTrafficManager",
    "ClosEcmpSelector",
    "ConnectionKey",
    "EcmpSelector",
    "Fabric",
    "FabricSpec",
    "FairnessSolver",
    "Flow",
    "FlowSimulator",
    "Link",
    "MacroFlowSolver",
    "MultiPodSpec",
    "NetSimError",
    "NoPathError",
    "Node",
    "PathSelector",
    "RandomSelector",
    "ReproError",
    "RegionSpec",
    "RingFabricSpec",
    "RouteIdSelector",
    "RouteMap",
    "ShardedFairnessSolver",
    "SimulationError",
    "Topology",
    "UnknownLinkError",
    "UnknownNodeError",
    "bottleneck_rate",
    "clos_path",
    "ecmp_hash",
    "fabric_paths",
    "intra_host_path",
    "large_cluster_fabric",
    "link_loads",
    "local_link_id",
    "multi_pod_clos",
    "multi_region",
    "nic_node",
    "progressive_filling",
    "spine_leaf",
    "spine_links",
    "switch_ring",
    "testbed_fabric",
    "units",
    "wan_link_id",
    "wan_links",
]
