"""Profiling harness for the netsim hot path.

Run as a module::

    python -m repro.netsim.profile --flows 10000 --pods 4

Builds a multi-pod Clos fabric, drives a channelized synthetic workload
(the NCCL-shaped traffic the macro/sharded modes are designed for)
through the simulator under cProfile, and prints the top-20 functions by
cumulative time plus the engine's perf-counter snapshot — the starting
point for any future hot-path work.

The workload generator (:func:`synthetic_connections`,
:func:`run_scale_workload`) is shared with the scale-curve benchmark in
``benchmarks/test_netsim_core.py`` so profiles and recorded numbers
describe the same traffic.  Paths are synthesized by node-name arithmetic
(no BFS), so building a 100k-flow workload on a 16-pod fabric costs
seconds, not minutes.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import random
import time
from typing import Iterator, List, Tuple

from .engine import FlowSimulator
from .fabric import MultiPodSpec, multi_pod_clos
from .routing import clos_path

#: Channel fan-out of the synthetic collectives: flows per connection
#: sharing one exact (path, weight, tenant) — the macro-group shape.
DEFAULT_CHANNELS = 8


def scale_spec(pods: int) -> MultiPodSpec:
    """Fabric spec used by the profile harness and the scale benchmark.

    512 GPUs per pod (16 leaves x 4 hosts x 8 NICs): 1 pod = 512 GPUs,
    4 pods = 2048, 16 pods = 8192 — the ROADMAP's datacenter band.
    """
    return MultiPodSpec(
        pods=pods,
        spines_per_pod=4,
        leaves_per_pod=16,
        hosts_per_leaf=4,
        nics_per_host=8,
        core_switches=4,
    )


#: O(1) name-arithmetic path synthesis (moved to :mod:`.routing`, kept
#: here under its historical name for the benchmark/test callers).
connection_path = clos_path


#: Fraction of connections crossing the core tier.  Training jobs are
#: placed pod-local when possible; the occasional cross-pod job is what
#: exercises shard merges (each bridge conservatively fuses the two pod
#: domains until it drains).
DEFAULT_INTER_POD = 0.02


def synthetic_connections(
    spec: MultiPodSpec,
    rng: random.Random,
    count: int,
    inter_pod_fraction: float = DEFAULT_INTER_POD,
) -> Iterator[Tuple[Tuple[str, ...], str]]:
    """Yield ``(path, job_id)`` connection templates.

    Traffic is mostly pod-local (collectives are placed within a pod when
    possible); ``inter_pod_fraction`` of connections cross the core tier,
    exercising shard merges.
    """
    hosts_per_pod = spec.hosts_per_pod
    for i in range(count):
        src_pod = rng.randrange(spec.pods)
        if spec.pods > 1 and rng.random() < inter_pod_fraction:
            dst_pod = (src_pod + 1 + rng.randrange(spec.pods - 1)) % spec.pods
        else:
            dst_pod = src_pod
        src_host = src_pod * hosts_per_pod + rng.randrange(hosts_per_pod)
        dst_host = dst_pod * hosts_per_pod + rng.randrange(hosts_per_pod)
        if dst_host == src_host:
            dst_host = src_pod * hosts_per_pod + (
                (src_host + 1 - src_pod * hosts_per_pod) % hosts_per_pod
            )
        path = connection_path(
            spec,
            src_host,
            rng.randrange(spec.nics_per_host),
            dst_host,
            rng.randrange(spec.nics_per_host),
            spine=rng.randrange(spec.spines_per_pod),
            core=rng.randrange(spec.core_switches),
        )
        yield path, f"job{i % 16}"


def prepare_scale_workload(
    sim: FlowSimulator,
    spec: MultiPodSpec,
    num_flows: int,
    channels: int = DEFAULT_CHANNELS,
    seed: int = 42,
    wave_flows: int = 2000,
    wave_interval: float = 0.05,
    size_base: float = 3e7,
    inter_pod_fraction: float = DEFAULT_INTER_POD,
) -> int:
    """Schedule the channelized wave workload onto ``sim``.

    All workload *generation* (path synthesis, size draws) happens here,
    before the caller starts its clock; the scheduled injectors only call
    ``sim.add_flow``, so a timed ``sim.run()`` measures the event loop,
    not the random-number generator.  Returns the flow count scheduled.

    Flows arrive in waves (one sim timestep per wave, so structural churn
    coalesces into one solve) of ``wave_flows`` flows; each connection
    contributes ``channels`` identical-path flows whose sizes match (one
    of eight chunk sizes per connection), the shape NCCL channel fan-out
    produces.  The default ``size_base`` keeps a wave's drain time in the
    order of ``wave_interval`` so the concurrent population tracks the
    offered load instead of accumulating without bound.
    """
    rng = random.Random(seed)
    num_connections = max(1, num_flows // channels)
    connections = [
        (path, job, size_base * (1 + rng.randrange(8)))
        for path, job in synthetic_connections(
            spec, rng, num_connections, inter_pod_fraction=inter_pod_fraction
        )
    ]
    per_wave = max(1, wave_flows // channels)
    injected = 0
    next_start = sim.now
    add_flows = sim.add_flows
    for wave_start in range(0, num_connections, per_wave):
        wave = connections[wave_start : wave_start + per_wave]
        at = next_start
        next_start += wave_interval

        def inject(wave=wave) -> None:
            for path, job, size in wave:
                add_flows(size, path, channels, job_id=job)

        sim.schedule(at, inject)
        injected += len(wave) * channels
    return injected


def run_scale_workload(
    sim: FlowSimulator,
    spec: MultiPodSpec,
    num_flows: int,
    **kwargs,
) -> int:
    """Prepare the scale workload and run it to completion; returns the
    number of completions.  See :func:`prepare_scale_workload`."""
    prepare_scale_workload(sim, spec, num_flows, **kwargs)
    sim.run()
    return sim.flows_completed


def profile_run(
    num_flows: int,
    pods: int,
    channels: int = DEFAULT_CHANNELS,
    macro: bool = True,
    sharded: bool = True,
    top: int = 20,
) -> FlowSimulator:
    spec = scale_spec(pods)
    print(
        f"fabric: {pods} pod(s), {spec.gpus} GPUs, "
        f"{num_flows} flows x fan-out {channels} "
        f"(macro={macro}, sharded={sharded})"
    )
    fabric = multi_pod_clos(spec)
    sim = FlowSimulator(fabric.topology, macro=macro, sharded=sharded)
    prepare_scale_workload(sim, spec, num_flows, channels=channels)
    profiler = cProfile.Profile()
    wall = time.perf_counter()
    profiler.enable()
    sim.run()
    completed = sim.flows_completed
    profiler.disable()
    wall = time.perf_counter() - wall
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    stats.print_stats(top)
    print(f"completed {completed} flows in {wall:.2f}s wall "
          f"({completed / wall:.0f} events/s)")
    print("perf counters:")
    for name, value in sorted(sim.perf_counters().items()):
        print(f"  {name:32s} {value}")
    return sim


def main(argv: List[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="Profile the netsim event loop on a multi-pod fabric."
    )
    parser.add_argument("--flows", type=int, default=10000)
    parser.add_argument("--pods", type=int, default=4)
    parser.add_argument("--channels", type=int, default=DEFAULT_CHANNELS)
    parser.add_argument("--top", type=int, default=20)
    parser.add_argument(
        "--no-macro", dest="macro", action="store_false",
        help="disable macro-flow aggregation",
    )
    parser.add_argument(
        "--no-sharded", dest="sharded", action="store_false",
        help="disable the sharded solver",
    )
    args = parser.parse_args(argv)
    profile_run(
        args.flows,
        args.pods,
        channels=args.channels,
        macro=args.macro,
        sharded=args.sharded,
        top=args.top,
    )


if __name__ == "__main__":
    main()
