"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so that
applications can catch everything coming out of the reproduction with a
single ``except`` clause while still being able to discriminate between the
network-simulator, cluster-substrate and MCCS-service layers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class NetSimError(ReproError):
    """Base class for network-simulator errors."""


class UnknownNodeError(NetSimError):
    """A topology lookup referenced a node that does not exist."""


class UnknownLinkError(NetSimError):
    """A flow referenced a link id that is not part of the topology."""


class NoPathError(NetSimError):
    """No path exists between the requested endpoints."""


class SimulationError(NetSimError):
    """The discrete-event engine reached an inconsistent state."""


class FaultError(NetSimError):
    """Base class for injected infrastructure faults.

    Raised (or attached to the affected flows / communicators) when a
    fault plan takes down part of the fabric; the concrete subclass says
    which component died.
    """


class LinkDownError(FaultError):
    """A link went down, or a flow was injected over a down link."""


class NicFailedError(FaultError):
    """A NIC failed; its fabric endpoint is unreachable."""


class HostCrashedError(FaultError):
    """A host crashed, taking its GPUs, NICs and proxy engines with it."""


class ServiceCrashedError(FaultError):
    """The per-host MCCS service process crashed (host and GPUs survive).

    Unlike :class:`HostCrashedError`, the infrastructure is intact: the
    service can be restarted and its control-plane state reconstructed by
    replaying the write-ahead journal (``repro.core.journal``).
    """


class ClusterError(ReproError):
    """Base class for cluster-substrate errors."""


class AllocationError(ClusterError):
    """A GPU memory allocation failed (out of memory / bad free)."""


class PlacementError(ClusterError):
    """A job could not be placed onto the cluster."""


class CollectiveError(ReproError):
    """Base class for collective-algorithm errors."""


class CommunicatorError(ReproError):
    """Misuse of a communicator (rank mismatch, wrong world size...)."""


class MccsError(ReproError):
    """Base class for MCCS service-side errors."""


class InvalidBufferError(MccsError):
    """A collective referenced memory outside any registered allocation.

    This mirrors the validation step of the paper's Section 4.1: "The
    service will check whether the data buffer user passes is within a
    valid allocation before performing the operation."
    """


class ReconfigurationError(MccsError):
    """The reconfiguration barrier protocol was violated."""


class CollectiveTimeoutError(MccsError):
    """A collective missed its completion deadline (stalled or dead peer)."""


class HeartbeatTimeoutError(MccsError):
    """A proxy engine stopped heartbeating; its host is presumed dead."""


class PolicyError(MccsError):
    """A policy module produced an inapplicable decision."""


class ServiceUnavailableError(MccsError):
    """A shim request reached a host whose MCCS service is down.

    The condition is transient when a supervisor (or a scheduled
    ``engine_restart`` fault event) will restart the service; the shim's
    retry policy decides whether to re-issue or surface the error.
    """


class AdmissionRejectedError(MccsError):
    """Admission control shed this request (tenant over its QoS quota).

    A rejection is a *decision*, not a transient failure: the shim must
    not retry it; the tenant is expected to back off or lower its rate.
    """


class UpgradeError(MccsError):
    """A live service upgrade could not be performed as requested."""


class JournalError(MccsError):
    """The write-ahead state journal was used or replayed inconsistently."""


class MembershipChangeError(MccsError):
    """An elastic grow/shrink request could not be carried out.

    Raised synchronously for inapplicable requests (unknown ranks, a
    membership change already in flight, shrinking below two ranks) and
    delivered to ``on_failed`` when the drain barrier fails terminally.
    """


class SynthesisError(MccsError):
    """Base class for collective-program synthesis errors."""


class ProgramValidationError(SynthesisError):
    """An IR program failed the synthesis validator.

    Concrete subclasses name the invariant that was violated; every one
    carries the offending program's name so batch synthesis can report
    which candidate was rejected.
    """


class MalformedProgramError(ProgramValidationError):
    """Structurally invalid IR: bad ranks, chunks, channels or op shapes."""


class UnmatchedTransferError(ProgramValidationError):
    """A send without its matching receive (or vice versa)."""


class MissingChunkError(ProgramValidationError):
    """An instruction uses a chunk its rank does not hold yet."""


class DeadlockError(ProgramValidationError):
    """The program's dependency graph contains a wait cycle."""


class PostconditionError(ProgramValidationError):
    """The program terminates with the wrong chunk placement for its kind."""
