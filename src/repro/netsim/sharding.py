"""Domain-sharded max-min fairness for multi-pod fabrics.

Weighted max-min fairness is a global property *per connected component*
of the flow/link sharing graph: two flows that share no link (directly or
transitively) cannot influence each other's rate, so disjoint components
solve independently and exactly.  On a multi-pod Clos fabric
(:func:`repro.netsim.fabric.multi_pod_clos`) components follow the pod
structure — intra-pod traffic never couples two pods unless a flow
actually crosses the core — which is what makes a datacenter-scale
simulation tractable: one completion dirties one pod-sized (usually much
smaller) domain, not the whole fabric.

:class:`ShardedFairnessSolver` maintains the components *dynamically*:

* every link starts unowned; a new flow claims its links into a domain
  (one per component), each domain owning a private
  :class:`~repro.netsim.fairness.IncrementalFairnessSolver` over its
  links only;
* a flow whose links span several domains **merges** them (the
  synchronization point of the shard model: traffic crossing a shard
  boundary — e.g. an inter-pod flow over core links — conservatively
  fuses the shards so the coupled allocation stays exact, a zero-lag
  barrier instead of an approximation).  The merged solver re-registers
  member flows in their global arrival order, so every per-link
  incidence list keeps the exact entry order of the unsharded reference
  solver and the bincount partial sums stay bit-identical;
* domains never split while occupied (merging is monotone), but a domain
  whose last flow leaves **dissolves**, returning its links to the
  unowned pool; under phased workloads components re-form small.

Only *dirty* domains (touched by an add/remove/gate/capacity delta since
their last solve) are re-solved, and each domain solve rides the plain
solver's scalar fast path when small.

Exactness: allocations match the global reference solver bit for bit
except when two *different* link shares land within the solver's
relative freeze tolerance (1e-9) of each other across two independent
components — the global solver would freeze both at one water level, the
sharded one at each component's own.  The property suite drives both
solvers through randomized churn and asserts exact equality.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Set, Tuple

from .fairness import IncrementalFairnessSolver
from .flows import Flow


class _Domain:
    """One fairness component: a private solver over an owned link set.

    The solver is built *lazily* at the domain's first solve: while flows
    are still arriving (and domains are still merging as arrivals couple
    components), membership is just set/dict bookkeeping — a merge during
    an injection wave is a set union, not a solver rebuild.  Once
    materialized, the solver absorbs further churn incrementally; a later
    merge throws the solver away and the union re-materializes on the
    next solve.
    """

    __slots__ = ("solver", "links", "members", "solo_level", "solo_bneck")

    def __init__(self, links: Set[str]) -> None:
        self.solver: Optional[IncrementalFairnessSolver] = None
        self.links = links
        self.members: Dict[str, Flow] = {}
        #: Last solved water level / bottleneck while the domain is a
        #: singleton solved on the solo fast path (no solver built).
        self.solo_level = 0.0
        self.solo_bneck: Optional[str] = None


class ShardedFairnessSolver:
    """Drop-in (engine-facing) solver that shards by sharing component.

    Implements the same protocol the engine drives
    (:meth:`add_flow`/:meth:`remove_flow`/:meth:`set_active`/
    :meth:`set_capacity`/:meth:`solve`/:meth:`flow_at`/...) but returns
    ``solve()`` results as ``(changed_global_slots, {slot: rate})``.

    Capacity overrides (the burst-interference model) are not supported:
    the penalty couples link capacities through tenant co-location, which
    is a global property; the engine rejects the combination up front.
    """

    def __init__(self, capacities: Mapping[str, float]) -> None:
        self._caps: Dict[str, float] = dict(capacities)
        self._link_domain: Dict[str, _Domain] = {}
        self._flow_domain: Dict[str, _Domain] = {}
        self._domains: Set[_Domain] = set()
        self._dirty: Set[_Domain] = set()
        # global arrival order; merged domains re-add flows in this order
        # so per-link incidence entry order matches the unsharded solver
        self._seq: Dict[str, int] = {}
        self._next_seq = 0
        # engine-facing global slots
        self._slots: List[Optional[Flow]] = []
        self._slot_of: Dict[str, int] = {}
        self._free_slots: List[int] = []
        # counters (wrapper-level; domain counters fold in via properties)
        self.domain_merges = 0
        self.domain_dissolutions = 0
        self.max_domain_flows = 0
        self.solo_solves = 0
        self.last_delta = 0
        self.solve_epoch = 0
        # last rate handed to the engine per flow; lets a freshly
        # (re)materialized solver report everything without the engine
        # re-anchoring flows whose allocation did not actually move
        self._reported: Dict[str, float] = {}
        self._retired = {
            "full_rebuilds": 0,
            "delta_updates": 0,
            "delta_flows_total": 0,
            "solves_skipped": 0,
            "scalar_solves": 0,
        }
        self._util_cache: Tuple[int, float, Dict[str, float]] = (-1, 0.0, {})
        self._loads_cache: Tuple[int, Dict[str, float]] = (-1, {})

    # -- counter aggregation -------------------------------------------
    def _aggregate(self, name: str) -> int:
        return self._retired[name] + sum(
            getattr(d.solver, name) for d in self._domains if d.solver
        )

    def _retire_solver(self, domain: _Domain) -> None:
        if domain.solver is not None:
            for name in self._retired:
                self._retired[name] += getattr(domain.solver, name)
            domain.solver = None

    @property
    def full_rebuilds(self) -> int:
        return self._aggregate("full_rebuilds")

    @property
    def delta_updates(self) -> int:
        return self._aggregate("delta_updates")

    @property
    def delta_flows_total(self) -> int:
        return self._aggregate("delta_flows_total")

    @property
    def solves_skipped(self) -> int:
        return self._aggregate("solves_skipped")

    @property
    def scalar_solves(self) -> int:
        return self._aggregate("scalar_solves")

    @property
    def domain_count(self) -> int:
        return len(self._domains)

    # -- structural updates --------------------------------------------
    def add_flow(self, flow: Flow) -> None:
        caps = self._caps
        link_domain = self._link_domain
        touched: List[_Domain] = []
        seen: Set[int] = set()
        for link in flow.links:
            if link not in caps:
                raise KeyError(
                    f"flow {flow.flow_id} uses unknown link {link!r}"
                )
            d = link_domain.get(link)
            if d is not None and id(d) not in seen:
                seen.add(id(d))
                touched.append(d)
        if not touched:
            domain = _Domain(set(flow.links))
            self._domains.add(domain)
        elif len(touched) == 1:
            domain = touched[0]
            fresh = [l for l in flow.links if l not in domain.links]
            if fresh:
                if domain.solver is not None:
                    domain.solver.add_links(
                        {l: self._caps[l] for l in fresh}
                    )
                domain.links.update(fresh)
        else:
            domain = self._merge(touched, extra_links=flow.links)
        for link in flow.links:
            self._link_domain[link] = domain
        if domain.solver is not None:
            domain.solver.add_flow(flow)
        domain.members[flow.flow_id] = flow
        self._flow_domain[flow.flow_id] = domain
        self._seq[flow.flow_id] = self._next_seq
        self._next_seq += 1
        self._dirty.add(domain)
        if len(domain.members) > self.max_domain_flows:
            self.max_domain_flows = len(domain.members)
        # engine-facing slot
        if self._free_slots:
            slot = self._free_slots.pop()
            self._slots[slot] = flow
        else:
            slot = len(self._slots)
            self._slots.append(flow)
        self._slot_of[flow.flow_id] = slot

    def _merge(
        self, parts: List[_Domain], extra_links: Tuple[str, ...]
    ) -> _Domain:
        """Fuse ``parts`` (plus any unowned ``extra_links``) into one
        unmaterialized domain; the union's solver is (re)built at the
        next solve, re-registering members in global arrival order so
        per-link incidence entry order matches the unsharded reference.
        """
        links: Set[str] = set(extra_links)
        merged = _Domain(links)
        for d in parts:
            links.update(d.links)
            merged.members.update(d.members)
            self._domains.discard(d)
            self._dirty.discard(d)
            self._retire_solver(d)
        for fid in merged.members:
            self._flow_domain[fid] = merged
        for link in links:
            self._link_domain[link] = merged
        self._domains.add(merged)
        self.domain_merges += 1
        return merged

    def _materialize(self, domain: _Domain) -> None:
        """Build the domain's solver, registering members in global
        arrival order (bit-exactness depends on this order matching the
        unsharded solver's per-link entry order)."""
        caps = self._caps
        solver = IncrementalFairnessSolver(
            {l: caps[l] for l in domain.links}
        )
        seq = self._seq
        for flow in sorted(
            domain.members.values(), key=lambda f: seq[f.flow_id]
        ):
            solver.add_flow(flow)
        domain.solver = solver

    def remove_flow(self, flow: Flow) -> None:
        domain = self._flow_domain.pop(flow.flow_id, None)
        if domain is None:
            return
        if domain.solver is not None:
            domain.solver.remove_flow(flow)
        domain.members.pop(flow.flow_id, None)
        self._seq.pop(flow.flow_id, None)
        self._reported.pop(flow.flow_id, None)
        slot = self._slot_of.pop(flow.flow_id, None)
        if slot is not None:
            self._slots[slot] = None
            self._free_slots.append(slot)
        if domain.members:
            self._dirty.add(domain)
        else:
            # dissolve: links return to the unowned pool
            for link in domain.links:
                if self._link_domain.get(link) is domain:
                    del self._link_domain[link]
            self._domains.discard(domain)
            self._dirty.discard(domain)
            self._retire_solver(domain)
            self.domain_dissolutions += 1

    def set_active(self, flow: Flow, active: bool) -> None:
        domain = self._flow_domain.get(flow.flow_id)
        if domain is not None:
            # An unmaterialized domain reads ``flow.active`` at build
            # time, which already reflects this change.
            if domain.solver is not None:
                domain.solver.set_active(flow, active)
            self._dirty.add(domain)

    def set_weight(self, flow: Flow, weight: float) -> None:
        domain = self._flow_domain.get(flow.flow_id)
        if domain is not None:
            # Unmaterialized domains read ``flow.weight`` at build time.
            if domain.solver is not None:
                domain.solver.set_weight(flow, weight)
            self._dirty.add(domain)

    def set_capacity(self, link_id: str, capacity: float) -> None:
        if link_id not in self._caps:
            raise KeyError(f"unknown link {link_id!r}")
        self._caps[link_id] = capacity
        domain = self._link_domain.get(link_id)
        if domain is not None:
            if domain.solver is not None:
                domain.solver.set_capacity(link_id, capacity)
            self._dirty.add(domain)

    def scaled_caps(self, penalty: float):
        raise NotImplementedError(
            "interference_penalty requires the unsharded solver"
        )

    # -- queries --------------------------------------------------------
    def flow_count(self) -> int:
        return len(self._flow_domain)

    def flow_at(self, slot: int) -> Optional[Flow]:
        return self._slots[slot]

    def bottleneck_of(self, flow_id: str) -> Optional[str]:
        domain = self._flow_domain.get(flow_id)
        if domain is None:
            return None
        if domain.solver is None:
            return domain.solo_bneck if len(domain.members) == 1 else None
        return domain.solver.bottleneck_of(flow_id)

    def bottleneck_of_slot(self, slot: int) -> Optional[str]:
        flow = self._slots[slot]
        if flow is None:
            return None
        return self.bottleneck_of(flow.flow_id)

    def level_of_slot(self, slot: int) -> float:
        flow = self._slots[slot]
        return self.level_of(flow.flow_id)

    def level_of(self, flow_id: str) -> float:
        domain = self._flow_domain.get(flow_id)
        if domain is None:
            return 0.0
        if domain.solver is None:
            return domain.solo_level if len(domain.members) == 1 else 0.0
        return domain.solver.level_of(flow_id)

    def rates_by_id(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        reported = self._reported
        for d in self._domains:
            if d.solver is not None:
                out.update(d.solver.rates_by_id())
            else:
                # solo-solved singleton or not-yet-solved domain
                out.update(
                    (fid, reported.get(fid, 0.0)) for fid in d.members
                )
        return out

    def link_loads(self) -> Dict[str, float]:
        epoch, cached = self._loads_cache
        if epoch == self.solve_epoch:
            return cached
        out: Dict[str, float] = {}
        reported = self._reported
        for d in self._domains:
            if d.solver is not None:
                out.update(d.solver.link_loads())
            elif len(d.members) == 1:
                (fid, member), = d.members.items()
                rate = reported.get(fid, 0.0)
                if rate:
                    out.update((link, rate) for link in member.links)
        self._loads_cache = (self.solve_epoch, out)
        return out

    def link_utilization(self, min_utilization: float = 0.0) -> Dict[str, float]:
        epoch, cached_min, cached = self._util_cache
        if epoch == self.solve_epoch and cached_min == min_utilization:
            return cached
        out: Dict[str, float] = {}
        caps = self._caps
        reported = self._reported
        for d in self._domains:
            if d.solver is not None:
                out.update(d.solver.link_utilization(min_utilization))
            elif len(d.members) == 1:
                (fid, member), = d.members.items()
                rate = reported.get(fid, 0.0)
                if rate:
                    for link in member.links:
                        util = rate / caps[link]
                        if util >= min_utilization:
                            out[link] = util
        self._util_cache = (self.solve_epoch, min_utilization, out)
        return out

    # -- the solve ------------------------------------------------------
    def solve(
        self, capacities: Optional[object] = None
    ) -> Tuple[List[int], Dict[int, float]]:
        """Re-solve every dirty domain; returns global changed slots.

        Rates are returned as ``{global_slot: rate}`` covering (at least)
        the changed slots — the mapping the engine indexes.
        """
        if capacities is not None:
            raise NotImplementedError(
                "sharded solve does not take capacity overrides"
            )
        if not self._dirty:
            self.last_delta = 0
            return [], {}
        changed: List[int] = []
        rates: Dict[int, float] = {}
        total_delta = 0
        dirty = self._dirty
        self._dirty = set()
        slot_of = self._slot_of
        caps = self._caps
        reported = self._reported
        for domain in dirty:
            if domain.solver is None and len(domain.members) == 1:
                # Solo fast path: a singleton component's allocation is
                # ``level = min(cap/weight)`` over its links — the exact
                # value (same IEEE quotients, same min) progressive
                # filling computes for a one-flow component — so no
                # solver is ever built for it.
                (fid, member), = domain.members.items()
                if member.active:
                    weight = member.weight
                    level = bneck = None
                    for link in member.links:
                        quot = caps[link] / weight
                        if level is None or quot < level:
                            level = quot
                            bneck = link
                    rate = weight * level
                else:
                    level = 0.0
                    bneck = None
                    rate = 0.0
                domain.solo_level = level
                domain.solo_bneck = bneck
                self.solo_solves += 1
                total_delta += 1
                if reported.get(fid, 0.0) != rate:
                    reported[fid] = rate
                    gslot = slot_of[fid]
                    rates[gslot] = rate
                    changed.append(gslot)
                continue
            if domain.solver is None:
                self._materialize(domain)
            solver = domain.solver
            local_changed, local_rates = solver.solve()
            total_delta += solver.last_delta
            local_table = solver._flows
            for ls in local_changed.tolist():
                f = local_table[ls]
                if f is None:
                    continue
                fid = f.flow_id
                rate = float(local_rates[ls])
                if reported.get(fid, 0.0) != rate:
                    reported[fid] = rate
                    gslot = slot_of[fid]
                    rates[gslot] = rate
                    changed.append(gslot)
        self.last_delta = total_delta
        self.solve_epoch += 1
        return changed, rates
