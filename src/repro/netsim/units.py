"""Unit conventions and conversion helpers for the network simulator.

Internally the simulator always works in **bytes** and **seconds**.  The
paper (and networking practice) mixes decimal units: link speeds are quoted
in Gbps (1e9 bits per second), collective bandwidth in GB/s (1e9 bytes per
second, following the nccl-tests convention), and buffer sizes in binary
KB/MB (as the x axis of Figure 6 uses 32KB...512MB power-of-two sizes).

These helpers keep the conversions explicit at the call site, which avoids
the classic factor-of-8 and 1000-vs-1024 mistakes.
"""

from __future__ import annotations

# --- sizes (binary, matching the 32KB..512MB axis of Figure 6) -------------
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

# Convenience aliases used throughout the experiment configs.
KB = KIB
MB = MIB
GB = GIB

# --- time -------------------------------------------------------------------
USEC = 1e-6
MSEC = 1e-3
SEC = 1.0


def gbps(value: float) -> float:
    """Convert a link speed in gigabits per second to bytes per second."""
    return value * 1e9 / 8.0


def gBps(value: float) -> float:
    """Convert a bandwidth in gigabytes per second (decimal) to bytes/s."""
    return value * 1e9


def to_gBps(bytes_per_second: float) -> float:
    """Convert bytes/s into the GB/s figure reported by nccl-tests."""
    return bytes_per_second / 1e9


def bytes_to_gb(num_bytes: float) -> float:
    """Convert a byte count into decimal gigabytes."""
    return num_bytes / 1e9


def parse_size(text: str) -> int:
    """Parse a human size string such as ``"32KB"``, ``"8MB"`` or ``"512MB"``.

    Sizes follow the binary convention used on the Figure 6 x-axis.

    >>> parse_size("32KB")
    32768
    >>> parse_size("1GB") == 1024 ** 3
    True
    """
    text = text.strip().upper()
    for suffix, factor in (("GB", GIB), ("MB", MIB), ("KB", KIB), ("B", 1)):
        if text.endswith(suffix):
            return int(float(text[: -len(suffix)]) * factor)
    return int(text)


def format_size(num_bytes: int) -> str:
    """Format a byte count the way the paper labels its x axis.

    >>> format_size(32 * 1024)
    '32KB'
    >>> format_size(512 * 1024 * 1024)
    '512MB'
    """
    for suffix, factor in (("GB", GIB), ("MB", MIB), ("KB", KIB)):
        if num_bytes >= factor and num_bytes % factor == 0:
            return f"{num_bytes // factor}{suffix}"
    if num_bytes >= MIB:
        return f"{num_bytes / MIB:.1f}MB"
    if num_bytes >= KIB:
        return f"{num_bytes / KIB:.1f}KB"
    return f"{num_bytes}B"
