"""Weighted max-min fair rate allocation via progressive filling.

The paper's large-scale simulator "assumes per-flow fairness" (§6.5); this
module implements the canonical progressive-filling (water-filling)
algorithm that realizes weighted max-min fairness over a capacitated link
set.  Two implementations are provided:

* :func:`progressive_filling` — a direct, readable reference version used
  by the unit/property tests.
* :class:`FairnessSolver` — a vectorized numpy version used by the engine;
  it amortizes the link/flow incidence structure so that the per-event rate
  recomputation in large simulations (hundreds of flows, thousands of
  links) stays fast.

Both produce identical allocations (tested against each other with
hypothesis).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

import numpy as np

from .flows import Flow

_EPS = 1e-12


def progressive_filling(
    flows: Sequence[Flow], capacities: Mapping[str, float]
) -> Dict[str, float]:
    """Reference weighted max-min allocation.

    Args:
        flows: Flows to allocate; gated/completed flows receive rate 0.
        capacities: Map of link id -> capacity (bytes/s).

    Returns:
        Map of flow id -> rate in bytes/s.
    """
    rates: Dict[str, float] = {f.flow_id: 0.0 for f in flows}
    active = [f for f in flows if f.active]
    for flow in active:
        for link in flow.path:
            if link not in capacities:
                raise KeyError(f"flow {flow.flow_id} uses unknown link {link!r}")

    residual = dict(capacities)
    link_members: Dict[str, List[Flow]] = {}
    for flow in active:
        for link in set(flow.path):
            link_members.setdefault(link, []).append(flow)

    frozen: set = set()
    while len(frozen) < len(active):
        # Fair share of each link among its still-unfrozen flows.
        best_share = None
        for link, members in link_members.items():
            weight = sum(f.weight for f in members if f.flow_id not in frozen)
            if weight <= 0:
                continue
            share = residual[link] / weight
            if best_share is None or share < best_share - _EPS:
                best_share = share
        if best_share is None:
            break
        best_share = max(best_share, 0.0)
        # Freeze every flow crossing a bottleneck link at weight*share.
        to_freeze: List[Flow] = []
        for link, members in link_members.items():
            weight = sum(f.weight for f in members if f.flow_id not in frozen)
            if weight <= 0:
                continue
            if residual[link] / weight <= best_share + _EPS:
                for f in members:
                    if f.flow_id not in frozen:
                        to_freeze.append(f)
        if not to_freeze:
            break
        for f in to_freeze:
            if f.flow_id in frozen:
                continue
            rate = f.weight * best_share
            rates[f.flow_id] = rate
            frozen.add(f.flow_id)
            for link in set(f.path):
                residual[link] = max(residual[link] - rate, 0.0)
    return rates


class FairnessSolver:
    """Vectorized progressive filling over a fixed set of flows.

    The solver is rebuilt whenever the active flow set changes; within one
    build, :meth:`solve` performs only numpy reductions.
    """

    def __init__(
        self, flows: Sequence[Flow], capacities: Mapping[str, float]
    ) -> None:
        self._flows = [f for f in flows if f.active]
        self._all = list(flows)
        link_ids = sorted({l for f in self._flows for l in f.path})
        self._link_index = {l: i for i, l in enumerate(link_ids)}
        self._caps = np.array([capacities[l] for l in link_ids], dtype=float)
        flat_links: List[int] = []
        flat_flows: List[int] = []
        for fi, flow in enumerate(self._flows):
            for link in set(flow.path):
                flat_links.append(self._link_index[link])
                flat_flows.append(fi)
        self._flat_links = np.asarray(flat_links, dtype=np.int64)
        self._flat_flows = np.asarray(flat_flows, dtype=np.int64)
        self._weights = np.array([f.weight for f in self._flows], dtype=float)

    def solve(self) -> Dict[str, float]:
        """Run progressive filling; returns flow id -> rate (bytes/s)."""
        num_flows = len(self._flows)
        rates = np.zeros(num_flows, dtype=float)
        if num_flows == 0:
            return {f.flow_id: 0.0 for f in self._all}
        num_links = len(self._caps)
        residual = self._caps.copy()
        unfrozen = np.ones(num_flows, dtype=bool)
        while unfrozen.any():
            member_w = self._weights[self._flat_flows] * unfrozen[self._flat_flows]
            link_weight = np.bincount(
                self._flat_links, weights=member_w, minlength=num_links
            )
            with np.errstate(divide="ignore", invalid="ignore"):
                share = np.where(link_weight > 0, residual / link_weight, np.inf)
            best = share.min()
            if not np.isfinite(best):
                break
            best = max(best, 0.0)
            bottleneck = share <= best * (1 + 1e-9) + _EPS
            # Flows incident to any bottleneck link freeze at weight*best.
            hit = bottleneck[self._flat_links] & unfrozen[self._flat_flows]
            freeze_flows = np.zeros(num_flows, dtype=bool)
            freeze_flows[self._flat_flows[hit]] = True
            freeze_flows &= unfrozen
            if not freeze_flows.any():
                break
            rates[freeze_flows] = self._weights[freeze_flows] * best
            # Subtract the frozen rates from every link they traverse.
            frozen_mask = freeze_flows[self._flat_flows]
            used = np.bincount(
                self._flat_links[frozen_mask],
                weights=rates[self._flat_flows[frozen_mask]],
                minlength=num_links,
            )
            residual = np.maximum(residual - used, 0.0)
            unfrozen &= ~freeze_flows
        result = {f.flow_id: 0.0 for f in self._all}
        for fi, flow in enumerate(self._flows):
            result[flow.flow_id] = float(rates[fi])
        return result


def bottleneck_rate(
    path: Iterable[str], capacities: Mapping[str, float]
) -> float:
    """Best-case rate of a flow that has each link of ``path`` to itself."""
    return min(capacities[l] for l in path)


def link_loads(
    flows: Sequence[Flow], rates: Mapping[str, float]
) -> Dict[str, float]:
    """Aggregate allocated rate per link; useful for assertions and debug."""
    loads: Dict[str, float] = {}
    for flow in flows:
        rate = rates.get(flow.flow_id, 0.0)
        for link in set(flow.path):
            loads[link] = loads.get(link, 0.0) + rate
    return loads
