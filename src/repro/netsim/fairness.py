"""Weighted max-min fair rate allocation via progressive filling.

The paper's large-scale simulator "assumes per-flow fairness" (§6.5); this
module implements the canonical progressive-filling (water-filling)
algorithm that realizes weighted max-min fairness over a capacitated link
set.  Two implementations are provided:

* :func:`progressive_filling` — a direct, readable reference version used
  by the unit/property tests.
* :class:`FairnessSolver` — a vectorized numpy version built per call; it
  remains as the readable one-shot vectorization (and as the solver of the
  engine's legacy mode).
* :class:`IncrementalFairnessSolver` — the engine's persistent solver.  It
  keeps the link index, the CSR-style flow/link incidence arrays, and the
  weight vector alive across recomputations, applying O(Δ) structural
  updates on flow add/remove/gate and capacity change; only the numpy
  water-filling itself is global (max-min fairness is a global property).

All produce identical allocations (tested against each other with
hypothesis, including under randomized churn sequences).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .flows import Flow

_EPS = 1e-12


def progressive_filling(
    flows: Sequence[Flow], capacities: Mapping[str, float]
) -> Dict[str, float]:
    """Reference weighted max-min allocation.

    Args:
        flows: Flows to allocate; gated/completed flows receive rate 0.
        capacities: Map of link id -> capacity (bytes/s).

    Returns:
        Map of flow id -> rate in bytes/s.
    """
    rates: Dict[str, float] = {f.flow_id: 0.0 for f in flows}
    active = [f for f in flows if f.active]
    for flow in active:
        for link in flow.path:
            if link not in capacities:
                raise KeyError(f"flow {flow.flow_id} uses unknown link {link!r}")

    residual = dict(capacities)
    link_members: Dict[str, List[Flow]] = {}
    for flow in active:
        for link in flow.links:
            link_members.setdefault(link, []).append(flow)

    frozen: set = set()
    while len(frozen) < len(active):
        # Fair share of each link among its still-unfrozen flows.
        best_share = None
        for link, members in link_members.items():
            weight = sum(f.weight for f in members if f.flow_id not in frozen)
            if weight <= 0:
                continue
            share = residual[link] / weight
            if best_share is None or share < best_share - _EPS:
                best_share = share
        if best_share is None:
            break
        best_share = max(best_share, 0.0)
        # Freeze every flow crossing a bottleneck link at weight*share.
        to_freeze: List[Flow] = []
        for link, members in link_members.items():
            weight = sum(f.weight for f in members if f.flow_id not in frozen)
            if weight <= 0:
                continue
            if residual[link] / weight <= best_share + _EPS:
                for f in members:
                    if f.flow_id not in frozen:
                        to_freeze.append(f)
        if not to_freeze:
            break
        for f in to_freeze:
            if f.flow_id in frozen:
                continue
            rate = f.weight * best_share
            rates[f.flow_id] = rate
            frozen.add(f.flow_id)
            for link in f.links:
                residual[link] = max(residual[link] - rate, 0.0)
    return rates


class FairnessSolver:
    """Vectorized progressive filling over a fixed set of flows.

    The solver is rebuilt whenever the active flow set changes; within one
    build, :meth:`solve` performs only numpy reductions.
    """

    def __init__(
        self, flows: Sequence[Flow], capacities: Mapping[str, float]
    ) -> None:
        self._flows = [f for f in flows if f.active]
        self._all = list(flows)
        link_ids = sorted({l for f in self._flows for l in f.path})
        self._link_index = {l: i for i, l in enumerate(link_ids)}
        self._caps = np.array([capacities[l] for l in link_ids], dtype=float)
        flat_links: List[int] = []
        flat_flows: List[int] = []
        for fi, flow in enumerate(self._flows):
            for link in flow.links:
                flat_links.append(self._link_index[link])
                flat_flows.append(fi)
        self._flat_links = np.asarray(flat_links, dtype=np.int64)
        self._flat_flows = np.asarray(flat_flows, dtype=np.int64)
        self._weights = np.array([f.weight for f in self._flows], dtype=float)

    def solve(self) -> Dict[str, float]:
        """Run progressive filling; returns flow id -> rate (bytes/s)."""
        num_flows = len(self._flows)
        rates = np.zeros(num_flows, dtype=float)
        if num_flows == 0:
            return {f.flow_id: 0.0 for f in self._all}
        num_links = len(self._caps)
        residual = self._caps.copy()
        unfrozen = np.ones(num_flows, dtype=bool)
        while unfrozen.any():
            member_w = self._weights[self._flat_flows] * unfrozen[self._flat_flows]
            link_weight = np.bincount(
                self._flat_links, weights=member_w, minlength=num_links
            )
            with np.errstate(divide="ignore", invalid="ignore"):
                share = np.where(link_weight > 0, residual / link_weight, np.inf)
            best = share.min()
            if not np.isfinite(best):
                break
            best = max(best, 0.0)
            bottleneck = share <= best * (1 + 1e-9) + _EPS
            # Flows incident to any bottleneck link freeze at weight*best.
            hit = bottleneck[self._flat_links] & unfrozen[self._flat_flows]
            freeze_flows = np.zeros(num_flows, dtype=bool)
            freeze_flows[self._flat_flows[hit]] = True
            freeze_flows &= unfrozen
            if not freeze_flows.any():
                break
            rates[freeze_flows] = self._weights[freeze_flows] * best
            # Subtract the frozen rates from every link they traverse.
            frozen_mask = freeze_flows[self._flat_flows]
            used = np.bincount(
                self._flat_links[frozen_mask],
                weights=rates[self._flat_flows[frozen_mask]],
                minlength=num_links,
            )
            residual = np.maximum(residual - used, 0.0)
            unfrozen &= ~freeze_flows
        result = {f.flow_id: 0.0 for f in self._all}
        for fi, flow in enumerate(self._flows):
            result[flow.flow_id] = float(rates[fi])
        return result


#: Live-entry count at or below which :meth:`IncrementalFairnessSolver.
#: solve` runs its scalar (pure-Python) progressive-filling core instead
#: of the vectorized one.  Small problems are dominated by numpy call
#: overhead (~1 µs per op, ~15 ops per round); the scalar core performs
#: the *same arithmetic in the same order*, so the allocation is
#: bit-identical either way (asserted by the hypothesis churn suite).
SCALAR_SOLVE_MAX_ENTRIES = 96

_EMPTY_CHANGED = np.zeros(0, dtype=np.int64)


class IncrementalFairnessSolver:
    """Persistent weighted max-min solver with O(Δ) structural updates.

    The solver owns the link index, the capacity vector, the flat
    flow/link incidence arrays (CSR-style: every registered flow appends
    one contiguous run of entries), and the weight/active vectors.  Flow
    churn mutates this state in O(links-per-flow); nothing is rebuilt per
    recomputation.  Removed flows leave tombstoned incidence entries that
    are purged by an occasional compaction pass once they outnumber the
    live entries — the only "full rebuild" left, counted in
    :attr:`full_rebuilds` so telemetry can show rebuilds being replaced by
    Δ-updates.

    :meth:`solve` runs the same progressive filling as
    :class:`FairnessSolver` over the persistent arrays and returns the
    slots whose rate actually moved, which is what lets the engine
    invalidate only the completion-heap entries that changed.  A solve
    with no pending structural deltas is answered from the cached
    allocation (``solves_skipped``), and sub-:data:`SCALAR_SOLVE_MAX_ENTRIES`
    problems take a scalar fast path — both bit-identical to the full
    vectorized solve.  ``solve_epoch`` increments whenever the allocation
    may have moved; the derived views (:meth:`rates_by_id`,
    :meth:`link_loads`, :meth:`link_utilization`) are cached on it.
    """

    _GROW = 1.5

    def __init__(self, capacities: Mapping[str, float]) -> None:
        self._link_ids: List[str] = list(capacities)
        self._link_index: Dict[str, int] = {
            link: i for i, link in enumerate(self._link_ids)
        }
        self._caps = np.array(
            [capacities[l] for l in self._link_ids], dtype=float
        )
        # per-slot state (a slot is a stable integer id for one flow)
        self._flows: List[Optional[Flow]] = []
        self._slot_of: Dict[str, int] = {}
        self._free_slots: List[int] = []
        self._weights = np.zeros(0, dtype=float)
        self._active = np.zeros(0, dtype=bool)
        self._in_use = np.zeros(0, dtype=bool)
        self._rates = np.zeros(0, dtype=float)
        # per-slot water level of the round that froze the slot in the
        # last solve; a slot's rate is exactly ``weight * level``.  Macro
        # aggregation reconstructs member rates from this (see
        # :mod:`repro.netsim.macroflow`).
        self._levels = np.zeros(0, dtype=float)
        # per-slot index of the link that froze the slot in the last solve
        # (-1 = not frozen / unknown); the causal tracer reads this to
        # attribute a flow's current rate to its bottleneck link.
        self._bneck = np.full(0, -1, dtype=np.int64)
        # per-slot contiguous incidence span: slot -> (start, length)
        self._spans: List[Tuple[int, int]] = []
        self._flat_links = np.zeros(64, dtype=np.int64)
        self._flat_slots = np.zeros(64, dtype=np.int64)
        self._nnz = 0
        self._dead_nnz = 0
        self._loads = np.zeros(len(self._caps), dtype=float)
        self._loads_stale = False
        # slots whose rate was force-zeroed since the last solve (flow
        # removed or gated while carrying a nonzero rate); they are part
        # of the next solve's changed set without scanning every slot.
        self._deactivated: List[int] = []
        # path -> precomputed link-index list (append-only link index
        # keeps these valid across add_links()).
        self._path_idx: Dict[Tuple[str, ...], List[int]] = {}
        # epoch-keyed caches of the derived dict views
        self.solve_epoch = 0
        self._rates_by_id_cache: Tuple[int, Dict[str, float]] = (-1, {})
        self._loads_cache: Tuple[int, Dict[str, float]] = (-1, {})
        self._util_cache: Tuple[int, float, Dict[str, float]] = (-1, 0.0, {})
        # counters (read by the engine's perf_counters())
        self.full_rebuilds = 1  # the initial build
        self.delta_updates = 0
        self.delta_flows_total = 0
        self.last_delta = 0
        self.solves_skipped = 0
        self.scalar_solves = 0
        self._pending_delta = 0
        self._solved_once = False
        self._last_override = False

    @property
    def num_links(self) -> int:
        return len(self._link_ids)

    def flow_count(self) -> int:
        """Registered (non-tombstoned) flows."""
        return len(self._slot_of)

    # -- structural updates (all O(Δ)) ---------------------------------
    def add_links(self, capacities: Mapping[str, float]) -> None:
        """Register additional links (append-only; existing indices keep)."""
        fresh = [l for l in capacities if l not in self._link_index]
        if not fresh:
            return
        for link in fresh:
            self._link_index[link] = len(self._link_ids)
            self._link_ids.append(link)
        grown = np.empty(len(self._link_ids), dtype=float)
        grown[: len(self._caps)] = self._caps
        grown[len(self._caps):] = [capacities[l] for l in fresh]
        self._caps = grown
        loads = np.zeros(len(self._link_ids), dtype=float)
        loads[: len(self._loads)] = self._loads
        self._loads = loads
        self._note_delta()

    def add_flow(self, flow: Flow) -> None:
        link_idx = self._path_idx.get(flow.links)
        if link_idx is None:
            link_idx = []
            for link in flow.links:
                idx = self._link_index.get(link)
                if idx is None:
                    raise KeyError(
                        f"flow {flow.flow_id} uses unknown link {link!r}"
                    )
                link_idx.append(idx)
            self._path_idx[flow.links] = link_idx
        if self._free_slots:
            slot = self._free_slots.pop()
            self._flows[slot] = flow
        else:
            slot = len(self._flows)
            self._flows.append(flow)
            self._spans.append((0, 0))
            if slot >= len(self._weights):
                self._grow_slots(slot + 1)
        self._slot_of[flow.flow_id] = slot
        self._weights[slot] = flow.weight
        self._active[slot] = flow.active
        self._in_use[slot] = True
        self._rates[slot] = 0.0
        self._levels[slot] = 0.0
        self._bneck[slot] = -1
        k = len(link_idx)
        if self._nnz + k > len(self._flat_links):
            self._grow_flat(self._nnz + k)
        self._flat_links[self._nnz : self._nnz + k] = link_idx
        self._flat_slots[self._nnz : self._nnz + k] = slot
        self._spans[slot] = (self._nnz, k)
        self._nnz += k
        self._note_delta()

    def remove_flow(self, flow: Flow) -> None:
        slot = self._slot_of.pop(flow.flow_id, None)
        if slot is None:
            return
        self._flows[slot] = None
        self._in_use[slot] = False
        self._active[slot] = False
        if self._rates[slot] != 0.0:
            # Part of the next solve's changed set: rates are updated
            # in place, so zeroed slots must be remembered explicitly.
            self._deactivated.append(slot)
        self._rates[slot] = 0.0
        self._levels[slot] = 0.0
        self._dead_nnz += self._spans[slot][1]
        # The slot is reusable only after compaction purges its incidence
        # entries; until then reuse would misattribute them.
        self._note_delta()

    def set_active(self, flow: Flow, active: bool) -> None:
        slot = self._slot_of.get(flow.flow_id)
        if slot is not None:
            self._active[slot] = active
            if not active and self._rates[slot] != 0.0:
                self._deactivated.append(slot)
                self._rates[slot] = 0.0
                self._levels[slot] = 0.0
            self._note_delta()

    def set_weight(self, flow: Flow, weight: float) -> None:
        """Change a registered flow's weight in place (macro aggregation
        resizes a group's weight as members join/leave/gate)."""
        slot = self._slot_of.get(flow.flow_id)
        if slot is not None:
            self._weights[slot] = weight
            self._note_delta()

    def set_capacity(self, link_id: str, capacity: float) -> None:
        self._caps[self._link_index[link_id]] = capacity
        self._note_delta()

    def _note_delta(self) -> None:
        self._pending_delta += 1
        self.delta_updates += 1

    def _grow_slots(self, need: int) -> None:
        size = max(need, int(len(self._weights) * self._GROW) + 8)
        for name in ("_weights", "_rates", "_levels"):
            old = getattr(self, name)
            new = np.zeros(size, dtype=float)
            new[: len(old)] = old
            setattr(self, name, new)
        for name in ("_active", "_in_use"):
            old = getattr(self, name)
            new = np.zeros(size, dtype=bool)
            new[: len(old)] = old
            setattr(self, name, new)
        old = self._bneck
        new = np.full(size, -1, dtype=np.int64)
        new[: len(old)] = old
        self._bneck = new

    def _grow_flat(self, need: int) -> None:
        size = max(need, int(len(self._flat_links) * self._GROW) + 8)
        for name in ("_flat_links", "_flat_slots"):
            old = getattr(self, name)
            new = np.zeros(size, dtype=np.int64)
            new[: self._nnz] = old[: self._nnz]
            setattr(self, name, new)

    def _compact(self) -> None:
        """Purge tombstoned incidence entries and reclaim free slots."""
        keep = self._in_use[self._flat_slots[: self._nnz]]
        self._flat_links[: int(keep.sum())] = self._flat_links[: self._nnz][keep]
        self._flat_slots[: int(keep.sum())] = self._flat_slots[: self._nnz][keep]
        self._nnz = int(keep.sum())
        self._dead_nnz = 0
        # Recompute the spans of surviving slots (runs stay contiguous
        # because compaction preserves order) and free the dead slots.
        self._free_slots = []
        spans = [(0, 0)] * len(self._flows)
        pos = 0
        while pos < self._nnz:
            slot = int(self._flat_slots[pos])
            end = pos
            while end < self._nnz and self._flat_slots[end] == slot:
                end += 1
            spans[slot] = (pos, end - pos)
            pos = end
        self._spans = spans
        for slot, flow in enumerate(self._flows):
            if flow is None:
                self._free_slots.append(slot)
        self.full_rebuilds += 1

    # -- queries --------------------------------------------------------
    def flow_at(self, slot: int) -> Optional[Flow]:
        return self._flows[slot]

    def bottleneck_of_slot(self, slot: int) -> Optional[str]:
        """O(1) bottleneck lookup when the caller already holds the slot."""
        idx = int(self._bneck[slot])
        return self._link_ids[idx] if idx >= 0 else None

    def bottleneck_of(self, flow_id: str) -> Optional[str]:
        """Link that froze this flow's rate in the most recent solve.

        ``None`` for unknown flows and for flows that were inactive (gated
        or zero-weight path) when the last allocation ran.
        """
        slot = self._slot_of.get(flow_id)
        if slot is None:
            return None
        idx = int(self._bneck[slot])
        return self._link_ids[idx] if idx >= 0 else None

    def capacity(self, link_id: str) -> float:
        return float(self._caps[self._link_index[link_id]])

    def _refresh_loads(self) -> np.ndarray:
        """Per-link allocated rate, recomputed lazily after a solve.

        Most solves are never followed by a utilization query before the
        next solve, so the aggregation is deferred to first read.  Removed
        flows have their rate zeroed and tombstoned entries therefore
        contribute exactly 0.0 to the sums.
        """
        if self._loads_stale:
            self._loads = np.bincount(
                self._flat_links[: self._nnz],
                weights=self._rates[self._flat_slots[: self._nnz]],
                minlength=len(self._caps),
            )
            self._loads_stale = False
        return self._loads

    def link_loads(self) -> Dict[str, float]:
        """Allocated rate per link from the most recent :meth:`solve`.

        Cached on ``solve_epoch`` — the telemetry sampler reads this every
        tick and most ticks land between solves.  Treat the returned dict
        as read-only.
        """
        epoch, cached = self._loads_cache
        if epoch == self.solve_epoch:
            return cached
        loads = self._refresh_loads()
        loaded = np.flatnonzero(loads > 0.0)
        result = {
            self._link_ids[int(i)]: float(loads[int(i)]) for i in loaded
        }
        self._loads_cache = (self.solve_epoch, result)
        return result

    def link_utilization(self, min_utilization: float = 0.0) -> Dict[str, float]:
        """load/capacity per link from the most recent :meth:`solve`.

        Cached on ``(solve_epoch, min_utilization)``; treat the returned
        dict as read-only.
        """
        epoch, cached_min, cached = self._util_cache
        if epoch == self.solve_epoch and cached_min == min_utilization:
            return cached
        with np.errstate(invalid="ignore"):
            util = self._refresh_loads() / self._caps
        hot = np.flatnonzero(util >= max(min_utilization, 1e-300))
        result = {self._link_ids[int(i)]: float(util[int(i)]) for i in hot}
        self._util_cache = (self.solve_epoch, min_utilization, result)
        return result

    def scaled_caps(self, penalty: float) -> np.ndarray:
        """Capacities with the burst-interference model applied: links
        carrying active flows of two or more distinct jobs lose
        ``penalty`` of their capacity (see ``FlowSimulator.__init__``)."""
        jobs_on_link: Dict[int, set] = {}
        for slot, flow in enumerate(self._flows):
            if flow is None or not self._active[slot]:
                continue
            start, k = self._spans[slot]
            for idx in self._flat_links[start : start + k]:
                jobs_on_link.setdefault(int(idx), set()).add(flow.job_id)
        caps = self._caps.copy()
        scale = 1.0 - penalty
        for idx, jobs in jobs_on_link.items():
            if len(jobs) >= 2:
                caps[idx] *= scale
        return caps

    # -- the solve ------------------------------------------------------
    def solve(
        self, capacities: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Progressive filling over the persistent structure.

        Args:
            capacities: Optional per-link capacity override (same indexing
                as the solver's link order), used by the interference model.

        Returns:
            ``(changed_slots, rates)``: the slots whose allocation moved
            since the previous solve, and the full per-slot rate vector
            (the solver's live array — treat it as read-only).
        """
        override = capacities is not None
        if (
            self._pending_delta == 0
            and self._solved_once
            and not override
            and not self._last_override
        ):
            # Nothing changed structurally since the previous solve with
            # default capacities: the cached allocation is still exact.
            self.last_delta = 0
            self.solves_skipped += 1
            return _EMPTY_CHANGED, self._rates
        self.last_delta = self._pending_delta
        self.delta_flows_total += self._pending_delta
        self._pending_delta = 0
        self._last_override = override
        self._solved_once = True
        self.solve_epoch += 1
        if self._dead_nnz > 64 and self._dead_nnz * 2 > self._nnz:
            self._compact()
        caps = self._caps if capacities is None else capacities
        flat_l = self._flat_links[: self._nnz]
        flat_s = self._flat_slots[: self._nnz]
        alive = self._in_use & self._active
        entry_live = alive[flat_s]
        fl = flat_l[entry_live]
        fs = flat_s[entry_live]
        self._loads_stale = True
        # Slots force-zeroed since the last solve (removed/gated while
        # rated) are changed even though they are no longer live; slots
        # zeroed but reactivated before this solve are covered by the
        # live compare below instead.
        deact = self._deactivated
        if deact:
            self._deactivated = []
            deact = [s for s in deact if not alive[s]]
        if fl.size == 0:
            if not deact:
                return _EMPTY_CHANGED, self._rates
            return np.sort(np.asarray(deact, dtype=np.int64)), self._rates
        if fl.size <= SCALAR_SOLVE_MAX_ENTRIES:
            self.scalar_solves += 1
            changed_list = self._solve_scalar(caps, fl, fs)
            changed_list.extend(deact)
            if not changed_list:
                return _EMPTY_CHANGED, self._rates
            return np.sort(np.asarray(changed_list, dtype=np.int64)), self._rates
        # Compact both dimensions to what is live *this* solve: a large
        # fabric has thousands of links and registered slots, but a
        # typical recomputation touches a few hundred of each, and the
        # per-round numpy work below scales with these sizes.  The
        # remapping is order-preserving, so every bincount accumulates
        # the same values in the same order and the allocation stays
        # bit-identical to a full-width solve.
        live_mask = np.zeros(len(caps), dtype=bool)
        live_mask[fl] = True
        live_links = np.flatnonzero(live_mask)
        nl = live_links.size
        link_lut = np.empty(len(caps), dtype=np.int64)
        link_lut[live_links] = np.arange(nl)
        fl = link_lut[fl]
        active_slots = np.flatnonzero(alive)
        na = active_slots.size
        slot_lut = np.empty(len(alive), dtype=np.int64)
        slot_lut[active_slots] = np.arange(na)
        fs = slot_lut[fs]
        self._bneck[active_slots] = -1
        w = self._weights[active_slots]
        wE = w[fs]  # per-entry weight of the entry's flow
        # Per-flow fill level: the water level ``best`` of the round
        # that froze the flow; a flow's rate is ``weight * level``,
        # the same IEEE product the reference loop computes.
        levels = np.zeros(na, dtype=float)
        residual = caps[live_links]  # fancy index -> fresh copy
        share = np.empty(nl, dtype=float)
        freeze = np.empty(na, dtype=bool)
        # Progressive filling.  Frozen entries are dropped each round,
        # so late rounds touch shrinking arrays; dropped zero-weight
        # contributions never change the bincount partial sums.  The
        # frozen bandwidth leaving each link is computed as
        # ``(link_weight - next_link_weight) * best`` — the two
        # bincounts bracket the drop, so a separate aggregation of the
        # frozen entries is unnecessary (links without frozen entries
        # keep bit-identical partial sums and subtract exactly 0).
        link_weight = np.bincount(fl, weights=wE, minlength=nl)
        while True:
            share.fill(np.inf)
            np.divide(
                residual, link_weight, out=share, where=link_weight > 0
            )
            best = float(share.min())
            if not math.isfinite(best):
                break
            if best < 0.0:
                best = 0.0
            bottleneck = share <= best * (1 + 1e-9) + _EPS
            # The minimising link is live (weight > 0), so at least one
            # entry hits a bottleneck link and the loop always shrinks.
            hit = bottleneck[fl]
            freeze.fill(False)
            freeze[fs[hit]] = True
            levels[freeze] = best
            # Attribute each frozen slot to the (a) bottleneck link
            # that froze it, mapped back to global link/slot indices.
            self._bneck[active_slots[fs[hit]]] = live_links[fl[hit]]
            keep = ~freeze[fs]
            fl = fl[keep]
            fs = fs[keep]
            wE = wE[keep]
            if not fs.size:
                break
            new_weight = np.bincount(fl, weights=wE, minlength=nl)
            np.subtract(link_weight, new_weight, out=link_weight)
            np.multiply(link_weight, best, out=link_weight)
            np.subtract(residual, link_weight, out=residual)
            np.maximum(residual, 0.0, out=residual)
            link_weight = new_weight
        new = levels * w
        old = self._rates[active_slots]
        changed_active = active_slots[new != old]
        self._rates[active_slots] = new
        self._levels[active_slots] = levels
        if deact:
            changed = np.sort(
                np.concatenate(
                    [changed_active, np.asarray(deact, dtype=np.int64)]
                )
            )
        else:
            changed = changed_active
        return changed, self._rates

    def _solve_scalar(
        self, caps: np.ndarray, fl: np.ndarray, fs: np.ndarray
    ) -> List[int]:
        """Scalar progressive filling for small live sets.

        Performs exactly the arithmetic of the vectorized loop — per-link
        weight sums accumulate in incidence-entry order (the bincount
        order), the round water level is the same minimum, the freeze
        threshold/attribution/residual updates are the same IEEE
        expressions — so the allocation is bit-identical.  Below
        :data:`SCALAR_SOLVE_MAX_ENTRIES` entries this is several times
        faster than paying ~15 numpy-call overheads per round.

        Updates ``_rates``/``_levels``/``_bneck`` in place and returns the
        (unsorted) list of slots whose rate moved.
        """
        # Order-preserving local compaction of links and slots, fused into
        # one pass that also builds the entry triples and the per-link
        # weight sums (accumulated in entry order, like the bincount).
        link_local: Dict[int, int] = {}
        links: List[int] = []  # local -> global link index
        slot_local: Dict[int, int] = {}
        slots: List[int] = []  # local -> global slot
        weights = self._weights
        wS: List[float] = []
        entries: List[Tuple[int, int, float]] = []
        link_weight: List[float] = []
        for g_l, g_s in zip(fl.tolist(), fs.tolist()):
            li = link_local.get(g_l)
            if li is None:
                li = link_local[g_l] = len(links)
                links.append(g_l)
                link_weight.append(0.0)
            si = slot_local.get(g_s)
            if si is None:
                si = slot_local[g_s] = len(slots)
                slots.append(g_s)
                wS.append(float(weights[g_s]))
            wgt = wS[si]
            entries.append((li, si, wgt))
            link_weight[li] += wgt
        nl = len(links)
        ns = len(slots)
        residual = [float(caps[g]) for g in links]
        levels = [0.0] * ns
        frozen = [False] * ns
        bneck = [-1] * ns
        while entries:
            best = math.inf
            shares = [math.inf] * nl
            for li in range(nl):
                lw = link_weight[li]
                if lw > 0.0:
                    sh = residual[li] / lw
                    shares[li] = sh
                    if sh < best:
                        best = sh
            if not math.isfinite(best):
                break
            if best < 0.0:
                best = 0.0
            thresh = best * (1 + 1e-9) + _EPS
            for li, si, _ in entries:
                if shares[li] <= thresh:
                    frozen[si] = True
                    levels[si] = best
                    bneck[si] = links[li]
            survivors = [e for e in entries if not frozen[e[1]]]
            if not survivors:
                break
            new_weight = [0.0] * nl
            for li, _, wgt in survivors:
                new_weight[li] += wgt
            for li in range(nl):
                r = residual[li] - (link_weight[li] - new_weight[li]) * best
                residual[li] = r if r > 0.0 else 0.0
            link_weight = new_weight
            entries = survivors
        rates = self._rates
        lv = self._levels
        bn = self._bneck
        changed: List[int] = []
        for si in range(ns):
            g = slots[si]
            r = wS[si] * levels[si]
            if rates[g] != r:
                rates[g] = r
                changed.append(g)
            lv[g] = levels[si]
            bn[g] = bneck[si]
        return changed

    def level_of_slot(self, slot: int) -> float:
        """Water level that froze this slot in the most recent solve.

        A slot's rate is exactly ``weight * level``; macro aggregation
        reconstructs member rates as ``member_weight * level`` (the same
        IEEE product the per-flow reference computes)."""
        return float(self._levels[slot])

    def level_of(self, flow_id: str) -> float:
        """Water level of a registered flow (0.0 for unknown flows)."""
        slot = self._slot_of.get(flow_id)
        return 0.0 if slot is None else float(self._levels[slot])

    def rates_by_id(self) -> Dict[str, float]:
        """Flow id -> rate from the most recent solve (for tests/debug).

        Cached on ``solve_epoch``; treat the returned dict as read-only.
        """
        epoch, cached = self._rates_by_id_cache
        if epoch == self.solve_epoch and self._pending_delta == 0:
            return cached
        result = {
            flow.flow_id: float(self._rates[slot])
            for slot, flow in enumerate(self._flows)
            if flow is not None
        }
        if self._pending_delta == 0:
            self._rates_by_id_cache = (self.solve_epoch, result)
        return result


def bottleneck_rate(
    path: Iterable[str], capacities: Mapping[str, float]
) -> float:
    """Best-case rate of a flow that has each link of ``path`` to itself."""
    return min(capacities[l] for l in path)


def link_loads(
    flows: Sequence[Flow], rates: Optional[Mapping[str, float]] = None
) -> Dict[str, float]:
    """Aggregate allocated rate per link.

    With ``rates=None`` each flow's currently assigned ``flow.rate`` is
    used — this is the aggregation behind the engine's
    ``link_utilization()`` (legacy mode) and the assertion helpers.
    """
    loads: Dict[str, float] = {}
    for flow in flows:
        rate = flow.rate if rates is None else rates.get(flow.flow_id, 0.0)
        if rate <= 0:
            continue
        for link in flow.links:
            loads[link] = loads.get(link, 0.0) + rate
    return loads
