"""Directed-graph network topology used by the flow-level simulator.

A :class:`Topology` is a multigraph of named nodes connected by directed
:class:`Link` objects with fixed capacities.  Flows traverse an explicit
list of link ids; the fairness allocator (see :mod:`repro.netsim.fairness`)
shares each link's capacity among the flows crossing it.

The class is deliberately small: concrete fabrics (the testbed spine-leaf
of Figure 5a, the 4-switch ring of Figure 7, the 768-GPU Clos of §6.5) are
assembled by :mod:`repro.netsim.fabric`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .errors import NoPathError, UnknownLinkError, UnknownNodeError


@dataclass(frozen=True)
class Link:
    """A directed link with a fixed capacity.

    Attributes:
        link_id: Unique identifier, by convention ``"src->dst"`` (with an
            optional ``#k`` suffix for parallel links).
        src: Source node id.
        dst: Destination node id.
        capacity: Capacity in bytes per second.
    """

    link_id: str
    src: str
    dst: str
    capacity: float

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"link {self.link_id} needs positive capacity")


@dataclass
class Node:
    """A named vertex: a switch, a NIC endpoint, or a host-local hub."""

    node_id: str
    kind: str = "switch"
    attrs: Dict[str, object] = field(default_factory=dict)


class Topology:
    """A directed multigraph with equal-cost path enumeration.

    Paths are enumerated as *all minimum-hop* node sequences between two
    endpoints, which for a folded-Clos fabric yields exactly the ECMP
    choices (one per spine for inter-rack pairs, the single leaf path for
    intra-rack pairs).
    """

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[str, Link] = {}
        # adjacency: src -> list of links out of src
        self._out: Dict[str, List[Link]] = {}
        self._path_cache: Dict[Tuple[str, str], List[List[str]]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node_id: str, kind: str = "switch", **attrs: object) -> Node:
        """Add (or return the existing) node with the given id."""
        if node_id in self._nodes:
            return self._nodes[node_id]
        node = Node(node_id, kind, dict(attrs))
        self._nodes[node_id] = node
        self._out[node_id] = []
        self._path_cache.clear()
        return node

    def add_link(
        self,
        src: str,
        dst: str,
        capacity: float,
        link_id: Optional[str] = None,
    ) -> Link:
        """Add a directed link from ``src`` to ``dst``.

        Both endpoints must already exist.  Returns the created link.
        """
        for node_id in (src, dst):
            if node_id not in self._nodes:
                raise UnknownNodeError(f"unknown node {node_id!r}")
        if link_id is None:
            base = f"{src}->{dst}"
            link_id = base
            for k in itertools.count(1):
                if link_id not in self._links:
                    break
                link_id = f"{base}#{k}"
        if link_id in self._links:
            raise ValueError(f"duplicate link id {link_id!r}")
        link = Link(link_id, src, dst, capacity)
        self._links[link_id] = link
        self._out[src].append(link)
        self._path_cache.clear()
        return link

    def add_duplex_link(
        self, a: str, b: str, capacity: float
    ) -> Tuple[Link, Link]:
        """Add a pair of directed links modelling one full-duplex cable."""
        return self.add_link(a, b, capacity), self.add_link(b, a, capacity)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Dict[str, Node]:
        return self._nodes

    @property
    def links(self) -> Dict[str, Link]:
        return self._links

    def node(self, node_id: str) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(f"unknown node {node_id!r}") from None

    def link(self, link_id: str) -> Link:
        try:
            return self._links[link_id]
        except KeyError:
            raise UnknownLinkError(f"unknown link {link_id!r}") from None

    def out_links(self, node_id: str) -> Sequence[Link]:
        self.node(node_id)
        return tuple(self._out[node_id])

    def capacity_of(self, link_id: str) -> float:
        return self.link(link_id).capacity

    # ------------------------------------------------------------------
    # path enumeration
    # ------------------------------------------------------------------
    def equal_cost_paths(self, src: str, dst: str) -> List[List[str]]:
        """Return all minimum-hop paths from ``src`` to ``dst``.

        Each path is a list of *link ids*.  Results are cached; the cache is
        invalidated whenever the graph changes.  Raises
        :class:`NoPathError` when ``dst`` is unreachable.
        """
        self.node(src)
        self.node(dst)
        key = (src, dst)
        if key in self._path_cache:
            return [list(path) for path in self._path_cache[key]]
        paths = self._enumerate_shortest(src, dst)
        if not paths:
            raise NoPathError(f"no path from {src!r} to {dst!r}")
        self._path_cache[key] = paths
        return [list(path) for path in paths]

    def _enumerate_shortest(self, src: str, dst: str) -> List[List[str]]:
        """BFS that records every minimum-hop link sequence."""
        if src == dst:
            return [[]]
        # Standard BFS computing hop distance, then a backward walk
        # collecting all predecessor links that lie on a shortest path.
        dist = {src: 0}
        frontier = [src]
        preds: Dict[str, List[Link]] = {}
        while frontier and dst not in dist:
            nxt: List[str] = []
            for node in frontier:
                for link in self._out[node]:
                    if link.dst not in dist:
                        preds.setdefault(link.dst, []).append(link)
                        dist[link.dst] = dist[node] + 1
                        nxt.append(link.dst)
                    elif dist[link.dst] == dist[node] + 1:
                        preds.setdefault(link.dst, []).append(link)
            frontier = nxt
        if dst not in dist:
            return []

        paths: List[List[str]] = []

        def walk(node: str, suffix: List[str]) -> None:
            if node == src:
                paths.append(list(reversed(suffix)))
                return
            for link in preds.get(node, ()):
                if dist[link.src] == dist[node] - 1:
                    suffix.append(link.link_id)
                    walk(link.src, suffix)
                    suffix.pop()

        walk(dst, [])
        paths.sort()
        return paths

    def path_nodes(self, path: Sequence[str]) -> List[str]:
        """Expand a link-id path into the node sequence it traverses."""
        if not path:
            return []
        nodes = [self.link(path[0]).src]
        for link_id in path:
            link = self.link(link_id)
            if link.src != nodes[-1]:
                raise ValueError(f"discontinuous path at {link_id!r}")
            nodes.append(link.dst)
        return nodes

    def validate_path(self, path: Sequence[str]) -> None:
        """Raise if ``path`` is not a contiguous sequence of known links."""
        self.path_nodes(path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology({self.name!r}, nodes={len(self._nodes)}, "
            f"links={len(self._links)})"
        )
