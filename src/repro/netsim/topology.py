"""Directed-graph network topology used by the flow-level simulator.

A :class:`Topology` is a multigraph of named nodes connected by directed
:class:`Link` objects with fixed capacities.  Flows traverse an explicit
list of link ids; the fairness allocator (see :mod:`repro.netsim.fairness`)
shares each link's capacity among the flows crossing it.

The class is deliberately small: concrete fabrics (the testbed spine-leaf
of Figure 5a, the 4-switch ring of Figure 7, the 768-GPU Clos of §6.5) are
assembled by :mod:`repro.netsim.fabric`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .errors import NoPathError, UnknownLinkError, UnknownNodeError


@dataclass(frozen=True)
class Link:
    """A directed link with a fixed capacity.

    Attributes:
        link_id: Unique identifier, by convention ``"src->dst"`` (with an
            optional ``#k`` suffix for parallel links).
        src: Source node id.
        dst: Destination node id.
        capacity: Capacity in bytes per second.
    """

    link_id: str
    src: str
    dst: str
    capacity: float

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"link {self.link_id} needs positive capacity")


@dataclass
class Node:
    """A named vertex: a switch, a NIC endpoint, or a host-local hub."""

    node_id: str
    kind: str = "switch"
    attrs: Dict[str, object] = field(default_factory=dict)


class Topology:
    """A directed multigraph with equal-cost path enumeration.

    Paths are enumerated as *all minimum-hop* node sequences between two
    endpoints, which for a folded-Clos fabric yields exactly the ECMP
    choices (one per spine for inter-rack pairs, the single leaf path for
    intra-rack pairs).
    """

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[str, Link] = {}
        # adjacency: src -> list of links out of src
        self._out: Dict[str, List[Link]] = {}
        self._path_cache: Dict[Tuple[str, str], Tuple[Tuple[str, ...], ...]] = {}
        # Integer-indexed adjacency (node index -> [(dst index, link id)]),
        # built lazily; BFS over it avoids per-edge attribute lookups.
        self._compact: Optional[
            Tuple[Dict[str, int], List[List[Tuple[int, str]]]]
        ] = None
        # per-source shortest-path DAG state, resumable level by level:
        # src index -> {"dist": [...], "preds": [[(pred index, link id)]],
        # "frontier": [...]} — one (partial) BFS serves every destination.
        self._sssp_cache: Dict[int, Dict[str, list]] = {}
        # Administratively-down links (fault injection): excluded from path
        # enumeration while the Link objects stay registered, so restoring
        # a link is cheap and flow validation still recognizes its id.
        self._down: Set[str] = set()
        # Paths already proven contiguous (every enumerated shortest path
        # plus every explicitly validated one): flow injection validates
        # a known path with one set lookup instead of walking its links.
        self._known_paths: Set[Tuple[str, ...]] = set()
        # Monotonic routing generation.  Bumped when the *usable* path set
        # widens (link restored, capacity resized) — consumers that pin
        # paths at establishment (ConnectionTable) compare epochs and
        # re-resolve, so a repaired or resized link actually carries
        # traffic again.  Deliberately NOT bumped on link failure: a
        # pinned path through a down link must keep raising LinkDownError
        # (that is the failure-detection signal).
        self._routing_epoch = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node_id: str, kind: str = "switch", **attrs: object) -> Node:
        """Add (or return the existing) node with the given id."""
        if node_id in self._nodes:
            return self._nodes[node_id]
        node = Node(node_id, kind, dict(attrs))
        self._nodes[node_id] = node
        self._out[node_id] = []
        # Replace (don't clear): the caches may be shared with structurally
        # identical topologies via adopt_path_cache, and this mutation
        # makes us diverge from them.
        self._path_cache = {}
        self._sssp_cache = {}
        self._known_paths = set()
        self._compact = None
        return node

    def add_link(
        self,
        src: str,
        dst: str,
        capacity: float,
        link_id: Optional[str] = None,
    ) -> Link:
        """Add a directed link from ``src`` to ``dst``.

        Both endpoints must already exist.  Returns the created link.
        """
        for node_id in (src, dst):
            if node_id not in self._nodes:
                raise UnknownNodeError(f"unknown node {node_id!r}")
        if link_id is None:
            base = f"{src}->{dst}"
            link_id = base
            for k in itertools.count(1):
                if link_id not in self._links:
                    break
                link_id = f"{base}#{k}"
        if link_id in self._links:
            raise ValueError(f"duplicate link id {link_id!r}")
        link = Link(link_id, src, dst, capacity)
        self._links[link_id] = link
        self._out[src].append(link)
        self._path_cache = {}
        self._sssp_cache = {}
        self._known_paths = set()
        self._compact = None
        return link

    def add_duplex_link(
        self, a: str, b: str, capacity: float
    ) -> Tuple[Link, Link]:
        """Add a pair of directed links modelling one full-duplex cable."""
        return self.add_link(a, b, capacity), self.add_link(b, a, capacity)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Dict[str, Node]:
        return self._nodes

    @property
    def links(self) -> Dict[str, Link]:
        return self._links

    def node(self, node_id: str) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(f"unknown node {node_id!r}") from None

    def link(self, link_id: str) -> Link:
        try:
            return self._links[link_id]
        except KeyError:
            raise UnknownLinkError(f"unknown link {link_id!r}") from None

    def out_links(self, node_id: str) -> Sequence[Link]:
        self.node(node_id)
        return tuple(self._out[node_id])

    def capacity_of(self, link_id: str) -> float:
        return self.link(link_id).capacity

    def links_of_node(self, node_id: str) -> List[Link]:
        """Every link touching ``node_id`` (either endpoint)."""
        self.node(node_id)
        return [
            link
            for link in self._links.values()
            if link.src == node_id or link.dst == node_id
        ]

    # ------------------------------------------------------------------
    # link up/down state (fault injection)
    # ------------------------------------------------------------------
    def set_link_state(self, link_id: str, up: bool) -> bool:
        """Mark a link up or down; returns True if the state changed.

        Down links keep their :class:`Link` entry but are excluded from
        shortest-path enumeration, so route re-resolution naturally avoids
        them.  Like structural mutations, a state change *replaces* the
        shared path caches instead of clearing them (see
        :meth:`adopt_path_cache`).
        """
        self.link(link_id)
        currently_up = link_id not in self._down
        if currently_up == up:
            return False
        if up:
            self._down.discard(link_id)
            # A restored link widens the usable path set; pinned routes
            # must re-resolve to start using it again (see _routing_epoch).
            self._routing_epoch += 1
        else:
            self._down.add(link_id)
        self._path_cache = {}
        self._sssp_cache = {}
        self._known_paths = set()
        self._compact = None
        return True

    @property
    def routing_epoch(self) -> int:
        """Generation counter for routing-relevant improvements.

        Consumers that pin paths (ECMP selection happens once per
        connection lifetime in :class:`~repro.transport.connections.
        ConnectionTable`) snapshot this value and re-resolve their pins
        when it moves — that is how a restored or resized link re-enters
        service for already-established connections.
        """
        return self._routing_epoch

    def bump_routing_epoch(self) -> None:
        """Force pinned-route consumers to re-resolve (capacity changes)."""
        self._routing_epoch += 1

    def link_is_up(self, link_id: str) -> bool:
        self.link(link_id)
        return link_id not in self._down

    @property
    def has_down_links(self) -> bool:
        """Cheap guard for hot paths: any link currently down?"""
        return bool(self._down)

    def down_links(self) -> FrozenSet[str]:
        """Ids of links currently administratively down."""
        return frozenset(self._down)

    # ------------------------------------------------------------------
    # path enumeration
    # ------------------------------------------------------------------
    def equal_cost_paths(self, src: str, dst: str) -> List[List[str]]:
        """Return all minimum-hop paths from ``src`` to ``dst``.

        Each path is a fresh list of *link ids* the caller may mutate.
        Results are cached; the cache is invalidated whenever the graph
        changes.  Raises :class:`NoPathError` when ``dst`` is unreachable.
        Hot-path consumers that only read should prefer
        :meth:`shortest_paths`, which skips the per-call copies.
        """
        return [list(path) for path in self.shortest_paths(src, dst)]

    def shortest_paths(self, src: str, dst: str) -> Tuple[Tuple[str, ...], ...]:
        """All minimum-hop paths as an immutable (shared, cached) tuple.

        This is the zero-copy variant of :meth:`equal_cost_paths` used by
        the path selectors on the connection-establishment hot path.
        """
        self.node(src)
        self.node(dst)
        key = (src, dst)
        hit = self._path_cache.get(key)
        if hit is not None:
            return hit
        paths = self._enumerate_shortest(src, dst)
        if not paths:
            raise NoPathError(f"no path from {src!r} to {dst!r}")
        self._path_cache[key] = paths
        self._known_paths.update(paths)
        return paths

    def _compact_graph(self) -> Tuple[Dict[str, int], List[List[Tuple[int, str]]]]:
        """Integer-indexed adjacency, (re)built lazily after graph changes."""
        if self._compact is None:
            index = {node_id: i for i, node_id in enumerate(self._nodes)}
            adj: List[List[Tuple[int, str]]] = [[] for _ in index]
            for src, links in self._out.items():
                adj[index[src]] = [
                    (index[link.dst], link.link_id)
                    for link in links
                    if link.link_id not in self._down
                ]
            self._compact = (index, adj)
        return self._compact

    def _sssp(self, src_i: int, dst_i: int, adj: List[List[Tuple[int, str]]]) -> Dict[str, list]:
        """Resumable BFS shortest-path DAG from node index ``src_i``.

        The BFS expands level by level only until ``dst_i`` is reached;
        the frontier is saved so a later, more distant destination resumes
        where this one stopped.  One (partial) BFS per source is amortized
        over all destinations asked about — a Clos fabric asks about many
        NIC pairs per source — replacing the former per-(src, dst) BFS.
        """
        state = self._sssp_cache.get(src_i)
        if state is None:
            dist = [-1] * len(adj)
            dist[src_i] = 0
            # preds is a dict populated only for reached nodes — allocating
            # a list per node up front dominated the profile on the 1000+
            # node Clos fabric.
            state = {"dist": dist, "preds": {}, "frontier": [src_i]}
            self._sssp_cache[src_i] = state
        dist = state["dist"]
        preds = state["preds"]
        frontier = state["frontier"]
        while frontier and dist[dst_i] == -1:
            nxt: List[int] = []
            for node in frontier:
                d = dist[node] + 1
                for nbr, link_id in adj[node]:
                    seen = dist[nbr]
                    if seen == -1:
                        dist[nbr] = d
                        preds[nbr] = [(node, link_id)]
                        nxt.append(nbr)
                    elif seen == d:
                        preds[nbr].append((node, link_id))
            frontier = nxt
        state["frontier"] = frontier
        return state

    def _enumerate_shortest(self, src: str, dst: str) -> Tuple[Tuple[str, ...], ...]:
        """Every minimum-hop link sequence, via the shortest-path DAG."""
        if src == dst:
            return ((),)
        index, adj = self._compact_graph()
        src_i, dst_i = index[src], index[dst]
        state = self._sssp(src_i, dst_i, adj)
        dist = state["dist"]
        preds = state["preds"]
        if dist[dst_i] == -1:
            return ()

        paths: List[List[str]] = []

        def walk(node: int, suffix: List[str]) -> None:
            if node == src_i:
                paths.append(list(reversed(suffix)))
                return
            target = dist[node] - 1
            for pred, link_id in preds.get(node, ()):
                if dist[pred] == target:
                    suffix.append(link_id)
                    walk(pred, suffix)
                    suffix.pop()

        walk(dst_i, [])
        paths.sort()
        return tuple(tuple(path) for path in paths)

    def adopt_path_cache(self, other: "Topology") -> None:
        """Share the shortest-path caches of a structurally identical topology.

        Experiments rebuild the same fabric for every solution/seed replay;
        path enumeration depends only on the graph structure, so a fresh
        build can inherit the work instead of re-running BFS per NIC pair.
        The enumerated-path cache and the per-source BFS DAG state both
        become *shared* (either topology keeps warming them); a later
        structural mutation of one side detaches it from the shared dicts.
        Node insertion order must match too, because the BFS state is keyed
        by compact integer node indices.  Raises ``ValueError`` when the
        graphs differ.
        """
        same = (
            list(self._nodes) == list(other._nodes)
            and list(self._links) == list(other._links)
            and self._down == other._down
            and all(
                (link.src, link.dst) == (o.src, o.dst)
                for link_id, link in self._links.items()
                for o in (other._links[link_id],)
            )
        )
        if not same:
            raise ValueError("topologies differ structurally; cannot adopt paths")
        other._path_cache.update(self._path_cache)
        self._path_cache = other._path_cache
        other._sssp_cache.update(self._sssp_cache)
        self._sssp_cache = other._sssp_cache
        other._known_paths.update(self._known_paths)
        self._known_paths = other._known_paths
        if other._compact is not None:
            self._compact = other._compact

    def path_nodes(self, path: Sequence[str]) -> List[str]:
        """Expand a link-id path into the node sequence it traverses."""
        if not path:
            return []
        nodes = [self.link(path[0]).src]
        for link_id in path:
            link = self.link(link_id)
            if link.src != nodes[-1]:
                raise ValueError(f"discontinuous path at {link_id!r}")
            nodes.append(link.dst)
        return nodes

    def validate_path(self, path: Sequence[str]) -> None:
        """Raise if ``path`` is not a contiguous sequence of known links.

        Validated paths are interned: revalidating a path that already
        passed (or came out of :meth:`shortest_paths`) is one set lookup,
        which is what keeps flow injection O(1) on the hot path.
        """
        key = tuple(path)
        if key in self._known_paths:
            return
        self.path_nodes(key)
        self._known_paths.add(key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology({self.name!r}, nodes={len(self._nodes)}, "
            f"links={len(self._links)})"
        )


def multi_pod_clos(spec=None):
    """Build a three-tier multi-pod Clos fabric (datacenter scale).

    Thin alias for :func:`repro.netsim.fabric.multi_pod_clos` so the
    builder is reachable from the topology module too; see
    :class:`repro.netsim.fabric.MultiPodSpec` for the knobs.
    """
    from .fabric import multi_pod_clos as _build

    return _build(spec)
