"""Background (non-collective) traffic injection.

Figure 7 of the paper demonstrates MCCS adapting a tenant's ring around a
75 Gbps background flow that appears on one inter-switch link.  The paper
"leaves the monitoring of background flows to external components" — e.g. a
switch agent reporting persistent elephant flows to the centralized
manager.  This module provides both halves of that story for the
simulation: a generator of persistent background load and a trivially
accurate "switch agent" that reports which links carry it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .engine import FlowSimulator
from .flows import Flow


@dataclass
class BackgroundFlow:
    """A persistent background load on an explicit path.

    The fluid simulator works with finite flow sizes, so a persistent load
    is modelled as a very large flow that is cancelled when stopped.  The
    ``offered_gbps`` load is realized by giving the flow a fairness weight
    proportional to the offered rate — under per-flow fairness this makes
    it claim the intended share when competing with unit-weight tenant
    flows (e.g. a weight-3 background flow against one unit tenant flow on
    a 100G link leaves the tenant 25G, matching the Figure 7 scenario).
    """

    path: Sequence[str]
    offered_gbps: float
    flow: Optional[Flow] = None

    @property
    def active(self) -> bool:
        return self.flow is not None and not self.flow.completed


class BackgroundTrafficManager:
    """Starts/stops background flows and answers link-load queries."""

    #: Size given to persistent flows; long enough to outlive experiments.
    PERSISTENT_BYTES = 1e15

    def __init__(self, sim: FlowSimulator) -> None:
        self._sim = sim
        self._flows: List[BackgroundFlow] = []
        self._occupied: Dict[str, float] = {}

    def start(
        self,
        path: Sequence[str],
        offered_gbps: float,
        *,
        weight: Optional[float] = None,
    ) -> BackgroundFlow:
        """Begin a persistent background flow along ``path``.

        Args:
            path: Link-id path the load traverses.
            offered_gbps: Nominal offered load, used to derive the fairness
                weight when ``weight`` is not given.
            weight: Explicit fairness weight override.
        """
        if offered_gbps <= 0:
            raise ValueError("offered_gbps must be positive")
        if weight is None:
            # Weight such that against a single unit-weight competitor on a
            # link of capacity c, the background flow receives
            # offered/(offered + remaining share) of the link, i.e. it
            # behaves like `offered_gbps` worth of unit flows on a 25G-unit
            # basis.  We normalize to 25 Gbps per unit of weight.
            weight = offered_gbps / 25.0
        bg = BackgroundFlow(path=tuple(path), offered_gbps=offered_gbps)
        bg.flow = self._sim.add_flow(
            self.PERSISTENT_BYTES,
            path,
            job_id="background",
            weight=weight,
            tags={"background": True, "offered_gbps": offered_gbps},
        )
        self._flows.append(bg)
        return bg

    def stop(self, bg: BackgroundFlow) -> None:
        """Terminate a background flow."""
        if bg.flow is not None:
            self._sim.cancel_flow(bg.flow)
            bg.flow = None

    def stop_all(self) -> None:
        for bg in list(self._flows):
            self.stop(bg)
        self._flows.clear()

    # ------------------------------------------------------------------
    # capacity-occupation mode (constant-bit-rate background traffic)
    # ------------------------------------------------------------------
    def occupy(self, link_id: str, gbps: float) -> None:
        """Model a constant-bit-rate background load on one link.

        This is the Figure 7 scenario: a 75 Gbps flow appears on a 100 Gbps
        inter-switch link and "the available capacity for the AllReduce job
        drops to 25 Gbps" — i.e. the background traffic takes its offered
        rate off the top rather than sharing fairly.  Implemented by
        reducing the link's capacity; :meth:`vacate` restores it.
        """
        if gbps <= 0:
            raise ValueError("gbps must be positive")
        current = self._sim.link_capacity(link_id)
        taken = gbps * 1e9 / 8.0
        if taken >= current:
            raise ValueError(
                f"background load {gbps} Gbps exceeds remaining capacity"
            )
        self._occupied.setdefault(link_id, 0.0)
        self._occupied[link_id] += gbps
        self._sim.set_link_capacity(link_id, current - taken)

    def vacate(self, link_id: str, gbps: Optional[float] = None) -> None:
        """Remove (all of, or ``gbps`` worth of) an occupied load."""
        held = self._occupied.get(link_id, 0.0)
        if held <= 0:
            raise ValueError(f"no background load held on {link_id!r}")
        release = held if gbps is None else min(gbps, held)
        self._occupied[link_id] = held - release
        current = self._sim.link_capacity(link_id)
        self._sim.set_link_capacity(link_id, current + release * 1e9 / 8.0)

    # ------------------------------------------------------------------
    # the "switch agent" view used by the centralized manager
    # ------------------------------------------------------------------
    def loaded_links(self) -> Dict[str, float]:
        """Map of link id -> total offered background load (Gbps)."""
        loads: Dict[str, float] = {}
        for bg in self._flows:
            if not bg.active:
                continue
            for link in bg.path:
                loads[link] = loads.get(link, 0.0) + bg.offered_gbps
        for link, gbps in self._occupied.items():
            if gbps > 0:
                loads[link] = loads.get(link, 0.0) + gbps
        return loads

    def report_persistent_flows(self, threshold_gbps: float = 10.0) -> List[str]:
        """Links carrying background load above ``threshold_gbps``.

        This mimics the switch agent of §6.2 that reports persistent large
        flows outside MCCS's management to the centralized manager.
        """
        return sorted(
            link
            for link, load in self.loaded_links().items()
            if load >= threshold_gbps
        )
