"""Flow objects tracked by the fluid simulator.

A :class:`Flow` is a fixed-size transfer over an explicit path of link ids.
Its *rate* is recomputed by the max-min fairness allocator whenever the set
of active flows changes.  Flows carry bookkeeping tags (job id, communicator
id, channel) so policies such as FFA can round-robin between jobs and the
traffic-scheduling (TS) policy can gate the flows of a specific tenant.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

_flow_counter = itertools.count()


def _next_flow_id() -> str:
    return f"flow{next(_flow_counter)}"


@dataclass(eq=False)
class Flow:
    """One fluid flow.

    Attributes:
        flow_id: Unique id within a simulation.
        size: Total bytes to transfer.
        path: Tuple of link ids traversed, in order.
        job_id: Owning job/tenant (used by fairness-aware policies).
        weight: Max-min fairness weight (1.0 = plain per-flow fairness,
            matching the paper's simulator assumption).
        gated: While True the flow is withheld from the network (rate 0);
            used by the time-window traffic scheduling policy.
        remaining: Bytes still to transfer.
        rate: Current allocated rate in bytes/s (maintained by the engine).
        start_time: Simulation time the flow entered the network.
        end_time: Completion time, or None while in flight.
        failed: True once the flow was killed by an infrastructure fault
            (link down, host crash); failed flows never complete.
        error: The fault that killed the flow, or None.
        on_complete: Callback ``fn(flow, now)`` fired at completion.
        on_fail: Callback ``fn(flow, now, error)`` fired when a fault
            kills the flow (never fired for plain cancellation).
        tags: Free-form metadata (communicator id, channel index, ...).
        links: The distinct links of ``path`` (order-stable); cached once
            so the fairness allocator and utilization aggregation never
            rebuild a ``set(flow.path)`` on the hot path.
    """

    size: float
    path: Tuple[str, ...]
    flow_id: str = field(default_factory=_next_flow_id)
    job_id: Optional[str] = None
    weight: float = 1.0
    gated: bool = False
    remaining: float = field(init=False)
    rate: float = field(init=False, default=0.0)
    start_time: float = field(init=False, default=0.0)
    end_time: Optional[float] = field(init=False, default=None)
    failed: bool = field(init=False, default=False)
    error: Optional[BaseException] = field(init=False, default=None, repr=False)
    on_complete: Optional[Callable[["Flow", float], None]] = None
    on_fail: Optional[Callable[["Flow", float, BaseException], None]] = None
    tags: Dict[str, object] = field(default_factory=dict)
    links: Tuple[str, ...] = field(init=False, repr=False)
    #: Engine-managed anchor of the lazy progress clock: ``remaining`` is
    #: exact as of this simulation time; between rate changes the engine
    #: derives progress as ``remaining - rate * (now - _synced_at)``.
    _synced_at: float = field(init=False, default=0.0, repr=False)
    #: Engine-managed heap-entry generation; bumping it invalidates any
    #: completion-time heap entry pushed for this flow.
    _heap_epoch: int = field(init=False, default=0, repr=False)
    #: Optional per-flow rate recorder installed by the causal tracer;
    #: the engine calls ``_recorder.on_rate_change(flow, now, rate,
    #: bottleneck_link)`` whenever this flow's allocation moves, keeping
    #: the hook O(changed flows) per recomputation.
    _recorder: Optional[object] = field(init=False, default=None, repr=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("flow size must be positive")
        if not self.path:
            raise ValueError("flow path must contain at least one link")
        if self.weight <= 0:
            raise ValueError("flow weight must be positive")
        self.path = tuple(self.path)
        self.links = tuple(dict.fromkeys(self.path))
        self.remaining = float(self.size)

    @property
    def completed(self) -> bool:
        return self.end_time is not None

    @property
    def active(self) -> bool:
        """True when the flow competes for bandwidth right now."""
        return not self.completed and not self.gated

    def progress(self) -> float:
        """Fraction of bytes delivered so far, in [0, 1]."""
        return 1.0 - self.remaining / self.size

    def fct(self) -> float:
        """Flow completion time; raises if the flow has not finished."""
        if self.end_time is None:
            raise ValueError(f"{self.flow_id} has not completed")
        return self.end_time - self.start_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.failed:
            state = "failed"
        else:
            state = "done" if self.completed else ("gated" if self.gated else "active")
        return (
            f"Flow({self.flow_id}, size={self.size:.0f}, "
            f"remaining={self.remaining:.0f}, rate={self.rate:.3g}, {state})"
        )
