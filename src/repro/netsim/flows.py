"""Flow objects tracked by the fluid simulator.

A :class:`Flow` is a fixed-size transfer over an explicit path of link ids.
Its *rate* is recomputed by the max-min fairness allocator whenever the set
of active flows changes.  Flows carry bookkeeping tags (job id, communicator
id, channel) so policies such as FFA can round-robin between jobs and the
traffic-scheduling (TS) policy can gate the flows of a specific tenant.

The engine's incremental mode keeps the per-flow *data plane* —
remaining bytes, allocated rate, and the lazy-progress anchor — in flat
numpy arrays (:class:`FlowArena`) so a rate recomputation can settle and
re-anchor a whole batch of flows with a handful of numpy ops instead of
N Python attribute walks.  The :class:`Flow` object remains the public
handle: ``flow.remaining`` / ``flow.rate`` read through to the arena
while the flow is in the network and fall back to plain attributes once
it leaves (or when the legacy engine, which never attaches an arena, is
driving).  Readers never observe stale values either way.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

_flow_counter = itertools.count()


def _next_flow_id() -> str:
    return f"flow{next(_flow_counter)}"


# Distinct-links tuple per path tuple.  Channelized workloads inject many
# flows over the same path object (NCCL channel fan-out), so deduplicating
# the path once per distinct route beats doing it once per flow.  Bounded
# by the number of distinct routes ever seen, like the topology path cache.
_links_of_path: Dict[Tuple[str, ...], Tuple[str, ...]] = {}


class FlowArena:
    """Flat-array storage for the per-flow data plane.

    One arena per engine; each attached flow owns one slot in the
    ``remaining`` / ``rate`` / ``synced`` arrays.  Slots are recycled
    through a free list when flows detach, so array length tracks the
    peak concurrent population, not the total flow count.
    """

    __slots__ = ("remaining", "rate", "synced", "_free", "_top")

    def __init__(self, initial: int = 64) -> None:
        self.remaining = np.zeros(initial, dtype=float)
        self.rate = np.zeros(initial, dtype=float)
        self.synced = np.zeros(initial, dtype=float)
        self._free: list = []
        self._top = 0

    def alloc(self) -> int:
        if self._free:
            return self._free.pop()
        slot = self._top
        self._top += 1
        if slot >= len(self.remaining):
            size = int(len(self.remaining) * 1.5) + 8
            for name in ("remaining", "rate", "synced"):
                old = getattr(self, name)
                grown = np.zeros(size, dtype=float)
                grown[: len(old)] = old
                setattr(self, name, grown)
        return slot

    def release(self, slot: int) -> None:
        self._free.append(slot)


class Flow:
    """One fluid flow.

    Attributes:
        flow_id: Unique id within a simulation.
        size: Total bytes to transfer.
        path: Tuple of link ids traversed, in order.
        job_id: Owning job/tenant (used by fairness-aware policies).
        weight: Max-min fairness weight (1.0 = plain per-flow fairness,
            matching the paper's simulator assumption).
        gated: While True the flow is withheld from the network (rate 0);
            used by the time-window traffic scheduling policy.
        remaining: Bytes still to transfer.
        rate: Current allocated rate in bytes/s (maintained by the engine).
        start_time: Simulation time the flow entered the network.
        end_time: Completion time, or None while in flight.
        failed: True once the flow was killed by an infrastructure fault
            (link down, host crash); failed flows never complete.
        error: The fault that killed the flow, or None.
        on_complete: Callback ``fn(flow, now)`` fired at completion.
        on_fail: Callback ``fn(flow, now, error)`` fired when a fault
            kills the flow (never fired for plain cancellation).
        tags: Free-form metadata (communicator id, channel index, ...).
        links: The distinct links of ``path`` (order-stable); cached once
            so the fairness allocator and utilization aggregation never
            rebuild a ``set(flow.path)`` on the hot path.
    """

    __slots__ = (
        "flow_id",
        "size",
        "path",
        "job_id",
        "weight",
        "gated",
        "start_time",
        "end_time",
        "failed",
        "error",
        "on_complete",
        "on_fail",
        "tags",
        "links",
        "_remaining",
        "_rate",
        "_synced",
        "_heap_epoch",
        "_recorder",
        "_arena",
        "_slot",
    )

    def __init__(
        self,
        size: float,
        path: Sequence[str],
        flow_id: Optional[str] = None,
        job_id: Optional[str] = None,
        weight: float = 1.0,
        gated: bool = False,
        on_complete: Optional[Callable[["Flow", float], None]] = None,
        on_fail: Optional[Callable[["Flow", float, BaseException], None]] = None,
        tags: Optional[Dict[str, object]] = None,
    ) -> None:
        if size <= 0:
            raise ValueError("flow size must be positive")
        if not path:
            raise ValueError("flow path must contain at least one link")
        if weight <= 0:
            raise ValueError("flow weight must be positive")
        self.flow_id = flow_id if flow_id is not None else _next_flow_id()
        self.size = size
        self.path = tuple(path)
        self.job_id = job_id
        self.weight = weight
        self.gated = gated
        self.start_time = 0.0
        self.end_time: Optional[float] = None
        self.failed = False
        self.error: Optional[BaseException] = None
        self.on_complete = on_complete
        self.on_fail = on_fail
        self.tags: Dict[str, object] = {} if tags is None else tags
        links = _links_of_path.get(self.path)
        if links is None:
            links = tuple(dict.fromkeys(self.path))
            _links_of_path[self.path] = links
        self.links: Tuple[str, ...] = links
        self._remaining = float(size)
        self._rate = 0.0
        #: Engine-managed anchor of the lazy progress clock: ``remaining``
        #: is exact as of this simulation time; between rate changes the
        #: engine derives progress as ``remaining - rate*(now - _synced_at)``.
        self._synced = 0.0
        #: Engine-managed heap-entry generation; bumping it invalidates
        #: any completion-time heap entry pushed for this flow.
        self._heap_epoch = 0
        #: Optional per-flow rate recorder installed by the causal tracer;
        #: the engine calls ``_recorder.on_rate_change(flow, now, rate,
        #: bottleneck_link)`` whenever this flow's allocation moves,
        #: keeping the hook O(changed flows) per recomputation.
        self._recorder: Optional[object] = None
        self._arena: Optional[FlowArena] = None
        self._slot = -1

    # -- flat-array data plane -----------------------------------------
    def _attach(self, arena: FlowArena) -> int:
        """Move the data plane into ``arena``; returns the slot."""
        slot = arena.alloc()
        arena.remaining[slot] = self._remaining
        arena.rate[slot] = self._rate
        arena.synced[slot] = self._synced
        self._arena = arena
        self._slot = slot
        return slot

    def _detach(self) -> None:
        """Copy the data plane back to plain attributes and free the slot."""
        arena = self._arena
        if arena is None:
            return
        slot = self._slot
        self._remaining = float(arena.remaining[slot])
        self._rate = float(arena.rate[slot])
        self._synced = float(arena.synced[slot])
        self._arena = None
        self._slot = -1
        arena.release(slot)

    @property
    def remaining(self) -> float:
        arena = self._arena
        if arena is None:
            return self._remaining
        return float(arena.remaining[self._slot])

    @remaining.setter
    def remaining(self, value: float) -> None:
        arena = self._arena
        if arena is None:
            self._remaining = value
        else:
            arena.remaining[self._slot] = value

    @property
    def rate(self) -> float:
        arena = self._arena
        if arena is None:
            return self._rate
        return float(arena.rate[self._slot])

    @rate.setter
    def rate(self, value: float) -> None:
        arena = self._arena
        if arena is None:
            self._rate = value
        else:
            arena.rate[self._slot] = value

    @property
    def _synced_at(self) -> float:
        arena = self._arena
        if arena is None:
            return self._synced
        return float(arena.synced[self._slot])

    @_synced_at.setter
    def _synced_at(self, value: float) -> None:
        arena = self._arena
        if arena is None:
            self._synced = value
        else:
            arena.synced[self._slot] = value

    # -- lifecycle queries ---------------------------------------------
    @property
    def completed(self) -> bool:
        return self.end_time is not None

    @property
    def active(self) -> bool:
        """True when the flow competes for bandwidth right now."""
        return self.end_time is None and not self.gated

    def progress(self) -> float:
        """Fraction of bytes delivered so far, in [0, 1]."""
        return 1.0 - self.remaining / self.size

    def fct(self) -> float:
        """Flow completion time; raises if the flow has not finished."""
        if self.end_time is None:
            raise ValueError(f"{self.flow_id} has not completed")
        return self.end_time - self.start_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.failed:
            state = "failed"
        else:
            state = "done" if self.completed else ("gated" if self.gated else "active")
        return (
            f"Flow({self.flow_id}, size={self.size:.0f}, "
            f"remaining={self.remaining:.0f}, rate={self.rate:.3g}, {state})"
        )
