"""Concrete network fabrics used throughout the paper's evaluation.

Three fabrics appear in the paper:

* ``spine_leaf`` — the general folded-Clos used both for the testbed
  (Figure 5a: 2 spines, 2 leaves, 2 hosts per leaf, 100G host links, 50G
  fabric links, 2:1 oversubscription) and for the large-scale simulation of
  §6.5 (16 spines, 24 leaves, 4 hosts per leaf, 8 NICs per host, 200G
  everywhere).
* ``switch_ring`` — the 4-switch ring of Figure 7 used to showcase dynamic
  ring reconfiguration around a background flow.
* helper naming functions shared with :mod:`repro.cluster` so hosts and
  NICs agree on endpoint ids.

Node naming conventions (relied upon by the cluster layer):

* spines:   ``spine0``, ``spine1``, ...
* leaves:   ``leaf0``, ``leaf1``, ...
* NICs:     ``h{host}.nic{k}`` — these are the flow endpoints.
* local:    ``h{host}.local.src`` / ``h{host}.local.dst`` joined by the
  single intra-host link ``h{host}.local`` which models NVLink / host
  shared-memory channels.
"""

from __future__ import annotations

from dataclasses import astuple, dataclass, field
from typing import Dict, List, Tuple

from .topology import Topology
from .units import gBps, gbps

# First topology built per spec, kept so later builds of the *same* spec can
# share its shortest-path cache (builds are deterministic, so topologies from
# equal specs are structurally identical).  Experiments construct a fresh
# cluster per solution/seed replay; without this every replay re-runs BFS
# for thousands of NIC pairs.
_PATH_PROTOTYPES: Dict[Tuple, Topology] = {}


def _share_paths(spec_key: Tuple, topo: Topology) -> None:
    proto = _PATH_PROTOTYPES.get(spec_key)
    if proto is None:
        _PATH_PROTOTYPES[spec_key] = topo
        return
    try:
        topo.adopt_path_cache(proto)
    except ValueError:
        # The registered prototype was mutated after it was built (tests
        # sometimes extend a fabric topology in place); promote this fresh
        # build to be the new prototype.
        _PATH_PROTOTYPES[spec_key] = topo


def nic_node(host: int, nic: int) -> str:
    """Endpoint node id of NIC ``nic`` on host ``host``."""
    return f"h{host}.nic{nic}"


def local_link_id(host: int) -> str:
    """Id of the intra-host (NVLink / shm) link of ``host``."""
    return f"h{host}.local"


@dataclass
class FabricSpec:
    """Parameters of a folded-Clos fabric.

    Defaults match the paper's testbed (Figure 5a): 2 racks of 2 hosts, one
    100 Gbps NIC per host split into two 50 Gbps virtual NICs by traffic
    classes, 50 Gbps fabric links, 2:1 oversubscription.
    """

    num_spines: int = 2
    num_leaves: int = 2
    hosts_per_leaf: int = 2
    nics_per_host: int = 2
    nic_gbps: float = 50.0
    fabric_gbps: float = 50.0
    local_gBps: float = 25.0  # intra-host channel (host shm / NVLink)
    name: str = "spine-leaf"

    @property
    def num_hosts(self) -> int:
        return self.num_leaves * self.hosts_per_leaf

    def leaf_of_host(self, host: int) -> int:
        if not 0 <= host < self.num_hosts:
            raise ValueError(f"host {host} out of range")
        return host // self.hosts_per_leaf

    def hosts_of_leaf(self, leaf: int) -> List[int]:
        return list(
            range(leaf * self.hosts_per_leaf, (leaf + 1) * self.hosts_per_leaf)
        )


@dataclass
class Fabric:
    """A built fabric: the topology plus the spec that produced it."""

    spec: FabricSpec
    topology: Topology
    # Equal-cost route count between two hosts in different racks; this is
    # what the paper calls the "number of network multi-path choices".
    num_fabric_paths: int = field(default=0)

    def rack_of(self, host: int) -> int:
        return self.spec.leaf_of_host(host)

    def same_rack(self, host_a: int, host_b: int) -> bool:
        return self.rack_of(host_a) == self.rack_of(host_b)


def spine_leaf(spec: FabricSpec | None = None) -> Fabric:
    """Build a folded-Clos spine-leaf fabric from ``spec``.

    Every NIC endpoint gets a duplex link to its leaf at ``nic_gbps``;
    every (leaf, spine) pair gets a duplex link at ``fabric_gbps``.  Each
    host also gets one intra-host link at ``local_gBps`` carrying NVLink /
    shared-memory traffic.
    """
    spec = spec or FabricSpec()
    topo = Topology(spec.name)
    for s in range(spec.num_spines):
        topo.add_node(f"spine{s}", kind="spine")
    for l in range(spec.num_leaves):
        topo.add_node(f"leaf{l}", kind="leaf")
        for s in range(spec.num_spines):
            topo.add_duplex_link(f"leaf{l}", f"spine{s}", gbps(spec.fabric_gbps))
    for host in range(spec.num_hosts):
        leaf = spec.leaf_of_host(host)
        for k in range(spec.nics_per_host):
            node = topo.add_node(nic_node(host, k), kind="nic", host=host, nic=k)
            del node
            topo.add_duplex_link(nic_node(host, k), f"leaf{leaf}", gbps(spec.nic_gbps))
        topo.add_node(f"h{host}.local.src", kind="local", host=host)
        topo.add_node(f"h{host}.local.dst", kind="local", host=host)
        topo.add_link(
            f"h{host}.local.src",
            f"h{host}.local.dst",
            gBps(spec.local_gBps),
            link_id=local_link_id(host),
        )
    _share_paths(("spine-leaf", *astuple(spec)), topo)
    return Fabric(spec=spec, topology=topo, num_fabric_paths=spec.num_spines)


def testbed_fabric() -> Fabric:
    """The exact testbed of Figure 5a.

    Four nodes, each with 2 GPUs and one 100 Gbps ConnectX-5 NIC split into
    two 50 Gbps virtual NICs (one per GPU) using IB traffic classes; two
    leaf and two spine switches with 50 Gbps inter-switch links, i.e. a 2:1
    oversubscription ratio.
    """
    return spine_leaf(
        FabricSpec(
            num_spines=2,
            num_leaves=2,
            hosts_per_leaf=2,
            nics_per_host=2,
            nic_gbps=50.0,
            fabric_gbps=50.0,
            name="testbed-fig5a",
        )
    )


def large_cluster_fabric() -> Fabric:
    """The §6.5 simulation fabric: 768 GPUs.

    16 spine and 24 leaf switches fully connected; 4 hosts per leaf; each
    host has 8 GPUs and 8 NICs; all links and NICs are 200 Gbps, yielding a
    2:1 oversubscription (32 host-facing 200G ports vs 16 spine-facing 200G
    ports per leaf).
    """
    return spine_leaf(
        FabricSpec(
            num_spines=16,
            num_leaves=24,
            hosts_per_leaf=4,
            nics_per_host=8,
            nic_gbps=200.0,
            fabric_gbps=200.0,
            # 8-GPU NVSwitch hosts: aggregate intra-host fabric bandwidth
            # is in the TB/s class, so the network, not NVLink, is the
            # bottleneck for inter-host rings.
            local_gBps=2400.0,
            name="large-cluster-6.5",
        )
    )


@dataclass
class MultiPodSpec:
    """Parameters of a three-tier multi-pod Clos (fat-tree) fabric.

    A *pod* is a self-contained spine-leaf Clos; pods are joined by a
    core tier every pod spine uplinks into.  Intra-pod traffic never
    leaves the pod, which is what the sharded fairness solver exploits:
    pod-local flow populations form independent fairness domains.

    Defaults build a 4-pod / 1024-GPU fabric; the ROADMAP north-star
    scales (e.g. ``pods=16, leaves_per_pod=16``, 8192 GPUs, or
    ``pods=32, leaves_per_pod=16, hosts_per_leaf=8``, 32768 GPUs) are a
    spec away — construction is O(nodes + links) with no path search.
    """

    pods: int = 4
    spines_per_pod: int = 4
    leaves_per_pod: int = 8
    hosts_per_leaf: int = 4
    nics_per_host: int = 8
    core_switches: int = 4
    nic_gbps: float = 200.0
    fabric_gbps: float = 200.0
    core_gbps: float = 400.0
    local_gBps: float = 2400.0
    name: str = "multi-pod-clos"

    @property
    def hosts_per_pod(self) -> int:
        return self.leaves_per_pod * self.hosts_per_leaf

    @property
    def num_hosts(self) -> int:
        return self.pods * self.hosts_per_pod

    @property
    def gpus(self) -> int:
        """One GPU per NIC, matching the paper's host model."""
        return self.num_hosts * self.nics_per_host

    def pod_of_host(self, host: int) -> int:
        if not 0 <= host < self.num_hosts:
            raise ValueError(f"host {host} out of range")
        return host // self.hosts_per_pod

    def leaf_of_host(self, host: int) -> int:
        """Global leaf index (pod-major) of ``host``."""
        if not 0 <= host < self.num_hosts:
            raise ValueError(f"host {host} out of range")
        return host // self.hosts_per_leaf

    def hosts_of_leaf(self, leaf: int) -> List[int]:
        return list(
            range(leaf * self.hosts_per_leaf, (leaf + 1) * self.hosts_per_leaf)
        )


def multi_pod_clos(spec: MultiPodSpec | None = None) -> Fabric:
    """Build a three-tier multi-pod Clos fabric from ``spec``.

    Node naming (host numbering is global and pod-major, so
    :func:`nic_node` endpoints stay compatible with the cluster layer):

    * cores:  ``core0``, ``core1``, ...
    * spines: ``pod{p}.spine{s}`` (uplinked to every core)
    * leaves: ``pod{p}.leaf{l}`` (uplinked to every spine of pod ``p``)
    * NICs / local links: as in :func:`spine_leaf`

    Every switch and NIC node carries a ``pod`` attribute for
    pod-aware placement and shard diagnostics.
    """
    spec = spec or MultiPodSpec()
    topo = Topology(spec.name)
    for c in range(spec.core_switches):
        topo.add_node(f"core{c}", kind="core")
    for p in range(spec.pods):
        for s in range(spec.spines_per_pod):
            spine = f"pod{p}.spine{s}"
            topo.add_node(spine, kind="spine", pod=p)
            for c in range(spec.core_switches):
                topo.add_duplex_link(spine, f"core{c}", gbps(spec.core_gbps))
        for l in range(spec.leaves_per_pod):
            leaf = f"pod{p}.leaf{l}"
            topo.add_node(leaf, kind="leaf", pod=p)
            for s in range(spec.spines_per_pod):
                topo.add_duplex_link(
                    leaf, f"pod{p}.spine{s}", gbps(spec.fabric_gbps)
                )
    for host in range(spec.num_hosts):
        pod = spec.pod_of_host(host)
        leaf = f"pod{pod}.leaf{spec.leaf_of_host(host) % spec.leaves_per_pod}"
        for k in range(spec.nics_per_host):
            topo.add_node(nic_node(host, k), kind="nic", host=host, nic=k, pod=pod)
            topo.add_duplex_link(nic_node(host, k), leaf, gbps(spec.nic_gbps))
        topo.add_node(f"h{host}.local.src", kind="local", host=host, pod=pod)
        topo.add_node(f"h{host}.local.dst", kind="local", host=host, pod=pod)
        topo.add_link(
            f"h{host}.local.src",
            f"h{host}.local.dst",
            gBps(spec.local_gBps),
            link_id=local_link_id(host),
        )
    _share_paths(("multi-pod-clos", *astuple(spec)), topo)
    fabric = Fabric(
        spec=spec, topology=topo, num_fabric_paths=spec.spines_per_pod
    )
    return fabric


@dataclass
class RegionSpec:
    """Parameters of a geo-distributed multi-region fabric.

    Each region is a self-contained spine-leaf Clos; regions are joined
    by **WAN links** — high-RTT, low-bandwidth duplex cables between
    per-region border routers, full-meshed so any region pair is one WAN
    hop apart.  This is the Prime-CCL scenario family: training jobs
    spanning regions whose inter-region bandwidth is orders of magnitude
    below the intra-region fabric and may drift while collectives run.

    The spec duck-types :class:`FabricSpec` for the cluster layer
    (``num_hosts`` / ``nics_per_host`` / ``leaf_of_host`` / ...) and adds
    ``region_of_host`` — its presence is what gives WAN-crossing
    communicators a distinct topology fingerprint in the autotuner.

    ``wan_rtt`` is the one-way inter-region propagation delay in
    seconds.  The fluid flow model carries capacities, not delays, so
    the RTT is consumed by the workload layer
    (:func:`repro.workloads.traces.geo_distributed_trace`) as extra
    per-sync latency.
    """

    regions: int = 2
    spines_per_region: int = 2
    leaves_per_region: int = 2
    hosts_per_leaf: int = 2
    nics_per_host: int = 2
    nic_gbps: float = 50.0
    fabric_gbps: float = 50.0
    wan_gbps: float = 10.0
    wan_rtt: float = 0.03
    local_gBps: float = 25.0
    name: str = "multi-region"

    @property
    def hosts_per_region(self) -> int:
        return self.leaves_per_region * self.hosts_per_leaf

    @property
    def num_leaves(self) -> int:
        return self.regions * self.leaves_per_region

    @property
    def num_spines(self) -> int:
        return self.regions * self.spines_per_region

    @property
    def num_hosts(self) -> int:
        return self.regions * self.hosts_per_region

    def region_of_host(self, host: int) -> int:
        if not 0 <= host < self.num_hosts:
            raise ValueError(f"host {host} out of range")
        return host // self.hosts_per_region

    def leaf_of_host(self, host: int) -> int:
        """Global leaf index (region-major) of ``host``."""
        if not 0 <= host < self.num_hosts:
            raise ValueError(f"host {host} out of range")
        return host // self.hosts_per_leaf

    def hosts_of_leaf(self, leaf: int) -> List[int]:
        return list(
            range(leaf * self.hosts_per_leaf, (leaf + 1) * self.hosts_per_leaf)
        )

    def hosts_of_region(self, region: int) -> List[int]:
        if not 0 <= region < self.regions:
            raise ValueError(f"region {region} out of range")
        return list(
            range(
                region * self.hosts_per_region,
                (region + 1) * self.hosts_per_region,
            )
        )


def wan_link_id(src_region: int, dst_region: int) -> str:
    """Id of the directed WAN link from one region's border to another's."""
    return f"wan:r{src_region}->r{dst_region}"


def multi_region(spec: RegionSpec | None = None) -> Fabric:
    """Build a multi-region fabric: per-region Clos joined by WAN links.

    Node naming (host numbering is global and region-major, so
    :func:`nic_node` endpoints stay compatible with the cluster layer):

    * borders: ``r{r}.border`` — one WAN-facing router per region,
      uplinked from every spine of the region at ``fabric_gbps``
    * spines:  ``r{r}.spine{s}``
    * leaves:  ``r{r}.leaf{l}`` (uplinked to every spine of region ``r``)
    * WAN:     ``wan:r{a}->r{b}`` duplex pairs at ``wan_gbps``, full mesh
    * NICs / local links: as in :func:`spine_leaf`

    Every switch and NIC node carries a ``region`` attribute.
    """
    spec = spec or RegionSpec()
    topo = Topology(spec.name)
    for r in range(spec.regions):
        topo.add_node(f"r{r}.border", kind="border", region=r)
        for s in range(spec.spines_per_region):
            spine = f"r{r}.spine{s}"
            topo.add_node(spine, kind="spine", region=r)
            topo.add_duplex_link(spine, f"r{r}.border", gbps(spec.fabric_gbps))
        for l in range(spec.leaves_per_region):
            leaf = f"r{r}.leaf{l}"
            topo.add_node(leaf, kind="leaf", region=r)
            for s in range(spec.spines_per_region):
                topo.add_duplex_link(
                    leaf, f"r{r}.spine{s}", gbps(spec.fabric_gbps)
                )
    for a in range(spec.regions):
        for b in range(a + 1, spec.regions):
            topo.add_link(
                f"r{a}.border",
                f"r{b}.border",
                gbps(spec.wan_gbps),
                link_id=wan_link_id(a, b),
            )
            topo.add_link(
                f"r{b}.border",
                f"r{a}.border",
                gbps(spec.wan_gbps),
                link_id=wan_link_id(b, a),
            )
    for host in range(spec.num_hosts):
        region = spec.region_of_host(host)
        leaf = (
            f"r{region}.leaf"
            f"{spec.leaf_of_host(host) % spec.leaves_per_region}"
        )
        for k in range(spec.nics_per_host):
            topo.add_node(
                nic_node(host, k), kind="nic", host=host, nic=k, region=region
            )
            topo.add_duplex_link(nic_node(host, k), leaf, gbps(spec.nic_gbps))
        topo.add_node(f"h{host}.local.src", kind="local", host=host, region=region)
        topo.add_node(f"h{host}.local.dst", kind="local", host=host, region=region)
        topo.add_link(
            f"h{host}.local.src",
            f"h{host}.local.dst",
            gBps(spec.local_gBps),
            link_id=local_link_id(host),
        )
    _share_paths(("multi-region", *astuple(spec)), topo)
    return Fabric(
        spec=spec, topology=topo, num_fabric_paths=spec.spines_per_region
    )


def wan_links(fabric: Fabric) -> List[str]:
    """All inter-region WAN link ids of a :func:`multi_region` fabric."""
    return sorted(
        link_id
        for link_id in fabric.topology.links
        if link_id.startswith("wan:")
    )


@dataclass
class RingFabricSpec:
    """Parameters for the Figure 7 showcase fabric."""

    num_switches: int = 4
    nics_per_host: int = 2
    nic_gbps: float = 100.0
    fabric_gbps: float = 100.0
    local_gBps: float = 25.0
    name: str = "switch-ring-fig7"

    @property
    def num_hosts(self) -> int:
        return self.num_switches


def switch_ring(spec: RingFabricSpec | None = None) -> Fabric:
    """Build the Figure 7a fabric: one host per switch, switches in a ring.

    Each host connects to its own switch; the four switches are cabled in a
    ring, so between any two adjacent hosts there is a clockwise and a
    counterclockwise direction, and a background flow on one inter-switch
    link only degrades rings routed through it.
    """
    spec = spec or RingFabricSpec()
    topo = Topology(spec.name)
    n = spec.num_switches
    for s in range(n):
        topo.add_node(f"sw{s}", kind="switch")
    for s in range(n):
        topo.add_duplex_link(f"sw{s}", f"sw{(s + 1) % n}", gbps(spec.fabric_gbps))
    for host in range(n):
        for k in range(spec.nics_per_host):
            topo.add_node(nic_node(host, k), kind="nic", host=host, nic=k)
            topo.add_duplex_link(nic_node(host, k), f"sw{host}", gbps(spec.nic_gbps))
        topo.add_node(f"h{host}.local.src", kind="local", host=host)
        topo.add_node(f"h{host}.local.dst", kind="local", host=host)
        topo.add_link(
            f"h{host}.local.src",
            f"h{host}.local.dst",
            gBps(spec.local_gBps),
            link_id=local_link_id(host),
        )

    _share_paths(("switch-ring", *astuple(spec)), topo)
    ring_spec = FabricSpec(
        num_spines=0,
        num_leaves=n,
        hosts_per_leaf=1,
        nics_per_host=spec.nics_per_host,
        nic_gbps=spec.nic_gbps,
        fabric_gbps=spec.fabric_gbps,
        local_gBps=spec.local_gBps,
        name=spec.name,
    )
    return Fabric(spec=ring_spec, topology=topo, num_fabric_paths=1)


def intra_host_path(fabric: Fabric, host: int) -> List[str]:
    """Path used by flows between two GPUs of the same host."""
    return [local_link_id(host)]


def fabric_paths(fabric: Fabric, src_nic: str, dst_nic: str) -> List[List[str]]:
    """All equal-cost paths between two NIC endpoints."""
    return fabric.topology.equal_cost_paths(src_nic, dst_nic)


def spine_links(fabric: Fabric) -> List[str]:
    """All leaf->spine and spine->leaf link ids (the oversubscribed tier)."""
    result = []
    for link in fabric.topology.links.values():
        if link.src.startswith("spine") or link.dst.startswith("spine"):
            result.append(link.link_id)
    return sorted(result)
