"""Discrete-event fluid flow simulator.

The engine advances a single simulated clock over two kinds of occurrences:

* **flow completions** — derived from the current weighted max-min rate
  allocation (recomputed lazily whenever the active flow set changes), and
* **scheduled callbacks** — arbitrary control-plane events (compute kernels
  finishing, reconfiguration commands arriving, jobs being submitted...).

Everything above the network (GPU streams, the MCCS engines, the traffic
generator) is driven by callbacks on this clock, so the whole reproduction
shares one coherent notion of time.

Two execution modes share one public API:

* **incremental** (default) — a persistent
  :class:`~repro.netsim.fairness.IncrementalFairnessSolver` absorbs flow
  churn in O(Δ), completions come from a heap of ETAs under a
  *virtual-byte clock* (each flow's ``remaining`` is exact as of
  ``flow._synced_at`` and derived lazily as
  ``remaining - rate * (now - _synced_at)`` until its rate changes), and
  heap entries are invalidated by bumping ``flow._heap_epoch`` whenever a
  rate moves.  Per event the loop touches only the flows whose allocation
  actually changed.
* **legacy** (``incremental=False``) — the original per-event full rebuild
  and full scans, kept as the reference implementation for the
  old-vs-new determinism tests.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .errors import LinkDownError, SimulationError
from .fairness import FairnessSolver, IncrementalFairnessSolver, link_loads
from .flows import Flow, FlowArena
from .macroflow import MacroFlowSolver
from .sharding import ShardedFairnessSolver
from .topology import Topology

# Completion slack: flows within this many bytes of done are completed.
_BYTE_EPS = 1e-6
# Two timestamps closer than this are treated as simultaneous.
_TIME_EPS = 1e-12

#: Default engine mode; tests flip this (or pass ``incremental=False``) to
#: compare the heap/Δ-update core against the legacy full-scan core.
DEFAULT_INCREMENTAL = True

#: Default fast-mode flags; the exactness tests flip these to replay whole
#: experiments (Figure 8/11) under macro aggregation and/or the sharded
#: solver without threading options through every experiment entry point.
DEFAULT_MACRO = False
DEFAULT_SHARDED = False

EventCallback = Callable[[], None]


class SimObserver:
    """No-op base class for :class:`FlowSimulator` observers.

    Observers are the engine's telemetry hook: they see every flow enter
    and leave the network, every gate transition, and every rate
    recomputation, without being able to perturb the simulation.  The
    telemetry layer's link-utilization sampler
    (:class:`repro.telemetry.sampler.NetworkTelemetry`) is the main
    implementation; subclass and override what you need.
    """

    def on_flow_added(self, flow: Flow, now: float) -> None:  # pragma: no cover
        pass

    def on_flow_completed(self, flow: Flow, now: float) -> None:  # pragma: no cover
        pass

    def on_flow_cancelled(self, flow: Flow, now: float) -> None:  # pragma: no cover
        pass

    def on_flow_failed(self, flow: Flow, now: float) -> None:  # pragma: no cover
        pass

    def on_flow_gated(self, flow: Flow, gated: bool, now: float) -> None:  # pragma: no cover
        pass

    def on_rates_recomputed(self, now: float) -> None:  # pragma: no cover
        pass


class FlowSimulator:
    """Fluid flow-level network simulator with max-min fair sharing.

    Args:
        topology: The network graph; link capacities come from here.
        start_time: Initial clock value (seconds).
    """

    def __init__(
        self,
        topology: Topology,
        start_time: float = 0.0,
        interference_penalty: float = 0.0,
        incremental: Optional[bool] = None,
        macro: Optional[bool] = None,
        sharded: Optional[bool] = None,
    ) -> None:
        """Args:
            topology: The network graph.
            start_time: Initial clock value.
            interference_penalty: Optional burst-interference model.  Pure
                fluid max-min fairness misses the switch-buffer/PFC-level
                degradation that bursty tenants inflict on each other when
                sharing a link (the effect CASSINI-style interleaving, and
                the paper's PFA/TS results, exploit).  When > 0, a link
                carrying active flows of two or more distinct jobs has its
                effective capacity scaled by ``1 - interference_penalty``.
                0 (default) is the paper's §6.5 per-flow-fairness model.
            incremental: Engine mode; ``None`` uses the module default
                (:data:`DEFAULT_INCREMENTAL`).  ``False`` selects the
                legacy full-rebuild/full-scan core.
            macro: Aggregate flows sharing (path, weight, job) into one
                solver slot (:mod:`repro.netsim.macroflow`); member rates
                stay bit-identical to the per-flow reference.  Requires
                the incremental core.  ``None`` uses :data:`DEFAULT_MACRO`.
            sharded: Shard the fairness solve by sharing component
                (:mod:`repro.netsim.sharding`) — datacenter-scale mode
                for multi-pod fabrics.  Requires the incremental core and
                is incompatible with ``interference_penalty`` (a global
                capacity coupling).  Composes with ``macro``.  ``None``
                uses :data:`DEFAULT_SHARDED`.
        """
        if not 0.0 <= interference_penalty < 1.0:
            raise ValueError("interference_penalty must be in [0, 1)")
        self.topology = topology
        self.now = start_time
        self.interference_penalty = interference_penalty
        self._capacities: Dict[str, float] = {
            link_id: link.capacity for link_id, link in topology.links.items()
        }
        self._active: Dict[str, Flow] = {}
        self._known_paths: set = set()
        self._events: List[Tuple[float, int, EventCallback]] = []
        self._event_seq = itertools.count()
        self._dirty = True
        self._observers: List[SimObserver] = []
        self.flows_completed = 0
        self.flows_cancelled = 0
        self.flows_failed = 0
        self.rate_recomputations = 0
        # incremental-mode state
        if incremental is None:
            incremental = DEFAULT_INCREMENTAL
        if macro is None:
            macro = DEFAULT_MACRO
        if sharded is None:
            sharded = DEFAULT_SHARDED
        if (macro or sharded) and not incremental:
            raise ValueError(
                "macro/sharded modes require the incremental engine"
            )
        if sharded and interference_penalty > 0:
            raise ValueError(
                "sharded mode does not support interference_penalty "
                "(the penalty couples capacities globally)"
            )
        self.macro = macro
        self.sharded = sharded
        self._inc = None
        self._shard_solver: Optional[ShardedFairnessSolver] = None
        self._macro_solver: Optional[MacroFlowSolver] = None
        if incremental:
            if sharded:
                self._shard_solver = ShardedFairnessSolver(self._capacities)
                self._inc = self._shard_solver
            else:
                self._inc = IncrementalFairnessSolver(self._capacities)
            if macro:
                self._macro_solver = MacroFlowSolver(self._inc)
                self._inc = self._macro_solver
        # Flat-array data plane: remaining/rate/synced of in-network flows
        # live in one arena so rate recomputations settle and re-anchor
        # whole batches with numpy ops (legacy mode keeps per-object state).
        self._arena: Optional[FlowArena] = FlowArena() if incremental else None
        # Structural deltas absorbed beyond the first per recomputation:
        # k churn ops inside one sim timestep cost one solve, not k.
        self.solver_coalesced_solves = 0
        # (eta, seq, epoch, flow); entries whose epoch no longer matches
        # flow._heap_epoch are stale and dropped lazily on pop.
        self._heap: List[Tuple[float, int, int, Flow]] = []
        self._heap_seq = itertools.count()
        self.heap_pushes = 0
        self.heap_invalidations = 0
        self.stale_heap_pops = 0

    @property
    def incremental(self) -> bool:
        """True when the Δ-update/heap core is in use."""
        return self._inc is not None

    # ------------------------------------------------------------------
    # observers
    # ------------------------------------------------------------------
    def add_observer(self, observer: SimObserver) -> None:
        """Attach a telemetry observer (see :class:`SimObserver`)."""
        self._observers.append(observer)

    def remove_observer(self, observer: SimObserver) -> None:
        self._observers.remove(observer)

    # ------------------------------------------------------------------
    # flow management
    # ------------------------------------------------------------------
    def add_flow(
        self,
        size: float,
        path: Sequence[str],
        *,
        job_id: Optional[str] = None,
        weight: float = 1.0,
        gated: bool = False,
        on_complete: Optional[Callable[[Flow, float], None]] = None,
        on_fail: Optional[Callable[[Flow, float, BaseException], None]] = None,
        tags: Optional[Dict[str, object]] = None,
    ) -> Flow:
        """Inject a flow into the network at the current time.

        Raises :class:`LinkDownError` when the path crosses a link that is
        currently down (a stale connection caching a pre-fault route).
        """
        path_t = tuple(path)
        # Links are never deleted from a topology (faults only mark them
        # down), so a path validated once stays structurally valid; the
        # cache turns the channelized-workload case (thousands of flows
        # over a few distinct routes) into one set probe per flow.
        if path_t not in self._known_paths:
            self.topology.validate_path(path_t)
            self._known_paths.add(path_t)
        # ``topology.has_down_links`` reads the same set behind a property;
        # probe the set directly on this per-flow path.
        if self.topology._down:
            for link_id in path_t:
                if not self.topology.link_is_up(link_id):
                    raise LinkDownError(
                        f"flow path crosses down link {link_id!r}"
                    )
        flow = Flow(
            size=size,
            path=path_t,
            job_id=job_id,
            weight=weight,
            gated=gated,
            on_complete=on_complete,
            on_fail=on_fail,
            tags=dict(tags) if tags else None,
        )
        flow.start_time = self.now
        flow._synced = self.now
        if self._arena is not None:
            flow._attach(self._arena)
        self._active[flow.flow_id] = flow
        if self._inc is not None:
            self._inc.add_flow(flow)
        self._dirty = True
        for observer in self._observers:
            observer.on_flow_added(flow, self.now)
        return flow

    def add_flows(
        self,
        size: float,
        path: Sequence[str],
        count: int,
        *,
        job_id: Optional[str] = None,
        weight: float = 1.0,
        gated: bool = False,
        on_complete: Optional[Callable[[Flow, float], None]] = None,
        on_fail: Optional[Callable[[Flow, float, BaseException], None]] = None,
        tags: Optional[Dict[str, object]] = None,
    ) -> List[Flow]:
        """Inject ``count`` identical-parameter flows in one call.

        The batched form of :meth:`add_flow` for a collective's channel
        fan-out: path validation and the down-link scan run once, and a
        solver that understands batches (macro aggregation) registers the
        whole sibling set with a single group lookup.  Semantically
        equivalent to calling :meth:`add_flow` ``count`` times.
        """
        path_t = tuple(path)
        if path_t not in self._known_paths:
            self.topology.validate_path(path_t)
            self._known_paths.add(path_t)
        if self.topology._down:
            for link_id in path_t:
                if not self.topology.link_is_up(link_id):
                    raise LinkDownError(
                        f"flow path crosses down link {link_id!r}"
                    )
        now = self.now
        arena = self._arena
        active = self._active
        flows: List[Flow] = []
        for _ in range(count):
            flow = Flow(
                size=size,
                path=path_t,
                job_id=job_id,
                weight=weight,
                gated=gated,
                on_complete=on_complete,
                on_fail=on_fail,
                tags=dict(tags) if tags else None,
            )
            flow.start_time = now
            flow._synced = now
            if arena is not None:
                flow._attach(arena)
            active[flow.flow_id] = flow
            flows.append(flow)
        inc = self._inc
        if inc is not None:
            batch_add = getattr(inc, "add_flows", None)
            if batch_add is not None:
                batch_add(flows)
            else:
                for flow in flows:
                    inc.add_flow(flow)
        self._dirty = True
        if self._observers:
            for flow in flows:
                for observer in self._observers:
                    observer.on_flow_added(flow, now)
        return flows

    def cancel_flow(self, flow: Flow) -> None:
        """Remove an in-flight flow without firing its completion callback.

        Used to stop background flows and to tear down connections during
        reconfiguration.  Observers receive ``on_flow_cancelled`` so
        lifecycle trackers do not leak an in-flight entry.  Cancelling a
        flow that already completed, failed, or was cancelled is a no-op
        (fault storms cancel liberally), so observers are notified and
        ``flows_cancelled`` is bumped exactly once per flow.
        """
        if flow.flow_id not in self._active:
            return
        self._remove_flow(flow)
        self.flows_cancelled += 1
        for observer in self._observers:
            observer.on_flow_cancelled(flow, self.now)

    def fail_flow(self, flow: Flow, error: BaseException) -> None:
        """Kill an in-flight flow with a fault.

        Like :meth:`cancel_flow` but the flow is marked ``failed`` with
        ``error`` attached, observers receive ``on_flow_failed``, and the
        flow's ``on_fail`` callback fires (``on_complete`` never does).
        Failing a flow that already left the network is a no-op.
        """
        if flow.flow_id not in self._active:
            return
        self._remove_flow(flow)
        flow.failed = True
        flow.error = error
        self.flows_failed += 1
        for observer in self._observers:
            observer.on_flow_failed(flow, self.now)
        if flow.on_fail is not None:
            flow.on_fail(flow, self.now, error)

    def _remove_flow(self, flow: Flow) -> None:
        """Shared teardown of cancel/fail: settle, unplumb, mark dirty."""
        if self._inc is not None:
            self._settle(flow)
            self._inc.remove_flow(flow)
            flow._heap_epoch += 1
            self.heap_invalidations += 1
        flow._detach()
        del self._active[flow.flow_id]
        self._dirty = True

    def has_flow(self, flow: Flow) -> bool:
        """True while ``flow`` is still in the network (not done/cancelled)."""
        return flow.flow_id in self._active

    def gate_flow(self, flow: Flow, gated: bool) -> None:
        """Pause (``gated=True``) or resume a flow.

        This is the mechanism behind the time-window traffic scheduling
        policy: the MCCS transport engine withholds a tenant's traffic
        while a prioritized tenant is busy.
        """
        if flow.gated != gated:
            if self._inc is not None:
                self._settle(flow)
            flow.gated = gated
            if self._inc is not None:
                self._inc.set_active(flow, flow.active)
            self._dirty = True
            for observer in self._observers:
                observer.on_flow_gated(flow, gated, self.now)

    def active_flows(self) -> List[Flow]:
        """All flows currently in the network (including gated ones)."""
        return list(self._active.values())

    def active_flow_count(self) -> int:
        """Number of flows in the network, without materializing the list."""
        return len(self._active)

    def rate_of(self, flow: Flow) -> float:
        """Current allocated rate of ``flow`` in bytes/s."""
        self._ensure_rates()
        return flow.rate

    def set_link_capacity(self, link_id: str, capacity: float) -> None:
        """Change a link's capacity at the current time (rate limiting)."""
        if link_id not in self._capacities:
            raise KeyError(f"unknown link {link_id!r}")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacities[link_id] = capacity
        if self._inc is not None:
            self._inc.set_capacity(link_id, capacity)
        self._dirty = True

    def set_link_bandwidth(self, link_id: str, capacity: float) -> None:
        """Live bandwidth change with route re-resolution (WAN drift).

        Same exact capacity mutation as :meth:`set_link_capacity` —
        flowing through the incremental/macro/sharded solver chain via
        ``set_capacity`` — plus a topology routing-epoch bump so
        consumers with pinned paths (:class:`~repro.transport.
        connections.ConnectionTable`) re-resolve and the resized link
        is actually reconsidered by ECMP.  In-flight flows keep their
        paths and simply see the new fair-share rates.
        """
        self.set_link_capacity(link_id, capacity)
        self.topology.bump_routing_epoch()

    def link_capacity(self, link_id: str) -> float:
        return self._capacities[link_id]

    def bottleneck_link_of(self, flow: Flow) -> Optional[str]:
        """Link currently limiting ``flow``'s rate.

        Incremental mode reads the solver's per-slot attribution from the
        last allocation; legacy mode (and flows no longer registered with
        the solver) fall back to the minimum-capacity link of the path —
        the best static guess when per-round attribution is unavailable.
        """
        if self._inc is not None:
            link = self._inc.bottleneck_of(flow.flow_id)
            if link is not None:
                return link
        return min(flow.links, key=lambda l: self._capacities[l])

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def fail_link(self, link_id: str, *, reason: Optional[str] = None) -> List[Flow]:
        """Take a link down at the current time.

        Every in-flight flow crossing the link is killed via
        :meth:`fail_flow` with a :class:`LinkDownError`; subsequent
        path enumeration (:meth:`Topology.shortest_paths`) excludes the
        link until :meth:`restore_link`.  Returns the killed flows.
        Failing an already-down link is a no-op.
        """
        if not self.topology.set_link_state(link_id, up=False):
            return []
        detail = f"link {link_id!r} went down" + (f" ({reason})" if reason else "")
        victims = [f for f in self._active.values() if link_id in f.links]
        for flow in victims:
            self.fail_flow(flow, LinkDownError(detail))
        self._dirty = True
        return victims

    def restore_link(self, link_id: str) -> bool:
        """Bring a previously failed link back up; True if it was down."""
        changed = self.topology.set_link_state(link_id, up=True)
        if changed:
            self._dirty = True
        return changed

    def link_is_up(self, link_id: str) -> bool:
        return self.topology.link_is_up(link_id)

    def link_utilization(self, min_utilization: float = 0.0) -> Dict[str, float]:
        """Current utilization (allocated rate / capacity) per link.

        This is the "link utilization" signal the paper's provider keeps
        confidential but consumes internally for policy decisions; only
        links at or above ``min_utilization`` are reported.
        """
        self._ensure_rates()
        if self._inc is not None:
            return self._inc.link_utilization(min_utilization)
        loads = link_loads(self.active_flows())
        return {
            link: load / self._capacities[link]
            for link, load in loads.items()
            if load / self._capacities[link] >= min_utilization
        }

    def perf_counters(self) -> Dict[str, int]:
        """Engine-core performance counters for telemetry and benchmarks.

        ``solver_rebuilds_avoided`` counts recomputations that reused the
        persistent incidence structure instead of rebuilding it;
        ``solver_full_rebuilds`` counts the structure (re)builds that did
        happen (initial build plus tombstone compactions).
        """
        counters: Dict[str, int] = {
            "rate_recomputations": self.rate_recomputations,
            "flows_completed": self.flows_completed,
            "flows_cancelled": self.flows_cancelled,
            "flows_failed": self.flows_failed,
            "heap_pushes": self.heap_pushes,
            "heap_invalidations": self.heap_invalidations,
            "stale_heap_pops": self.stale_heap_pops,
        }
        counters["solver_coalesced_solves"] = self.solver_coalesced_solves
        if self._inc is not None:
            counters["solver_full_rebuilds"] = self._inc.full_rebuilds
            counters["solver_delta_updates"] = self._inc.delta_updates
            counters["solver_rebuilds_avoided"] = max(
                self.rate_recomputations - self._inc.full_rebuilds, 0
            )
            counters["solver_last_delta"] = self._inc.last_delta
            counters["solver_delta_total"] = self._inc.delta_flows_total
            counters["solver_solves_skipped"] = getattr(
                self._inc, "solves_skipped", 0
            )
            counters["solver_scalar_solves"] = getattr(
                self._inc, "scalar_solves", 0
            )
            if self._shard_solver is not None:
                shard = self._shard_solver
                counters["solver_domains"] = shard.domain_count
                counters["solver_domain_merges"] = shard.domain_merges
                counters["solver_domain_dissolutions"] = (
                    shard.domain_dissolutions
                )
                counters["solver_max_domain_flows"] = shard.max_domain_flows
                counters["solver_solo_solves"] = shard.solo_solves
            if self._macro_solver is not None:
                mac = self._macro_solver
                counters["macro_groups"] = mac.macro_groups
                counters["macro_members"] = mac.macro_members
                counters["macro_peak_group_size"] = mac.macro_peak_group_size
        else:
            counters["solver_full_rebuilds"] = self.rate_recomputations
            counters["solver_delta_updates"] = 0
            counters["solver_rebuilds_avoided"] = 0
            counters["solver_last_delta"] = 0
            counters["solver_delta_total"] = 0
            counters["solver_solves_skipped"] = 0
            counters["solver_scalar_solves"] = 0
        return counters

    # ------------------------------------------------------------------
    # event management
    # ------------------------------------------------------------------
    def schedule(self, when: float, callback: EventCallback) -> None:
        """Run ``callback`` at absolute time ``when`` (clamped to now)."""
        when = max(when, self.now)
        heapq.heappush(self._events, (when, next(self._event_seq), callback))

    def call_in(self, delay: float, callback: EventCallback) -> None:
        """Run ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.schedule(self.now + delay, callback)

    def when_all(
        self, flows: Iterable[Flow], callback: Callable[[float], None]
    ) -> None:
        """Fire ``callback(now)`` once every flow in ``flows`` completed.

        Completion callbacks already attached to the flows keep working;
        this wraps them.  Used to detect collective completion (a
        collective finishes when its slowest flow finishes).
        """
        pending = [f for f in flows if not f.completed]
        if not pending:
            self.schedule(self.now, lambda: callback(self.now))
            return
        remaining = {"count": len(pending)}

        def make_hook(flow: Flow) -> Callable[[Flow, float], None]:
            previous = flow.on_complete

            def hook(f: Flow, t: float) -> None:
                if previous is not None:
                    previous(f, t)
                remaining["count"] -= 1
                if remaining["count"] == 0:
                    callback(t)

            return hook

        for flow in pending:
            flow.on_complete = make_hook(flow)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Advance the simulation.

        Args:
            until: Stop once the clock would pass this absolute time; the
                clock is left exactly at ``until``.  ``None`` runs to
                quiescence (no events, no active ungated flows).

        Returns:
            The clock value when the loop stopped.
        """
        if self._inc is None:
            return self._run_legacy(until)
        try:
            return self._run_incremental(until)
        finally:
            # Materialize every in-flight flow's lazy progress so callers
            # observe exact ``remaining`` values between run() calls.
            self._settle_all()

    def _run_incremental(self, until: Optional[float]) -> float:
        while True:
            self._ensure_rates()
            next_completion = self._peek_completion()
            next_event = self._events[0][0] if self._events else math.inf
            t = min(next_completion, next_event)
            if math.isinf(t):
                if until is not None and until > self.now:
                    self._advance_clock(until)
                self._check_quiescent()
                return self.now
            if until is not None and t > until:
                self._advance_clock(max(until, self.now))
                return self.now
            self._advance_clock(t)
            if next_completion <= next_event + _TIME_EPS:
                self._complete_flows(self._collect_finishing(next_completion))
            self._fire_due_events()

    def _run_legacy(self, until: Optional[float]) -> float:
        while True:
            self._ensure_rates()
            next_completion, finishing = self._next_completion()
            next_event = self._events[0][0] if self._events else math.inf
            t = min(next_completion, next_event)
            if math.isinf(t):
                if until is not None and until > self.now:
                    self._advance_to(until)
                self._check_quiescent()
                return self.now
            if until is not None and t > until:
                self._advance_to(max(until, self.now))
                return self.now
            self._advance_to(t)
            if next_completion <= next_event + _TIME_EPS:
                self._complete_flows(finishing)
            self._fire_due_events()

    # ------------------------------------------------------------------
    # internals — shared
    # ------------------------------------------------------------------
    def _ensure_rates(self) -> None:
        if not self._dirty:
            return
        if self._inc is not None:
            self._recompute_incremental()
        else:
            self._recompute_legacy()
        self._dirty = False
        self.rate_recomputations += 1
        for observer in self._observers:
            observer.on_rates_recomputed(self.now)

    def _complete_flows(self, finishing: List[Flow]) -> None:
        completed: List[Flow] = []
        now = self.now
        inc = self._inc
        active = self._active
        for flow in finishing:
            if flow.flow_id not in active:
                continue
            flow.end_time = now
            del active[flow.flow_id]
            if inc is not None:
                flow._heap_epoch += 1
            # Inlined detach: the final data plane is known (all bytes
            # delivered, anchored at now), so skip the settle-through-
            # arena round trip and write the plain attributes directly.
            arena = flow._arena
            if arena is not None:
                flow._rate = float(arena.rate[flow._slot])
                arena.release(flow._slot)
                flow._arena = None
                flow._slot = -1
            flow._remaining = 0.0
            flow._synced = now
            completed.append(flow)
        if completed:
            if inc is not None:
                batch_remove = getattr(inc, "remove_flows", None)
                if batch_remove is not None:
                    batch_remove(completed)
                else:
                    for flow in completed:
                        inc.remove_flow(flow)
            self.flows_completed += len(completed)
            self._dirty = True
        for flow in completed:
            for observer in self._observers:
                observer.on_flow_completed(flow, self.now)
        # Fire callbacks after all bookkeeping so that callbacks observe a
        # consistent network state (and may inject follow-up flows).
        for flow in completed:
            if flow.on_complete is not None:
                flow.on_complete(flow, self.now)

    def _fire_due_events(self) -> None:
        while self._events and self._events[0][0] <= self.now + _TIME_EPS:
            _, _, callback = heapq.heappop(self._events)
            callback()

    def _check_quiescent(self) -> None:
        stuck = [
            f
            for f in self._active.values()
            if f.active and f.rate <= 0 and f.remaining > _BYTE_EPS
        ]
        if stuck:
            raise SimulationError(
                "simulation stalled with active zero-rate flows: "
                + ", ".join(f.flow_id for f in stuck[:5])
            )

    # ------------------------------------------------------------------
    # internals — incremental core
    # ------------------------------------------------------------------
    def _settle(self, flow: Flow) -> None:
        """Materialize ``flow.remaining`` at the current clock value."""
        arena = flow._arena
        if arena is None:
            # Detached (legacy mode, or a flow leaving the network).
            # ``flow.active`` inlined: this and the other hot-loop sites
            # below account for hundreds of thousands of property calls
            # per large run.
            if flow._synced < self.now:
                if flow.end_time is None and not flow.gated and flow._rate > 0:
                    flow._remaining = max(
                        flow._remaining
                        - flow._rate * (self.now - flow._synced),
                        0.0,
                    )
                flow._synced = self.now
            return
        slot = flow._slot
        synced = arena.synced[slot]
        if synced < self.now:
            if flow.end_time is None and not flow.gated:
                rate = arena.rate[slot]
                if rate > 0:
                    rem = arena.remaining[slot] - rate * (self.now - synced)
                    arena.remaining[slot] = rem if rem > 0.0 else 0.0
            arena.synced[slot] = self.now

    def _settle_all(self) -> None:
        arena = self._arena
        if arena is None or len(self._active) < 8:
            for flow in self._active.values():
                self._settle(flow)
            return
        # Vectorized: one debit pass over the arena slots of every
        # in-network flow (same IEEE expression as the scalar settle).
        slots: List[int] = []
        eligible: List[bool] = []
        for flow in self._active.values():
            slots.append(flow._slot)
            eligible.append(flow.end_time is None and not flow.gated)
        idx = np.asarray(slots, dtype=np.int64)
        now = self.now
        syn = arena.synced[idx]
        rate = arena.rate[idx]
        rem = arena.remaining[idx]
        mask = np.asarray(eligible, dtype=bool) & (syn < now) & (rate > 0.0)
        debited = np.maximum(rem - rate * (now - syn), 0.0)
        arena.remaining[idx] = np.where(mask, debited, rem)
        arena.synced[idx] = now

    #: Changed-set size at which rate installation switches from the
    #: per-flow loop to the vectorized arena batch.
    _BATCH_MIN = 16

    def _recompute_incremental(self) -> None:
        inc = self._inc
        assert inc is not None
        caps = None
        if self.interference_penalty > 0:
            caps = inc.scaled_caps(self.interference_penalty)
        changed, rates = inc.solve(caps)
        delta = inc.last_delta
        if delta > 1:
            self.solver_coalesced_solves += delta - 1
        clist = changed.tolist() if isinstance(changed, np.ndarray) else changed
        # Every solver flavor keeps its slot table as a plain list
        # (``_slots`` on the wrappers, ``_flows`` on the incremental
        # solver); indexing it directly replaces one ``flow_at`` method
        # call per changed slot, which adds up over 100k-flow runs.
        table = getattr(inc, "_slots", None)
        if table is None:
            table = inc._flows
        if len(clist) >= self._BATCH_MIN and self._arena is not None:
            self._install_rates_batch(inc, table, rates, clist)
            return
        for slot in clist:
            flow = table[slot]
            if flow is None:
                continue
            # Settle under the *old* rate before installing the new one,
            # then re-anchor the ETA; the stale heap entry dies via epoch.
            self._settle(flow)
            flow.rate = float(rates[slot])
            if flow._recorder is not None:
                flow._recorder.on_rate_change(
                    flow,
                    self.now,
                    flow.rate,
                    inc.bottleneck_of_slot(slot),
                )
            flow._heap_epoch += 1
            self.heap_invalidations += 1
            if flow.end_time is None and not flow.gated and flow.rate > 0:
                eta = self.now + flow.remaining / flow.rate
                heapq.heappush(
                    self._heap,
                    (eta, next(self._heap_seq), flow._heap_epoch, flow),
                )
                self.heap_pushes += 1

    def _install_rates_batch(
        self, inc, table: List[Optional[Flow]], rates, clist: List[int]
    ) -> None:
        """Vectorized settle + rate install + ETA re-anchor for a batch.

        Same arithmetic as the per-flow loop above — settle under the old
        rate (``remaining - rate * dt`` elementwise), install the new
        rates, derive ETAs in one division — so the allocation and every
        completion timestamp stay bit-identical; only the bookkeeping
        (epoch bumps, heap pushes, rate-recorder hooks) remains per flow.
        """
        arena = self._arena
        now = self.now
        flows: List[Flow] = []
        slots: List[int] = []
        aslots: List[int] = []
        new_rates: List[float] = []
        gated: List[bool] = []
        for slot in clist:
            flow = table[slot]
            if flow is None:
                continue
            flows.append(flow)
            slots.append(slot)
            aslots.append(flow._slot)
            new_rates.append(float(rates[slot]))
            gated.append(flow.gated)
        if not flows:
            return
        idx = np.asarray(aslots, dtype=np.int64)
        nr = np.asarray(new_rates, dtype=float)
        syn = arena.synced[idx]
        old_rate = arena.rate[idx]
        rem = arena.remaining[idx]
        mask = ~np.asarray(gated, dtype=bool) & (old_rate > 0.0) & (syn < now)
        debited = np.maximum(rem - old_rate * (now - syn), 0.0)
        rem = np.where(mask, debited, rem)
        arena.remaining[idx] = rem
        arena.synced[idx] = now
        arena.rate[idx] = nr
        with np.errstate(divide="ignore", invalid="ignore"):
            etas = (now + rem / nr).tolist()
        heap = self._heap
        heap_seq = self._heap_seq
        pushes = 0
        for i, flow in enumerate(flows):
            if flow._recorder is not None:
                flow._recorder.on_rate_change(
                    flow, now, new_rates[i], inc.bottleneck_of_slot(slots[i])
                )
            flow._heap_epoch += 1
            if not gated[i] and flow.end_time is None and new_rates[i] > 0:
                heapq.heappush(
                    heap, (etas[i], next(heap_seq), flow._heap_epoch, flow)
                )
                pushes += 1
        self.heap_invalidations += len(flows)
        self.heap_pushes += pushes

    def _peek_completion(self) -> float:
        """Earliest valid completion ETA, dropping stale heap entries.

        The liveness predicate (``_heap_entry_live``) is inlined here and
        in :meth:`_collect_finishing`: both run once per heap entry ever
        pushed, and the call overhead alone was visible at 100k flows.
        """
        heap = self._heap
        active = self._active
        pops = 0
        while heap:
            eta, _, epoch, flow = heap[0]
            if (
                flow._heap_epoch == epoch
                and flow.end_time is None
                and not flow.gated
                and flow.flow_id in active
            ):
                if pops:
                    self.stale_heap_pops += pops
                return eta
            heapq.heappop(heap)
            pops += 1
        if pops:
            self.stale_heap_pops += pops
        return math.inf

    def _collect_finishing(self, t: float) -> List[Flow]:
        """Pop every flow whose valid ETA falls within ``t`` (+epsilon)."""
        finishing: List[Flow] = []
        heap = self._heap
        active = self._active
        limit = t + _TIME_EPS
        while heap:
            eta, _, epoch, flow = heap[0]
            if (
                flow._heap_epoch == epoch
                and flow.end_time is None
                and not flow.gated
                and flow.flow_id in active
            ):
                if eta > limit:
                    break
                heapq.heappop(heap)
                finishing.append(flow)
            else:
                heapq.heappop(heap)
                self.stale_heap_pops += 1
        return finishing

    def _advance_clock(self, t: float) -> None:
        """O(1) clock advance: flow progress stays lazy (virtual bytes)."""
        if t < self.now - _TIME_EPS:
            raise SimulationError(f"time went backwards: {t} < {self.now}")
        self.now = max(t, self.now)

    # ------------------------------------------------------------------
    # internals — legacy core (reference implementation)
    # ------------------------------------------------------------------
    def _recompute_legacy(self) -> None:
        flows = list(self._active.values())
        solver = FairnessSolver(flows, self._effective_capacities(flows))
        rates = solver.solve()
        for flow in flows:
            new_rate = rates[flow.flow_id]
            if flow._recorder is not None and new_rate != flow.rate:
                flow._recorder.on_rate_change(flow, self.now, new_rate, None)
            flow.rate = new_rate

    def _effective_capacities(self, flows: List[Flow]) -> Dict[str, float]:
        """Per-recompute capacities, with the interference model applied.

        Links shared by active flows of two or more distinct jobs lose
        ``interference_penalty`` of their capacity (see ``__init__``).
        """
        if self.interference_penalty <= 0:
            return self._capacities
        jobs_on_link: Dict[str, set] = {}
        for flow in flows:
            if not flow.active:
                continue
            for link in flow.links:
                jobs_on_link.setdefault(link, set()).add(flow.job_id)
        scale = 1.0 - self.interference_penalty
        capacities = dict(self._capacities)
        for link, jobs in jobs_on_link.items():
            if len(jobs) >= 2:
                capacities[link] *= scale
        return capacities

    def _next_completion(self) -> Tuple[float, List[Flow]]:
        """Earliest completion time and every flow finishing then."""
        best = math.inf
        for flow in self._active.values():
            if not flow.active or flow.rate <= 0:
                continue
            eta = self.now + flow.remaining / flow.rate
            if eta < best:
                best = eta
        if math.isinf(best):
            return best, []
        finishing = []
        for flow in self._active.values():
            if not flow.active or flow.rate <= 0:
                continue
            eta = self.now + flow.remaining / flow.rate
            if eta <= best + _TIME_EPS:
                finishing.append(flow)
        return best, finishing

    def _advance_to(self, t: float) -> None:
        if t < self.now - _TIME_EPS:
            raise SimulationError(f"time went backwards: {t} < {self.now}")
        dt = max(t - self.now, 0.0)
        if dt > 0:
            for flow in self._active.values():
                if flow.active and flow.rate > 0:
                    flow.remaining = max(flow.remaining - flow.rate * dt, 0.0)
        self.now = t
