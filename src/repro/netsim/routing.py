"""Path selection: ECMP hashing and explicit route-ID control.

The paper contrasts two regimes:

* **ECMP** — the datacenter default.  Each connection is hashed onto one of
  the equal-cost paths; collisions are possible and are exactly what the
  MCCS(-FA) ablation suffers from in Figures 6 and 8.
* **Route-ID (source-routed) control** — MCCS's transport engine stamps
  each RDMA connection with a route id (the prototype encodes it in the
  RoCEv2 UDP source port and installs matching policy routes on the
  switch).  Here a :class:`RouteMap` plays the role of that switch policy
  table: it pins a (src, dst, connection-key) triple to a specific path
  index, and the :class:`RouteIdSelector` honours it.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .errors import NoPathError
from .topology import Topology

ConnectionKey = Tuple[str, str, str]
"""(src endpoint, dst endpoint, discriminator) identifying one connection."""


def ecmp_hash(key: ConnectionKey, num_paths: int, seed: int = 0) -> int:
    """Deterministic ECMP hash of a connection key onto a path index.

    A cryptographic digest keyed by ``seed`` stands in for the switch's
    5-tuple hash.  Different seeds model different (random) hash functions
    across experiment trials, which is what produces the collision-induced
    variance shown as shaded 95% intervals in Figure 6.
    """
    if num_paths <= 0:
        raise ValueError("num_paths must be positive")
    material = f"{seed}|{key[0]}|{key[1]}|{key[2]}".encode()
    digest = hashlib.blake2b(material, digest_size=8).digest()
    return int.from_bytes(digest, "big") % num_paths


class PathSelector:
    """Interface: pick a concrete path for a connection."""

    def select(
        self, topology: Topology, key: ConnectionKey
    ) -> List[str]:  # pragma: no cover - interface
        raise NotImplementedError


class EcmpSelector(PathSelector):
    """Hash-based selection among the equal-cost shortest paths."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def select(self, topology: Topology, key: ConnectionKey) -> List[str]:
        paths = topology.shortest_paths(key[0], key[1])
        return list(paths[ecmp_hash(key, len(paths), self.seed)])


@dataclass
class RouteMap:
    """Connection -> route-id assignments issued by a policy (FFA/PFA).

    ``route_id`` indexes into the sorted equal-cost path list of the
    connection's endpoints, mirroring how the prototype's switch policy
    maps UDP source ports to routes.
    """

    assignments: Dict[ConnectionKey, int] = field(default_factory=dict)

    def assign(self, key: ConnectionKey, route_id: int) -> None:
        if route_id < 0:
            raise ValueError("route_id must be non-negative")
        self.assignments[key] = route_id

    def route_id(self, key: ConnectionKey) -> Optional[int]:
        return self.assignments.get(key)

    def merge(self, other: "RouteMap") -> None:
        """Overlay ``other``'s assignments on top of this map."""
        self.assignments.update(other.assignments)

    def clear_job(self, job_prefix: str) -> None:
        """Drop every assignment whose discriminator starts with a prefix."""
        stale = [
            key for key in self.assignments if key[2].startswith(job_prefix)
        ]
        for key in stale:
            del self.assignments[key]

    def __len__(self) -> int:
        return len(self.assignments)


class RouteIdSelector(PathSelector):
    """Honour a :class:`RouteMap`; fall back to ECMP for unmapped flows.

    The fallback matches the deployment story in §5: tenants that are not
    (yet) managed simply see normal ECMP behaviour.
    """

    def __init__(self, route_map: RouteMap, fallback_seed: int = 0) -> None:
        self.route_map = route_map
        self._fallback = EcmpSelector(fallback_seed)

    def select(self, topology: Topology, key: ConnectionKey) -> List[str]:
        paths = topology.shortest_paths(key[0], key[1])
        route_id = self.route_map.route_id(key)
        if route_id is None:
            # Inline ECMP over the already-enumerated paths; delegating to
            # the fallback selector would enumerate them a second time.
            route_id = ecmp_hash(key, len(paths), self._fallback.seed)
        elif route_id >= len(paths):
            raise NoPathError(
                f"route id {route_id} out of range for {key[0]}->{key[1]} "
                f"({len(paths)} paths)"
            )
        return list(paths[route_id])


class RandomSelector(PathSelector):
    """Uniform random path choice (useful for stress tests)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def select(self, topology: Topology, key: ConnectionKey) -> List[str]:
        paths = topology.shortest_paths(key[0], key[1])
        return list(self._rng.choice(paths))


# ----------------------------------------------------------------------
# datacenter scale: O(1) path synthesis on multi-pod Clos fabrics
# ----------------------------------------------------------------------
def clos_path(
    spec,
    src_host: int,
    src_nic: int,
    dst_host: int,
    dst_nic: int,
    spine: int,
    core: int,
) -> Tuple[str, ...]:
    """Synthesize a concrete link-id path between two NIC endpoints.

    Uses the multi-pod fabric's naming scheme (``src->dst`` link ids)
    directly, so no path search runs — on an 8192-GPU fabric a BFS per
    connection is exactly the kind of per-flow cost the scale work
    removes.  ``spine``/``core`` pick the ECMP choice at each tier;
    inter-pod paths cross ``core{core}`` via the chosen spine of each
    pod.  ``spec`` is a :class:`~repro.netsim.fabric.MultiPodSpec`.
    """
    from .fabric import nic_node

    src = nic_node(src_host, src_nic)
    dst = nic_node(dst_host, dst_nic)
    src_pod = spec.pod_of_host(src_host)
    dst_pod = spec.pod_of_host(dst_host)
    src_leaf = (
        f"pod{src_pod}.leaf{spec.leaf_of_host(src_host) % spec.leaves_per_pod}"
    )
    dst_leaf = (
        f"pod{dst_pod}.leaf{spec.leaf_of_host(dst_host) % spec.leaves_per_pod}"
    )
    if src_leaf == dst_leaf:
        return (f"{src}->{src_leaf}", f"{dst_leaf}->{dst}")
    if src_pod == dst_pod:
        spine_node = f"pod{src_pod}.spine{spine}"
        return (
            f"{src}->{src_leaf}",
            f"{src_leaf}->{spine_node}",
            f"{spine_node}->{dst_leaf}",
            f"{dst_leaf}->{dst}",
        )
    src_spine = f"pod{src_pod}.spine{spine}"
    dst_spine = f"pod{dst_pod}.spine{spine}"
    core_node = f"core{core}"
    return (
        f"{src}->{src_leaf}",
        f"{src_leaf}->{src_spine}",
        f"{src_spine}->{core_node}",
        f"{core_node}->{dst_spine}",
        f"{dst_spine}->{dst_leaf}",
        f"{dst_leaf}->{dst}",
    )


class ClosEcmpSelector(PathSelector):
    """ECMP on a multi-pod Clos without enumerating shortest paths.

    :class:`EcmpSelector` hashes over ``topology.shortest_paths`` — a
    BFS per (src, dst) pair that dominates connection setup on fleet
    fabrics.  This selector instead hashes the connection key onto the
    (spine, core) ECMP choice and synthesizes the path by name
    arithmetic (:func:`clos_path`), making selection O(path length)
    regardless of fabric size.  Endpoints must be NIC node ids of the
    fabric's naming scheme (``h{host}.nic{n}``).
    """

    def __init__(self, spec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed

    @staticmethod
    def _parse_nic(endpoint: str) -> Tuple[int, int]:
        host_part, nic_part = endpoint.split(".nic")
        return int(host_part[1:]), int(nic_part)

    def select(self, topology: Topology, key: ConnectionKey) -> List[str]:
        spec = self.spec
        src_host, src_nic = self._parse_nic(key[0])
        dst_host, dst_nic = self._parse_nic(key[1])
        spine = ecmp_hash(key, spec.spines_per_pod, self.seed)
        core = ecmp_hash(key, spec.core_switches, self.seed + 1)
        return list(
            clos_path(spec, src_host, src_nic, dst_host, dst_nic, spine, core)
        )
