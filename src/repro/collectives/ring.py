"""Ring collective algorithms.

Two complementary views of the same algorithm are provided, and tests
cross-check them against each other:

* the **data plane** (:class:`RingDataPlane`) executes the classic chunked
  ring schedules on real numpy buffers, moving data only between ring
  neighbours, and records how many bytes crossed each directed ring edge;
* the **traffic model** (:func:`edge_traffic`) predicts those per-edge byte
  counts in closed form; the fluid simulator turns them into flows.

The MCCS prototype ports NCCL's ring AllReduce and AllGather kernels (§5);
we implement those plus ReduceScatter, Broadcast and Reduce, which the
paper notes are straightforward extensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .chunking import chunk_bounds
from .types import Collective, ReduceOp, validate_world


@dataclass(frozen=True)
class RingSchedule:
    """A ring over ``world`` ranks.

    ``order[i]`` is the rank sitting at ring position ``i``; data moves
    from position ``i`` to position ``(i+1) % world``.
    """

    order: Tuple[int, ...]

    def __post_init__(self) -> None:
        world = len(self.order)
        validate_world(world)
        if sorted(self.order) != list(range(world)):
            raise ValueError(f"order must be a permutation of 0..{world - 1}")
        # rank -> position lookup; not a dataclass field so eq/hash/repr
        # stay defined by ``order`` alone.
        object.__setattr__(
            self, "_pos", {rank: i for i, rank in enumerate(self.order)}
        )

    @property
    def world(self) -> int:
        return len(self.order)

    def position_of(self, rank: int) -> int:
        try:
            return self._pos[rank]
        except KeyError:
            raise ValueError(f"rank {rank} is not in the ring") from None

    def edges(self) -> List[Tuple[int, int]]:
        """Directed (src_rank, dst_rank) pairs, one per ring edge."""
        n = self.world
        return [
            (self.order[i], self.order[(i + 1) % n]) for i in range(n)
        ]

    def reversed(self) -> "RingSchedule":
        """The same ring traversed in the opposite direction.

        This is the reconfiguration applied in the Figure 7 showcase:
        "MCCS enables the application to recover its collective
        performance by transparently reversing the ring".
        """
        return RingSchedule(tuple(reversed(self.order)))


def identity_ring(world: int) -> RingSchedule:
    """Ring in rank order — what NCCL builds from user-specified ranks."""
    return RingSchedule(tuple(range(world)))


# ---------------------------------------------------------------------------
# traffic model
# ---------------------------------------------------------------------------
def steps_for(kind: Collective, world: int) -> int:
    """Number of pipeline steps (latency hops) the ring algorithm takes."""
    validate_world(world)
    if kind is Collective.ALL_REDUCE:
        return 2 * (world - 1)
    return world - 1


def edge_traffic(
    kind: Collective,
    out_bytes: int,
    world: int,
    root_position: int = 0,
) -> List[float]:
    """Bytes carried by each directed ring edge.

    Index ``i`` is the edge from ring position ``i`` to ``i+1``.  Sizes
    follow the output-buffer convention (see
    :func:`repro.collectives.types.input_bytes`).
    """
    validate_world(world)
    n = world
    if kind is Collective.ALL_REDUCE:
        per_edge = 2.0 * (n - 1) / n * out_bytes
        return [per_edge] * n
    if kind is Collective.ALL_GATHER:
        per_edge = (n - 1) / n * out_bytes
        return [per_edge] * n
    if kind is Collective.REDUCE_SCATTER:
        # out_bytes is the per-rank output; total vector is n*out_bytes and
        # each edge carries (n-1)/n of it.
        per_edge = float((n - 1) * out_bytes)
        return [per_edge] * n
    if kind in (Collective.BROADCAST, Collective.REDUCE):
        # Pipelined chain of n-1 hops; the edge closing the ring is unused.
        traffic = [float(out_bytes)] * n
        if kind is Collective.BROADCAST:
            unused = (root_position - 1) % n  # edge into the root
        else:
            unused = root_position  # edge out of the root
        traffic[unused] = 0.0
        return traffic
    raise ValueError(f"unsupported collective {kind}")


# ---------------------------------------------------------------------------
# data plane
# ---------------------------------------------------------------------------
class RingDataPlane:
    """Chunk-level execution of ring collectives on numpy buffers.

    The executor is deliberately written as a sequence of neighbour-only
    transfers (no global shortcuts) so that the byte counts it records are
    a genuine check of :func:`edge_traffic`.
    """

    def __init__(self, schedule: RingSchedule) -> None:
        self.schedule = schedule
        self.world = schedule.world
        # bytes moved over edge position i -> i+1
        self.edge_bytes: List[int] = [0] * self.world

    # -- helpers ----------------------------------------------------------
    def _send(self, src_pos: int, payload: np.ndarray) -> int:
        """Account for a transfer from ``src_pos`` to the next position."""
        self.edge_bytes[src_pos] += payload.nbytes
        return (src_pos + 1) % self.world

    @staticmethod
    def _check_uniform(arrays: Sequence[np.ndarray]) -> None:
        first = arrays[0]
        for arr in arrays[1:]:
            if arr.shape != first.shape or arr.dtype != first.dtype:
                raise ValueError("all rank buffers must match in shape and dtype")

    # -- collectives -------------------------------------------------------
    def all_reduce(
        self, inputs: Sequence[np.ndarray], op: ReduceOp = ReduceOp.SUM
    ) -> List[np.ndarray]:
        """Ring AllReduce: reduce-scatter phase then allgather phase."""
        if len(inputs) != self.world:
            raise ValueError("one input per rank required")
        self._check_uniform(inputs)
        n = self.world
        order = self.schedule.order
        work = [inputs[r].copy() for r in range(n)]  # indexed by rank
        bounds = chunk_bounds(inputs[0].size, n)

        def chunk(rank: int, c: int) -> np.ndarray:
            lo, hi = bounds[c]
            return work[rank][lo:hi]

        # Reduce-scatter: after step s = n-2, position p holds the fully
        # reduced ring-chunk (p+1) mod n.
        for s in range(n - 1):
            staged: List[Tuple[int, int, np.ndarray]] = []
            for p in range(n):
                c = (p - s) % n
                payload = chunk(order[p], c).copy()
                dst = self._send(p, payload)
                staged.append((order[dst], c, payload))
            for dst_rank, c, payload in staged:
                lo, hi = bounds[c]
                work[dst_rank][lo:hi] = op.combine(work[dst_rank][lo:hi], payload)
        # AllGather: position p starts by sending its reduced chunk (p+1).
        for s in range(n - 1):
            staged = []
            for p in range(n):
                c = (p + 1 - s) % n
                payload = chunk(order[p], c).copy()
                dst = self._send(p, payload)
                staged.append((order[dst], c, payload))
            for dst_rank, c, payload in staged:
                lo, hi = bounds[c]
                work[dst_rank][lo:hi] = payload
        return work

    def all_gather(self, inputs: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Ring AllGather; output block ``r`` holds rank ``r``'s input."""
        if len(inputs) != self.world:
            raise ValueError("one input per rank required")
        self._check_uniform(inputs)
        n = self.world
        order = self.schedule.order
        block = inputs[0].size
        outputs = [
            np.empty(block * n, dtype=inputs[0].dtype) for _ in range(n)
        ]

        def store(rank: int, owner_rank: int, payload: np.ndarray) -> None:
            outputs[rank][owner_rank * block : (owner_rank + 1) * block] = payload

        for p in range(n):
            store(order[p], order[p], inputs[order[p]].ravel())
        # At step s, position p forwards the block originated by the rank
        # at position (p - s) mod n.
        for s in range(n - 1):
            staged: List[Tuple[int, int, np.ndarray]] = []
            for p in range(n):
                owner = order[(p - s) % n]
                payload = outputs[order[p]][
                    owner * block : (owner + 1) * block
                ].copy()
                dst = self._send(p, payload)
                staged.append((order[dst], owner, payload))
            for dst_rank, owner, payload in staged:
                store(dst_rank, owner, payload)
        return outputs

    def reduce_scatter(
        self, inputs: Sequence[np.ndarray], op: ReduceOp = ReduceOp.SUM
    ) -> List[np.ndarray]:
        """Ring ReduceScatter; rank ``r`` outputs reduced block ``r``.

        Inputs must have size divisible by ``world``; block ``r`` of each
        input contributes to rank ``r``'s output.
        """
        if len(inputs) != self.world:
            raise ValueError("one input per rank required")
        self._check_uniform(inputs)
        n = self.world
        order = self.schedule.order
        if inputs[0].size % n:
            raise ValueError("input size must be divisible by world")
        block = inputs[0].size // n
        work = [inputs[r].copy().ravel() for r in range(n)]

        def ring_chunk(rank: int, c: int) -> np.ndarray:
            # ring-chunk c holds the user block of the rank at position c,
            # so the final chunk each position keeps is its own rank's.
            owner = order[c]
            return work[rank][owner * block : (owner + 1) * block]

        # Shifted schedule: send ring-chunk (p - s - 1); after n-1 steps
        # position p holds its fully reduced ring-chunk p.
        for s in range(n - 1):
            staged: List[Tuple[int, int, np.ndarray]] = []
            for p in range(n):
                c = (p - s - 1) % n
                payload = ring_chunk(order[p], c).copy()
                dst = self._send(p, payload)
                staged.append((dst, c, payload))
            for dst_pos, c, payload in staged:
                target = ring_chunk(order[dst_pos], c)
                target[:] = op.combine(target, payload)
        return [work[r][r * block : (r + 1) * block].copy() for r in range(n)]

    def broadcast(self, inputs: Sequence[np.ndarray], root: int) -> List[np.ndarray]:
        """Pipelined ring broadcast from ``root``."""
        if len(inputs) != self.world:
            raise ValueError("one buffer per rank required")
        self._check_uniform(inputs)
        n = self.world
        order = self.schedule.order
        outputs = [inputs[r].copy() for r in range(n)]
        p = self.schedule.position_of(root)
        payload = inputs[root].copy()
        for _ in range(n - 1):
            dst = self._send(p, payload)
            outputs[order[dst]] = payload.copy()
            p = dst
        return outputs

    def reduce(
        self,
        inputs: Sequence[np.ndarray],
        root: int,
        op: ReduceOp = ReduceOp.SUM,
    ) -> List[np.ndarray]:
        """Pipelined ring reduce toward ``root``.

        Non-root outputs are returned unchanged (NCCL leaves recvbuff of
        non-roots unspecified; we keep the input for determinism).
        """
        if len(inputs) != self.world:
            raise ValueError("one input per rank required")
        self._check_uniform(inputs)
        n = self.world
        order = self.schedule.order
        root_pos = self.schedule.position_of(root)
        # Accumulate around the ring ending at root: start at the position
        # after root, walk forward reducing as we go.
        p = (root_pos + 1) % n
        acc = inputs[order[p]].copy()
        for _ in range(n - 1):
            dst = self._send(p, acc)
            acc = op.combine(inputs[order[dst]], acc)
            p = dst
        outputs = [inputs[r].copy() for r in range(n)]
        outputs[root] = acc
        return outputs

    def run(
        self,
        kind: Collective,
        inputs: Sequence[np.ndarray],
        *,
        op: ReduceOp = ReduceOp.SUM,
        root: int = 0,
    ) -> List[np.ndarray]:
        """Dispatch by collective kind."""
        if kind is Collective.ALL_REDUCE:
            return self.all_reduce(inputs, op)
        if kind is Collective.ALL_GATHER:
            return self.all_gather(inputs)
        if kind is Collective.REDUCE_SCATTER:
            return self.reduce_scatter(inputs, op)
        if kind is Collective.BROADCAST:
            return self.broadcast(inputs, root)
        if kind is Collective.REDUCE:
            return self.reduce(inputs, root, op)
        raise ValueError(f"unsupported collective {kind}")
