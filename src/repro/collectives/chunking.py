"""Chunk partitioning helpers shared by the ring algorithms.

Ring algorithms divide each buffer into ``world`` contiguous chunks; these
helpers compute the (possibly uneven) chunk boundaries and the standard
ring step indexing ``chunk = (rank - step) mod world``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple


@lru_cache(maxsize=4096)
def _chunk_bounds(total: int, parts: int) -> Tuple[Tuple[int, int], ...]:
    if parts <= 0:
        raise ValueError("parts must be positive")
    if total < 0:
        raise ValueError("total must be non-negative")
    base, extra = divmod(total, parts)
    bounds = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        bounds.append((start, start + size))
        start += size
    return tuple(bounds)


def chunk_bounds(total: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``total`` elements into ``parts`` contiguous (start, end) runs.

    Earlier chunks absorb the remainder, matching the convention of
    dividing a buffer as evenly as possible:

    >>> chunk_bounds(10, 4)
    [(0, 3), (3, 6), (6, 8), (8, 10)]
    """
    return list(_chunk_bounds(total, parts))


def chunk_for_step(rank_pos: int, step: int, world: int) -> int:
    """Index of the chunk rank at ring position ``rank_pos`` handles at
    reduce-scatter step ``step`` (0-based), following the classic
    ring-AllReduce schedule."""
    return (rank_pos - step) % world


def ring_neighbors(position: int, world: int) -> Tuple[int, int]:
    """(previous, next) ring positions of ``position``."""
    return (position - 1) % world, (position + 1) % world
