"""Compiled flow-program cache for repeated collectives.

A *flow program* is the fully-resolved, reusable part of a collective
launch: the list of (src_rank, dst_rank, channel, nbytes) transfers an
algorithm derives from (collective kind, sizes, schedule, channels,
route-ids).  Traffic-generator loops issue the same collective on the same
strategy thousands of times; recompiling the program each launch is pure
waste, so the launch paths (``ServiceCommunicator`` per-rank injection and
``FlowTransport.launch_ring``) consult a :class:`FlowProgramCache` and only
fall back to the algorithm when the key is new.

Keys must capture *everything* the compiled program depends on — the
callers build them from frozen/hashable strategy fields (including the
route-id assignments, whose changes must recompile because they version
the datapath even though transfer byte counts are route-independent).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Hashable, Tuple, TypeVar

T = TypeVar("T")

#: One rank-to-rank transfer of a compiled program.
ProgramTransfer = Tuple[int, int, int, float]  # (src_rank, dst_rank, channel, nbytes)


class FlowProgramCache:
    """A small LRU cache mapping program keys to compiled programs.

    Values are treated as immutable by convention (callers store tuples);
    the same object is handed back on every hit.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, compile: Callable[[], T]) -> T:
        """Return the cached program for ``key``, compiling on first use."""
        entry = self._entries.get(key)
        if entry is not None or key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry  # type: ignore[return-value]
        value = compile()
        self._entries[key] = value
        self.misses += 1
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
        return value

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        return {
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
