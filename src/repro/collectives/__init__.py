"""Collective algorithms: ring, tree and butterfly schedules, data planes,
costs.

The data planes move real numpy bytes between ring/tree/butterfly peers
(so correctness is testable bit-for-bit); the traffic models predict
per-edge byte counts that the fluid network simulator turns into
completion times.
"""

from .bandwidth import algorithm_bandwidth, bus_bandwidth, busbw_factor
from .chunking import chunk_bounds, chunk_for_step, ring_neighbors
from .cost_model import (
    DEFAULT_DATAPATH_LATENCY,
    LatencyModel,
    MCCS_LATENCY,
    NCCL_LATENCY,
    effective_bandwidth,
    mccs_latency,
    ring_allreduce_cost,
    select_ring_or_tree,
    tree_allreduce_cost,
)
from .halving_doubling import (
    HalvingDoublingDataPlane,
    halving_doubling_traffic,
    hd_steps,
    is_power_of_two,
)
from .ring import RingDataPlane, RingSchedule, edge_traffic, identity_ring, steps_for
from .tree import (
    DoubleTreeDataPlane,
    TreeDataPlane,
    TreeSchedule,
    binary_tree,
    double_binary_trees,
    double_tree_allreduce_traffic,
    tree_allreduce_traffic,
    tree_steps,
)
from .types import Collective, ReduceOp, input_bytes, reduce_many, validate_world

__all__ = [
    "Collective",
    "DEFAULT_DATAPATH_LATENCY",
    "DoubleTreeDataPlane",
    "HalvingDoublingDataPlane",
    "LatencyModel",
    "MCCS_LATENCY",
    "NCCL_LATENCY",
    "ReduceOp",
    "RingDataPlane",
    "RingSchedule",
    "TreeDataPlane",
    "TreeSchedule",
    "algorithm_bandwidth",
    "binary_tree",
    "bus_bandwidth",
    "busbw_factor",
    "chunk_bounds",
    "chunk_for_step",
    "double_binary_trees",
    "double_tree_allreduce_traffic",
    "edge_traffic",
    "effective_bandwidth",
    "halving_doubling_traffic",
    "hd_steps",
    "identity_ring",
    "input_bytes",
    "is_power_of_two",
    "mccs_latency",
    "reduce_many",
    "ring_allreduce_cost",
    "ring_neighbors",
    "select_ring_or_tree",
    "steps_for",
    "tree_allreduce_traffic",
    "tree_steps",
    "validate_world",
]
