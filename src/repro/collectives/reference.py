"""Single-node numpy reference semantics for every collective kind.

This is the oracle the shared algorithm suite
(``tests/collectives/test_algorithm_reference.py``) holds every
registered algorithm — built-in or synthesized — against: whatever
schedule an algorithm runs, its ``run_data`` must produce exactly these
outputs.  Conventions match the registry data planes
(:class:`~repro.collectives.ring.RingDataPlane` et al.):

* ``ALL_REDUCE`` — every rank gets the elementwise reduction;
* ``ALL_GATHER`` — every rank gets the concatenation, block ``r`` being
  rank ``r``'s input;
* ``REDUCE_SCATTER`` — rank ``r`` gets reduced block ``r`` of the input
  vector (inputs must be divisible into ``world`` equal blocks);
* ``BROADCAST`` — every rank gets the root's buffer;
* ``REDUCE`` — the root gets the reduction; non-root outputs are the
  inputs unchanged (NCCL leaves them unspecified, the data planes keep
  the input for determinism).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .types import Collective, ReduceOp, reduce_many


def reference_outputs(
    kind: Collective,
    inputs: Sequence[np.ndarray],
    *,
    op: ReduceOp = ReduceOp.SUM,
    root: int = 0,
) -> List[np.ndarray]:
    """Per-rank outputs of ``kind`` computed directly in numpy."""
    world = len(inputs)
    if world < 1:
        raise ValueError("need at least one rank")
    if kind is Collective.ALL_REDUCE:
        reduced = reduce_many(op, list(inputs))
        return [reduced.copy() for _ in range(world)]
    if kind is Collective.ALL_GATHER:
        gathered = np.concatenate([a.ravel() for a in inputs])
        return [gathered.copy() for _ in range(world)]
    if kind is Collective.REDUCE_SCATTER:
        flat = [a.ravel() for a in inputs]
        size = flat[0].size
        if size % world:
            raise ValueError(
                f"reduce-scatter input size {size} not divisible by {world}"
            )
        block = size // world
        reduced = reduce_many(op, flat)
        return [
            reduced[r * block : (r + 1) * block].copy() for r in range(world)
        ]
    if kind is Collective.BROADCAST:
        return [inputs[root].copy() for _ in range(world)]
    if kind is Collective.REDUCE:
        outputs = [a.copy() for a in inputs]
        outputs[root] = reduce_many(op, list(inputs))
        return outputs
    raise ValueError(f"unsupported collective {kind}")
