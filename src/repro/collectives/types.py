"""Common collective-communication vocabulary.

Defines the collective kinds and reduction operators supported by the
reproduction, mirroring the NCCL API surface the paper targets (§2.1 lists
broadcast, reduce, allgather, reducescatter and allreduce as the common
operators; the prototype ports NCCL's ring AllReduce and AllGather kernels
and notes other operations are straightforward).
"""

from __future__ import annotations

import enum
import numpy as np


class Collective(enum.Enum):
    """Collective operation kinds."""

    ALL_REDUCE = "all_reduce"
    ALL_GATHER = "all_gather"
    REDUCE_SCATTER = "reduce_scatter"
    BROADCAST = "broadcast"
    REDUCE = "reduce"

    def __str__(self) -> str:
        return self.value


class ReduceOp(enum.Enum):
    """Reduction operators (ncclRedOp_t analogue)."""

    SUM = "sum"
    PROD = "prod"
    MAX = "max"
    MIN = "min"

    def combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Apply the operator elementwise."""
        fn = _NUMPY_OPS[self]
        return fn(a, b)


_NUMPY_OPS: dict = {
    ReduceOp.SUM: np.add,
    ReduceOp.PROD: np.multiply,
    ReduceOp.MAX: np.maximum,
    ReduceOp.MIN: np.minimum,
}


def reduce_many(op: ReduceOp, arrays: list) -> np.ndarray:
    """Fold ``op`` over a list of equally-shaped arrays."""
    if not arrays:
        raise ValueError("need at least one array")
    acc = arrays[0].copy()
    for arr in arrays[1:]:
        acc = op.combine(acc, arr)
    return acc


def input_bytes(kind: Collective, out_bytes: int, world: int) -> int:
    """Per-rank input buffer size given the *output* buffer size.

    The paper measures data size "by output buffers" (§6.2), e.g. a 512 KB
    AllGather on 4 GPUs corresponds to a 128 KB input per GPU.
    """
    if world <= 0:
        raise ValueError("world must be positive")
    if kind is Collective.ALL_GATHER:
        return out_bytes // world
    if kind is Collective.REDUCE_SCATTER:
        return out_bytes * world
    return out_bytes


def validate_world(world: int) -> None:
    if world < 2:
        raise ValueError(f"collectives need at least 2 ranks, got {world}")
