"""Tree collective algorithms (NCCL-style double binary trees).

The paper's prototype "focuses on ports of NCCL's ring AllReduce and
AllGather kernels; however, it is straightforward to implement ... other
algorithms (e.g., tree algorithms)" (§5).  We implement that extension: a
binary-tree reduce+broadcast AllReduce and the double-binary-tree variant
NCCL uses at scale, with both a data plane and a traffic-matrix view, so
the MCCS proxy engine can switch algorithm families at reconfiguration
time.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .types import ReduceOp, validate_world


@dataclass(frozen=True)
class TreeSchedule:
    """A rooted tree over ranks: ``parent[r]`` is rank r's parent (root: -1)."""

    parent: Tuple[int, ...]

    def __post_init__(self) -> None:
        world = len(self.parent)
        validate_world(world)
        roots = [r for r, p in enumerate(self.parent) if p == -1]
        if len(roots) != 1:
            raise ValueError("tree must have exactly one root")
        # reject cycles / out-of-range parents
        for r, p in enumerate(self.parent):
            if p == r or (p != -1 and not 0 <= p < world):
                raise ValueError(f"invalid parent {p} for rank {r}")
        for r in range(world):
            seen = set()
            node = r
            while node != -1:
                if node in seen:
                    raise ValueError("parent pointers contain a cycle")
                seen.add(node)
                node = self.parent[node]

    @property
    def world(self) -> int:
        return len(self.parent)

    @property
    def root(self) -> int:
        return self.parent.index(-1)

    def children(self, rank: int) -> List[int]:
        return [r for r, p in enumerate(self.parent) if p == rank]

    def edges(self) -> List[Tuple[int, int]]:
        """Directed (child, parent) pairs."""
        return [(r, p) for r, p in enumerate(self.parent) if p != -1]

    def depth(self) -> int:
        def d(rank: int) -> int:
            p = self.parent[rank]
            return 0 if p == -1 else 1 + d(p)

        return max(d(r) for r in range(self.world))


def binary_tree(order: Sequence[int]) -> TreeSchedule:
    """Complete binary tree over ``order`` (order[0] is the root).

    Position p's parent is position (p-1)//2, the classic array layout.
    """
    order = list(order)
    world = len(order)
    validate_world(world)
    parent = [0] * world
    for pos, rank in enumerate(order):
        parent[rank] = -1 if pos == 0 else order[(pos - 1) // 2]
    return TreeSchedule(tuple(parent))


@lru_cache(maxsize=512)
def _double_binary_trees(order: Tuple[int, ...]) -> Tuple[TreeSchedule, TreeSchedule]:
    shifted = order[1:] + order[:1]
    return binary_tree(order), binary_tree(shifted)


def double_binary_trees(order: Sequence[int]) -> Tuple[TreeSchedule, TreeSchedule]:
    """Two complementary trees in the spirit of NCCL's double binary tree.

    The second tree is built over the rotated order, so interior nodes of
    one tree tend to be leaves of the other, balancing per-rank load when
    each tree carries half the data.  Results are cached per ring order —
    tree validation walks every root-to-leaf path, which is too costly to
    repeat on every collective launch.
    """
    return _double_binary_trees(tuple(order))


# ---------------------------------------------------------------------------
# traffic model
# ---------------------------------------------------------------------------
def tree_allreduce_traffic(
    tree: TreeSchedule, out_bytes: int
) -> Dict[Tuple[int, int], float]:
    """Bytes per directed (src, dst) rank pair for reduce+broadcast.

    Every tree edge carries the full vector once up (reduce) and once down
    (broadcast).
    """
    traffic: Dict[Tuple[int, int], float] = {}
    for child, parent in tree.edges():
        traffic[(child, parent)] = traffic.get((child, parent), 0.0) + out_bytes
        traffic[(parent, child)] = traffic.get((parent, child), 0.0) + out_bytes
    return traffic


def double_tree_allreduce_traffic(
    trees: Tuple[TreeSchedule, TreeSchedule], out_bytes: int
) -> Dict[Tuple[int, int], float]:
    """Each of the two trees carries half of the vector."""
    traffic: Dict[Tuple[int, int], float] = {}
    for tree in trees:
        for (pair, nbytes) in tree_allreduce_traffic(tree, out_bytes / 2).items():
            traffic[pair] = traffic.get(pair, 0.0) + nbytes
    return traffic


def tree_steps(tree: TreeSchedule) -> int:
    """Latency hops: up the tree then down."""
    return 2 * tree.depth()


# ---------------------------------------------------------------------------
# data plane
# ---------------------------------------------------------------------------
class TreeDataPlane:
    """Executes reduce+broadcast AllReduce on numpy buffers."""

    def __init__(self, tree: TreeSchedule) -> None:
        self.tree = tree
        self.edge_bytes: Dict[Tuple[int, int], int] = {}

    def _send(self, src: int, dst: int, payload: np.ndarray) -> None:
        key = (src, dst)
        self.edge_bytes[key] = self.edge_bytes.get(key, 0) + payload.nbytes

    def all_reduce(
        self, inputs: Sequence[np.ndarray], op: ReduceOp = ReduceOp.SUM
    ) -> List[np.ndarray]:
        if len(inputs) != self.tree.world:
            raise ValueError("one input per rank required")
        partial: Dict[int, np.ndarray] = {}

        def reduce_up(rank: int) -> np.ndarray:
            acc = inputs[rank].copy()
            for child in self.tree.children(rank):
                child_val = reduce_up(child)
                self._send(child, rank, child_val)
                acc = op.combine(acc, child_val)
            partial[rank] = acc
            return acc

        total = reduce_up(self.tree.root)
        outputs: List[Optional[np.ndarray]] = [None] * self.tree.world

        def broadcast_down(rank: int, value: np.ndarray) -> None:
            outputs[rank] = value.copy()
            for child in self.tree.children(rank):
                self._send(rank, child, value)
                broadcast_down(child, value)

        broadcast_down(self.tree.root, total)
        return [out for out in outputs if out is not None]


class DoubleTreeDataPlane:
    """AllReduce over two complementary trees, each carrying half."""

    def __init__(self, trees: Tuple[TreeSchedule, TreeSchedule]) -> None:
        self.trees = trees
        self.edge_bytes: Dict[Tuple[int, int], int] = {}

    def all_reduce(
        self, inputs: Sequence[np.ndarray], op: ReduceOp = ReduceOp.SUM
    ) -> List[np.ndarray]:
        world = self.trees[0].world
        if self.trees[1].world != world:
            raise ValueError("trees must cover the same world")
        if len(inputs) != world:
            raise ValueError("one input per rank required")
        half = inputs[0].size // 2
        halves = ([x.ravel()[:half] for x in inputs], [x.ravel()[half:] for x in inputs])
        outputs = [np.empty_like(inputs[0]).ravel() for _ in range(world)]
        for tree, part, sl in zip(
            self.trees, halves, (slice(0, half), slice(half, None))
        ):
            plane = TreeDataPlane(tree)
            outs = plane.all_reduce(part, op)
            for (pair, nbytes) in plane.edge_bytes.items():
                self.edge_bytes[pair] = self.edge_bytes.get(pair, 0) + nbytes
            for r in range(world):
                outputs[r][sl] = outs[r]
        return [o.reshape(inputs[0].shape) for o in outputs]
