"""Alpha-beta cost models and static algorithm selection.

Traditional libraries pick among their built-in algorithms "based on a set
of static factors like data length and the number of participants" (§2.1,
citing OpenMPI's selection logic).  This module reproduces that style of
decision: a latency (alpha) + bandwidth (beta) model per algorithm and a
selection function that picks the cheaper one for the given size/world.

The same :class:`LatencyModel` supplies the fixed per-collective overheads
used by the timing plane: libraries pay a launch/rendezvous cost per step,
and MCCS additionally pays the shim->service datapath hop, which the paper
measures at 50-80 us (§6.2) and which explains why MCCS(-FA) loses to
NCCL(OR) below 8 MB in Figure 6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .types import validate_world


@dataclass(frozen=True)
class LatencyModel:
    """Fixed overheads of issuing one collective.

    Attributes:
        base: Per-collective launch overhead in seconds (kernel launch,
            rendezvous with peers).
        per_step: Extra latency per pipeline hop, in seconds.
        datapath: Extra one-way datapath latency added by service
            indirection; 0 for an in-process library like NCCL, 50-80 us
            for the MCCS shim->service->engine chain.
    """

    base: float = 12e-6
    per_step: float = 5e-6
    datapath: float = 0.0

    def collective_latency(self, steps: int) -> float:
        """Total fixed time for a collective with ``steps`` pipeline hops."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        return self.base + self.per_step * steps + self.datapath


#: The library-side model (NCCL in-process).
NCCL_LATENCY = LatencyModel(base=12e-6, per_step=5e-6, datapath=0.0)

#: The middle of the paper's reported 50-80 us shim->service range (§6.2).
DEFAULT_DATAPATH_LATENCY = 65e-6

#: The MCCS model: same engine costs plus the measured IPC hop.
MCCS_LATENCY = LatencyModel(
    base=12e-6, per_step=5e-6, datapath=DEFAULT_DATAPATH_LATENCY
)


def mccs_latency(datapath: float = DEFAULT_DATAPATH_LATENCY) -> LatencyModel:
    """The MCCS latency model with a configurable shim->service hop.

    Deployments and experiment setups use this instead of hard-coding the
    65 us midpoint, so sensitivity studies can sweep the §6.2 range (or
    model a faster IPC path) without touching call sites.
    """
    if datapath < 0:
        raise ValueError("datapath latency must be non-negative")
    return LatencyModel(
        base=MCCS_LATENCY.base, per_step=MCCS_LATENCY.per_step, datapath=datapath
    )


def ring_allreduce_cost(
    size: float, world: int, alpha: float, beta: float
) -> float:
    """Alpha-beta cost of ring AllReduce: 2(n-1) steps, 2(n-1)/n * S bytes."""
    validate_world(world)
    return 2 * (world - 1) * alpha + 2 * (world - 1) / world * size * beta


def tree_allreduce_cost(
    size: float, world: int, alpha: float, beta: float
) -> float:
    """Alpha-beta cost of reduce+broadcast over a binary tree.

    2*ceil(log2 n) latency hops.  An interior node receives the full
    vector from each of its two children (and later sends it back down),
    so its NIC moves ~4S bytes per direction pair — twice the ring's
    2(n-1)/n*S ~= 2S.  That is the classic trade: trees win the latency
    term, rings win the bandwidth term.
    """
    validate_world(world)
    depth = max(1, math.ceil(math.log2(world)))
    return 2 * depth * alpha + 4.0 * size * beta


def select_ring_or_tree(
    size: float,
    world: int,
    *,
    alpha: float = 15e-6,
    link_bandwidth: float = 12.5e9,
) -> str:
    """Static ring-vs-tree choice in the style of classic libraries.

    Returns ``"ring"`` or ``"tree"``.  Small messages on large worlds are
    latency-bound and prefer the logarithmic tree; large messages are
    bandwidth-bound and prefer the ring.
    """
    beta = 1.0 / link_bandwidth
    ring = ring_allreduce_cost(size, world, alpha, beta)
    tree = tree_allreduce_cost(size, world, alpha, beta)
    return "ring" if ring <= tree else "tree"


def effective_bandwidth(
    size: float, steps: int, peak: float, model: LatencyModel
) -> float:
    """Achievable bandwidth once fixed overheads are accounted for.

    Used by tests to sanity-check the crossover behaviour: bandwidth
    approaches ``peak`` as ``size`` grows and collapses for tiny sizes.
    """
    transfer = size / peak
    return size / (transfer + model.collective_latency(steps))
