"""Algorithm- and bus-bandwidth accounting.

The paper reports *algorithm bandwidth* for the single-application study
(Figure 6) and *bus bandwidth* for the multi-application study (Figure 8),
both "as defined by nccl-tests" [25]:

* ``algbw = output_size / time``
* ``busbw = algbw * factor`` where the factor normalizes out the algorithm
  and the participant count so that the number reflects the hardware
  bottleneck bandwidth: ``2*(n-1)/n`` for AllReduce, ``(n-1)/n`` for
  AllGather and ReduceScatter, and 1 for Broadcast/Reduce.
"""

from __future__ import annotations

from .types import Collective, validate_world


def busbw_factor(kind: Collective, world: int) -> float:
    """nccl-tests bus-bandwidth correction factor."""
    validate_world(world)
    n = world
    if kind is Collective.ALL_REDUCE:
        return 2.0 * (n - 1) / n
    if kind in (Collective.ALL_GATHER, Collective.REDUCE_SCATTER):
        return (n - 1) / n
    if kind in (Collective.BROADCAST, Collective.REDUCE):
        return 1.0
    raise ValueError(f"unsupported collective {kind}")


def algorithm_bandwidth(out_bytes: float, seconds: float) -> float:
    """Algorithm bandwidth in bytes/s (divide by 1e9 for GB/s)."""
    if seconds <= 0:
        raise ValueError("duration must be positive")
    return out_bytes / seconds


def bus_bandwidth(
    kind: Collective, out_bytes: float, seconds: float, world: int
) -> float:
    """Bus bandwidth in bytes/s."""
    return algorithm_bandwidth(out_bytes, seconds) * busbw_factor(kind, world)
