"""Recursive halving-doubling AllReduce.

The classic butterfly AllReduce (Rabenseifner): a recursive-halving
ReduceScatter followed by a recursive-doubling AllGather.  Each phase runs
``log2(n)`` exchange steps, so the whole collective takes ``2*log2(n)``
latency hops against the ring's ``2*(n-1)`` — the canonical small-message
winner — while each rank still moves the bandwidth-optimal
``2*S*(n-1)/n`` bytes in total.  The trade is *where* those bytes go: the
first halving step pairs ranks ``n/2`` apart, so half the vector crosses
the network bisection, which is exactly what an oversubscribed spine
punishes at large sizes.  That tension (latency-optimal vs
bisection-heavy) is what makes the algorithm a useful arm for the
:mod:`repro.autotune` planner.

Like :mod:`repro.collectives.tree`, both a numpy **data plane** and a
closed-form **traffic model** are provided and cross-checked by tests.
The schedule requires a power-of-two world; the registry-level algorithm
(:class:`repro.core.algorithms.HalvingDoublingAlgorithm`) falls back to
rings otherwise.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from .chunking import chunk_bounds
from .types import ReduceOp, validate_world


def is_power_of_two(world: int) -> bool:
    return world >= 1 and (world & (world - 1)) == 0


def hd_steps(world: int) -> int:
    """Latency hops of halving-doubling AllReduce: 2*log2(n)."""
    validate_world(world)
    if not is_power_of_two(world):
        raise ValueError(f"halving-doubling needs a power-of-two world, got {world}")
    return 2 * (world.bit_length() - 1)


def halving_doubling_traffic(
    order: Sequence[int], out_bytes: float
) -> Dict[Tuple[int, int], float]:
    """Bytes per directed (src, dst) rank pair for one AllReduce.

    At the step with partner mask ``m`` each rank exchanges ``S*m/n``
    bytes with the rank whose *position* differs by ``m``; every pair
    appears once in the halving phase and once in the doubling phase.
    """
    order = list(order)
    n = len(order)
    validate_world(n)
    if not is_power_of_two(n):
        raise ValueError(f"halving-doubling needs a power-of-two world, got {n}")
    traffic: Dict[Tuple[int, int], float] = {}
    mask = n >> 1
    while mask:
        nbytes = 2.0 * out_bytes * mask / n  # once per phase
        for v in range(n):
            pair = (order[v], order[v ^ mask])
            traffic[pair] = traffic.get(pair, 0.0) + nbytes
        mask >>= 1
    return traffic


class HalvingDoublingDataPlane:
    """Executes butterfly AllReduce on numpy buffers.

    ``order`` assigns ranks to butterfly *positions* (virtual ranks): the
    provider can therefore keep exchanges with small masks intra-host by
    ordering co-located ranks into the same low-bit groups, just as a
    locality ring keeps neighbouring ranks co-located.
    """

    def __init__(self, order: Sequence[int]) -> None:
        order = tuple(order)
        world = len(order)
        validate_world(world)
        if not is_power_of_two(world):
            raise ValueError(
                f"halving-doubling needs a power-of-two world, got {world}"
            )
        if sorted(order) != list(range(world)):
            raise ValueError(f"order must be a permutation of 0..{world - 1}")
        self.order = order
        self.world = world
        # bytes moved per directed (src_rank, dst_rank) pair
        self.edge_bytes: Dict[Tuple[int, int], int] = {}

    def _send(self, src_rank: int, dst_rank: int, payload: np.ndarray) -> None:
        key = (src_rank, dst_rank)
        self.edge_bytes[key] = self.edge_bytes.get(key, 0) + payload.nbytes

    def all_reduce(
        self, inputs: Sequence[np.ndarray], op: ReduceOp = ReduceOp.SUM
    ) -> List[np.ndarray]:
        n = self.world
        if len(inputs) != n:
            raise ValueError("one input per rank required")
        first = inputs[0]
        for arr in inputs[1:]:
            if arr.shape != first.shape or arr.dtype != first.dtype:
                raise ValueError("all rank buffers must match in shape and dtype")
        order = self.order
        shape = first.shape
        bounds = chunk_bounds(first.size, n)

        def eslice(block_lo: int, block_hi: int) -> slice:
            if block_lo >= block_hi:
                return slice(0, 0)
            return slice(bounds[block_lo][0], bounds[block_hi - 1][1])

        work = [inputs[r].copy().ravel() for r in range(n)]
        # block-range (in chunk units) currently being reduced by each
        # virtual rank; halving narrows it to one block, doubling re-grows
        # it to the full vector.
        ranges: List[Tuple[int, int]] = [(0, n)] * n

        # -- ReduceScatter: recursive halving --------------------------------
        mask = n >> 1
        while mask:
            staged: List[Tuple[int, Tuple[int, int], np.ndarray]] = []
            next_ranges = list(ranges)
            for v in range(n):
                p = v ^ mask
                lo, hi = ranges[v]
                mid = (lo + hi) // 2
                if v & mask:
                    keep, send = (mid, hi), (lo, mid)
                else:
                    keep, send = (lo, mid), (mid, hi)
                payload = work[order[v]][eslice(*send)].copy()
                self._send(order[v], order[p], payload)
                staged.append((order[p], send, payload))
                next_ranges[v] = keep
            for dst_rank, (blo, bhi), payload in staged:
                target = work[dst_rank][eslice(blo, bhi)]
                target[:] = op.combine(target, payload)
            ranges = next_ranges
            mask >>= 1

        # -- AllGather: recursive doubling -----------------------------------
        mask = 1
        while mask < n:
            staged = []
            next_ranges = list(ranges)
            for v in range(n):
                p = v ^ mask
                lo, hi = ranges[v]
                payload = work[order[v]][eslice(lo, hi)].copy()
                self._send(order[v], order[p], payload)
                staged.append((order[p], (lo, hi), payload))
                plo, phi = ranges[p]
                next_ranges[v] = (min(lo, plo), max(hi, phi))
            for dst_rank, (blo, bhi), payload in staged:
                work[dst_rank][eslice(blo, bhi)] = payload
            ranges = next_ranges
            mask <<= 1

        return [w.reshape(shape) for w in work]
