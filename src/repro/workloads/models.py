"""Model catalog for the training workloads of §6.1 and §6.5.

The paper profiles three models:

* **VGG-19** with data-parallel training (PyTorch + DeepSpeed) — tenant A
  in the QoS experiments;
* a **2.7B-parameter GPT** with tensor-parallel training (Megatron-LM) —
  tenants B and C;
* **ResNet-50** ("model size 100 MB") for the §6.5 large-scale simulation,
  following NetHint's distributed data-parallel setup.

We cannot rerun the authors' profiling harness, so the catalog records the
published parameter counts and standard architecture facts, from which the
trace generators derive communication sizes; compute times are free
parameters calibrated to give communication-heavy iterations like those in
Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class ModelProfile:
    """Coarse profile of one training workload.

    Attributes:
        name: Model name.
        param_bytes: Total gradient bytes exchanged per data-parallel
            iteration (fp32 gradients).
        bucket_bytes: Gradient-bucket granularity for overlapped
            AllReduce (PyTorch DDP style).
        compute_per_iteration: Exposed compute seconds per iteration on
            the reference GPU (calibration parameter).
        input_bytes_per_iteration: Host->device bytes staged per
            iteration (the minibatch), driving the memcpy share of the
            Figure 2 breakdown.
        parallelism: ``"data"`` or ``"tensor"``.
        tp_allreduce_bytes: For tensor parallelism, activation AllReduce
            size per synchronization point.
        tp_syncs_per_iteration: Number of activation AllReduce points per
            iteration (2 per transformer layer in forward + 2 in backward,
            Megatron style).
    """

    name: str
    param_bytes: int
    bucket_bytes: int
    compute_per_iteration: float
    input_bytes_per_iteration: int = 0
    parallelism: str = "data"
    tp_allreduce_bytes: int = 0
    tp_syncs_per_iteration: int = 0


def vgg19() -> ModelProfile:
    """VGG-19: 143.7M parameters -> ~575 MB of fp32 gradients.

    Data-parallel; DDP-style 25 MB buckets overlapped with backward
    compute.
    """
    params = 143_667_240
    return ModelProfile(
        name="vgg19",
        param_bytes=params * 4,
        bucket_bytes=25 * 1024 * 1024,
        compute_per_iteration=0.180,
        # batch of 256 x 3 x 224 x 224 fp32 images
        input_bytes_per_iteration=256 * 3 * 224 * 224 * 4,
        parallelism="data",
    )


def gpt_2_7b(
    *,
    layers: int = 32,
    hidden: int = 2560,
    micro_batch_tokens: int = 2048,
) -> ModelProfile:
    """The 2.7B GPT trained with tensor parallelism (Megatron-LM).

    Each transformer layer performs two activation AllReduces in the
    forward pass and two in the backward pass across the tensor-parallel
    group; each carries ``micro_batch_tokens * hidden`` fp16 activations.
    """
    activation_bytes = micro_batch_tokens * hidden * 2  # fp16
    return ModelProfile(
        name="gpt-2.7b",
        param_bytes=2_700_000_000 * 2,  # fp16 weights (not all-reduced in TP)
        bucket_bytes=0,
        compute_per_iteration=0.040,
        parallelism="tensor",
        tp_allreduce_bytes=activation_bytes,
        tp_syncs_per_iteration=4 * layers,
    )


def resnet50() -> ModelProfile:
    """ResNet-50 at the paper's quoted "model size 100MB"."""
    return ModelProfile(
        name="resnet50",
        param_bytes=100 * 1024 * 1024,
        bucket_bytes=25 * 1024 * 1024,
        compute_per_iteration=0.120,
        parallelism="data",
    )


def gradient_buckets(profile: ModelProfile) -> List[int]:
    """Split a DP model's gradients into DDP-style buckets (bytes)."""
    if profile.parallelism != "data":
        raise ValueError(f"{profile.name} is not data parallel")
    if profile.bucket_bytes <= 0:
        return [profile.param_bytes]
    buckets = []
    remaining = profile.param_bytes
    while remaining > 0:
        size = min(profile.bucket_bytes, remaining)
        buckets.append(size)
        remaining -= size
    return buckets
