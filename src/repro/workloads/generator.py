"""Traffic generator replaying training traces (§6.1).

"In addition to AllReduce and AllGather benchmarks, we evaluate training
workloads using a traffic generator with profile traces.  The traffic
generator is implemented with Rust using the MCCS library."  Ours replays
a :class:`~repro.workloads.traces.TrainingTrace` through either library —
NCCL (:class:`NcclIssuer`) or MCCS (:class:`MccsIssuer`) — pacing itself
exactly like a training loop: compute on the application stream, then a
collective, then the next step once the collective completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Protocol

from ..baselines.nccl import NcclCommunicator
from ..cluster.gpu import Stream
from ..collectives.types import Collective
from ..core.shim import MccsClient, MccsCommunicator
from ..netsim.engine import FlowSimulator
from .traces import TrainingTrace


class CollectiveIssuer(Protocol):
    """Either library, seen through the one call the generator needs."""

    def issue(
        self,
        kind: Collective,
        out_bytes: int,
        stream: Stream,
        on_complete: Callable[[float], None],
    ) -> None:  # pragma: no cover - protocol
        ...


class NcclIssuer:
    """Replay through the NCCL-like baseline library."""

    def __init__(self, comm: NcclCommunicator) -> None:
        self.comm = comm

    def issue(
        self,
        kind: Collective,
        out_bytes: int,
        stream: Stream,
        on_complete: Callable[[float], None],
    ) -> None:
        method = {
            Collective.ALL_REDUCE: self.comm.all_reduce,
            Collective.ALL_GATHER: self.comm.all_gather,
            Collective.REDUCE_SCATTER: self.comm.reduce_scatter,
        }[kind]
        method(out_bytes, stream=stream, on_complete=lambda op, now: on_complete(now))


class MccsIssuer:
    """Replay through the MCCS shim."""

    def __init__(self, client: MccsClient, comm: MccsCommunicator) -> None:
        self.client = client
        self.comm = comm

    def issue(
        self,
        kind: Collective,
        out_bytes: int,
        stream: Stream,
        on_complete: Callable[[float], None],
    ) -> None:
        method = {
            Collective.ALL_REDUCE: self.client.all_reduce,
            Collective.ALL_GATHER: self.client.all_gather,
            Collective.REDUCE_SCATTER: self.client.reduce_scatter,
        }[kind]
        method(
            self.comm,
            out_bytes,
            stream=stream,
            on_complete=lambda inst, now: on_complete(now),
        )


@dataclass
class GeneratorStats:
    """Progress of one replayed job."""

    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    iteration_times: List[float] = field(default_factory=list)
    collectives_issued: int = 0
    compute_seconds: float = 0.0
    memcpy_seconds: float = 0.0

    @property
    def finished(self) -> bool:
        return self.finish_time is not None

    def jct(self) -> float:
        """Job completion time."""
        if self.start_time is None or self.finish_time is None:
            raise ValueError("job has not finished")
        return self.finish_time - self.start_time

    def iteration_durations(self) -> List[float]:
        """Per-iteration wall times (first iteration measured from start)."""
        if self.start_time is None:
            return []
        times = [self.start_time] + self.iteration_times
        return [b - a for a, b in zip(times, times[1:])]

    def throughput_timeline(self) -> List[tuple]:
        """(time, iterations/s) samples, one per completed iteration."""
        out = []
        for t, dt in zip(self.iteration_times, self.iteration_durations()):
            if dt > 0:
                out.append((t, 1.0 / dt))
        return out


class TrafficGenerator:
    """Replays one trace on one communicator."""

    def __init__(
        self,
        sim: FlowSimulator,
        issuer: CollectiveIssuer,
        trace: TrainingTrace,
        stream: Stream,
        *,
        name: Optional[str] = None,
        pcie_gBps: float = 12.0,
    ) -> None:
        self.sim = sim
        self.issuer = issuer
        self.trace = trace
        self.stream = stream
        self.name = name or trace.name
        self.pcie_rate = pcie_gBps * 1e9
        self.stats = GeneratorStats()
        self._step = 0
        self._on_finish: Optional[Callable[["TrafficGenerator", float], None]] = None

    def start(
        self,
        at: Optional[float] = None,
        on_finish: Optional[Callable[["TrafficGenerator", float], None]] = None,
    ) -> None:
        """Begin replay at absolute time ``at`` (default: now)."""
        self._on_finish = on_finish
        when = self.sim.now if at is None else at
        self.sim.schedule(when, self._begin)

    def _begin(self) -> None:
        self.stats.start_time = self.sim.now
        self._advance()

    def _advance(self) -> None:
        """Enqueue steps until the next collective (the next yield point)."""
        steps = self.trace.steps
        while self._step < len(steps):
            step = steps[self._step]
            self._step += 1
            if step.memcpy_bytes > 0:
                duration = step.memcpy_bytes / self.pcie_rate
                self.stream.compute(duration, name=f"{self.name}.memcpy")
                self.stats.memcpy_seconds += duration
            if step.compute_seconds > 0:
                self.stream.compute(step.compute_seconds, name=f"{self.name}.compute")
                self.stats.compute_seconds += step.compute_seconds
            if step.collective is not None:
                self.stats.collectives_issued += 1
                completed_step = self._step  # 1-based index of this step
                self.issuer.issue(
                    step.collective,
                    step.out_bytes,
                    self.stream,
                    lambda now, s=completed_step: self._collective_done(s, now),
                )
                return
        # Trace tail had no further collectives: finish after the stream
        # drains any remaining compute.
        self.stream.synchronize(self._finish)

    def _collective_done(self, step_index: int, now: float) -> None:
        if step_index % self.trace.steps_per_iteration == 0:
            self.stats.iteration_times.append(now)
        self._advance()

    def _finish(self, now: float) -> None:
        self.stats.finish_time = now
        if self._on_finish is not None:
            self._on_finish(self, now)
