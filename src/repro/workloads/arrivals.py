"""Job arrival processes for the large-scale simulation (§6.5).

"The jobs arrival follows a Poisson distribution with the lambda set to
200ms" — i.e. exponential inter-arrival gaps with a 200 ms mean.  Job
sizes are "either 16 or 32 GPUs with equal probability", 50 jobs per
experiment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class JobSpec:
    """One arriving job."""

    job_id: str
    num_gpus: int
    arrival_time: float


def poisson_arrivals(
    num_jobs: int,
    *,
    mean_interarrival: float = 0.200,
    sizes: Sequence[int] = (16, 32),
    size_weights: Optional[Sequence[float]] = None,
    seed: int = 0,
    rng: Optional[random.Random] = None,
    prefix: str = "job",
) -> List[JobSpec]:
    """Draw a Poisson arrival sequence of jobs.

    Args:
        num_jobs: How many jobs arrive (50 in the paper).
        mean_interarrival: Mean exponential gap in seconds (0.2 s).
        sizes: Candidate GPU counts (16 or 32).
        size_weights: Optional selection weights (uniform by default).
        seed: RNG seed; vary across the paper's 5 repetitions.
        rng: Share one generator across workload *and* fault plans (see
            :meth:`repro.faults.FaultPlan.random`) so a single ``--seed``
            reproduces an entire chaos scenario; overrides ``seed``.
        prefix: Job id prefix.
    """
    if num_jobs <= 0:
        raise ValueError("num_jobs must be positive")
    if rng is None:
        rng = random.Random(seed)
    now = 0.0
    jobs: List[JobSpec] = []
    for i in range(num_jobs):
        now += rng.expovariate(1.0 / mean_interarrival)
        size = rng.choices(list(sizes), weights=size_weights)[0]
        jobs.append(JobSpec(job_id=f"{prefix}{i}", num_gpus=size, arrival_time=now))
    return jobs
