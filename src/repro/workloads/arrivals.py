"""Job arrival processes for the large-scale simulation (§6.5).

"The jobs arrival follows a Poisson distribution with the lambda set to
200ms" — i.e. exponential inter-arrival gaps with a 200 ms mean.  Job
sizes are "either 16 or 32 GPUs with equal probability", 50 jobs per
experiment.

The fleet experiments additionally modulate the Poisson process with a
:class:`DiurnalProfile` — a sinusoidal daily cycle plus Gaussian burst
envelopes — via :func:`diurnal_arrivals`, an exact Lewis-Shedler
thinning sampler: deterministic per seed, which the property tests in
``tests/workloads/test_arrivals.py`` pin down.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class JobSpec:
    """One arriving job."""

    job_id: str
    num_gpus: int
    arrival_time: float


def poisson_arrivals(
    num_jobs: int,
    *,
    mean_interarrival: float = 0.200,
    sizes: Sequence[int] = (16, 32),
    size_weights: Optional[Sequence[float]] = None,
    seed: int = 0,
    rng: Optional[random.Random] = None,
    prefix: str = "job",
) -> List[JobSpec]:
    """Draw a Poisson arrival sequence of jobs.

    Args:
        num_jobs: How many jobs arrive (50 in the paper).
        mean_interarrival: Mean exponential gap in seconds (0.2 s).
        sizes: Candidate GPU counts (16 or 32).
        size_weights: Optional selection weights (uniform by default).
        seed: RNG seed; vary across the paper's 5 repetitions.
        rng: Share one generator across workload *and* fault plans (see
            :meth:`repro.faults.FaultPlan.random`) so a single ``--seed``
            reproduces an entire chaos scenario; overrides ``seed``.
        prefix: Job id prefix.
    """
    if num_jobs <= 0:
        raise ValueError("num_jobs must be positive")
    if rng is None:
        rng = random.Random(seed)
    now = 0.0
    jobs: List[JobSpec] = []
    for i in range(num_jobs):
        now += rng.expovariate(1.0 / mean_interarrival)
        size = rng.choices(list(sizes), weights=size_weights)[0]
        jobs.append(JobSpec(job_id=f"{prefix}{i}", num_gpus=size, arrival_time=now))
    return jobs


@dataclass(frozen=True)
class DiurnalProfile:
    """A time-varying rate multiplier: daily sinusoid + burst envelopes.

    The instantaneous factor is::

        factor(t) = max(floor, 1 + amplitude * sin(2*pi*(t - phase)/period)
                               + sum_i boost_i * exp(-((t - center_i)/width_i)**2 / 2))

    so a base Poisson rate ``lambda`` becomes the inhomogeneous rate
    ``lambda * factor(t)``.  ``peak_factor`` bounds the factor from
    above, which both the thinning sampler and the capacity planner use.

    Attributes:
        period: Length of one cycle in seconds (a scaled "day").
        amplitude: Sinusoid amplitude (0 = flat); must stay below 1 so
            the un-floored factor is positive.
        phase: Time of the sinusoid's zero upcrossing.
        bursts: ``(center, width, boost)`` Gaussian envelopes layered on
            top (flash crowds, shard failovers).
        floor: Lower clamp of the factor (quiet-hours traffic never
            drops to zero).
    """

    period: float = 60.0
    amplitude: float = 0.5
    phase: float = 0.0
    bursts: Tuple[Tuple[float, float, float], ...] = ()
    floor: float = 0.05

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("diurnal period must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if self.floor < 0:
            raise ValueError("floor cannot be negative")
        for center, width, boost in self.bursts:
            if width <= 0 or boost < 0:
                raise ValueError(
                    f"burst ({center}, {width}, {boost}) needs width > 0 "
                    "and boost >= 0"
                )

    def rate_factor(self, t: float) -> float:
        """Instantaneous rate multiplier at time ``t``."""
        factor = 1.0 + self.amplitude * math.sin(
            2.0 * math.pi * (t - self.phase) / self.period
        )
        for center, width, boost in self.bursts:
            z = (t - center) / width
            factor += boost * math.exp(-0.5 * z * z)
        return max(self.floor, factor)

    @property
    def peak_factor(self) -> float:
        """Upper bound of :meth:`rate_factor` (sinusoid crest + all
        burst peaks; exact when bursts overlap, conservative otherwise)."""
        return max(
            self.floor,
            1.0 + self.amplitude + sum(boost for _, _, boost in self.bursts),
        )


def diurnal_arrivals(
    num_jobs: int,
    *,
    mean_interarrival: float = 0.200,
    profile: Optional[DiurnalProfile] = None,
    sizes: Sequence[int] = (16, 32),
    size_weights: Optional[Sequence[float]] = None,
    seed: int = 0,
    rng: Optional[random.Random] = None,
    prefix: str = "job",
) -> List[JobSpec]:
    """Poisson arrivals modulated by a :class:`DiurnalProfile`.

    Uses Lewis-Shedler thinning: candidates are drawn from a homogeneous
    Poisson process at the profile's peak rate and accepted with
    probability ``rate_factor(t) / peak_factor`` — an *exact* sampler
    for the inhomogeneous process, fully determined by the seed (the
    property tests assert both determinism and that a flat profile
    degenerates to :func:`poisson_arrivals` statistics).
    """
    if num_jobs <= 0:
        raise ValueError("num_jobs must be positive")
    if rng is None:
        rng = random.Random(seed)
    if profile is None:
        profile = DiurnalProfile()
    base_rate = 1.0 / mean_interarrival
    peak = profile.peak_factor
    now = 0.0
    jobs: List[JobSpec] = []
    while len(jobs) < num_jobs:
        now += rng.expovariate(base_rate * peak)
        if rng.random() * peak <= profile.rate_factor(now):
            size = rng.choices(list(sizes), weights=size_weights)[0]
            jobs.append(
                JobSpec(
                    job_id=f"{prefix}{len(jobs)}",
                    num_gpus=size,
                    arrival_time=now,
                )
            )
    return jobs
