"""Workload synthesis: model profiles, traces, generators, arrivals."""

from .arrivals import DiurnalProfile, JobSpec, diurnal_arrivals, poisson_arrivals
from .generator import (
    CollectiveIssuer,
    GeneratorStats,
    MccsIssuer,
    NcclIssuer,
    TrafficGenerator,
)
from .models import ModelProfile, gpt_2_7b, gradient_buckets, resnet50, vgg19
from .production import (
    TrainingBreakdown,
    empirical_cross_rack_curve,
    product_group_breakdowns,
    simulated_cross_rack_curve,
)
from .traces import (
    TraceStep,
    TrainingTrace,
    data_parallel_trace,
    geo_distributed_trace,
    gpt_tp_trace,
    resnet50_dp_trace,
    tensor_parallel_trace,
    vgg19_dp_trace,
)

__all__ = [
    "CollectiveIssuer",
    "DiurnalProfile",
    "GeneratorStats",
    "JobSpec",
    "MccsIssuer",
    "ModelProfile",
    "NcclIssuer",
    "TraceStep",
    "TrafficGenerator",
    "TrainingBreakdown",
    "TrainingTrace",
    "data_parallel_trace",
    "diurnal_arrivals",
    "geo_distributed_trace",
    "empirical_cross_rack_curve",
    "gpt_2_7b",
    "gpt_tp_trace",
    "gradient_buckets",
    "poisson_arrivals",
    "product_group_breakdowns",
    "resnet50",
    "resnet50_dp_trace",
    "simulated_cross_rack_curve",
    "tensor_parallel_trace",
    "vgg19",
    "vgg19_dp_trace",
]
