"""Synthetic stand-ins for the proprietary production data (Figures 2, 3a).

Two of the paper's motivating artifacts come from "a production trace
collected at one of the largest social network companies" and cannot be
published:

* **Figure 2** — the training-time breakdown (idle / memcpy / compute /
  communication) of models from four product groups.  We synthesize
  per-group breakdowns with the qualitative property the paper draws from
  the figure: "data communication constitutes a significant portion of
  the training time."  The numbers are generated from a seeded model of
  plausible group mixes, not measured.
* **Figure 3a** — the empirical cross-rack ratio of production jobs on a
  2-hosts-per-rack spine-leaf cluster.  We regenerate the curve from the
  same generative assumption the paper states for its simulated
  counterpart (random ring ordering, jobs perfectly packed onto hosts),
  via both the closed-form expectation and Monte Carlo.

Both substitutions are documented in DESIGN.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.policies.ring_order import expected_random_cross_rack_ratio


@dataclass(frozen=True)
class TrainingBreakdown:
    """Fractions of iteration time per activity; sums to 1."""

    group: str
    idle: float
    memcpy: float
    compute: float
    comm: float

    def __post_init__(self) -> None:
        total = self.idle + self.memcpy + self.compute + self.comm
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"breakdown of {self.group} sums to {total}")

    def as_row(self) -> Tuple[str, float, float, float, float]:
        return (self.group, self.idle, self.memcpy, self.compute, self.comm)


def product_group_breakdowns(seed: int = 2024) -> List[TrainingBreakdown]:
    """Synthetic Figure 2: four product groups, communication-heavy.

    The generator draws group mixes around archetypes (ranking models are
    memcpy/IO heavy, content-understanding models compute heavy, ...) with
    the constraint that exposed communication stays a significant share
    (15-45%), which is the property the paper's argument uses.
    """
    rng = random.Random(seed)
    archetypes = {
        "A": dict(idle=0.10, memcpy=0.15, compute=0.40, comm=0.35),
        "B": dict(idle=0.15, memcpy=0.10, compute=0.30, comm=0.45),
        "C": dict(idle=0.08, memcpy=0.22, compute=0.45, comm=0.25),
        "D": dict(idle=0.20, memcpy=0.12, compute=0.50, comm=0.18),
    }
    breakdowns = []
    for group, base in archetypes.items():
        noisy = {k: max(v * (1 + rng.uniform(-0.1, 0.1)), 0.01) for k, v in base.items()}
        total = sum(noisy.values())
        noisy = {k: v / total for k, v in noisy.items()}
        # re-normalize rounding drift into compute
        noisy["compute"] += 1.0 - sum(noisy.values())
        breakdowns.append(TrainingBreakdown(group=group, **noisy))
    return breakdowns


def empirical_cross_rack_curve(
    job_sizes: Sequence[int],
    *,
    hosts_per_rack: int = 2,
    gpus_per_host: int = 8,
    trials: int = 2000,
    seed: int = 7,
) -> Dict[int, float]:
    """Figure 3a's curve: expected cross-rack ratio vs job size (GPUs).

    Monte Carlo over random host orderings of perfectly packed jobs; the
    2-hosts-per-rack geometry matches the production cluster described in
    §2.2 ("Each rack connects two hosts, each with 8 GPUs and 8 NICs").
    """
    rng = random.Random(seed)
    curve: Dict[int, float] = {}
    for size in job_sizes:
        hosts = max(size // gpus_per_host, 1)
        if hosts <= hosts_per_rack:
            curve[size] = 1.0
            continue
        if hosts % hosts_per_rack:
            raise ValueError(f"job of {size} GPUs does not pack racks")
        racks = hosts // hosts_per_rack
        total_ratio = 0.0
        host_rack = [h // hosts_per_rack for h in range(hosts)]
        for _ in range(trials):
            order = list(range(hosts))
            rng.shuffle(order)
            cross = sum(
                1
                for i in range(hosts)
                if host_rack[order[i]] != host_rack[order[(i + 1) % hosts]]
            )
            total_ratio += cross / racks
        curve[size] = total_ratio / trials
    return curve


def simulated_cross_rack_curve(
    job_sizes: Sequence[int],
    *,
    hosts_per_rack: int = 4,
    gpus_per_host: int = 8,
) -> Dict[int, float]:
    """Figure 3b's curve (closed form): 4 hosts per rack."""
    curve: Dict[int, float] = {}
    for size in job_sizes:
        hosts = max(size // gpus_per_host, 1)
        if hosts <= hosts_per_rack:
            curve[size] = 1.0
        else:
            curve[size] = expected_random_cross_rack_ratio(hosts_per_rack, hosts)
    return curve
