"""Synthetic training traces (the profile-trace substitute of §6.1).

The paper drives its QoS evaluation with "a traffic generator with profile
traces" collected from PyTorch/DeepSpeed/Megatron-LM runs of VGG-19 (data
parallel) and a 2.7B GPT (tensor parallel).  Those traces are a sequence
of (compute gap, collective) steps; since the originals are not published,
we synthesize traces with the same structure from the model catalog:

* data parallel: forward compute, then backward compute interleaved with
  one gradient-bucket AllReduce per bucket (DDP overlap);
* tensor parallel: per layer, compute followed by an activation AllReduce
  (four synchronization points per layer per iteration).

A trace is deliberately independent of the cluster: the same trace can be
replayed through NCCL or MCCS at any placement, which is exactly how the
paper's traffic generator works.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..collectives.types import Collective
from .models import ModelProfile, gradient_buckets, gpt_2_7b, resnet50, vgg19


@dataclass(frozen=True)
class TraceStep:
    """One step: stage ``memcpy_bytes`` host->device, compute for
    ``compute_seconds``, then (optionally) issue a collective of
    ``out_bytes``."""

    compute_seconds: float
    collective: Optional[Collective] = None
    out_bytes: int = 0
    memcpy_bytes: int = 0


@dataclass
class TrainingTrace:
    """A replayable communication trace of one training job."""

    name: str
    steps: List[TraceStep]
    iterations: int
    steps_per_iteration: int

    def total_collective_bytes(self) -> int:
        return sum(s.out_bytes for s in self.steps if s.collective is not None)

    def total_compute_seconds(self) -> float:
        return sum(s.compute_seconds for s in self.steps)

    def collective_count(self) -> int:
        return sum(1 for s in self.steps if s.collective is not None)

    def total_memcpy_bytes(self) -> int:
        return sum(s.memcpy_bytes for s in self.steps)


def _jittered(value: float, jitter: float, rng: Optional[random.Random]) -> float:
    if rng is None or jitter <= 0:
        return value
    return max(value * (1.0 + rng.uniform(-jitter, jitter)), 0.0)


def data_parallel_trace(
    profile: ModelProfile,
    iterations: int,
    *,
    forward_fraction: float = 0.35,
    jitter: float = 0.0,
    seed: Optional[int] = None,
) -> TrainingTrace:
    """DDP-style trace: forward, then per-bucket backward+AllReduce.

    The forward pass is one pure-compute step; the backward pass is split
    evenly across gradient buckets, each followed by that bucket's
    AllReduce — giving the overlapped compute/communication pattern DDP
    produces.
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    rng = random.Random(seed) if seed is not None else None
    buckets = gradient_buckets(profile)
    forward = profile.compute_per_iteration * forward_fraction
    backward_each = (
        profile.compute_per_iteration * (1.0 - forward_fraction) / len(buckets)
    )
    steps: List[TraceStep] = []
    for _ in range(iterations):
        steps.append(
            TraceStep(
                _jittered(forward, jitter, rng),
                memcpy_bytes=profile.input_bytes_per_iteration,
            )
        )
        for bucket in buckets:
            steps.append(
                TraceStep(
                    _jittered(backward_each, jitter, rng),
                    Collective.ALL_REDUCE,
                    bucket,
                )
            )
    return TrainingTrace(
        name=f"{profile.name}-dp",
        steps=steps,
        iterations=iterations,
        steps_per_iteration=1 + len(buckets),
    )


def tensor_parallel_trace(
    profile: ModelProfile,
    iterations: int,
    *,
    jitter: float = 0.0,
    seed: Optional[int] = None,
) -> TrainingTrace:
    """Megatron-style trace: compute/AllReduce pairs at every sync point."""
    if profile.parallelism != "tensor":
        raise ValueError(f"{profile.name} is not tensor parallel")
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    rng = random.Random(seed) if seed is not None else None
    syncs = profile.tp_syncs_per_iteration
    compute_each = profile.compute_per_iteration / syncs
    steps: List[TraceStep] = []
    for _ in range(iterations):
        for _ in range(syncs):
            steps.append(
                TraceStep(
                    _jittered(compute_each, jitter, rng),
                    Collective.ALL_REDUCE,
                    profile.tp_allreduce_bytes,
                )
            )
    return TrainingTrace(
        name=f"{profile.name}-tp",
        steps=steps,
        iterations=iterations,
        steps_per_iteration=syncs,
    )


def vgg19_dp_trace(iterations: int, **kw) -> TrainingTrace:
    """Tenant A of §6.4: VGG-19 trained from scratch, data parallel."""
    return data_parallel_trace(vgg19(), iterations, **kw)


def gpt_tp_trace(iterations: int, **kw) -> TrainingTrace:
    """Tenants B/C of §6.4: 2.7B GPT fine-tuning, tensor parallel."""
    return tensor_parallel_trace(gpt_2_7b(), iterations, **kw)


def resnet50_dp_trace(iterations: int, **kw) -> TrainingTrace:
    """The §6.5 simulation workload: ResNet-50 DDP, 100 MB of gradients."""
    return data_parallel_trace(resnet50(), iterations, **kw)


def geo_distributed_trace(
    iterations: int,
    *,
    bucket_bytes: int = 4 * 1024**2,
    buckets_per_iteration: int = 4,
    compute_per_iteration: float = 0.02,
    wan_rtt: float = 0.03,
    jitter: float = 0.0,
    seed: Optional[int] = None,
) -> TrainingTrace:
    """Geo-distributed data-parallel training across WAN-joined regions.

    Cross-region DDP hides most of the WAN latency behind backward
    compute, but every gradient bucket still pays at least one WAN
    round-trip of synchronization slack (parameter-server heartbeats,
    straggler waits) that intra-region jobs never see.  The trace models
    that as an extra ``wan_rtt`` of gap on each bucket step, so replaying
    it over a :func:`~repro.netsim.fabric.multi_region` fabric produces
    the long-thin-pipe traffic pattern the elastic experiments stress.
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    if buckets_per_iteration <= 0:
        raise ValueError("buckets_per_iteration must be positive")
    rng = random.Random(seed) if seed is not None else None
    compute_each = compute_per_iteration / buckets_per_iteration
    steps: List[TraceStep] = []
    for _ in range(iterations):
        for _ in range(buckets_per_iteration):
            steps.append(
                TraceStep(
                    _jittered(compute_each + wan_rtt, jitter, rng),
                    Collective.ALL_REDUCE,
                    bucket_bytes,
                )
            )
    return TrainingTrace(
        name="geo-dp",
        steps=steps,
        iterations=iterations,
        steps_per_iteration=buckets_per_iteration,
    )
