"""The telemetry hub: one object owning every observability store.

A :class:`TelemetryHub` is created per :class:`~repro.core.deployment.
MccsDeployment` and threaded through the service layers — frontend,
proxies, reconfiguration manager, transport, controller — so every
counter increment, span, and decision event lands in the same place.
``MccsDeployment.telemetry()`` hands it to callers; the exporters in
:mod:`repro.telemetry.exporters` render it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from .causal import CausalTracer, FlightRecorder
from .events import EventLog
from .exporters import chrome_trace, json_snapshot, prometheus_text
from .metrics import MetricsRegistry
from .sampler import NetworkTelemetry
from .slo import SloPolicy, SloTracker
from .spans import SpanRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..netsim.engine import FlowSimulator


class TelemetryHub:
    """Aggregates metrics, spans, events, and network samples.

    Args:
        max_spans: Span ring-buffer capacity.
        max_events: Decision event-log capacity.
        sample_interval: Simulated seconds between link-utilization
            samples once a network is attached.
        max_samples: Per-link utilization ring-buffer capacity.
    """

    def __init__(
        self,
        *,
        max_spans: int = 8192,
        max_events: int = 2048,
        sample_interval: float = 0.25,
        max_samples: int = 4096,
    ) -> None:
        self.metrics = MetricsRegistry()
        self.spans = SpanRecorder(max_spans=max_spans)
        self.events = EventLog(max_events=max_events)
        self.network: Optional[NetworkTelemetry] = None
        #: Causal tracer + flight recorder, created with the network
        #: attachment (they observe the same simulator).
        self.causal: Optional[CausalTracer] = None
        self.flight: Optional[FlightRecorder] = None
        self.slo = SloTracker(metrics=self.metrics, events=self.events)
        self.slo.on_violation = self._on_slo_violation
        self._sample_interval = sample_interval
        self._max_samples = max_samples
        self._resilience_provider: Optional[
            Callable[[], Dict[str, int]]
        ] = None

    def set_slo_policy(self, policy: SloPolicy) -> None:
        """Install the declarative per-QoS-class SLO targets."""
        self.slo.policy = policy

    def _on_slo_violation(
        self, tenant: str, p99: float, target: float, now: float
    ) -> None:
        if self.flight is not None:
            self.flight.trigger(
                "slo_violation", now, tenant=tenant, p99=p99, target=target
            )

    def set_resilience_provider(
        self, provider: Optional[Callable[[], Dict[str, int]]]
    ) -> None:
        """Install the callback publishing recovery/overload state
        (journal size, crashes, restarts, sheds) into the summary."""
        self._resilience_provider = provider

    # ------------------------------------------------------------------
    def attach_network(self, sim: "FlowSimulator") -> NetworkTelemetry:
        """Hook the flow-level sampler into ``sim`` (idempotent).

        Also arms the causal tracer and its flight recorder: causal
        tracing is always-on for any deployment with a network attached.
        """
        if self.network is None:
            self.network = NetworkTelemetry(
                sim,
                self.metrics,
                sample_interval=self._sample_interval,
                max_samples=self._max_samples,
            )
        if self.causal is None:
            self.causal = CausalTracer(
                sim, events=self.events, metrics=self.metrics
            )
            self.flight = FlightRecorder(
                self.causal, events=self.events, metrics=self.metrics
            )
        return self.network

    # ------------------------------------------------------------------
    # export surface
    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus text exposition of every metric."""
        return prometheus_text(self.metrics)

    def to_json(self) -> Dict[str, object]:
        """JSON-ready snapshot of metrics, spans, events, link series."""
        return json_snapshot(self)

    def to_chrome_trace(self) -> Dict[str, object]:
        """Chrome trace-event rendering of spans and decision events."""
        return chrome_trace(self.spans, self.events)

    # ------------------------------------------------------------------
    def summary_lines(self) -> list:
        """Short human-readable digest (used by examples/quickstart)."""
        lines = []
        counters = self.metrics.counters()
        for name in sorted(counters):
            total = counters[name].total()
            lines.append(f"{name} = {total:g}")
        for name, histogram in sorted(self.metrics.histograms().items()):
            for labels, state in histogram.samples():
                label_text = (
                    "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                    if labels
                    else ""
                )
                mean = state.sum / state.count if state.count else 0.0
                lines.append(
                    f"{name}{label_text}  count={state.count} mean={mean:.6g}s"
                )
        lines.append(f"spans recorded = {len(self.spans)} (evicted {self.spans.evicted})")
        lines.append(f"decision events = {len(self.events)} (evicted {self.events.evicted})")
        if self.network is not None:
            lines.append(
                "link series = "
                f"{len(self.network.sampled_links())} links, "
                f"{self.network.samples_taken} sampling passes"
            )
            for name, value in sorted(self.network.publish_perf_counters().items()):
                lines.append(f"netsim.{name} = {value}")
            cache_stats = self.network.publish_program_cache()
            if cache_stats is not None:
                for name, value in sorted(cache_stats.items()):
                    lines.append(f"program_cache.{name} = {value}")
        if self._resilience_provider is not None:
            for name, value in sorted(self._resilience_provider().items()):
                lines.append(f"resilience.{name} = {value}")
        return lines
