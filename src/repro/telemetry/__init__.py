"""Observability for the MCCS reproduction.

The paper's managed service argument (§4.3, §7) rests on the provider
*seeing* what tenant applications cannot: link utilization, per-tenant
traffic, reconfiguration cost.  This package is that provider-side
telemetry plane for the reproduction:

* :mod:`metrics`   — Prometheus-style counters/gauges/histograms on the
  simulated clock.
* :mod:`spans`     — per-collective and per-reconfiguration lifecycle
  spans (issue → enqueue → launch → flows → completion).
* :mod:`sampler`   — flow-lifecycle observer + periodic link-utilization
  sampling over the fluid simulator.
* :mod:`events`    — bounded log of control-plane policy decisions.
* :mod:`exporters` — Prometheus text, JSON, and Chrome trace-event
  renderings.
* :mod:`reporter`  — pluggable text output used by the experiment mains.
* :mod:`hub`       — :class:`TelemetryHub`, the per-deployment aggregate
  that ``MccsDeployment.telemetry()`` returns.
"""

from .events import EventLog, TelemetryEvent
from .exporters import chrome_trace, json_snapshot, prometheus_text
from .hub import TelemetryHub
from .metrics import (
    DEFAULT_SIM_BUCKETS,
    WALL_CLOCK_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .reporter import (
    BufferSink,
    Reporter,
    StdoutSink,
    StreamSink,
    format_table,
    get_default_reporter,
    set_default_reporter,
)
from .ringbuffer import RingBuffer
from .sampler import NetworkTelemetry
from .spans import (
    EVENT_BARRIER_RESOLVED,
    EVENT_FIRST_FLOW_START,
    EVENT_HELD,
    EVENT_LAST_FLOW_END,
    EVENT_RANK_APPLIED,
    EVENT_RANK_LAUNCH,
    Span,
    SpanRecorder,
)

__all__ = [
    "BufferSink",
    "Counter",
    "DEFAULT_SIM_BUCKETS",
    "EVENT_BARRIER_RESOLVED",
    "EVENT_FIRST_FLOW_START",
    "EVENT_HELD",
    "EVENT_LAST_FLOW_END",
    "EVENT_RANK_APPLIED",
    "EVENT_RANK_LAUNCH",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NetworkTelemetry",
    "Reporter",
    "RingBuffer",
    "Span",
    "SpanRecorder",
    "StdoutSink",
    "StreamSink",
    "TelemetryEvent",
    "TelemetryHub",
    "WALL_CLOCK_BUCKETS",
    "chrome_trace",
    "format_table",
    "get_default_reporter",
    "json_snapshot",
    "prometheus_text",
    "set_default_reporter",
]
