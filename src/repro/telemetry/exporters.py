"""Telemetry exporters: Prometheus text, JSON, and Chrome trace-event.

Three views over the same hub state:

* :func:`prometheus_text` — the standard ``# HELP``/``# TYPE`` exposition
  format, so a scrape of the reproduction looks like a scrape of a real
  MCCS service deployment.
* :func:`json_snapshot` — everything (metrics, spans, events, link
  series) as one JSON-ready dict; what ``experiments/report.py`` writes
  when asked for machine-readable output.
* :func:`chrome_trace` — the ``chrome://tracing`` / Perfetto trace-event
  format.  Collective spans become complete ("X") events grouped per app
  and communicator, point events become instants, and the Figure 4
  reconfiguration barrier shows up as its own span on the control track.

All exporters are deterministic: spans carry recorder-assigned ids and
output is sorted, so goldens can be compared byte for byte.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .events import EventLog
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .spans import Span, SpanRecorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .hub import TelemetryHub


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _fmt_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_labels(labels: Dict[str, str], extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = sorted(labels.items())
    if extra is not None:
        pairs = pairs + [extra]
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in pairs)
    return "{" + body + "}"


def prometheus_text(metrics: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for metric in metrics.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            samples = metric.samples() or [({}, 0.0)]
            for labels, value in samples:
                lines.append(
                    f"{metric.name}{_fmt_labels(labels)} {_fmt_value(value)}"
                )
        elif isinstance(metric, Histogram):
            for labels, state in metric.samples():
                for le, cumulative in metric.bucket_counts(**labels):
                    le_str = "+Inf" if math.isinf(le) else _fmt_value(le)
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_fmt_labels(labels, ('le', le_str))} {cumulative}"
                    )
                lines.append(
                    f"{metric.name}_sum{_fmt_labels(labels)} "
                    f"{_fmt_value(state.sum)}"
                )
                lines.append(
                    f"{metric.name}_count{_fmt_labels(labels)} {state.count}"
                )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# JSON snapshot
# ----------------------------------------------------------------------
def json_snapshot(hub: "TelemetryHub") -> Dict[str, object]:
    """Everything the hub knows, as one JSON-ready dict."""
    out: Dict[str, object] = {
        "metrics": hub.metrics.snapshot(),
        "spans": {
            "evicted": hub.spans.evicted,
            "records": [span.to_dict() for span in hub.spans.spans()],
        },
        "events": {
            "evicted": hub.events.evicted,
            "records": [event.to_dict() for event in hub.events.events()],
        },
    }
    if hub.network is not None:
        out["links"] = hub.network.utilization_snapshot()
    slo_report = hub.slo.report()
    if slo_report:
        out["slo"] = slo_report
    if hub.flight is not None and hub.flight.dumps():
        out["flight"] = hub.flight.to_dict()
    return out


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------
def _us(t: float) -> float:
    """Simulated seconds -> trace microseconds, rounded for stable goldens."""
    return round(t * 1e6, 3)


class _TrackAllocator:
    """Deterministic pid/tid assignment with name metadata events."""

    def __init__(self) -> None:
        self._pids: Dict[str, int] = {}
        self._tids: Dict[Tuple[int, str], int] = {}
        self.metadata: List[Dict[str, object]] = []

    def pid(self, process: str) -> int:
        pid = self._pids.get(process)
        if pid is None:
            pid = self._pids[process] = len(self._pids) + 1
            self.metadata.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "name": "process_name",
                    "args": {"name": process},
                }
            )
        return pid

    def tid(self, pid: int, track: str) -> int:
        tid = self._tids.get((pid, track))
        if tid is None:
            tid = self._tids[(pid, track)] = (
                sum(1 for key in self._tids if key[0] == pid) + 1
            )
            self.metadata.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )
        return tid


def _span_tracks(span: Span) -> Tuple[str, str]:
    """(process, thread) names for one span's trace placement."""
    process = str(span.attrs.get("app", span.category))
    track = str(span.attrs.get("comm", span.attrs.get("track", span.category)))
    return process, track


def chrome_trace(
    spans: SpanRecorder, events: Optional[EventLog] = None
) -> Dict[str, object]:
    """Render spans (and decision events) as a Chrome trace-event dict.

    Finished spans become complete ("X") events; their point events and
    any control-plane decision events become instants ("i").  Unfinished
    spans are skipped — exports are meant to run after the simulation.
    """
    tracks = _TrackAllocator()
    trace_events: List[Dict[str, object]] = []
    #: trace id -> (pid, tid, ts) anchor of the earliest span carrying it;
    #: lifecycle events referencing the same trace id get Chrome flow
    #: arrows ("s"/"f") back to this anchor, so crash/recovery/shed
    #: instants are visually causally bound to their collective.
    anchors: Dict[str, Tuple[int, int, float]] = {}
    flow_points: List[Tuple[str, int, int, float]] = []

    for span in spans.spans():
        process, track = _span_tracks(span)
        pid = tracks.pid(process)
        tid = tracks.tid(pid, track)
        trace_ref = span.attrs.get("trace")
        if trace_ref is not None and str(trace_ref) not in anchors:
            anchors[str(trace_ref)] = (pid, tid, _us(span.start))
        if span.finished:
            args: Dict[str, object] = {"span_id": span.span_id}
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            args.update(span.attrs)
            trace_events.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "ts": _us(span.start),
                    "dur": _us(span.end - span.start),  # type: ignore[operator]
                    "name": span.name,
                    "cat": span.category,
                    "args": args,
                }
            )
        for name, t, attrs in span.events:
            trace_events.append(
                {
                    "ph": "i",
                    "pid": pid,
                    "tid": tid,
                    "ts": _us(t),
                    "name": name,
                    "cat": span.category,
                    "s": "t",
                    "args": dict(attrs, span_id=span.span_id),
                }
            )

    if events is not None and len(events):
        pid = tracks.pid("control-plane")
        tid = tracks.tid(pid, "decisions")
        for event in events.events():
            trace_events.append(
                {
                    "ph": "i",
                    "pid": pid,
                    "tid": tid,
                    "ts": _us(event.time),
                    "name": event.kind,
                    "cat": "decision",
                    "s": "p",
                    "args": dict(event.attrs, message=event.message),
                }
            )
            trace_ref = event.attrs.get("trace")
            if trace_ref is not None and str(trace_ref) in anchors:
                flow_points.append(
                    (str(trace_ref), pid, tid, _us(event.time))
                )

    # Flow arrows: one "s" at the collective's root span per referenced
    # trace id, one "f" per lifecycle instant that names it.  Ids are
    # assigned in sorted trace-id order, so output stays deterministic.
    flow_ids = {t: i + 1 for i, t in enumerate(sorted({t for t, *_ in flow_points}))}
    for trace_ref, flow_id in flow_ids.items():
        a_pid, a_tid, a_ts = anchors[trace_ref]
        trace_events.append(
            {
                "ph": "s",
                "pid": a_pid,
                "tid": a_tid,
                "ts": a_ts,
                "id": flow_id,
                "name": "causal",
                "cat": "causal",
                "args": {"trace": trace_ref},
            }
        )
    for trace_ref, pid, tid, ts in flow_points:
        trace_events.append(
            {
                "ph": "f",
                "bp": "e",
                "pid": pid,
                "tid": tid,
                "ts": ts,
                "id": flow_ids[trace_ref],
                "name": "causal",
                "cat": "causal",
                "args": {"trace": trace_ref},
            }
        )

    trace_events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"], e["name"]))
    return {
        "traceEvents": tracks.metadata + trace_events,
        "displayTimeUnit": "ms",
    }
