"""Network-layer telemetry: flow lifecycle metrics + link-utilization series.

:class:`NetworkTelemetry` is a :class:`~repro.netsim.engine.SimObserver`
that turns the engine's raw notifications into metrics:

* flow add/complete counters and byte counters, labelled by job,
* a flow-duration histogram (the fluid FCT distribution),
* a preemption counter fed by gate transitions (the TS policy's
  time-window scheduling shows up here),
* periodic samples of ``link_utilization()`` into bounded ring buffers,
  one series per link — the confidential provider-side signal the paper's
  §4.3 policies consume.

The periodic sampler is *self-stopping*: its tick only reschedules while
at least one flow is active, so a simulation run to quiescence
(``sim.run()`` with no deadline) still terminates.  The ticker restarts
whenever a flow enters the network or a gated flow is released.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..netsim.engine import FlowSimulator, SimObserver
from ..netsim.flows import Flow
from .metrics import MetricsRegistry
from .ringbuffer import RingBuffer

#: One utilization sample: (sim_time, utilization in [0, 1]).
LinkSample = Tuple[float, float]


class NetworkTelemetry(SimObserver):
    """Samples the fluid simulator into a metrics registry.

    Args:
        sim: Engine to observe; the instance attaches itself.
        metrics: Registry that receives the flow/byte/preemption metrics.
        sample_interval: Seconds of simulated time between link samples.
        max_samples: Ring-buffer capacity per link series.
    """

    def __init__(
        self,
        sim: FlowSimulator,
        metrics: MetricsRegistry,
        *,
        sample_interval: float = 0.25,
        max_samples: int = 4096,
    ) -> None:
        if sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        self.sim = sim
        self.metrics = metrics
        self.sample_interval = sample_interval
        self.max_samples = max_samples
        self._series: Dict[str, RingBuffer[LinkSample]] = {}
        self._ticker_running = False
        self.samples_taken = 0
        #: Installed by the deployment: returns aggregated
        #: :meth:`FlowProgramCache.stats` over its communicators.
        self._program_cache_provider: Optional[
            Callable[[], Dict[str, int]]
        ] = None

        self._flows_total = metrics.counter(
            "mccs_flows_total", "Flows injected into the network, by job."
        )
        self._flows_completed = metrics.counter(
            "mccs_flows_completed_total", "Flows drained to completion, by job."
        )
        self._flows_cancelled = metrics.counter(
            "mccs_flows_cancelled_total",
            "Flows torn down before completing (reconfig, background stop).",
        )
        self._flows_failed = metrics.counter(
            "mccs_flows_failed_total",
            "Flows killed by injected faults (link down, host crash), by job.",
        )
        self._bytes_total = metrics.counter(
            "mccs_bytes_moved_total", "Bytes fully delivered, by job."
        )
        self._preemptions = metrics.counter(
            "mccs_flow_preemptions_total",
            "Flow gate closures (traffic-schedule preemptions), by job.",
        )
        self._active_flows = metrics.gauge(
            "mccs_active_flows", "Flows currently in the network."
        )
        self._flow_duration = metrics.histogram(
            "mccs_flow_duration_seconds",
            "Flow completion time (fluid model), by job.",
        )

        sim.add_observer(self)

    # ------------------------------------------------------------------
    # SimObserver interface
    # ------------------------------------------------------------------
    def on_flow_added(self, flow: Flow, now: float) -> None:
        self._flows_total.inc(job=flow.job_id or "none")
        self._active_flows.set(self.sim.active_flow_count())
        self._start_ticker()

    def on_flow_completed(self, flow: Flow, now: float) -> None:
        job = flow.job_id or "none"
        self._flows_completed.inc(job=job)
        self._bytes_total.inc(flow.size, job=job)
        self._flow_duration.observe(now - flow.start_time, job=job)
        self._active_flows.set(self.sim.active_flow_count())

    def on_flow_cancelled(self, flow: Flow, now: float) -> None:
        self._flows_cancelled.inc(job=flow.job_id or "none")
        self._active_flows.set(self.sim.active_flow_count())

    def on_flow_failed(self, flow: Flow, now: float) -> None:
        self._flows_failed.inc(job=flow.job_id or "none")
        self._active_flows.set(self.sim.active_flow_count())

    def on_flow_gated(self, flow: Flow, gated: bool, now: float) -> None:
        if gated:
            self._preemptions.inc(job=flow.job_id or "none")
        else:
            # A released flow may be the only traffic; make sure the
            # sampler sees it drain.
            self._start_ticker()

    # ------------------------------------------------------------------
    # periodic link sampling
    # ------------------------------------------------------------------
    def _start_ticker(self) -> None:
        if self._ticker_running:
            return
        self._ticker_running = True
        self.sim.call_in(self.sample_interval, self._tick)

    def _tick(self) -> None:
        self.sample_now()
        if any(f.active for f in self.sim.active_flows()):
            self.sim.call_in(self.sample_interval, self._tick)
        else:
            self._ticker_running = False

    def sample_now(self) -> Dict[str, float]:
        """Record one utilization sample per loaded link, immediately."""
        utilization = self.sim.link_utilization()
        now = self.sim.now
        for link_id, value in utilization.items():
            series = self._series.get(link_id)
            if series is None:
                series = self._series[link_id] = RingBuffer(self.max_samples)
            series.append((now, value))
        self.samples_taken += 1
        return utilization

    # ------------------------------------------------------------------
    # engine-core performance counters
    # ------------------------------------------------------------------
    def publish_perf_counters(self) -> Dict[str, int]:
        """Copy the engine's :meth:`FlowSimulator.perf_counters` into gauges.

        Called on demand (summary/export time) rather than per sample so the
        hot sampling path stays cheap.  Gauge names are the counter names
        under the ``mccs_netsim_`` prefix, e.g.
        ``mccs_netsim_solver_rebuilds_avoided``.
        """
        counters = self.sim.perf_counters()
        for name, value in counters.items():
            self.metrics.gauge(
                f"mccs_netsim_{name}",
                "Flow-simulator engine-core performance counter.",
            ).set(value)
        return counters

    # ------------------------------------------------------------------
    # flow-program cache gauges
    # ------------------------------------------------------------------
    def set_program_cache_provider(
        self, provider: Callable[[], Dict[str, int]]
    ) -> None:
        """Install the source of aggregated flow-program cache stats."""
        self._program_cache_provider = provider

    def publish_program_cache(self) -> Optional[Dict[str, int]]:
        """Copy aggregated :meth:`FlowProgramCache.stats` into gauges.

        Like :meth:`publish_perf_counters`, called on demand at summary /
        export time.  Gauge names are ``mccs_program_cache_<stat>``
        (``hits``, ``misses``, ``size``, ``evictions``).  Returns ``None``
        when no provider is installed.
        """
        if self._program_cache_provider is None:
            return None
        stats = self._program_cache_provider()
        for name, value in stats.items():
            self.metrics.gauge(
                f"mccs_program_cache_{name}",
                "Aggregated flow-program cache statistic across live "
                "communicators.",
            ).set(value)
        return stats

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def link_series(self, link_id: str) -> List[LinkSample]:
        """(time, utilization) samples recorded for one link."""
        series = self._series.get(link_id)
        return series.to_list() if series is not None else []

    def sampled_links(self) -> List[str]:
        return sorted(self._series)

    def evicted_samples(self, link_id: Optional[str] = None) -> int:
        if link_id is not None:
            series = self._series.get(link_id)
            return series.evicted if series is not None else 0
        return sum(series.evicted for series in self._series.values())

    def utilization_snapshot(self) -> Dict[str, object]:
        """JSON-ready dump of every link series."""
        return {
            link_id: {
                "samples": [[t, u] for t, u in series],
                "evicted": series.evicted,
            }
            for link_id, series in sorted(self._series.items())
        }
