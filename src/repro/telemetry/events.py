"""Bounded log of controller and policy decision events.

The paper's centralized manager "consumes this data to make a policy
decision" (§4.3); the decision itself is part of the observability story,
so every policy pass, reconfiguration command, and traffic-schedule
install appends a :class:`TelemetryEvent` here.  The log is a ring buffer
— a service that reschedules on every job arrival must not keep an
unbounded decision history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .ringbuffer import RingBuffer


@dataclass(frozen=True)
class TelemetryEvent:
    """One control-plane decision, stamped in simulation time."""

    time: float
    kind: str
    message: str = ""
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "time": self.time,
            "kind": self.kind,
            "message": self.message,
            "attrs": dict(self.attrs),
        }


class EventLog:
    """Bounded, append-only event store."""

    def __init__(self, max_events: int = 2048) -> None:
        self._events: RingBuffer[TelemetryEvent] = RingBuffer(max_events)

    def log(
        self, time: float, kind: str, message: str = "", **attrs: object
    ) -> TelemetryEvent:
        event = TelemetryEvent(time=time, kind=kind, message=message, attrs=attrs)
        self._events.append(event)
        return event

    def events(self, kind: Optional[str] = None) -> List[TelemetryEvent]:
        if kind is None:
            return self._events.to_list()
        return [e for e in self._events if e.kind == kind]

    @property
    def evicted(self) -> int:
        return self._events.evicted

    def __len__(self) -> int:
        return len(self._events)
