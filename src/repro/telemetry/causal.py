"""Causal tracing: one tree per collective, from shim to bottleneck link.

The paper's core observability pitch (§3, §5.3) is that the *service* can
see what tenant libraries cannot: where a collective's time actually went.
This module provides that substrate:

* :class:`TraceContext` — the identity a collective carries through every
  layer (shim → frontend → proxy → transport → netsim flows, and through
  retries, barrier passes, and journal records).  The frontend mints one
  per issued collective; every span, event, journal record, and flow tag
  downstream references its ``trace_id``.
* :class:`CausalTracer` — a :class:`~repro.netsim.engine.SimObserver`
  that assembles the per-collective :class:`CausalTrace` trees.  Flows
  tagged with ``trace=<trace_id>`` are adopted into the issuing trace;
  a per-flow rate recorder (installed via ``Flow._recorder``) captures
  every rate change as a closed *segment* ``(start, end, rate,
  bottleneck_link, co_tenants)``, so attribution costs O(changed flows)
  per recomputation — the same complexity as the incremental engine.
* :class:`CriticalPathReport` — the exact-sum decomposition of one
  finished collective: ``queue + serialization + contention`` equals the
  measured duration by construction, per-hop time is grouped by the
  solver's per-round bottleneck attribution, and the co-tenant ledger
  quantifies who interfered for how long.
* :class:`FlightRecorder` — an always-on bounded ring of recent causal
  trees that snapshots itself on trigger events (deadline, heartbeat
  miss, crash, admission shed, SLO violation) so every chaos failure
  ships its own evidence.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .ringbuffer import RingBuffer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..netsim.engine import FlowSimulator
    from ..netsim.flows import Flow
    from .events import EventLog
    from .metrics import MetricsRegistry

#: Terminal trace states.
TRACE_COMPLETED = "completed"
TRACE_ABORTED = "aborted"
TRACE_FAILED = "failed"


@dataclass(frozen=True)
class TraceContext:
    """Identity of one issued collective, threaded through every layer."""

    trace_id: str
    tenant: str
    comm_id: str
    seq: int
    kind: str
    nbytes: int
    strategy_version: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "tenant": self.tenant,
            "comm": self.comm_id,
            "seq": self.seq,
            "kind": self.kind,
            "nbytes": self.nbytes,
            "strategy_version": self.strategy_version,
        }


@dataclass(slots=True)
class RateSegment:
    """One constant-rate interval of a traced flow."""

    start: float
    end: Optional[float]
    rate: float
    bottleneck: Optional[str]
    #: Tenants (other than the flow's own) with active flows on the
    #: bottleneck link when the segment opened.  Rate recomputations
    #: bracket membership changes on the flow's links, so the set is
    #: constant over the segment.
    co_tenants: Tuple[str, ...] = ()

    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "start": self.start,
            "end": self.end,
            "rate": self.rate,
            "bottleneck": self.bottleneck,
            "co_tenants": list(self.co_tenants),
        }


@dataclass(slots=True)
class FlowRecord:
    """One netsim flow's life inside a causal trace."""

    flow_id: str
    rank: Optional[int]
    channel: Optional[int]
    size: float
    path: Tuple[str, ...]
    #: size / min-capacity(path) at injection time — the flow's ideal
    #: transfer time with every link to itself (the serialization term).
    ideal_s: float
    t_start: float
    t_end: Optional[float] = None
    status: str = "active"  # active | completed | cancelled | failed
    segments: List[RateSegment] = field(default_factory=list)

    def close_segment(self, now: float) -> None:
        if self.segments and self.segments[-1].end is None:
            self.segments[-1].end = now

    def bottlenecked_seconds(self) -> Dict[str, float]:
        """Seconds spent bottlenecked on each link, from the segments."""
        per_link: Dict[str, float] = {}
        for seg in self.segments:
            if seg.bottleneck is None or seg.end is None:
                continue
            per_link[seg.bottleneck] = (
                per_link.get(seg.bottleneck, 0.0) + seg.duration()
            )
        return per_link

    def interference_seconds(self) -> Dict[str, float]:
        """Seconds of bottlenecked time shared with each co-tenant."""
        ledger: Dict[str, float] = {}
        for seg in self.segments:
            if seg.end is None:
                continue
            dt = seg.duration()
            for tenant in seg.co_tenants:
                ledger[tenant] = ledger.get(tenant, 0.0) + dt
        return ledger

    def to_dict(self) -> Dict[str, object]:
        return {
            "flow_id": self.flow_id,
            "rank": self.rank,
            "channel": self.channel,
            "size": self.size,
            "path": list(self.path),
            "ideal_s": self.ideal_s,
            "start": self.t_start,
            "end": self.t_end,
            "status": self.status,
            "segments": [s.to_dict() for s in self.segments],
        }


@dataclass
class TraceAttempt:
    """One launch attempt of a collective (retries open new attempts)."""

    number: int
    t_start: float
    flows: Dict[str, FlowRecord] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "attempt": self.number,
            "start": self.t_start,
            "flows": [f.to_dict() for f in self.flows.values()],
        }


class CausalTrace:
    """The causal tree of one issued collective."""

    __slots__ = ("ctx", "issued_at", "end_time", "status", "attempts",
                 "events", "root_span_id")

    def __init__(self, ctx: TraceContext, now: float) -> None:
        self.ctx = ctx
        self.issued_at = now
        self.end_time: Optional[float] = None
        self.status = "open"
        self.attempts: List[TraceAttempt] = [TraceAttempt(1, now)]
        #: Annotations from the control plane: journal appends, barrier
        #: passes, holds, relaunches, recovery decisions...
        self.events: List[Tuple[float, str, Dict[str, object]]] = []
        self.root_span_id: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self.status != "open"

    @property
    def current_attempt(self) -> TraceAttempt:
        return self.attempts[-1]

    def new_attempt(self, now: float) -> TraceAttempt:
        attempt = TraceAttempt(len(self.attempts) + 1, now)
        self.attempts.append(attempt)
        return attempt

    def annotate(self, now: float, kind: str, **attrs: object) -> None:
        self.events.append((now, kind, dict(attrs)))

    def all_flows(self) -> List[FlowRecord]:
        return [f for a in self.attempts for f in a.flows.values()]

    def find_flow(self, flow_id: str) -> Optional[FlowRecord]:
        for attempt in reversed(self.attempts):
            rec = attempt.flows.get(flow_id)
            if rec is not None:
                return rec
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            **self.ctx.to_dict(),
            "issued_at": self.issued_at,
            "end": self.end_time,
            "status": self.status,
            "attempts": [a.to_dict() for a in self.attempts],
            "events": [
                {"time": t, "kind": kind, "attrs": attrs}
                for t, kind, attrs in self.events
            ],
        }


@dataclass
class CriticalPathReport:
    """Exact-sum attribution of one finished collective.

    ``queue_s + serialization_s + contention_s == duration_s`` holds by
    construction: the critical flow is the last-finishing flow of the
    final attempt, and a collective completes at its last flow's end.
    """

    ctx: TraceContext
    duration_s: float
    #: Time before the critical flow entered the network — shim/frontend
    #: queueing, proxy launch latency, reconfig holds, and (for retried
    #: collectives) the failed earlier attempts and backoff.
    queue_s: float
    #: Ideal transfer time of the critical flow with its path to itself.
    serialization_s: float
    #: Extra network time from sharing links with other traffic.
    contention_s: float
    attempts: int
    critical_flow: str
    critical_rank: Optional[int]
    #: Seconds the critical flow spent bottlenecked on each link.
    per_hop: Dict[str, float]
    #: The link the critical flow was bottlenecked on longest.
    bottleneck_link: Optional[str]
    #: Co-tenant -> seconds of bottlenecked time shared on the critical
    #: flow's bottleneck links (the interference ledger).
    interference: Dict[str, float]

    @property
    def interferer(self) -> Optional[str]:
        """The co-tenant charged with the most shared bottleneck time."""
        if not self.interference:
            return None
        return max(sorted(self.interference), key=self.interference.get)

    def to_dict(self) -> Dict[str, object]:
        return {
            **self.ctx.to_dict(),
            "duration_s": self.duration_s,
            "queue_s": self.queue_s,
            "serialization_s": self.serialization_s,
            "contention_s": self.contention_s,
            "attempts": self.attempts,
            "critical_flow": self.critical_flow,
            "critical_rank": self.critical_rank,
            "per_hop": dict(sorted(self.per_hop.items())),
            "bottleneck_link": self.bottleneck_link,
            "interference": dict(sorted(self.interference.items())),
            "interferer": self.interferer,
        }


class _BoundRecorder:
    """Per-flow rate recorder with trace state resolved at adoption.

    Installed as ``Flow._recorder`` so the engine's per-rate-change hook
    reaches the right :class:`FlowRecord` without any dictionary lookups
    — the binding is the tracer's hot path.
    """

    __slots__ = ("tracer", "rec", "job")

    def __init__(self, tracer: "CausalTracer", rec: FlowRecord, job: str) -> None:
        self.tracer = tracer
        self.rec = rec
        self.job = job

    def on_rate_change(
        self,
        flow: "Flow",
        now: float,
        rate: float,
        bottleneck: Optional[str],
    ) -> None:
        """Engine hook: ``flow``'s allocation moved (O(changed flows))."""
        rec = self.rec
        if rec.status != "active":  # trace closed while the flow lived on
            return
        segments = rec.segments
        if segments and segments[-1].end is None:
            segments[-1].end = now
        if bottleneck is None and flow.links:
            # Legacy engine mode has no per-round attribution; fall back
            # to the static minimum-capacity link of the path.
            bottleneck = min(flow.links, key=self.tracer.sim.link_capacity)
        co: Tuple[str, ...] = ()
        if bottleneck is not None:
            per_job = self.tracer._link_jobs.get(bottleneck)
            # Fast path: the flow's own tenant is alone on the link.
            if per_job and not (len(per_job) == 1 and self.job in per_job):
                co = tuple(sorted(
                    t for t, n in per_job.items() if n > 0 and t != self.job
                ))
        segments.append(
            RateSegment(start=now, end=None, rate=rate, bottleneck=bottleneck,
                        co_tenants=co)
        )


class CausalTracer:
    """Assembles causal traces from control-plane calls and flow events.

    The tracer observes *every* flow to maintain per-link tenant
    occupancy (the co-tenant sets are computed from it) but only flows
    tagged ``trace=<trace_id>`` get full segment recording — untraced
    traffic costs two O(path) dictionary passes per flow lifetime.
    """

    def __init__(
        self,
        sim: "FlowSimulator",
        *,
        max_closed: int = 512,
        events: Optional["EventLog"] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.sim = sim
        self.events = events
        self._live: Dict[str, CausalTrace] = {}
        self._closed: RingBuffer[CausalTrace] = RingBuffer(max_closed)
        self._by_flow: Dict[str, CausalTrace] = {}
        #: link -> tenant -> active flow count (all traffic, traced or not).
        self._link_jobs: Dict[str, Dict[str, int]] = {}
        self._ids = itertools.count(1)
        self.traces_started = 0
        self.traces_closed = 0
        self._traces_total = self._traces_open = None
        if metrics is not None:
            self._traces_total = metrics.counter(
                "mccs_traces_total",
                "Causal traces opened, one per issued collective.",
            )
            self._traces_open = metrics.gauge(
                "mccs_traces_open",
                "Causal traces currently open (issued, not yet terminal).",
            )
        sim.add_observer(self)

    # ------------------------------------------------------------------
    # trace lifecycle (called by the control plane)
    # ------------------------------------------------------------------
    def mint_context(
        self,
        *,
        tenant: str,
        comm_id: str,
        seq: int,
        kind: str,
        nbytes: int,
        strategy_version: int = 0,
    ) -> TraceContext:
        """Create the :class:`TraceContext` for one issued collective."""
        trace_id = f"tr{next(self._ids)}:{comm_id}.s{seq}"
        return TraceContext(
            trace_id=trace_id,
            tenant=tenant,
            comm_id=comm_id,
            seq=seq,
            kind=kind,
            nbytes=nbytes,
            strategy_version=strategy_version,
        )

    def begin(self, ctx: TraceContext, now: float) -> CausalTrace:
        trace = CausalTrace(ctx, now)
        self._live[ctx.trace_id] = trace
        self.traces_started += 1
        if self._traces_total is not None:
            self._traces_total.inc(tenant=ctx.tenant)
            self._traces_open.set(len(self._live))
        return trace

    def new_attempt(self, trace_id: str, now: float) -> None:
        trace = self._live.get(trace_id)
        if trace is not None:
            trace.annotate(now, "retry", attempt=len(trace.attempts) + 1)
            trace.new_attempt(now)

    def annotate(self, trace_id: str, now: float, kind: str, **attrs: object) -> None:
        """Attach a control-plane event to a live (or closed) trace."""
        trace = self.get(trace_id)
        if trace is not None:
            trace.annotate(now, kind, **attrs)

    def annotate_comm(self, comm_id: str, now: float, kind: str, **attrs: object) -> None:
        """Attach an event to every live trace of one communicator
        (used for barrier passes and upgrades that stall a whole comm)."""
        for trace in self._live.values():
            if trace.ctx.comm_id == comm_id:
                trace.annotate(now, kind, **attrs)

    def close(self, trace_id: str, now: float, status: str) -> Optional[CausalTrace]:
        """Terminate a trace exactly once; later calls are no-ops."""
        trace = self._live.pop(trace_id, None)
        if trace is None:
            return None
        for rec in trace.all_flows():
            if rec.status == "active":  # flow outlived by its collective
                rec.close_segment(now)
                rec.t_end = rec.t_end if rec.t_end is not None else now
                rec.status = "cancelled"
            self._by_flow.pop(rec.flow_id, None)
        trace.end_time = now
        trace.status = status
        self._closed.append(trace)
        self.traces_closed += 1
        if self._traces_open is not None:
            self._traces_open.set(len(self._live))
        return trace

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, trace_id: str) -> Optional[CausalTrace]:
        trace = self._live.get(trace_id)
        if trace is not None:
            return trace
        for closed in self._closed:
            if closed.ctx.trace_id == trace_id:
                return closed
        return None

    def live_traces(self) -> List[CausalTrace]:
        return list(self._live.values())

    def closed_traces(self) -> List[CausalTrace]:
        return self._closed.to_list()

    def recent(self, n: int = 8) -> List[CausalTrace]:
        """Most recent traces, live first then newest-closed."""
        closed = self._closed.to_list()
        out = list(self._live.values()) + closed[::-1]
        return out[:n]

    # ------------------------------------------------------------------
    # SimObserver interface + rate recorder
    # ------------------------------------------------------------------
    def on_flow_added(self, flow: "Flow", now: float) -> None:
        job = flow.job_id or "none"
        for link in flow.links:
            per_job = self._link_jobs.setdefault(link, {})
            per_job[job] = per_job.get(job, 0) + 1
        trace_id = flow.tags.get("trace")
        if trace_id is None:
            return
        trace = self._live.get(trace_id)
        if trace is None:
            return
        caps = [self.sim.link_capacity(l) for l in flow.links]
        rec = FlowRecord(
            flow_id=flow.flow_id,
            rank=flow.tags.get("rank"),
            channel=flow.tags.get("channel"),
            size=flow.size,
            path=flow.path,
            ideal_s=flow.size / min(caps),
            t_start=now,
        )
        trace.current_attempt.flows[flow.flow_id] = rec
        self._by_flow[flow.flow_id] = trace
        flow._recorder = _BoundRecorder(self, rec, job)

    def _flow_left(self, flow: "Flow", now: float, status: str) -> None:
        job = flow.job_id or "none"
        for link in flow.links:
            per_job = self._link_jobs.get(link)
            if per_job is not None:
                count = per_job.get(job, 0) - 1
                if count > 0:
                    per_job[job] = count
                else:
                    per_job.pop(job, None)
                    if not per_job:
                        del self._link_jobs[link]
        binding = flow._recorder
        if binding is None:
            return
        self._by_flow.pop(flow.flow_id, None)
        rec = binding.rec
        if rec.status != "active":  # the trace already closed it
            return
        rec.close_segment(now)
        rec.t_end = now
        rec.status = status

    def on_flow_completed(self, flow: "Flow", now: float) -> None:
        self._flow_left(flow, now, "completed")

    def on_flow_cancelled(self, flow: "Flow", now: float) -> None:
        self._flow_left(flow, now, "cancelled")

    def on_flow_failed(self, flow: "Flow", now: float) -> None:
        self._flow_left(flow, now, "failed")

    def on_flow_gated(self, flow: "Flow", gated: bool, now: float) -> None:
        pass

    def on_rates_recomputed(self, now: float) -> None:
        pass

    # ------------------------------------------------------------------
    # critical-path attribution
    # ------------------------------------------------------------------
    def critical_path(self, trace: CausalTrace) -> Optional[CriticalPathReport]:
        """Build the exact-sum attribution report for a finished trace."""
        if trace.end_time is None:
            return None
        final = trace.attempts[-1]
        done = [f for f in final.flows.values()
                if f.status == "completed" and f.t_end is not None]
        if not done:
            return None
        critical = max(done, key=lambda f: (f.t_end, f.flow_id))
        duration = trace.end_time - trace.issued_at
        queue_s = critical.t_start - trace.issued_at
        fct = critical.t_end - critical.t_start
        serialization_s = min(critical.ideal_s, fct)
        contention_s = (trace.end_time - critical.t_start) - serialization_s
        per_hop = critical.bottlenecked_seconds()
        if per_hop:
            bottleneck = max(sorted(per_hop), key=per_hop.get)
        else:
            bottleneck = min(critical.path, key=self.sim.link_capacity)
        return CriticalPathReport(
            ctx=trace.ctx,
            duration_s=duration,
            queue_s=queue_s,
            serialization_s=serialization_s,
            contention_s=contention_s,
            attempts=len(trace.attempts),
            critical_flow=critical.flow_id,
            critical_rank=critical.rank,
            per_hop=per_hop,
            bottleneck_link=bottleneck,
            interference=critical.interference_seconds(),
        )


class FlightRecorder:
    """Always-on bounded ring of recent causal trees with trigger dumps.

    The recorder itself costs nothing at steady state: the tracer already
    keeps the ring of recent traces.  On a trigger (deadline, heartbeat
    miss, crash, admission shed, SLO violation) it snapshots the recent
    trees into a JSON-ready dump and keeps the most recent ``max_dumps``.
    """

    TRIGGERS = (
        "deadline", "heartbeat_miss", "crash", "admission_shed",
        "slo_violation", "manual",
    )

    def __init__(
        self,
        tracer: CausalTracer,
        *,
        max_dumps: int = 16,
        snapshot_traces: int = 8,
        events: Optional["EventLog"] = None,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.tracer = tracer
        self.snapshot_traces = snapshot_traces
        self.events = events
        self._dumps: RingBuffer[Dict[str, object]] = RingBuffer(max_dumps)
        self._dumps_total = None
        if metrics is not None:
            self._dumps_total = metrics.counter(
                "mccs_flight_dumps_total",
                "Flight-recorder dumps taken, by trigger reason.",
            )

    def trigger(
        self,
        reason: str,
        now: float,
        *,
        trace_id: Optional[str] = None,
        **detail: object,
    ) -> Dict[str, object]:
        """Snapshot the recent causal trees; returns the dump."""
        traces = self.tracer.recent(self.snapshot_traces)
        if trace_id is not None:
            focus = self.tracer.get(trace_id)
            if focus is not None and focus not in traces:
                traces = [focus] + traces[: self.snapshot_traces - 1]
        dump = {
            "reason": reason,
            "time": now,
            "trace_id": trace_id,
            "detail": dict(detail),
            "traces": [t.to_dict() for t in traces],
        }
        self._dumps.append(dump)
        if self._dumps_total is not None:
            self._dumps_total.inc(reason=reason)
        if self.events is not None:
            self.events.log(
                now, "flight_dump",
                f"flight recorder dump ({reason})",
                reason=reason, **({"trace": trace_id} if trace_id else {}),
            )
        return dump

    # ------------------------------------------------------------------
    def dumps(self) -> List[Dict[str, object]]:
        return self._dumps.to_list()

    def to_dict(self) -> Dict[str, object]:
        return {"dumps": self.dumps(), "evicted": self._dumps.evicted}

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
