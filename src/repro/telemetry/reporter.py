"""Pluggable experiment reporter.

The ``figNN`` experiment mains used to talk to the terminal with bare
``print()``; everything now goes through a :class:`Reporter`, which
renders tables/lines/metric summaries and writes them to a swappable
sink.  The default sink is stdout (so the scripts look exactly as
before); tests and batch runs install a :class:`BufferSink` and read the
text back, and the JSON/Prometheus exporters can be attached as
secondary destinations via :meth:`Reporter.dump_json`.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Iterable, List, Optional, Sequence

from .metrics import Histogram


# ----------------------------------------------------------------------
# text rendering (shared with repro.experiments.report)
# ----------------------------------------------------------------------
def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: Optional[str] = None
) -> str:
    """Fixed-width text table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# sinks
# ----------------------------------------------------------------------
class StdoutSink:
    """Default sink: the terminal."""

    def write_line(self, text: str) -> None:
        print(text)


class BufferSink:
    """Collects lines in memory; used by tests and batch harnesses."""

    def __init__(self) -> None:
        self.lines: List[str] = []

    def write_line(self, text: str) -> None:
        self.lines.append(text)

    def text(self) -> str:
        return "\n".join(self.lines)


class StreamSink:
    """Writes to any file-like object."""

    def __init__(self, stream: IO[str]) -> None:
        self.stream = stream

    def write_line(self, text: str) -> None:
        self.stream.write(text + "\n")


# ----------------------------------------------------------------------
# reporter
# ----------------------------------------------------------------------
class Reporter:
    """Renders experiment output through a pluggable sink."""

    def __init__(self, sink=None) -> None:
        self.sink = sink if sink is not None else StdoutSink()

    def line(self, text: str = "") -> None:
        self.sink.write_line(text)

    def table(
        self,
        headers: Sequence[str],
        rows: Iterable[Sequence[object]],
        title: Optional[str] = None,
    ) -> None:
        for text_line in format_table(headers, rows, title).split("\n"):
            self.sink.write_line(text_line)
        self.sink.write_line("")

    def metrics_summary(
        self, hub, names: Optional[Sequence[str]] = None
    ) -> None:
        """One line per metric: totals for counters/gauges, count+mean for
        histograms.  ``names`` restricts (and orders) the selection."""
        registry = hub.metrics
        metrics = (
            [registry.get(name) for name in names]
            if names is not None
            else registry.collect()
        )
        for metric in metrics:
            if metric is None:
                continue
            if isinstance(metric, Histogram):
                for labels, state in metric.samples():
                    label_text = self._label_text(labels)
                    mean = state.sum / state.count if state.count else 0.0
                    self.sink.write_line(
                        f"  {metric.name}{label_text}  "
                        f"count={state.count} mean={mean:.6g}s"
                    )
            else:
                for labels, value in metric.samples():
                    label_text = self._label_text(labels)
                    self.sink.write_line(
                        f"  {metric.name}{label_text}  {value:g}"
                    )

    @staticmethod
    def _label_text(labels: Dict[str, str]) -> str:
        if not labels:
            return ""
        body = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        return "{" + body + "}"

    def dump_json(self, payload: Dict[str, object], path: str) -> None:
        """Write a JSON payload (snapshot, Chrome trace) to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=False)
            fh.write("\n")
        self.line(f"wrote {path}")


# ----------------------------------------------------------------------
# default-reporter plumbing
# ----------------------------------------------------------------------
_default_reporter = Reporter()


def get_default_reporter() -> Reporter:
    return _default_reporter


def set_default_reporter(reporter: Reporter) -> Reporter:
    """Install ``reporter`` as the process default; returns the previous one."""
    global _default_reporter
    previous = _default_reporter
    _default_reporter = reporter
    return previous
